"""Setup shim.

The pinned environment has setuptools without the ``wheel`` package, so
PEP 660 editable installs (``pip install -e .``) cannot build the editable
wheel.  This shim lets ``python setup.py develop`` (and the ``make
install`` path in README) work offline; all metadata lives in
pyproject.toml.
"""

from setuptools import setup

setup()
