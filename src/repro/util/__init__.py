"""Shared utilities: deterministic RNG, iterated-logarithm machinery, records."""

from repro.util.mathx import (
    ilog,
    iterated_log,
    log_star,
    next_pow,
    is_perfect_square,
    isqrt_exact,
)
from repro.util.rng import make_rng

__all__ = [
    "ilog",
    "iterated_log",
    "log_star",
    "next_pow",
    "is_perfect_square",
    "isqrt_exact",
    "make_rng",
]
