"""Deterministic RNG plumbing.

Every stochastic component in the library (workload generators, randomized
incremental hull, benchmark harness) takes either a seed or a
``numpy.random.Generator``; this module is the single place that turns one
into the other so experiments are reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn"]


def make_rng(seed: int | np.random.Generator | None = 0) -> np.random.Generator:
    """Return a ``numpy.random.Generator``.

    Accepts a seed (int or None) or an existing generator (returned as-is),
    so APIs can take ``seed=...`` uniformly.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators."""
    if n < 0:
        raise ValueError(f"spawn requires n >= 0, got {n}")
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]
