"""Iterated-logarithm machinery used by the B_i band decomposition (Section 3).

The paper defines, for a base ``mu > 1``:

* ``log^(0) x = x / 2`` (a convenience, *not* the identity),
* ``log^(i) x = log_mu(log^(i-1) x)`` for ``i >= 1``,
* a constant ``c`` chosen so that ``mu**y >= y**2`` for all ``y >= c``,
* ``log*_mu x = max { i : log^(i)_mu x >= c }``.

These definitions guarantee ``log^(i) x >= (log^(i+1) x)**2`` along the whole
tower, which is what makes each band ``B_i`` large enough to host
``(log^(i) h / log^(i+1) h)**2`` copies of the next band.

Everything here works on Python floats/ints; the quantities are tiny
(towers collapse after 4-5 levels for any feasible ``x``).
"""

from __future__ import annotations

import math

__all__ = [
    "ilog",
    "iterated_log",
    "log_star",
    "mu_constant",
    "next_pow",
    "is_perfect_square",
    "isqrt_exact",
    "ceil_div",
]


def ilog(x: float, mu: float = 2.0) -> float:
    """Base-``mu`` logarithm. Raises ``ValueError`` for non-positive ``x``."""
    if x <= 0:
        raise ValueError(f"ilog requires x > 0, got {x}")
    if mu <= 1:
        raise ValueError(f"ilog requires mu > 1, got {mu}")
    return math.log(x) / math.log(mu)


def iterated_log(x: float, i: int, mu: float = 2.0) -> float:
    """The paper's ``log^(i)_mu x``: ``x/2`` for ``i == 0``, then ``i`` nested logs.

    Returns ``-inf`` if the tower collapses (an intermediate value becomes
    non-positive), so callers can compare against thresholds uniformly.
    """
    if i < 0:
        raise ValueError(f"iterated_log requires i >= 0, got {i}")
    value = x / 2.0
    for _ in range(i):
        if value <= 0:
            return -math.inf
        value = ilog(value, mu)
    return value


def mu_constant(mu: float = 2.0) -> int:
    """Smallest integer ``c >= 1`` with ``mu**y >= y**2`` for every real ``y >= c``.

    For ``mu = 2`` this is 4 (equality at y=4, and 2**y/y**2 is increasing
    beyond). Found by scanning integers and checking the next few values —
    since ``mu**y / y**2`` is eventually increasing, checking ``y = c .. c+64``
    (plus monotonicity of the ratio once ``y > 2/ln(mu)``) is sufficient.
    """
    if mu <= 1:
        raise ValueError(f"mu_constant requires mu > 1, got {mu}")
    turning = 2.0 / math.log(mu)  # ratio mu**y / y**2 increases for y > turning
    for c in range(1, 1024):
        ok = True
        y = float(c)
        while y <= max(turning, c) + 1.0:
            if mu**y < y * y - 1e-9:
                ok = False
                break
            y += 0.25
        if ok and mu**c >= c * c - 1e-9:
            return c
    raise RuntimeError(f"no mu-constant found for mu={mu}")  # pragma: no cover


def log_star(x: float, mu: float = 2.0, c: int | None = None) -> int:
    """The paper's ``log*_mu x = max { i : log^(i)_mu x >= c }``.

    Returns -1 when even ``log^(0) x = x/2`` is below ``c`` (degenerate,
    small-``x`` case: the band decomposition is empty and the whole graph is
    handled as ``B*``).
    """
    if c is None:
        c = mu_constant(mu)
    best = -1
    i = 0
    while True:
        v = iterated_log(x, i, mu)
        if v >= c:
            best = i
        else:
            break
        i += 1
        if i > 64:  # towers collapse long before this
            break  # pragma: no cover
    return best


def next_pow(base: int, at_least: int) -> int:
    """Smallest ``base**k >= at_least`` (``k >= 0``)."""
    if base < 2:
        raise ValueError(f"next_pow requires base >= 2, got {base}")
    if at_least < 1:
        raise ValueError(f"next_pow requires at_least >= 1, got {at_least}")
    value = 1
    while value < at_least:
        value *= base
    return value


def is_perfect_square(n: int) -> bool:
    """True iff ``n`` is a perfect square (``n >= 0``)."""
    if n < 0:
        return False
    root = math.isqrt(n)
    return root * root == n


def isqrt_exact(n: int) -> int:
    """Integer square root, raising if ``n`` is not a perfect square."""
    root = math.isqrt(n)
    if root * root != n:
        raise ValueError(f"{n} is not a perfect square")
    return root


def ceil_div(a: int, b: int) -> int:
    """Ceiling division for non-negative ``a`` and positive ``b``."""
    if b <= 0:
        raise ValueError(f"ceil_div requires b > 0, got {b}")
    return -(-a // b)
