"""The classic interval tree (Edelsbrunner 1983, cited by the paper as
[Ede83a]) — sequential substrate for Section 6.

Primary structure: a balanced binary tree over the median endpoints.
Every interval is stored at the highest node whose center point it
contains, in two sorted lists (ascending left endpoints; descending right
endpoints).  A stabbing query ``q`` walks root-to-leaf: at a node with
center ``c``, if ``q < c`` it scans the ascending-left list while
``l <= q`` (all such intervals contain ``q``), then recurses left;
symmetrically for ``q > c``.  Time ``O(log n + k)``.

Interval intersection queries ``[a, b]`` decompose as the disjoint union

    { intervals with l in [a, b] }  +  { intervals with l < a <= r }

— a 1-d range query over left endpoints plus a stabbing query at ``a`` —
which is exactly how the mesh application in
:mod:`repro.apps.interval_search` splits the work between the range-walk
multisearch and the interval-tree multisearch.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["IntervalTree", "brute_force_intersections"]


@dataclass
class _Node:
    center: float
    by_left: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    by_right: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))
    left: int = -1  # child node indices
    right: int = -1
    depth: int = 0


class IntervalTree:
    """Static interval tree over ``n`` intervals.

    Built once from arrays ``lefts``/``rights`` (``lefts <= rights``
    elementwise); query methods return interval indices.
    """

    def __init__(self, lefts: np.ndarray, rights: np.ndarray) -> None:
        lefts = np.asarray(lefts, dtype=np.float64)
        rights = np.asarray(rights, dtype=np.float64)
        if lefts.shape != rights.shape or lefts.ndim != 1:
            raise ValueError("lefts/rights must be equal-length 1-d arrays")
        if (lefts > rights).any():
            raise ValueError("intervals must have left <= right")
        self.lefts = lefts
        self.rights = rights
        self.nodes: list[_Node] = []
        self.root = -1
        if lefts.size:
            endpoints = np.unique(np.concatenate([lefts, rights]))
            self.root = self._build(endpoints, np.arange(lefts.size), depth=0)

    def _build(self, endpoints: np.ndarray, items: np.ndarray, depth: int) -> int:
        if endpoints.size == 0 or items.size == 0:
            return -1
        center = float(endpoints[endpoints.size // 2])
        here = (self.lefts[items] <= center) & (self.rights[items] >= center)
        mine = items[here]
        go_left = items[~here & (self.rights[items] < center)]
        go_right = items[~here & (self.lefts[items] > center)]
        node = _Node(center=center, depth=depth)
        node.by_left = mine[np.argsort(self.lefts[mine], kind="stable")]
        node.by_right = mine[np.argsort(-self.rights[mine], kind="stable")]
        idx = len(self.nodes)
        self.nodes.append(node)
        left_eps = endpoints[endpoints < center]
        right_eps = endpoints[endpoints > center]
        node.left = self._build(left_eps, go_left, depth + 1)
        node.right = self._build(right_eps, go_right, depth + 1)
        return idx

    @property
    def height(self) -> int:
        return max((nd.depth for nd in self.nodes), default=-1) + 1

    def stab(self, q: float) -> np.ndarray:
        """Indices of all intervals containing the point ``q``."""
        out: list[np.ndarray] = []
        at = self.root
        while at >= 0:
            node = self.nodes[at]
            if q < node.center:
                ids = node.by_left
                cut = int(np.searchsorted(self.lefts[ids], q, side="right"))
                out.append(ids[:cut])
                at = node.left
            elif q > node.center:
                ids = node.by_right
                cut = int(np.searchsorted(-self.rights[ids], -q, side="right"))
                out.append(ids[:cut])
                at = node.right
            else:
                out.append(node.by_left)
                at = -1
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.sort(np.concatenate(out)).astype(np.int64)

    def query_interval(self, a: float, b: float) -> np.ndarray:
        """Indices of all intervals intersecting ``[a, b]`` (``a <= b``)."""
        if a > b:
            raise ValueError(f"need a <= b, got [{a}, {b}]")
        stabbed = self.stab(a)
        in_range = np.flatnonzero((self.lefts >= a) & (self.lefts <= b))
        return np.unique(np.concatenate([stabbed, in_range])).astype(np.int64)

    def count_intersections(self, a: float, b: float) -> int:
        """``#{i : [l_i, r_i] intersects [a, b]}`` by the rank identity.

        Intersecting means ``l_i <= b and r_i >= a``; the count equals
        ``#{l_i <= b} - #{r_i < a}``, two rank queries on sorted arrays.
        """
        if a > b:
            raise ValueError(f"need a <= b, got [{a}, {b}]")
        lefts_sorted = np.sort(self.lefts)
        rights_sorted = np.sort(self.rights)
        return int(
            np.searchsorted(lefts_sorted, b, side="right")
            - np.searchsorted(rights_sorted, a, side="left")
        )


def brute_force_intersections(
    lefts: np.ndarray, rights: np.ndarray, a: float, b: float
) -> np.ndarray:
    """O(n) oracle: indices of intervals intersecting ``[a, b]``."""
    lefts = np.asarray(lefts)
    rights = np.asarray(rights)
    return np.flatnonzero((lefts <= b) & (rights >= a)).astype(np.int64)
