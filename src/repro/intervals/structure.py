"""The interval tree as a constant-degree search structure.

The paper's Section 6 defers details to the full version; this module
realizes the natural construction it gestures at ("balanced search trees
with augmentation"): the interval tree's per-node interval lists become
*chains* of constant-degree vertices, so a stabbing query's whole
``O(log n + k)`` walk — descend the primary tree, scan list prefixes —
is a single on-line search path, and m stabbing queries become a
multisearch.

Vertex kinds:

* **primary** — one per interval-tree node; payload
  ``[kind=0, center, head_l, head_r]`` (head_l/head_r are the first keys
  of the node's two chains, so the successor can decide chain entry from
  this record alone); adjacency ``[left_child, right_child, lchain_head,
  rchain_head]``.
* **left-chain** — the node's intervals in ascending-left order; payload
  ``[kind=1, l, interval_id, next_l]``; adjacency ``[next, left_child_of_node, -1, -1]``.
* **right-chain** — descending-right order; payload
  ``[kind=2, r, interval_id, next_r]``; adjacency ``[next, right_child_of_node, -1, -1]``.

Stabbing semantics (query key ``q``, state ``[count]``): at a primary
node go left/right of the center, entering the chain first when its head
qualifies; at a chain vertex count one report and continue while the
*next* chain entry qualifies (its key is cached in this vertex's payload),
else drop to the child.  Every chain vertex visited is exactly one
reported interval.

Splitters (for Algorithm 3): both cut every chain off its node and into
segments of ``~n^(1/2)``; S1 additionally cuts the primary tree at depth
``h/2``, S2 at depths ``h/3`` and ``2h/3``, and the chain segment cuts of
S2 are offset by half a segment from S1's.  All components are
``O(sqrt(n))``; along chains the two splitters' borders are ``~n^(1/2)/2``
apart, and in the primary tree ``~h/6`` levels apart.  (Chain *entry*
is a border of both splitters, so a query pays one extra log-phase per
chain entered — a deviation from the unpublished full-paper construction,
measured in E8 and documented in DESIGN.md.)
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.model import STOP, SearchStructure
from repro.core.splitters import Splitting, splitting_from_labels
from repro.intervals.interval_tree import IntervalTree
from repro.mesh.construct import Construction

__all__ = ["IntervalStructure", "build_interval_structure"]

_PRIMARY, _LCHAIN, _RCHAIN = 0.0, 1.0, 2.0


@dataclass
class IntervalStructure:
    """Flattened interval tree + stabbing successor + splittings."""

    structure: SearchStructure
    root_vertex: int
    #: interval id represented by each vertex (-1 for primary vertices)
    vertex_interval: np.ndarray
    splitting1: Splitting
    splitting2: Splitting
    n_intervals: int

    @property
    def size(self) -> int:
        return self.structure.size


def build_interval_structure(
    itree: IntervalTree, construct: Construction | None = None
) -> IntervalStructure:
    """Flatten ``itree`` into an :class:`IntervalStructure`.

    The ``intervals:structure-build`` span charges the modelled mesh cost
    of the flattening to ``construct`` (a fresh
    :class:`~repro.mesh.construct.Construction` when None): two sorts of
    the intervals (ascending-left and descending-right chain orders), a
    route of the V vertex records to their slots, and scans for the
    splitter component labelling.  Outputs are byte-identical with or
    without a construction attached.
    """
    n_nodes = len(itree.nodes)
    n_int = itree.lefts.size
    chain_lens = [nd.by_left.size for nd in itree.nodes]
    V = n_nodes + 2 * sum(chain_lens)
    if construct is None:
        construct = Construction(max(V, 1))
    with construct.span("intervals:structure-build"):
        return _build_interval_structure(itree, construct, n_nodes, n_int, V)


def _build_interval_structure(
    itree: IntervalTree,
    construct: Construction,
    n_nodes: int,
    n_int: int,
    V: int,
) -> IntervalStructure:

    adjacency = np.full((V, 4), -1, dtype=np.int64)
    payload = np.zeros((V, 4))
    level = np.zeros(V, dtype=np.int64)
    vertex_interval = np.full(V, -1, dtype=np.int64)
    #: per-vertex chain position (-1 for primary) and owning node, used
    #: by the splitter construction below
    chain_pos = np.full(V, -1, dtype=np.int64)
    owner = np.full(V, -1, dtype=np.int64)

    cursor = n_nodes
    lc_head = np.full(n_nodes, -1, dtype=np.int64)
    rc_head = np.full(n_nodes, -1, dtype=np.int64)
    for u, nd in enumerate(itree.nodes):
        t = nd.by_left.size
        if t == 0:
            continue
        lc = np.arange(cursor, cursor + t)
        cursor += t
        rc = np.arange(cursor, cursor + t)
        cursor += t
        lc_head[u], rc_head[u] = lc[0], rc[0]
        # left chain
        ls = itree.lefts[nd.by_left]
        adjacency[lc[:-1], 0] = lc[1:]
        adjacency[lc, 1] = nd.left
        payload[lc, 0] = _LCHAIN
        payload[lc, 1] = ls
        payload[lc, 2] = nd.by_left
        payload[lc[:-1], 3] = ls[1:]
        payload[lc[-1], 3] = np.inf
        vertex_interval[lc] = nd.by_left
        chain_pos[lc] = np.arange(t)
        owner[lc] = u
        level[lc] = nd.depth
        # right chain
        rs = itree.rights[nd.by_right]
        adjacency[rc[:-1], 0] = rc[1:]
        adjacency[rc, 1] = nd.right
        payload[rc, 0] = _RCHAIN
        payload[rc, 1] = rs
        payload[rc, 2] = nd.by_right
        payload[rc[:-1], 3] = rs[1:]
        payload[rc[-1], 3] = -np.inf
        vertex_interval[rc] = nd.by_right
        chain_pos[rc] = np.arange(t)
        owner[rc] = u
        level[rc] = nd.depth

    for u, nd in enumerate(itree.nodes):
        adjacency[u, 0] = nd.left
        adjacency[u, 1] = nd.right
        adjacency[u, 2] = lc_head[u]
        adjacency[u, 3] = rc_head[u]
        payload[u, 0] = _PRIMARY
        payload[u, 1] = nd.center
        payload[u, 2] = itree.lefts[nd.by_left[0]] if nd.by_left.size else np.inf
        payload[u, 3] = itree.rights[nd.by_right[0]] if nd.by_right.size else -np.inf
        level[u] = nd.depth
        owner[u] = u

    # modelled mesh cost: the two chain orders are global sorts of the
    # intervals; the V flattened vertex records then route to their slots
    if n_int:
        construct.sort(itree.lefts, n=n_int)
        construct.sort(-itree.rights, n=n_int)
    if V:
        construct.route(np.arange(V), level, n=V)

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        q = np.asarray(qkey).reshape(m)
        nxt = np.full(m, STOP, dtype=np.int64)
        new_state = np.array(qstate, copy=True)
        kind = vpayload[:, 0]

        prim = kind == _PRIMARY
        if prim.any():
            center = vpayload[:, 1]
            go_left = prim & (q < center)
            go_right = prim & ~(q < center)
            enter_l = go_left & (vadjacency[:, 2] >= 0) & (vpayload[:, 2] <= q)
            enter_r = go_right & (vadjacency[:, 3] >= 0) & (vpayload[:, 3] >= q)
            nxt[enter_l] = vadjacency[enter_l, 2]
            nxt[enter_r] = vadjacency[enter_r, 3]
            skip_l = go_left & ~enter_l
            skip_r = go_right & ~enter_r
            nxt[skip_l] = vadjacency[skip_l, 0]
            nxt[skip_r] = vadjacency[skip_r, 1]

        lch = kind == _LCHAIN
        if lch.any():
            new_state[lch, 0] += 1  # report
            cont = lch & (vpayload[:, 3] <= q)
            nxt[cont] = vadjacency[cont, 0]
            drop = lch & ~cont
            nxt[drop] = vadjacency[drop, 1]

        rch = kind == _RCHAIN
        if rch.any():
            new_state[rch, 0] += 1
            cont = rch & (vpayload[:, 3] >= q)
            nxt[cont] = vadjacency[cont, 0]
            drop = rch & ~cont
            nxt[drop] = vadjacency[drop, 1]
        return nxt, new_state

    structure = SearchStructure(
        adjacency=adjacency,
        payload=payload,
        level=level,
        successor=successor,
        directed=True,
    )

    # -- splitters ---------------------------------------------------------
    n = structure.size
    seg = max(2, math.ceil(math.sqrt(max(n, 4))))
    height = itree.height
    d1 = max(1, height // 2)
    d2a, d2b = max(1, height // 3), max(2, (2 * height) // 3)

    def make_comp(tree_cuts: list[int], chain_offset: int) -> np.ndarray:
        # modelled: component labelling is a segmented scan over the
        # chain records plus a scan over the primary tree by depth
        if V:
            construct.scan(np.ones(V, dtype=np.int64), n=V)
        comp = np.full(V, -1, dtype=np.int64)
        # primary components: highest uncut ancestor (walk by depth)
        cutset = set(tree_cuts)
        comp_root = np.arange(n_nodes, dtype=np.int64)
        by_depth = sorted(range(n_nodes), key=lambda u: itree.nodes[u].depth)
        parent = np.full(n_nodes, -1, dtype=np.int64)
        for u, nd in enumerate(itree.nodes):
            if nd.left >= 0:
                parent[nd.left] = u
            if nd.right >= 0:
                parent[nd.right] = u
        for u in by_depth:
            d = itree.nodes[u].depth
            if parent[u] >= 0 and d not in cutset:
                comp_root[u] = comp_root[parent[u]]
        comp[:n_nodes] = comp_root
        # chain segments: (owner, floor((pos + offset) / seg)) get unique ids
        ch = chain_pos >= 0
        seg_idx = (chain_pos[ch] + chain_offset) // seg
        # a distinct id per (owner, left/right, segment):
        side = (payload[ch, 0] == _RCHAIN).astype(np.int64)
        raw = (owner[ch] * 2 + side) * (V // seg + 2) + seg_idx
        comp[ch] = n_nodes + raw
        _, dense = np.unique(comp, return_inverse=True)
        return dense.astype(np.int64)

    comp1 = make_comp([d1], 0)
    comp2 = make_comp([d2a, d2b], seg // 2)
    delta = 0.5
    sp1 = splitting_from_labels(comp1, adjacency, delta)
    sp2 = splitting_from_labels(comp2, adjacency, delta)

    return IntervalStructure(
        structure=structure,
        root_vertex=itree.root,
        vertex_interval=vertex_interval,
        splitting1=sp1,
        splitting2=sp2,
        n_intervals=n_int,
    )
