"""Interval trees and multiple interval intersection search (paper Section 6).

* :mod:`repro.intervals.interval_tree` — the classic (Edelsbrunner)
  interval tree, built and queried sequentially: the substrate.
* :mod:`repro.intervals.structure` — the interval tree as a constant-degree
  search structure (primary tree + per-node interval chains) with the
  splittings that let the Section 4 machinery run stabbing queries as a
  mesh multisearch.

The end-to-end application (counting and reporting all intersections of
m query intervals against n stored intervals on the mesh) lives in
:mod:`repro.apps.interval_search`.
"""

from repro.intervals.interval_tree import IntervalTree

__all__ = ["IntervalTree"]
