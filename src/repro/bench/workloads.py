"""Workload generators shared by benches and tests.

All generators are seeded and return plain numpy arrays; geometric ones
avoid the degeneracies the substrates do not promise to handle (points on
a sphere for full-size hulls, uniform boxes for subdivisions).
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import make_rng

__all__ = ["sphere_points", "uniform_sites", "random_lines", "random_intervals"]


def sphere_points(n: int, seed=0, center=(0.0, 0.0, 0.0), radius: float = 1.0) -> np.ndarray:
    """``n`` points uniform on a sphere — every one is a hull vertex."""
    rng = make_rng(seed)
    v = rng.normal(size=(n, 3))
    v /= np.linalg.norm(v, axis=1, keepdims=True)
    return np.asarray(center, dtype=np.float64) + radius * v


def uniform_sites(n: int, seed=0, box: float = 100.0) -> np.ndarray:
    """``n`` uniform points in a square — sites for planar subdivisions."""
    rng = make_rng(seed)
    return rng.uniform(0.0, box, (n, 2))


def random_lines(m: int, seed=0, scale: float = 2.0) -> tuple[np.ndarray, np.ndarray]:
    """``m`` random lines near the origin: ``(points, directions)``."""
    rng = make_rng(seed)
    p0 = rng.normal(scale=scale, size=(m, 3))
    d = rng.normal(size=(m, 3))
    return p0, d


def random_intervals(
    n: int, seed=0, domain: float = 1000.0, mean_len: float | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """``n`` random intervals in ``[0, domain]``: ``(lefts, rights)``."""
    rng = make_rng(seed)
    if mean_len is None:
        mean_len = domain / max(n, 1) * 8.0
    lefts = rng.uniform(0.0, domain, n)
    lengths = rng.exponential(mean_len, n)
    return lefts, lefts + lengths
