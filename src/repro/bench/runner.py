"""Parallel benchmark harness: fan sweep points across cores, emit JSON.

Every ``benchmarks/bench_*.py`` defines a sweep (heights, sizes, widths,
...) driven through a ``run_once``-style entry point.  Under pytest those
sweeps run sequentially inside one process; this module is the
machine-readable, parallel alternative:

* the :data:`REGISTRY` names each bench's entry point and sweep points;
* every point runs in its own worker process (``ProcessPoolExecutor``
  with ``max_tasks_per_child=1``, so ``getrusage`` peak RSS is per-point),
  once with the engine fast path enabled and once with it disabled;
* per point it records min-of-repeats wall time for both engine modes,
  the mesh-step count (the paper's cost measure — asserted identical
  between modes), peak RSS, and the fast/slow speedup;
* results land in ``BENCH_<name>.json`` at the repo root, and
  ``--compare`` re-runs a sweep and fails on >10% wall-clock regression
  against a previously committed JSON.

Usage::

    python -m repro.bench.runner --all --jobs 4
    python -m repro.bench.runner e1_hierdag e2_constrained
    python -m repro.bench.runner --all --smoke          # smallest points
    python -m repro.bench.runner e1_hierdag --compare BENCH_e1_hierdag.json
    python -m repro.bench.runner e2_constrained --profile
    python -m repro.bench.runner e1_hierdag --trace   # Chrome trace blobs

``python -m repro.bench.report`` renders one BENCH JSON's per-phase
breakdown and diffs two of them (same regression rule as ``--compare``).

``bench_figures.py`` (plot aggregation over other benches' saved tables)
is intentionally not in the registry — it has no sweep of its own.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import pathlib
import resource
import sys
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from multiprocessing import get_context

import numpy as np

__all__ = ["REGISTRY", "BenchSpec", "run_bench", "run_point", "main"]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
BENCH_DIR = REPO_ROOT / "benchmarks"
SCHEMA_VERSION = 1
#: --compare fails when fast-path wall time exceeds baseline by this factor
REGRESSION_TOLERANCE = 0.10


@dataclass(frozen=True)
class BenchSpec:
    """One bench's entry point and sweep, smallest point first."""

    module: str
    entry: str
    points: tuple
    #: False for sweeps whose return value carries no mesh-step count
    #: (e.g. a relative volume error) — guards the generic extractor.
    has_steps: bool = True
    #: name of an untimed setup function ``setup(**point) -> ctx`` whose
    #: result is passed as the entry point's first argument; benches with
    #: one measure only engine + algorithm, not problem construction.
    setup: str | None = None


def _pts(base: dict | None = None, **sweeps) -> tuple:
    """Cartesian sweep points, sorted ascending by the sweep keys.

    Points are ordered lexicographically by the sweep keys in declaration
    order — the *first* key varies slowest, the last fastest — and each
    key's values ascend regardless of the order they were listed in, so
    ``points[0]`` is always the smallest point (the ``--smoke`` subject).
    """
    points = [dict(base or {})]
    for name, values in sweeps.items():
        points = [{**p, name: v} for v in values for p in points]
    return tuple(sorted(points, key=lambda p: [p[k] for k in sweeps]))


REGISTRY: dict[str, BenchSpec] = {
    "e1_hierdag": BenchSpec(
        "bench_e1_hierdag", "sweep_run",
        _pts(height=[8, 10, 12, 14, 16], method=["hierdag", "baseline"]),
        setup="sweep_setup",
    ),
    "e2_constrained": BenchSpec(
        "bench_e2_constrained", "sweep_run",
        _pts(height=[8, 10, 12, 14], skew=[0.0, 0.5, 1.0]),
        setup="sweep_setup",
    ),
    "e3_alpha": BenchSpec(
        "bench_e3_alpha", "run_once",
        _pts(handle_len=[4, 16, 64, 192, 448], method=["alpha", "baseline"]),
    ),
    "e4_alphabeta": BenchSpec(
        "bench_e4_alphabeta", "run_once",
        _pts(width=[2.0, 16.0, 64.0, 256.0], method=["alphabeta", "baseline"]),
    ),
    "e5_lemma1": BenchSpec(
        "bench_e5_lemma1", "run_once", _pts(height=[10, 12, 14, 16])
    ),
    "e6_linepoly": BenchSpec(
        "bench_e6_linepoly", "run_once", _pts(n=[128, 256, 512, 1024])
    ),
    "e7_pointloc": BenchSpec(
        "bench_e7_pointloc", "run_once",
        _pts(n_sites=[100, 200, 400, 800], method=["hierdag", "baseline"]),
    ),
    "e8_intervals": BenchSpec(
        "bench_e8_intervals", "run_once",
        _pts(n=[256, 512, 1024, 2048], mode=["count", "report"]),
    ),
    "e9a_separation": BenchSpec(
        "bench_e9_hull3d", "run_separation",
        _pts(offset=[0.2, 0.8, 1.4, 2.0, 2.6, 3.2]),
    ),
    "e9b_hull": BenchSpec(
        "bench_e9_hull3d", "run_hull", _pts(n=[200, 400, 800]), has_steps=False
    ),
    "e10_vm": BenchSpec("bench_e10_vm", "vm_costs", _pts(side=[8, 16, 32, 64])),
    "a4_twothree": BenchSpec(
        "bench_a4_twothree", "run_once",
        _pts(n=[256, 1024, 4096], variant=["complete", "twothree"]),
    ),
    "ablation_bands": BenchSpec(
        "bench_ablation_bands", "run_once",
        _pts(height=[12, 14, 16], variant=["c=2", "c=4", "none"]),
    ),
    "ablation_cm": BenchSpec(
        "bench_ablation_cm", "run_once", _pts(scale=[0.25, 0.5, 1.0, 2.0, 4.0])
    ),
    "dr90_hypercube": BenchSpec(
        "bench_dr90_hypercube", "run_once",
        _pts(handle_len=[16, 64, 192],
             strategy=["hypercube", "mesh-sync", "multisearch"]),
    ),
}


# -- worker side -----------------------------------------------------------


def _peak_rss_kib(ru_maxrss: int, platform: str | None = None) -> int:
    """Normalize ``getrusage().ru_maxrss`` to KiB.

    Linux reports ``ru_maxrss`` in KiB but macOS reports bytes; without
    the per-platform divide, ``peak_rss_kb`` would be inflated 1024x on
    Darwin.  (The BSDs also report bytes, but the runner targets the two
    platforms CI and development actually use.)
    """
    if platform is None:
        platform = sys.platform
    if platform == "darwin":
        return int(ru_maxrss) // 1024
    return int(ru_maxrss)


def _extract_steps(result) -> float | None:
    """Best-effort mesh-step count from a bench entry point's return value.

    Accepts the shapes used across ``benchmarks/``: a bare number, a tuple
    whose leading numeric element is the step count, an object exposing
    ``mesh_steps``, or a per-primitive ``{label: steps}`` dict (E10).
    """
    def probe(obj):
        ms = getattr(obj, "mesh_steps", None)
        if ms is not None:
            return float(ms)
        if isinstance(obj, bool):
            return None
        if isinstance(obj, (int, float, np.integer, np.floating)):
            return float(obj)
        if isinstance(obj, dict) and obj and all(
            isinstance(v, (int, float, np.integer, np.floating)) for v in obj.values()
        ):
            return float(sum(obj.values()))
        return None

    for obj in result if isinstance(result, tuple) else (result,):
        found = probe(obj)
        if found is not None:
            return found
    return None


def _bench_callable(bench: str):
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = REGISTRY[bench]
    module = importlib.import_module(spec.module)
    return spec, getattr(module, spec.entry)


def run_point(
    bench: str,
    point: dict,
    repeats: int = 5,
    warmup: int = 1,
    profile: bool = False,
    trace: bool = False,
) -> dict:
    """Measure one sweep point (called in a worker process).

    Runs the point under both engine modes (``REPRO_FAST_PATH=1`` and
    ``0``) and returns the point's JSON record.  Because the pool recycles
    the process after each task, ``ru_maxrss`` is this point's peak RSS.
    """
    spec, fn = _bench_callable(bench)
    if spec.setup is not None:
        module = importlib.import_module(spec.module)
        ctx = getattr(module, spec.setup)(**point)
        call = lambda: fn(ctx, **point)  # noqa: E731 - tight timing closure
    else:
        call = lambda: fn(**point)  # noqa: E731
    record: dict = {"params": dict(point)}
    modes = (("fast", "1"), ("slow", "0"))
    best = {mode: float("inf") for mode, _ in modes}
    results: dict = {mode: None for mode, _ in modes}
    for mode, flag in modes:
        os.environ["REPRO_FAST_PATH"] = flag
        for _ in range(warmup):
            call()
    # interleave the modes' timed repetitions so scheduler noise (other
    # sweep points time-slicing the same cores) biases neither mode
    for _ in range(repeats):
        for mode, flag in modes:
            os.environ["REPRO_FAST_PATH"] = flag
            t0 = time.perf_counter()
            results[mode] = call()
            best[mode] = min(best[mode], time.perf_counter() - t0)
    os.environ.pop("REPRO_FAST_PATH", None)
    steps_seen: dict[str, float | None] = {}
    for mode, _ in modes:
        steps = _extract_steps(results[mode]) if spec.has_steps else None
        steps_seen[mode] = steps
        record[mode] = {
            "wall_s_min": best[mode], "repeats": repeats, "mesh_steps": steps
        }
    if steps_seen["fast"] is not None and steps_seen["slow"] is not None:
        record["mesh_steps_equal"] = steps_seen["fast"] == steps_seen["slow"]
    record["speedup"] = record["slow"]["wall_s_min"] / record["fast"]["wall_s_min"]
    if profile:
        from repro.mesh.clock import drain_profiled_clocks
        from repro.mesh.profile import CostProfile, profile as summarize

        drain_profiled_clocks()
        os.environ["REPRO_PROFILE"] = "1"
        try:
            call()
        finally:
            os.environ.pop("REPRO_PROFILE", None)
        merged = CostProfile().merge(
            *(summarize(clock.history) for clock in drain_profiled_clocks())
        )
        record["profile"] = merged.to_dict()
    if trace:
        from repro.mesh.trace import chrome_doc, drain_traced_tracers

        drain_traced_tracers()  # clear any stale registrations first
        os.environ["REPRO_TRACE"] = "1"
        try:
            call()
        finally:
            os.environ.pop("REPRO_TRACE", None)
        tracers = drain_traced_tracers()
        record["trace"] = chrome_doc(tracers)
        record["trace_tree"] = "\n\n".join(t.render() for t in tracers)
        record["trace_collapsed"] = "\n".join(t.collapsed() for t in tracers)
        record["trace_steps"] = sum(t.total_steps for t in tracers)
    record["peak_rss_kb"] = _peak_rss_kib(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )
    return record


# -- parent side -----------------------------------------------------------


def _ensure_child_paths() -> None:
    """Make ``repro`` and the bench modules importable in spawned workers.

    Spawned children rebuild ``sys.path`` from the environment, so a parent
    that found ``repro`` some other way (pytest conftest, editable install)
    must pass the paths down explicitly.
    """
    parts = [str(REPO_ROOT / "src"), str(BENCH_DIR)]
    for part in os.environ.get("PYTHONPATH", "").split(os.pathsep):
        if part and part not in parts:
            parts.append(part)
    os.environ["PYTHONPATH"] = os.pathsep.join(parts)


def run_bench(
    bench: str,
    jobs: int,
    repeats: int = 5,
    warmup: int = 1,
    smoke: bool = False,
    profile: bool = False,
    trace: bool = False,
) -> dict:
    """Fan one bench's sweep points across worker processes."""
    spec = REGISTRY[bench]
    points = spec.points[:1] if smoke else spec.points
    if smoke:
        repeats, warmup = 1, 1
    _ensure_child_paths()
    started = time.time()
    records: list[dict | None] = [None] * len(points)
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(points)),
        mp_context=get_context("spawn"),
        max_tasks_per_child=1,
    ) as pool:
        futures = {
            pool.submit(run_point, bench, p, repeats, warmup, profile, trace): i
            for i, p in enumerate(points)
        }
        for future in futures:
            records[futures[future]] = future.result()
    doc = {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "jobs": jobs,
        "repeats": repeats,
        "warmup": warmup,
        "wall_s_total": time.time() - started,
        "points": records,
    }
    if profile:
        from repro.mesh.profile import CostProfile

        merged = CostProfile().merge(
            *(CostProfile.from_dict(r["profile"]) for r in records if "profile" in r)
        )
        doc["profile"] = merged.to_dict()
    return doc


def compare(doc: dict, baseline: dict, tolerance: float = REGRESSION_TOLERANCE) -> list[str]:
    """Fast-path wall-clock regressions of ``doc`` vs ``baseline`` (>tolerance)."""
    failures: list[str] = []
    base_by_params = {json.dumps(p["params"], sort_keys=True): p for p in baseline["points"]}
    for point in doc["points"]:
        key = json.dumps(point["params"], sort_keys=True)
        base = base_by_params.get(key)
        if base is None:
            continue
        old = base["fast"]["wall_s_min"]
        new = point["fast"]["wall_s_min"]
        if old > 0 and new > old * (1 + tolerance):
            failures.append(
                f"{doc['bench']} {point['params']}: fast wall {new * 1e3:.2f}ms "
                f"vs baseline {old * 1e3:.2f}ms (+{(new / old - 1):.0%} > {tolerance:.0%})"
            )
    return failures


def _render_bench(doc: dict) -> str:
    lines = [f"{doc['bench']}: {len(doc['points'])} points in {doc['wall_s_total']:.1f}s"]
    for point in doc["points"]:
        params = ", ".join(f"{k}={v}" for k, v in point["params"].items())
        steps = point["fast"]["mesh_steps"]
        steps_txt = "-" if steps is None else f"{steps:.0f}"
        eq = point.get("mesh_steps_equal")
        eq_txt = "" if eq is None else ("" if eq else "  STEPS MISMATCH")
        lines.append(
            f"  [{params}] fast={point['fast']['wall_s_min'] * 1e3:.2f}ms "
            f"slow={point['slow']['wall_s_min'] * 1e3:.2f}ms "
            f"speedup={point['speedup']:.2f}x steps={steps_txt} "
            f"rss={point['peak_rss_kb'] / 1024:.0f}MB{eq_txt}"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.runner", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument("benches", nargs="*", help="bench names (see --list)")
    parser.add_argument("--all", action="store_true", help="run every registered bench")
    parser.add_argument("--list", action="store_true", help="list registered benches")
    parser.add_argument("--jobs", type=int, default=max(1, (os.cpu_count() or 2) - 1))
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smallest sweep point only, one repeat (tier-2 sanity check)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also collect a merged per-label mesh-step profile",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="also record one span-traced pass per point; Chrome trace_event "
        "blobs land next to BENCH_<name>.json as TRACE_<name>__<params>.json "
        "(plus a .txt tree render and a flamegraph .collapsed export)",
    )
    parser.add_argument(
        "--out-dir", type=pathlib.Path, default=REPO_ROOT,
        help="directory for BENCH_<name>.json (default: repo root)",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and print, write nothing"
    )
    parser.add_argument(
        "--compare", type=pathlib.Path, default=None, metavar="BASELINE",
        help="baseline BENCH_<name>.json file (or a directory of them); "
        f"exit 1 on a >{REGRESSION_TOLERANCE:.0%} fast-path wall-clock regression",
    )
    parser.add_argument("--tolerance", type=float, default=REGRESSION_TOLERANCE)
    args = parser.parse_args(argv)

    if args.list:
        for name, spec in REGISTRY.items():
            print(f"{name:<16} {spec.module}.{spec.entry}  {len(spec.points)} points")
        return 0
    selected = list(REGISTRY) if args.all else args.benches
    if not selected:
        parser.error("name at least one bench, or pass --all / --list")
    unknown = [b for b in selected if b not in REGISTRY]
    if unknown:
        parser.error(f"unknown bench(es): {', '.join(unknown)} (see --list)")

    failures: list[str] = []
    for bench in selected:
        doc = run_bench(
            bench, jobs=args.jobs, repeats=args.repeats, warmup=args.warmup,
            smoke=args.smoke, profile=args.profile, trace=args.trace,
        )
        if args.trace:
            # trace blobs ride back in the point records; peel them off into
            # sidecar files so BENCH_<name>.json stays diff-sized
            for point in doc["points"]:
                blob = point.pop("trace", None)
                tree = point.pop("trace_tree", "")
                folded = point.pop("trace_collapsed", "")
                if blob is None or args.no_write:
                    continue
                args.out_dir.mkdir(parents=True, exist_ok=True)
                pname = "_".join(f"{k}-{v}" for k, v in point["params"].items())
                tpath = args.out_dir / f"TRACE_{bench}__{pname}.json"
                tpath.write_text(json.dumps(blob) + "\n")
                (args.out_dir / f"TRACE_{bench}__{pname}.txt").write_text(tree + "\n")
                (args.out_dir / f"TRACE_{bench}__{pname}.collapsed").write_text(
                    folded + "\n"
                )
                print(f"  wrote {tpath}", flush=True)
        print(_render_bench(doc), flush=True)
        for point in doc["points"]:
            if point.get("mesh_steps_equal") is False:
                failures.append(
                    f"{bench} {point['params']}: fast/slow mesh-step counts differ"
                )
        if args.compare is not None:
            path = args.compare
            if path.is_dir():
                path = path / f"BENCH_{bench}.json"
            if path.exists():
                baseline = json.loads(path.read_text())
                failures += compare(doc, baseline, args.tolerance)
            else:
                failures.append(f"{bench}: baseline {path} not found")
        if not args.no_write and args.compare is None:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            out = args.out_dir / f"BENCH_{bench}.json"
            out.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"  wrote {out}", flush=True)
        if args.profile and "profile" in doc:
            from repro.mesh.profile import CostProfile

            print(CostProfile.from_dict(doc["profile"]).render(), flush=True)

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
