"""Parallel benchmark harness: fan sweep points across cores, emit JSON.

Every ``benchmarks/bench_*.py`` defines a sweep (heights, sizes, widths,
...) driven through a ``run_once``-style entry point.  Under pytest those
sweeps run sequentially inside one process; this module is the
machine-readable, parallel alternative:

* the :data:`REGISTRY` names each bench's entry point and sweep points;
* every point runs in its own spawned worker process (fresh process per
  point, so ``getrusage`` peak RSS is per-point), once with the engine
  fast path enabled and once with it disabled;
* per point it records min-of-repeats wall time for both engine modes,
  the mesh-step count (the paper's cost measure — asserted identical
  between modes), peak RSS, and the fast/slow speedup;
* the sweep is *crash-proof*: a worker that raises, segfaults, is
  OOM-killed, or exceeds ``--timeout`` produces a point record with
  ``{"error": ..., "traceback": ...}`` instead of killing the sweep;
  crashed workers are retried up to ``--retries`` times with exponential
  backoff before the error is recorded;
* completed points stream to ``BENCH_<name>.partial.json`` (written
  atomically after every point), and ``--resume`` skips points that
  checkpoint already completed successfully — errored points rerun;
* results land in ``BENCH_<name>.json`` at the repo root, and
  ``--compare`` re-runs a sweep and fails on >10% wall-clock regression
  against a previously committed JSON.  Errored points always surface as
  failures (exit code 1), never as a silent pass.

Usage::

    python -m repro.bench.runner --all --jobs 4
    python -m repro.bench.runner e1_hierdag e2_constrained
    python -m repro.bench.runner --all --smoke          # smallest points
    python -m repro.bench.runner e1_hierdag --compare BENCH_e1_hierdag.json
    python -m repro.bench.runner e2_constrained --profile
    python -m repro.bench.runner e1_hierdag --trace   # Chrome trace blobs
    python -m repro.bench.runner e3_alpha --timeout 120 --resume

``python -m repro.bench.report`` renders one BENCH JSON's per-phase
breakdown and diffs two of them (same regression rule as ``--compare``).

``bench_figures.py`` (plot aggregation over other benches' saved tables)
is intentionally not in the registry — it has no sweep of its own.
"""

from __future__ import annotations

import argparse
import importlib
import json
import os
import pathlib
import resource
import sys
import time
import traceback
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait

import numpy as np

__all__ = [
    "REGISTRY",
    "BenchSpec",
    "error_kind_of",
    "provenance",
    "run_bench",
    "run_point",
    "main",
]

REPO_ROOT = pathlib.Path(__file__).resolve().parents[3]
BENCH_DIR = REPO_ROOT / "benchmarks"
SCHEMA_VERSION = 1
#: --compare fails when fast-path wall time exceeds baseline by this factor
REGRESSION_TOLERANCE = 0.10


@dataclass(frozen=True)
class BenchSpec:
    """One bench's entry point and sweep, smallest point first."""

    module: str
    entry: str
    points: tuple
    #: False for sweeps whose return value carries no mesh-step count
    #: (e.g. a relative volume error) — guards the generic extractor.
    has_steps: bool = True
    #: name of an untimed setup function ``setup(**point) -> ctx`` whose
    #: result is passed as the entry point's first argument; benches with
    #: one measure only engine + algorithm, not problem construction.
    setup: str | None = None


def _pts(base: dict | None = None, **sweeps) -> tuple:
    """Cartesian sweep points, sorted ascending by the sweep keys.

    Points are ordered lexicographically by the sweep keys in declaration
    order — the *first* key varies slowest, the last fastest — and each
    key's values ascend regardless of the order they were listed in, so
    ``points[0]`` is always the smallest point (the ``--smoke`` subject).
    """
    points = [dict(base or {})]
    for name, values in sweeps.items():
        points = [{**p, name: v} for v in values for p in points]
    return tuple(sorted(points, key=lambda p: [p[k] for k in sweeps]))


REGISTRY: dict[str, BenchSpec] = {
    "e1_hierdag": BenchSpec(
        "bench_e1_hierdag", "sweep_run",
        _pts(height=[8, 10, 12, 14, 16], method=["hierdag", "baseline"]),
        setup="sweep_setup",
    ),
    "e2_constrained": BenchSpec(
        "bench_e2_constrained", "sweep_run",
        _pts(height=[8, 10, 12, 14], skew=[0.0, 0.5, 1.0]),
        setup="sweep_setup",
    ),
    "e3_alpha": BenchSpec(
        "bench_e3_alpha", "run_once",
        _pts(handle_len=[4, 16, 64, 192, 448], method=["alpha", "baseline"]),
    ),
    "e4_alphabeta": BenchSpec(
        "bench_e4_alphabeta", "run_once",
        _pts(width=[2.0, 16.0, 64.0, 256.0], method=["alphabeta", "baseline"]),
    ),
    "e5_lemma1": BenchSpec(
        "bench_e5_lemma1", "run_once", _pts(height=[10, 12, 14, 16])
    ),
    "e6_linepoly": BenchSpec(
        "bench_e6_linepoly", "run_once", _pts(n=[128, 256, 512, 1024])
    ),
    "e7_pointloc": BenchSpec(
        "bench_e7_pointloc", "run_once",
        _pts(n_sites=[100, 200, 400, 800], method=["hierdag", "baseline"]),
    ),
    "e8_intervals": BenchSpec(
        "bench_e8_intervals", "run_once",
        _pts(n=[256, 512, 1024, 2048], mode=["count", "report"]),
    ),
    "e9a_separation": BenchSpec(
        "bench_e9_hull3d", "run_separation",
        _pts(offset=[0.2, 0.8, 1.4, 2.0, 2.6, 3.2]),
    ),
    "e9b_hull": BenchSpec(
        "bench_e9_hull3d", "run_hull", _pts(n=[200, 400, 800]), has_steps=False
    ),
    "e10_vm": BenchSpec("bench_e10_vm", "vm_costs", _pts(side=[8, 16, 32, 64])),
    # E11 sweeps each pipeline over its own 64x size range (dk3d's host
    # stand-in is O(n^2), so it gets the smaller window); concatenated in
    # ascending key order, so --smoke runs the cheap dk3d n=32 point
    "e11_construct": BenchSpec(
        "bench_e11_construct", "run_once",
        _pts(pipeline=["dk3d"], n=[32, 128, 512, 2048])
        + _pts(pipeline=["kirkpatrick"], n=[64, 256, 1024, 4096]),
    ),
    # E12 reruns E1/E2/E11 pipelines under every registered kernel backend
    # (alphabetical, so each group's points ascend); non-native backends
    # measure their numpy fallback — provenance records which is which
    "e12_backends": BenchSpec(
        "bench_e12_backends", "sweep_run",
        _pts(pipeline=["constrained"],
             backend=["array_api", "cffi", "numba", "numpy"], size=[8, 10, 12])
        + _pts(pipeline=["construct"],
               backend=["array_api", "cffi", "numba", "numpy"],
               size=[64, 256, 1024])
        + _pts(pipeline=["hierdag"],
               backend=["array_api", "cffi", "numba", "numpy"], size=[8, 10, 12]),
        setup="sweep_setup",
    ),
    # E13 fixes the structure and the query load; the sweep varies how the
    # batching front-end packs the load (throughput vs batch size, with
    # the flush deadline as the tail-latency floor)
    "e13_serving": BenchSpec(
        "bench_e13_serving", "sweep_run",
        _pts({"sites": 128, "queries": 256},
             batch=[8, 32, 128, 512], deadline_ms=[2.0, 20.0]),
        setup="sweep_setup",
    ),
    # E15 holds the global mesh and record count fixed and sweeps only the
    # chip decomposition: steps fall while intra-chip parallelism wins,
    # then rise once off-chip exchanges dominate (the recorded crossover);
    # the k_chip=1 row is the unsharded engine and anchors the curve
    "e15_sharded": BenchSpec(
        "bench_e15_sharded", "run_once",
        _pts({"n": 2048}, k_chip=[1, 2, 4, 8], bandwidth=[1.0, 8.0]),
    ),
    "a4_twothree": BenchSpec(
        "bench_a4_twothree", "run_once",
        _pts(n=[256, 1024, 4096], variant=["complete", "twothree"]),
    ),
    "ablation_bands": BenchSpec(
        "bench_ablation_bands", "run_once",
        _pts(height=[12, 14, 16], variant=["c=2", "c=4", "none"]),
    ),
    "ablation_cm": BenchSpec(
        "bench_ablation_cm", "run_once", _pts(scale=[0.25, 0.5, 1.0, 2.0, 4.0])
    ),
    "dr90_hypercube": BenchSpec(
        "bench_dr90_hypercube", "run_once",
        _pts(handle_len=[16, 64, 192],
             strategy=["hypercube", "mesh-sync", "multisearch"]),
    ),
    # runner self-test: only the trivially-fast "ok" mode is swept by
    # default; the crash/hang/fail modes back tests of the resilient pool
    "selftest": BenchSpec("bench_selftest", "run_once", _pts(mode=["ok"])),
}


# -- worker side -----------------------------------------------------------


def _cpu_model() -> str | None:
    """Best-effort CPU model string (``/proc/cpuinfo`` on Linux)."""
    try:
        with open("/proc/cpuinfo") as fh:
            for line in fh:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    try:
        import platform

        return platform.processor() or None
    except Exception:  # pragma: no cover - platform probing never fatal
        return None


def provenance() -> dict:
    """Environment identity stamped into every bench document.

    A ``wall_s_min`` column is meaningless without knowing *what* ran it:
    which kernel backend the engine resolved (native or fallback), which
    interpreter/library versions, and which CPU.  ``--compare`` baselines
    from a different environment still compare, but the mismatch is now
    visible in the JSON instead of silently attributed to the code.
    """
    from repro.mesh.backend import resolve_backend

    backend = resolve_backend(None)
    versions: dict[str, str | None] = {
        "python": sys.version.split()[0],
        "numpy": np.__version__,
    }
    for lib in ("numba", "cffi"):
        try:
            versions[lib] = importlib.import_module(lib).__version__
        except Exception:  # ImportError, or a broken install — record absence
            versions[lib] = None
    return {
        "backend": backend.name,
        "backend_native": backend.native,
        "backend_fallback_reason": backend.fallback_reason,
        "versions": versions,
        "platform": sys.platform,
        "cpu": _cpu_model(),
    }


def _peak_rss_kib(ru_maxrss: int, platform: str | None = None) -> int:
    """Normalize ``getrusage().ru_maxrss`` to KiB.

    Linux reports ``ru_maxrss`` in KiB but macOS reports bytes; without
    the per-platform divide, ``peak_rss_kb`` would be inflated 1024x on
    Darwin.  (The BSDs also report bytes, but the runner targets the two
    platforms CI and development actually use.)
    """
    if platform is None:
        platform = sys.platform
    if platform == "darwin":
        return int(ru_maxrss) // 1024
    return int(ru_maxrss)


def _extract_steps(result) -> float | None:
    """Best-effort mesh-step count from a bench entry point's return value.

    Accepts the shapes used across ``benchmarks/``: a bare number, a tuple
    whose leading numeric element is the step count, an object exposing
    ``mesh_steps``, or a per-primitive ``{label: steps}`` dict (E10).
    """
    def probe(obj):
        ms = getattr(obj, "mesh_steps", None)
        if ms is not None:
            return float(ms)
        if isinstance(obj, bool):
            return None
        if isinstance(obj, (int, float, np.integer, np.floating)):
            return float(obj)
        if isinstance(obj, dict) and obj and all(
            isinstance(v, (int, float, np.integer, np.floating)) for v in obj.values()
        ):
            return float(sum(obj.values()))
        return None

    for obj in result if isinstance(result, tuple) else (result,):
        found = probe(obj)
        if found is not None:
            return found
    return None


def _bench_callable(bench: str):
    if str(BENCH_DIR) not in sys.path:
        sys.path.insert(0, str(BENCH_DIR))
    spec = REGISTRY[bench]
    module = importlib.import_module(spec.module)
    return spec, getattr(module, spec.entry)


def run_point(
    bench: str,
    point: dict,
    repeats: int = 5,
    warmup: int = 1,
    profile: bool = False,
    trace: bool = False,
) -> dict:
    """Measure one sweep point (called in a worker process).

    Runs the point under both engine modes (``REPRO_FAST_PATH=1`` and
    ``0``) and returns the point's JSON record.  Because the pool recycles
    the process after each task, ``ru_maxrss`` is this point's peak RSS.

    Host caches (buffer pools, argsort memos) left over from whatever ran
    earlier in this process are dropped on entry, so a point's
    ``peak_rss_kb`` and memo counters are its own — this matters when
    points share a process (pytest, ``run_point`` called in a loop), not
    just in the one-process-per-point pool.

    The caller's ``REPRO_FAST_PATH`` / ``REPRO_PROFILE`` / ``REPRO_TRACE``
    are saved on entry and restored on exit (they used to be popped, which
    clobbered any value the caller had exported).  The optional profiled
    and traced passes run pinned to ``REPRO_FAST_PATH=1`` — they profile
    the mode whose numbers headline the record, not whatever mode the
    process happened to default to.
    """
    from repro.mesh.records import clear_host_caches, drain_memo_counters

    clear_host_caches()
    drain_memo_counters()
    spec, fn = _bench_callable(bench)
    if spec.setup is not None:
        module = importlib.import_module(spec.module)
        ctx = getattr(module, spec.setup)(**point)
        call = lambda: fn(ctx, **point)  # noqa: E731 - tight timing closure
    else:
        call = lambda: fn(**point)  # noqa: E731
    record: dict = {"params": dict(point)}
    modes = (("fast", "1"), ("slow", "0"))
    best = {mode: float("inf") for mode, _ in modes}
    results: dict = {mode: None for mode, _ in modes}
    saved_env = {
        name: os.environ.get(name)
        for name in ("REPRO_FAST_PATH", "REPRO_PROFILE", "REPRO_TRACE")
    }
    try:
        for mode, flag in modes:
            os.environ["REPRO_FAST_PATH"] = flag
            for _ in range(warmup):
                call()
        # interleave the modes' timed repetitions so scheduler noise (other
        # sweep points time-slicing the same cores) biases neither mode
        for _ in range(repeats):
            for mode, flag in modes:
                os.environ["REPRO_FAST_PATH"] = flag
                t0 = time.perf_counter()
                results[mode] = call()
                best[mode] = min(best[mode], time.perf_counter() - t0)
        steps_seen: dict[str, float | None] = {}
        warnings: list[str] = []
        for mode, _ in modes:
            steps = _extract_steps(results[mode]) if spec.has_steps else None
            steps_seen[mode] = steps
            if spec.has_steps and steps is None:
                # distinguish "extractor found nothing" from a genuine zero:
                # steps stays null and the record says why
                warnings.append(
                    f"{mode}: no mesh-step count found in "
                    f"{spec.module}.{spec.entry} result; recording steps: null"
                )
        for mode, _ in modes:
            record[mode] = {
                "wall_s_min": best[mode], "repeats": repeats, "mesh_steps": steps_seen[mode]
            }
        if steps_seen["fast"] is not None and steps_seen["slow"] is not None:
            record["mesh_steps_equal"] = steps_seen["fast"] == steps_seen["slow"]
        if best["fast"] > 0.0:
            record["speedup"] = best["slow"] / best["fast"]
        else:
            # a 0.0 fast wall (clock granularity on a trivial point) used
            # to raise ZeroDivisionError and lose the whole record
            record["speedup"] = None
            warnings.append(
                "fast wall_s_min is 0.0 (below timer resolution); "
                "recording speedup: null"
            )
        if warnings:
            record["warnings"] = warnings
        os.environ["REPRO_FAST_PATH"] = "1"  # pin the extra passes' mode
        if profile:
            from repro.mesh.clock import drain_profiled_clocks
            from repro.mesh.profile import CostProfile, profile as summarize

            drain_profiled_clocks()
            drain_memo_counters()  # scope memo counters to the profiled pass
            os.environ["REPRO_PROFILE"] = "1"
            try:
                call()
            finally:
                os.environ.pop("REPRO_PROFILE", None)
            merged = CostProfile().merge(
                *(summarize(clock.history) for clock in drain_profiled_clocks())
            )
            merged.memo = drain_memo_counters()
            record["profile"] = merged.to_dict()
        if trace:
            from repro.mesh.trace import chrome_doc, drain_traced_tracers

            drain_traced_tracers()  # clear any stale registrations first
            os.environ["REPRO_TRACE"] = "1"
            try:
                call()
            finally:
                os.environ.pop("REPRO_TRACE", None)
            tracers = drain_traced_tracers()
            record["trace"] = chrome_doc(tracers)
            record["trace_tree"] = "\n\n".join(t.render() for t in tracers)
            record["trace_collapsed"] = "\n".join(t.collapsed() for t in tracers)
            record["trace_steps"] = sum(t.total_steps for t in tracers)
    finally:
        for name, value in saved_env.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value
    record["peak_rss_kb"] = _peak_rss_kib(
        resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    )
    return record


def _point_worker(conn, bench, point, repeats, warmup, profile, trace) -> None:
    """Spawned-process entry: run one point, ship the record over ``conn``.

    Any Python-level failure is reported as an ``("error", ...)`` message;
    a process that dies without sending (segfault, OOM kill, ``os._exit``)
    is detected by the parent via EOF on the pipe.
    """
    try:
        record = run_point(bench, point, repeats, warmup, profile, trace)
        conn.send(("ok", record))
    except BaseException as exc:  # noqa: BLE001 - the whole point is isolation
        conn.send(
            (
                "error",
                {
                    "error": f"{type(exc).__name__}: {exc}",
                    "traceback": traceback.format_exc(),
                },
            )
        )
    finally:
        conn.close()


# -- parent side -----------------------------------------------------------


@dataclass
class _Job:
    """One sweep point's scheduling state in the resilient pool."""

    index: int
    point: dict
    attempts: int = 0
    not_before: float = 0.0
    process: object = None
    conn: object = None
    deadline: float | None = None
    #: notes accumulated across attempts (retry history)
    notes: list = field(default_factory=list)


def _params_key(params: dict) -> str:
    """Canonical string key for a sweep point's params.

    Numeric values are normalized before hashing: a whole-valued float
    equals its int (``4096.0`` vs ``4096``) — JSON round-trips and YAML
    configs disagree on the spelling, and a raw ``json.dumps`` key made
    ``--resume`` silently re-run every such point.  Bools are left alone
    (``True`` is not ``1`` for keying purposes).
    """

    def norm(value):
        if isinstance(value, bool):
            return value
        if isinstance(value, float) and value.is_integer():
            return int(value)
        return value

    return json.dumps({k: norm(v) for k, v in params.items()}, sort_keys=True)


def error_kind_of(point: dict) -> str:
    """The failure kind of an errored point record.

    New documents carry ``error_kind`` explicitly; older ones are
    classified from the fields they do have (``timed_out`` flags a
    deadline kill, the ``worker crashed`` message a dead process), so
    diffs against pre-``error_kind`` baselines still render the
    distinction.
    """
    kind = point.get("error_kind")
    if kind:
        return str(kind)
    error = str(point.get("error", ""))
    if point.get("timed_out") or error.startswith("timed out"):
        return "timeout"
    if error.startswith("worker crashed"):
        return "crash"
    return "exception"


def _error_record(
    job: "_Job", error: str, tb: str | None = None, kind: str = "exception", **extra
) -> dict:
    """A failed point's record.  ``kind`` distinguishes *how* it failed:

    - ``exception`` — the bench fn raised and the worker reported it;
    - ``crash`` — the worker process died without reporting (segfault,
      OOM kill, ``os._exit``);
    - ``timeout`` — the per-point deadline expired and the runner killed
      the worker.

    The distinction matters for triage (a timeout wants a bigger budget
    or a smaller point; a crash wants a debugger) and is rendered by
    ``report``/``--compare``.
    """
    rec: dict = {
        "params": dict(job.point),
        "error": error,
        "error_kind": kind,
        "traceback": tb,
        "attempts": job.attempts,
    }
    if job.notes:
        rec["notes"] = list(job.notes)
    rec.update(extra)
    return rec


def _write_checkpoint(path: pathlib.Path, config: dict, done: dict) -> None:
    """Atomically persist the completed points (tmp file + rename)."""
    doc = {
        "schema": SCHEMA_VERSION,
        "partial": True,
        "config": config,
        "points": [done[i] for i in sorted(done)],
    }
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(doc, indent=2) + "\n")
    os.replace(tmp, path)


def _load_checkpoint(path: pathlib.Path | None, config: dict) -> dict[str, dict]:
    """Successfully completed records from a prior partial run, by params key.

    Only records carrying real measurements (both ``fast`` and ``slow``
    result dicts) are resumed; errored records — and any malformed record
    missing its results, e.g. from a checkpoint truncated mid-write — are
    dropped so they rerun (with the full ``--retries`` budget).  A
    checkpoint whose recorded config differs from this run's is ignored
    with a warning — its numbers were measured under different settings.
    """
    if path is None or not path.exists():
        return {}
    try:
        doc = json.loads(path.read_text())
    except (json.JSONDecodeError, OSError) as exc:
        print(f"  resume: ignoring unreadable checkpoint {path}: {exc}", flush=True)
        return {}
    if doc.get("config") != config:
        print(
            f"  resume: ignoring checkpoint {path} (config mismatch: "
            f"{doc.get('config')} != {config})",
            flush=True,
        )
        return {}
    return {
        _params_key(r["params"]): r
        for r in doc.get("points", [])
        if "error" not in r
        and isinstance(r.get("fast"), dict)
        and isinstance(r.get("slow"), dict)
    }


def _ensure_child_paths() -> None:
    """Make ``repro`` and the bench modules importable in spawned workers.

    Spawned children rebuild ``sys.path`` from the environment, so a parent
    that found ``repro`` some other way (pytest conftest, editable install)
    must pass the paths down explicitly.
    """
    parts = [str(REPO_ROOT / "src"), str(BENCH_DIR)]
    for part in os.environ.get("PYTHONPATH", "").split(os.pathsep):
        if part and part not in parts:
            parts.append(part)
    os.environ["PYTHONPATH"] = os.pathsep.join(parts)


def run_bench(
    bench: str,
    jobs: int,
    repeats: int = 5,
    warmup: int = 1,
    smoke: bool = False,
    profile: bool = False,
    trace: bool = False,
    timeout: float | None = None,
    retries: int = 1,
    backoff: float = 0.5,
    checkpoint: pathlib.Path | None = None,
    resume: bool = False,
) -> dict:
    """Fan one bench's sweep points across crash-isolated worker processes.

    Each point runs in its own spawned process.  A worker that raises
    reports the exception; one that dies without reporting (segfault, OOM
    kill) is retried up to ``retries`` times with exponential ``backoff``
    before an error record is emitted; one that exceeds ``timeout``
    seconds is terminated and recorded as timed out (no retry — a
    deterministic hang would just hang again).  With ``checkpoint`` set,
    completed points are persisted atomically after every point and
    ``resume=True`` skips points the checkpoint already holds.
    """
    spec = REGISTRY[bench]
    points = spec.points[:1] if smoke else spec.points
    if smoke:
        repeats, warmup = 1, 1
    _ensure_child_paths()
    config = {
        "bench": bench, "repeats": repeats, "warmup": warmup,
        "smoke": smoke, "profile": profile, "trace": trace,
    }
    if checkpoint is not None:
        checkpoint = pathlib.Path(checkpoint)
    done: dict[int, dict] = {}
    prior = _load_checkpoint(checkpoint, config) if resume else {}
    pending: list[_Job] = []
    resumed = 0
    for i, p in enumerate(points):
        rec = prior.get(_params_key(dict(p)))
        if rec is not None:
            done[i] = rec
            resumed += 1
        else:
            pending.append(_Job(index=i, point=p))
    if resumed:
        print(f"  resume: {resumed}/{len(points)} points from {checkpoint}", flush=True)

    started = time.time()
    ctx = get_context("spawn")
    running: dict = {}  # receiving conn -> _Job
    max_workers = max(1, min(jobs, len(points)))

    def finish(job: _Job, record: dict) -> None:
        done[job.index] = record
        if checkpoint is not None:
            _write_checkpoint(checkpoint, config, done)

    def reap(job: _Job, grace: float = 1.0) -> None:
        job.process.terminate()
        job.process.join(grace)
        if job.process.is_alive():
            job.process.kill()
            job.process.join()

    while pending or running:
        now = time.monotonic()
        # launch ready jobs into free slots (skipping backoff holds)
        ready = [j for j in pending if j.not_before <= now]
        for job in ready[: max_workers - len(running)]:
            pending.remove(job)
            recv_conn, send_conn = ctx.Pipe(duplex=False)
            proc = ctx.Process(
                target=_point_worker,
                args=(send_conn, bench, job.point, repeats, warmup, profile, trace),
                daemon=True,
            )
            proc.start()
            send_conn.close()  # child's end; EOF on recv_conn means it died
            job.attempts += 1
            job.process, job.conn = proc, recv_conn
            job.deadline = None if timeout is None else time.monotonic() + timeout
            running[recv_conn] = job
        # wait for a result, a death (EOF), a deadline, or a backoff expiry
        poll = 0.25
        deadlines = [j.deadline for j in running.values() if j.deadline is not None]
        if deadlines:
            poll = min(poll, max(0.01, min(deadlines) - time.monotonic()))
        if pending and len(running) < max_workers:
            holds = [j.not_before for j in pending]
            poll = min(poll, max(0.01, min(holds) - time.monotonic()))
        if running:
            ready_conns = _conn_wait(list(running), timeout=poll)
        else:
            time.sleep(min(poll, 0.05))
            ready_conns = []
        for conn in ready_conns:
            job = running.pop(conn)
            try:
                status, payload = conn.recv()
            except (EOFError, OSError):
                status, payload = None, None
            conn.close()
            job.process.join()
            if status == "ok":
                finish(job, payload)
            elif status == "error":
                finish(
                    job,
                    _error_record(
                        job, payload["error"], payload["traceback"], kind="exception"
                    ),
                )
            else:  # died without reporting: crash — retry with backoff
                code = job.process.exitcode
                crash = f"worker crashed (exit code {code})"
                if job.attempts <= retries:
                    hold = backoff * (2 ** (job.attempts - 1))
                    job.notes.append(f"attempt {job.attempts}: {crash}; retrying")
                    job.not_before = time.monotonic() + hold
                    job.process = job.conn = None
                    pending.append(job)
                    print(
                        f"  {bench} {job.point}: {crash}, retry in {hold:.1f}s",
                        flush=True,
                    )
                else:
                    finish(job, _error_record(job, crash, kind="crash"))
        # enforce per-point deadlines on whoever is still running
        now = time.monotonic()
        for conn, job in list(running.items()):
            if job.deadline is not None and now >= job.deadline:
                running.pop(conn)
                reap(job)
                conn.close()
                finish(
                    job,
                    _error_record(
                        job,
                        f"timed out after {timeout:.1f}s",
                        kind="timeout",
                        timed_out=True,
                    ),
                )

    records = [done[i] for i in sorted(done)]
    doc = {
        "schema": SCHEMA_VERSION,
        "bench": bench,
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "provenance": provenance(),
        "jobs": jobs,
        "repeats": repeats,
        "warmup": warmup,
        "wall_s_total": time.time() - started,
        "points": records,
    }
    n_errors = sum(1 for r in records if "error" in r)
    if n_errors:
        doc["n_errors"] = n_errors
    if resumed:
        doc["resumed_points"] = resumed
    if profile:
        from repro.mesh.profile import CostProfile

        merged = CostProfile().merge(
            *(CostProfile.from_dict(r["profile"]) for r in records if "profile" in r)
        )
        doc["profile"] = merged.to_dict()
    return doc


def compare(doc: dict, baseline: dict, tolerance: float = REGRESSION_TOLERANCE) -> list[str]:
    """Fast-path wall-clock regressions of ``doc`` vs ``baseline`` (>tolerance).

    Errored points — in either document — surface as explicit failures:
    a point that crashed or timed out must never read as a silent pass.
    """
    failures: list[str] = []
    base_by_params = {_params_key(p["params"]): p for p in baseline["points"]}
    for point in doc["points"]:
        key = _params_key(point["params"])
        if "error" in point:
            failures.append(
                f"{doc['bench']} {point['params']}: "
                f"{error_kind_of(point)} — {point['error']}"
            )
            continue
        base = base_by_params.get(key)
        if base is None:
            continue
        if "error" in base:
            failures.append(
                f"{doc['bench']} {point['params']}: baseline point errored "
                f"({error_kind_of(base)} — {base['error']}); no comparison possible"
            )
            continue
        old = base["fast"]["wall_s_min"]
        new = point["fast"]["wall_s_min"]
        if old > 0 and new > old * (1 + tolerance):
            failures.append(
                f"{doc['bench']} {point['params']}: fast wall {new * 1e3:.2f}ms "
                f"vs baseline {old * 1e3:.2f}ms (+{(new / old - 1):.0%} > {tolerance:.0%})"
            )
    return failures


def _render_bench(doc: dict) -> str:
    lines = [f"{doc['bench']}: {len(doc['points'])} points in {doc['wall_s_total']:.1f}s"]
    for point in doc["points"]:
        params = ", ".join(f"{k}={v}" for k, v in point["params"].items())
        if "error" in point:
            lines.append(
                f"  [{params}] ERROR({error_kind_of(point)}) after "
                f"{point.get('attempts', '?')} attempt(s): {point['error']}"
            )
            continue
        steps = point["fast"]["mesh_steps"]
        steps_txt = "-" if steps is None else f"{steps:.0f}"
        eq = point.get("mesh_steps_equal")
        eq_txt = "" if eq is None else ("" if eq else "  STEPS MISMATCH")
        speedup = point.get("speedup")
        speedup_txt = "-" if speedup is None else f"{speedup:.2f}x"
        lines.append(
            f"  [{params}] fast={point['fast']['wall_s_min'] * 1e3:.2f}ms "
            f"slow={point['slow']['wall_s_min'] * 1e3:.2f}ms "
            f"speedup={speedup_txt} steps={steps_txt} "
            f"rss={point['peak_rss_kb'] / 1024:.0f}MB{eq_txt}"
        )
        for warning in point.get("warnings", ()):
            lines.append(f"    WARNING {warning}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.runner", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument("benches", nargs="*", help="bench names (see --list)")
    parser.add_argument("--all", action="store_true", help="run every registered bench")
    parser.add_argument("--list", action="store_true", help="list registered benches")
    parser.add_argument("--jobs", type=int, default=max(1, (os.cpu_count() or 2) - 1))
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--warmup", type=int, default=1)
    parser.add_argument(
        "--smoke", action="store_true",
        help="smallest sweep point only, one repeat (tier-2 sanity check)",
    )
    parser.add_argument(
        "--profile", action="store_true",
        help="also collect a merged per-label mesh-step profile",
    )
    parser.add_argument(
        "--trace", action="store_true",
        help="also record one span-traced pass per point; Chrome trace_event "
        "blobs land next to BENCH_<name>.json as TRACE_<name>__<params>.json "
        "(plus a .txt tree render and a flamegraph .collapsed export)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock limit; exceeded points are terminated "
        "and recorded as errors",
    )
    parser.add_argument(
        "--retries", type=int, default=1,
        help="retry a crashed (not raised, not timed-out) point this many "
        "times before recording the error (default: 1)",
    )
    parser.add_argument(
        "--backoff", type=float, default=0.5, metavar="SECONDS",
        help="base delay before a crash retry, doubled per attempt",
    )
    parser.add_argument(
        "--resume", action="store_true",
        help="skip points already completed in BENCH_<name>.partial.json "
        "(errored points rerun); partial results stream there after every "
        "point regardless",
    )
    parser.add_argument(
        "--out-dir", type=pathlib.Path, default=REPO_ROOT,
        help="directory for BENCH_<name>.json (default: repo root)",
    )
    parser.add_argument(
        "--no-write", action="store_true", help="measure and print, write nothing"
    )
    parser.add_argument(
        "--compare", type=pathlib.Path, default=None, metavar="BASELINE",
        help="baseline BENCH_<name>.json file (or a directory of them); "
        f"exit 1 on a >{REGRESSION_TOLERANCE:.0%} fast-path wall-clock regression",
    )
    parser.add_argument("--tolerance", type=float, default=REGRESSION_TOLERANCE)
    args = parser.parse_args(argv)

    if args.list:
        for name, spec in REGISTRY.items():
            print(f"{name:<16} {spec.module}.{spec.entry}  {len(spec.points)} points")
        return 0
    selected = list(REGISTRY) if args.all else args.benches
    if not selected:
        parser.error("name at least one bench, or pass --all / --list")
    unknown = [b for b in selected if b not in REGISTRY]
    if unknown:
        parser.error(f"unknown bench(es): {', '.join(unknown)} (see --list)")

    failures: list[str] = []
    for bench in selected:
        checkpoint = None
        if not args.no_write:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            checkpoint = args.out_dir / f"BENCH_{bench}.partial.json"
        doc = run_bench(
            bench, jobs=args.jobs, repeats=args.repeats, warmup=args.warmup,
            smoke=args.smoke, profile=args.profile, trace=args.trace,
            timeout=args.timeout, retries=args.retries, backoff=args.backoff,
            checkpoint=checkpoint, resume=args.resume,
        )
        bench_errors = [p for p in doc["points"] if "error" in p]
        for point in bench_errors:
            failures.append(f"{bench} {point['params']}: {point['error']}")
        if args.trace:
            # trace blobs ride back in the point records; peel them off into
            # sidecar files so BENCH_<name>.json stays diff-sized
            for point in doc["points"]:
                blob = point.pop("trace", None)
                tree = point.pop("trace_tree", "")
                folded = point.pop("trace_collapsed", "")
                if blob is None or args.no_write:
                    continue
                args.out_dir.mkdir(parents=True, exist_ok=True)
                pname = "_".join(f"{k}-{v}" for k, v in point["params"].items())
                tpath = args.out_dir / f"TRACE_{bench}__{pname}.json"
                tpath.write_text(json.dumps(blob) + "\n")
                (args.out_dir / f"TRACE_{bench}__{pname}.txt").write_text(tree + "\n")
                (args.out_dir / f"TRACE_{bench}__{pname}.collapsed").write_text(
                    folded + "\n"
                )
                print(f"  wrote {tpath}", flush=True)
        print(_render_bench(doc), flush=True)
        for point in doc["points"]:
            if point.get("mesh_steps_equal") is False:
                failures.append(
                    f"{bench} {point['params']}: fast/slow mesh-step counts differ"
                )
        if args.compare is not None:
            path = args.compare
            if path.is_dir():
                path = path / f"BENCH_{bench}.json"
            if path.exists():
                baseline = json.loads(path.read_text())
                failures += compare(doc, baseline, args.tolerance)
            else:
                failures.append(f"{bench}: baseline {path} not found")
        if not args.no_write and args.compare is None:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            out = args.out_dir / f"BENCH_{bench}.json"
            out.write_text(json.dumps(doc, indent=2) + "\n")
            print(f"  wrote {out}", flush=True)
        if checkpoint is not None and checkpoint.exists():
            if bench_errors:
                # keep the checkpoint so --resume can rerun just the
                # errored points
                print(
                    f"  kept {checkpoint} ({len(bench_errors)} errored "
                    f"point(s); rerun with --resume)",
                    flush=True,
                )
            else:
                checkpoint.unlink()
        if args.profile and "profile" in doc:
            from repro.mesh.profile import CostProfile

            print(CostProfile.from_dict(doc["profile"]).render(), flush=True)

    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
