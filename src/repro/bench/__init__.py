"""Benchmark harness support: workload generators and table reporting."""

from repro.bench.workloads import (
    sphere_points,
    random_intervals,
    random_lines,
    uniform_sites,
)
from repro.bench.reporting import Table

__all__ = [
    "sphere_points",
    "random_intervals",
    "random_lines",
    "uniform_sites",
    "Table",
]
