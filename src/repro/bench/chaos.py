"""Chaos harness: seeded fault injection vs paranoid invariant checking.

Runs the E1/E2 smoke problems, a synthetic primitive pipeline, structure
construction, and the cycle-accurate VM programs (``vm_sort`` /
``vm_route`` / ``vm_scan`` / ``vm_broadcast``, each differential against
its engine primitive — see :mod:`repro.mesh.vm_oracle`) under a matrix of
fault plans (kind x seed), once with paranoid mode on and once off
("bare"), and classifies what happened to every injected fault:

* ``detected:paranoid`` — :class:`repro.mesh.faults.InvariantViolation`
  raised (a primitive-boundary check or a phase-boundary validator fired);
* ``detected:validator`` — an always-on assertion outside paranoid mode
  caught it;
* ``crash`` — the corruption surfaced as an ordinary exception (loud,
  but not a diagnosis);
* ``silent_corruption`` — the run completed with outputs differing from
  the clean run's fingerprint (the failure mode paranoid mode exists to
  prevent);
* ``no_effect`` — the run completed byte-identical despite the
  injection (e.g. the perturbed value was never read);
* ``no_opportunity`` — the scenario never presented the plan's fault
  kind (nothing was injected; excluded from the detection gate).

The report is a pure function of the seed matrix: identical seeds give
identical injection logs and identical classifications.  The CLI exits 1
when a paranoid-mode cell with an injected fault went undetected
(``silent_corruption`` / ``no_effect``) and is not documented in the
committed blind-spot baseline (``FAULTS_baseline.json``)::

    python -m repro.bench.chaos --seeds 1 2 3 --baseline FAULTS_baseline.json
    python -m repro.bench.chaos --seeds 1 2 3 --write-baseline FAULTS_baseline.json

**Process suite** (``--suite process``): the supervised serving layer
(:mod:`repro.serve.pool`) under the ``worker_*`` process-fault kinds —
crash, hang, slow, corrupt reply — injected *inside worker processes*.
Recovery is a success here, so the suite has its own outcome taxonomy:

* ``recovered`` — every query answered byte-identical to the direct
  single-process batch, despite injected faults;
* ``detected`` — some queries failed with *typed* serving errors
  (retries exhausted / pool quarantined), every answered query correct,
  cache clean: the failure was contained and reported, not hidden;
* ``silent_corruption`` — an answered query differed from the direct
  run (the outcome supervision exists to prevent);
* ``cache_pollution`` — the result cache holds a wrong answer;
* ``unresolved`` — an accepted query's future never resolved
  (exactly-once violated);
* ``no_opportunity`` — no evidence the fault ever manifested.

Gated against ``process_blind_spots`` in the same baseline file::

    python -m repro.bench.chaos --suite process --seeds 1 2 3 \\
        --baseline FAULTS_baseline.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys

import numpy as np

from repro.mesh.engine import MeshEngine
from repro.mesh.faults import (
    ADVERSARIAL_KINDS,
    FAULT_KINDS,
    PROCESS_FAULT_KINDS,
    VM_FAULT_KINDS,
    XCHIP_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InvariantViolation,
    apply_adversarial,
)

__all__ = [
    "SCENARIOS",
    "SCENARIO_KINDS",
    "run_cell",
    "run_matrix",
    "run_process_cell",
    "run_process_matrix",
    "gate",
    "gate_process",
    "main",
]

SCHEMA_VERSION = 1
#: default seeds of the nightly chaos matrix
DEFAULT_SEEDS = (1, 2, 3)


def _fingerprint(*parts) -> str:
    """Order-sensitive digest of arrays/scalars (run-output identity)."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            h.update(np.ascontiguousarray(part).tobytes())
        else:
            h.update(repr(part).encode())
        h.update(b"|")
    return h.hexdigest()[:16]


# -- scenarios -------------------------------------------------------------
#
# Each scenario builds its problem deterministically, runs it to
# completion, and returns an output fingerprint.  ``injector=None`` with
# ``paranoid=False`` is the clean reference run.


def _scenario_e1(paranoid: bool, injector: FaultInjector | None) -> str:
    """E1 smoke: hierarchical-DAG multisearch (adversarial-input surface)."""
    from repro.core.hierdag import hierdag_multisearch
    from repro.core.model import QuerySet
    from repro.graphs.adapters import hierdag_search_structure
    from repro.graphs.hierarchical import build_mu_ary_search_dag

    dag, leaf_keys = build_mu_ary_search_dag(2, 8, seed=1)
    st = hierdag_search_structure(dag)
    rng = np.random.default_rng(2)
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], 256)
    eng = MeshEngine.for_problem(max(int(dag.size), 256), paranoid=paranoid)
    qs = QuerySet.start(keys, 0)
    if injector is not None:
        injector.install(eng)
        apply_adversarial(injector, st, qs)
    res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
    return _fingerprint(qs.current, qs.steps, res.mesh_steps)


def _scenario_e2(paranoid: bool, injector: FaultInjector | None) -> str:
    """E2 smoke: Constrained-Multisearch (sort/rar/scan primitive surface)."""
    from repro.core.constrained import constrained_multisearch
    from repro.core.model import QuerySet
    from repro.core.splitters import splitting_from_labels
    from repro.graphs.adapters import ktree_directed_structure
    from repro.graphs.ktree import build_balanced_search_tree

    t = build_balanced_search_tree(2, 8, seed=1)
    st = ktree_directed_structure(t)
    sp = splitting_from_labels(t.alpha_splitter().comp, t.children, 0.5)
    rng = np.random.default_rng(3)
    keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 256)
    eng = MeshEngine.for_problem(max(int(t.size), 256), paranoid=paranoid)
    qs = QuerySet.start(keys, np.zeros(256, dtype=np.int64))
    if injector is not None:
        injector.install(eng)
        apply_adversarial(injector, st, qs)
    constrained_multisearch(eng, st, qs, sp)
    return _fingerprint(qs.current, qs.steps, eng.clock.time)


def _scenario_primitives(paranoid: bool, injector: FaultInjector | None) -> str:
    """Synthetic pipeline over the primitives E1/E2 don't exercise:
    ``sort_by`` -> ``route`` -> ``rar`` -> inter-region ``transfer``."""
    eng = MeshEngine.for_problem(64, paranoid=paranoid)
    if injector is not None:
        injector.install(eng)
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 1000, 64).astype(np.int64)
    r = eng.root
    (srt,) = r.sort_by(keys, label="chaos:sort")
    perm = rng.permutation(64)
    (routed,) = r.route(perm, srt, label="chaos:route")
    addr = rng.integers(0, 64, 64)
    (vals,) = r.rar(addr, routed, label="chaos:rar")
    half = r.spec.rows // 2
    top = r.subregion(0, 0, half, r.spec.cols)
    bot = r.subregion(half, 0, r.spec.rows - half, r.spec.cols)
    (moved,) = eng.transfer(top, bot, routed[:16], label="chaos:xfer")
    return _fingerprint(srt, routed, vals, moved, eng.clock.time)


def _scenario_construct(paranoid: bool, injector: FaultInjector | None) -> str:
    """Structure construction: the ``construct:*`` charge sites.

    Builds a small Kirkpatrick hierarchy through
    :class:`~repro.mesh.construct.Construction`, so the sort / scan /
    route / independent-set charges of the build pipeline are the fault
    surface.  The tied-key permutation swap lives here too: the
    independent-set degree sort is almost all ties, which is exactly the
    case the ``sort:stable`` invariant closes.
    """
    from repro.geometry.kirkpatrick import build_kirkpatrick, kirkpatrick_structure
    from repro.mesh.construct import Construction

    rng = np.random.default_rng(7)
    pts = rng.uniform(0.0, 1.0, (48, 2))
    construct = Construction(48 + 3, paranoid=paranoid)
    if injector is not None:
        injector.install(construct.engine)
    hier = build_kirkpatrick(pts, seed=3, construct=construct)
    st, mu = kirkpatrick_structure(hier, construct=construct)
    return _fingerprint(
        *(lv.triangles for lv in hier.levels),
        st.adjacency, st.level, mu, construct.clock.time,
    )


def _scenario_vm(program: str, seed: int):
    """A ``vm_*`` scenario: one VM program vs its engine oracle.

    ``paranoid`` maps onto the VM chaos layer's checks (the step-level
    integrity boundary plus the program's phase checks), so an injected
    ``vm_*`` fault raises :class:`InvariantViolation` exactly like an
    engine-primitive fault under engine paranoid mode.  The fingerprint
    folds in the differential verdict against the engine primitive, so a
    bare-mode fault that changes the answer is classified
    ``silent_corruption`` even if the VM run itself completes quietly.
    """
    from repro.mesh import vm_oracle

    def scenario(paranoid: bool, injector: FaultInjector | None) -> str:
        inputs = vm_oracle.make_inputs(program, 8, 8, seed=seed)
        ref = vm_oracle.engine_reference(inputs)
        out, steps = vm_oracle.vm_run(inputs, injector=injector, check=paranoid)
        match = vm_oracle.compare(program, out, ref)
        return _fingerprint(*(np.asarray(a) for a in out), steps, match)

    scenario.__name__ = f"_scenario_vm_{program}"
    return scenario


def _scenario_xchip(paranoid: bool, injector: FaultInjector | None) -> str:
    """Sharded multi-chip mesh: the off-chip exchange fault surface.

    A :class:`~repro.mesh.shard.ShardedRecordSet` over a 2x2 chip grid
    runs the decomposed sort -> scan -> route pipeline; ``xchip_drop`` /
    ``xchip_corrupt`` plans fire on the inter-chip exchanges, and the
    paranoid merge-point checks (count + key-multiset conservation,
    merged sortedness) are what stands between an off-chip fault and a
    silently wrong global order.
    """
    from repro.mesh.shard import MultiChipMesh, ShardedMeshEngine, ShardedRecordSet

    mesh = MultiChipMesh.square(2, 4)
    eng = ShardedMeshEngine(mesh, paranoid=paranoid)
    if injector is not None:
        injector.install(eng)
    rng = np.random.default_rng(23)
    n = 96
    columns = {
        "key": rng.integers(0, 40, n),
        "payload": rng.standard_normal(n),
        "dest": rng.permutation(n).astype(np.int64),
    }
    with ShardedRecordSet(columns, mesh, engine=eng) as rs:
        rs.sort_by("key")
        scanned = rs.scan("key")
        rs.route("dest")
        out = rs.gather()
    return _fingerprint(out["key"], out["payload"], scanned, eng.clock.time)


SCENARIOS = {
    "e1_smoke": _scenario_e1,
    "e2_smoke": _scenario_e2,
    "primitives": _scenario_primitives,
    "construct": _scenario_construct,
    "xchip": _scenario_xchip,
    "vm_sort": _scenario_vm("sort", seed=11),
    "vm_route": _scenario_vm("route", seed=13),
    "vm_scan": _scenario_vm("scan", seed=17),
    "vm_broadcast": _scenario_vm("broadcast", seed=19),
}

ALL_KINDS = FAULT_KINDS + ADVERSARIAL_KINDS + VM_FAULT_KINDS + XCHIP_FAULT_KINDS

#: each scenario's fault surface: engine scenarios never open a VM, and
#: the VM scenarios never cross an engine primitive with an injector
#: installed, so running the complementary kinds would only produce
#: ``no_opportunity`` cells (and, for the heavyweight multisearch
#: scenarios, burn nightly minutes doing it)
SCENARIO_KINDS = {
    "e1_smoke": FAULT_KINDS + ADVERSARIAL_KINDS,
    "e2_smoke": FAULT_KINDS + ADVERSARIAL_KINDS,
    "primitives": FAULT_KINDS + ADVERSARIAL_KINDS,
    "construct": FAULT_KINDS + ADVERSARIAL_KINDS,
    "xchip": XCHIP_FAULT_KINDS,
    "vm_sort": VM_FAULT_KINDS,
    "vm_route": VM_FAULT_KINDS,
    "vm_scan": VM_FAULT_KINDS,
    "vm_broadcast": VM_FAULT_KINDS,
}


# -- one cell --------------------------------------------------------------


def run_cell(scenario: str, kind: str, seed: int, paranoid: bool, clean: str) -> dict:
    """Run one (scenario, kind, seed, mode) cell and classify the outcome."""
    fn = SCENARIOS[scenario]
    injector = FaultInjector(FaultPlan(seed=seed, kind=kind))
    error = None
    try:
        fp = fn(paranoid, injector)
        if not injector.injected:
            outcome = "no_opportunity"
        elif fp == clean:
            outcome = "no_effect"
        else:
            outcome = "silent_corruption"
    except InvariantViolation as exc:
        outcome = "detected:paranoid"
        error = exc.to_dict()
    except AssertionError as exc:
        outcome = "detected:validator"
        error = {"detail": str(exc)}
    except Exception as exc:  # noqa: BLE001 - classification, not handling
        outcome = "crash"
        error = {"type": type(exc).__name__, "detail": str(exc)}
    cell = {
        "scenario": scenario,
        "kind": kind,
        "seed": seed,
        "mode": "paranoid" if paranoid else "bare",
        "outcome": outcome,
        "injected": injector.log(),
        "opportunities": int(injector.opportunities.get(kind, 0)),
    }
    if error is not None:
        cell["error"] = error
    return cell


def run_matrix(seeds, scenarios=None, kinds=None) -> dict:
    """The full deterministic chaos report (no timestamps: diffable)."""
    scenarios = list(scenarios or SCENARIOS)
    kinds = list(kinds or ALL_KINDS)
    clean = {name: SCENARIOS[name](False, None) for name in scenarios}
    results = []
    for scenario in scenarios:
        surface = SCENARIO_KINDS.get(scenario, ALL_KINDS)
        for kind in (k for k in kinds if k in surface):
            for seed in seeds:
                for paranoid in (True, False):
                    results.append(
                        run_cell(scenario, kind, seed, paranoid, clean[scenario])
                    )
    summary: dict[str, dict[str, int]] = {"paranoid": {}, "bare": {}}
    injected_cells = {"paranoid": 0, "bare": 0}
    detected_cells = {"paranoid": 0, "bare": 0}
    for cell in results:
        mode = cell["mode"]
        summary[mode][cell["outcome"]] = summary[mode].get(cell["outcome"], 0) + 1
        if cell["injected"] or cell["outcome"].startswith("detected"):
            injected_cells[mode] += 1
            if cell["outcome"].startswith("detected"):
                detected_cells[mode] += 1
    rates = {
        mode: (detected_cells[mode] / injected_cells[mode] if injected_cells[mode] else None)
        for mode in ("paranoid", "bare")
    }
    return {
        "schema": SCHEMA_VERSION,
        "seeds": list(seeds),
        "scenarios": scenarios,
        "kinds": kinds,
        "results": results,
        "summary": summary,
        "detection_rate": rates,
    }


def _blind_key(cell: dict) -> str:
    return f"{cell['mode']}:{cell['scenario']}:{cell['kind']}"


def gate(report: dict, baseline: dict | None) -> list[str]:
    """Undetected paranoid-mode injections not documented as blind spots.

    A paranoid cell whose fault was injected but neither detected nor
    crashed must appear in the baseline's ``blind_spots`` map, else it is
    a gate failure (the chaos CI job exits 1).
    """
    known = (baseline or {}).get("blind_spots", {})
    failures = []
    for cell in report["results"]:
        if cell["mode"] != "paranoid" or not cell["injected"]:
            continue
        if cell["outcome"] in ("silent_corruption", "no_effect"):
            key = _blind_key(cell)
            if key not in known:
                failures.append(
                    f"{key} seed={cell['seed']}: injected fault went "
                    f"{cell['outcome']} and is not in the blind-spot baseline"
                )
    return failures


def blind_spots(report: dict) -> dict[str, str]:
    """The report's undetected paranoid cells, as a baseline fragment."""
    spots: dict[str, str] = {}
    for cell in report["results"]:
        if (
            cell["mode"] == "paranoid"
            and cell["injected"]
            and cell["outcome"] in ("silent_corruption", "no_effect")
        ):
            spots.setdefault(
                _blind_key(cell),
                f"{cell['outcome']} (first seen seed={cell['seed']})",
            )
    return spots


# -- process suite: the supervised serving layer under worker faults --------
#
# Per-kind pool tuning: rates below 1.0 leave the retry path a healthy
# worker to land on (a rate-1.0 plan re-arms on every restarted worker,
# so recovery is impossible by construction and the only correct outcome
# is a typed failure — that is the engine-suite's job, not this one's).
_PROCESS_TUNING = {
    "worker_crash": dict(rate=0.5),
    "worker_hang": dict(rate=0.4),
    "worker_slow": dict(rate=0.5),
    "worker_corrupt_reply": dict(rate=0.7),
}

#: pool stats that evidence each kind actually manifested in a worker
#: (the injector's own log lives in the worker process and dies with it;
#: the supervisor's counters are the observable truth)
_PROCESS_EVIDENCE = {
    "worker_crash": ("crashes",),
    "worker_hang": ("hangs", "timeouts"),
    "worker_slow": ("hedges", "timeouts"),
    "worker_corrupt_reply": ("corrupt_replies",),
}


def _process_snapshot(tmpdir: pathlib.Path) -> tuple[pathlib.Path, np.ndarray, list]:
    """One small pointloc snapshot + its direct (fault-free) answers."""
    from repro.serve.service import restore_service
    from repro.serve.snapshot import read_snapshot, snapshot_pointloc

    rng = np.random.default_rng(1331)
    sites = rng.standard_normal((48, 2))
    path = tmpdir / "chaos_pointloc.npz"
    snapshot_pointloc(path, sites, seed=0)
    service = restore_service(read_snapshot(path))
    queries = rng.standard_normal((16, 2))
    direct, _ = service.run_batch(queries)
    return path, queries, list(direct)


def run_process_cell(
    kind: str,
    seed: int,
    snapshot_path,
    queries: np.ndarray,
    direct: list,
    wait_s: float = 60.0,
) -> dict:
    """One (kind, seed) cell of the process-fault suite.

    Spawns a 2-worker supervised pool with the kind's fault plan, pushes
    every query through, and classifies on the invariants the supervisor
    promises: exactly-once resolution, byte-identical answers, typed
    errors only, a clean cache.
    """
    import asyncio

    from repro.serve import ResultCache, ServingError, SupervisedServer, WorkerPool
    from repro.serve.cache import query_cache_key

    plan = FaultPlan(
        seed=seed, kind=kind, max_faults=None, **_PROCESS_TUNING[kind]
    )
    pool = WorkerPool(
        snapshot_path,
        workers=2,
        batch_deadline_s=2.5,
        heartbeat_s=0.1,
        heartbeat_timeout_s=1.0,
        max_retries=6,
        backoff_s=0.02,
        hedge_s=0.15,
        restart_backoff_s=0.05,
        breaker_threshold=8,
        fault_plans=[plan],
        slow_s=0.6,
    )
    cache = ResultCache()
    outcomes: list = []
    unresolved = False

    async def drive():
        nonlocal unresolved
        server = SupervisedServer(pool, batch_size=4, deadline_s=0.01, cache=cache)
        tasks = [asyncio.ensure_future(server.submit(q)) for q in queries]
        done, pending = await asyncio.wait(tasks, timeout=wait_s)
        unresolved = bool(pending)
        for task in pending:
            task.cancel()
        for task in tasks:
            if task in pending:
                outcomes.append(("unresolved", None))
            elif task.exception() is not None:
                outcomes.append(("error", task.exception()))
            else:
                outcomes.append(("ok", task.result()))
        await server.close(close_pool=True)

    try:
        asyncio.run(drive())
    finally:
        pool.close(timeout=1.0)

    wrong = sum(
        1
        for (tag, value), want in zip(outcomes, direct)
        if tag == "ok" and not np.array_equal(value, want)
    )
    typed_errors = sum(
        1 for tag, value in outcomes if tag == "error" and isinstance(value, ServingError)
    )
    untyped_errors = sum(
        1
        for tag, value in outcomes
        if tag == "error" and not isinstance(value, ServingError)
    )
    snapshot_id = pool.snapshot_id
    polluted = 0
    for q, want in zip(queries, direct):
        found, got = cache.get(query_cache_key(snapshot_id, q))
        if found and not np.array_equal(got, want):
            polluted += 1
    evidence = sum(
        int(pool.stats.get(stat, 0)) for stat in _PROCESS_EVIDENCE[kind]
    )

    if wrong:
        outcome = "silent_corruption"
    elif polluted:
        outcome = "cache_pollution"
    elif unresolved:
        outcome = "unresolved"
    elif untyped_errors:
        outcome = "crash"
    elif evidence == 0:
        outcome = "no_opportunity"
    elif typed_errors:
        outcome = "detected"
    else:
        outcome = "recovered"
    return {
        "scenario": "serve_pool",
        "kind": kind,
        "seed": seed,
        "mode": "supervised",
        "outcome": outcome,
        "wrong_answers": wrong,
        "typed_errors": typed_errors,
        "untyped_errors": untyped_errors,
        "cache_polluted": polluted,
        "evidence": evidence,
        "pool_stats": {
            k: v
            for k, v in pool.stats.items()
            if isinstance(v, (int, float)) and v
        },
    }


def run_process_matrix(seeds, kinds=None, tmpdir=None) -> dict:
    """The process-fault suite over ``kinds`` x ``seeds``.

    Worker scheduling is nondeterministic, so unlike the engine matrix
    the *evidence counts* vary run to run — but the classification rests
    on invariants (exactly-once, byte-identity, typed-only, cache-clean)
    that must hold under any interleaving.
    """
    import tempfile

    kinds = list(kinds or PROCESS_FAULT_KINDS)
    bad = [k for k in kinds if k not in PROCESS_FAULT_KINDS]
    if bad:
        raise ValueError(f"not process fault kinds: {bad}")
    owned = None
    if tmpdir is None:
        owned = tempfile.TemporaryDirectory(prefix="repro-chaos-")
        tmpdir = owned.name
    try:
        path, queries, direct = _process_snapshot(pathlib.Path(tmpdir))
        results = [
            run_process_cell(kind, seed, path, queries, direct)
            for kind in kinds
            for seed in seeds
        ]
    finally:
        if owned is not None:
            owned.cleanup()
    summary: dict[str, int] = {}
    for cell in results:
        summary[cell["outcome"]] = summary.get(cell["outcome"], 0) + 1
    handled = sum(
        1 for c in results if c["outcome"] in ("recovered", "detected")
    )
    with_evidence = sum(1 for c in results if c["outcome"] != "no_opportunity")
    return {
        "schema": SCHEMA_VERSION,
        "suite": "process",
        "seeds": list(seeds),
        "kinds": kinds,
        "results": results,
        "summary": summary,
        "handled_rate": (handled / with_evidence) if with_evidence else None,
    }


def gate_process(report: dict, baseline: dict | None) -> list[str]:
    """Process-suite cells that broke a supervision invariant.

    Anything other than ``recovered`` / ``detected`` /
    ``no_opportunity`` must be documented in the baseline's
    ``process_blind_spots`` map, else the chaos job exits 1.
    """
    known = (baseline or {}).get("process_blind_spots", {})
    failures = []
    for cell in report["results"]:
        if cell["outcome"] in ("recovered", "detected", "no_opportunity"):
            continue
        key = f"{cell['mode']}:{cell['scenario']}:{cell['kind']}"
        if key not in known:
            failures.append(
                f"{key} seed={cell['seed']}: {cell['outcome']} "
                f"(wrong={cell['wrong_answers']} "
                f"polluted={cell['cache_polluted']} "
                f"untyped={cell['untyped_errors']}) — not in the "
                "process blind-spot baseline"
            )
    return failures


def process_blind_spots(report: dict) -> dict[str, str]:
    """The process report's invariant breaks, as a baseline fragment."""
    spots: dict[str, str] = {}
    for cell in report["results"]:
        if cell["outcome"] not in ("recovered", "detected", "no_opportunity"):
            spots.setdefault(
                f"{cell['mode']}:{cell['scenario']}:{cell['kind']}",
                f"{cell['outcome']} (first seen seed={cell['seed']})",
            )
    return spots


def _render_process(report: dict) -> str:
    lines = ["process chaos matrix (supervised serving):"]
    for cell in report["results"]:
        stats = cell["pool_stats"]
        interesting = {
            k: stats[k]
            for k in ("retries", "hedges", "crashes", "hangs", "timeouts",
                      "corrupt_replies", "restarts", "quarantined")
            if k in stats
        }
        lines.append(
            f"  {cell['kind']:<22} seed={cell['seed']} -> {cell['outcome']}"
            + (f"  {interesting}" if interesting else "")
        )
    rate = report["handled_rate"]
    rate_txt = "n/a" if rate is None else f"{rate:.0%}"
    lines.append(f"summary: {report['summary']}  handled={rate_txt}")
    return "\n".join(lines)


def _render(report: dict) -> str:
    lines = ["chaos matrix:"]
    for cell in report["results"]:
        inj = len(cell["injected"])
        lines.append(
            f"  {cell['mode']:<8} {cell['scenario']:<12} "
            f"{cell['kind']:<24} seed={cell['seed']} -> {cell['outcome']}"
            + (f" ({inj} injected)" if inj else "")
        )
    for mode in ("paranoid", "bare"):
        rate = report["detection_rate"][mode]
        rate_txt = "n/a" if rate is None else f"{rate:.0%}"
        lines.append(f"{mode}: {report['summary'][mode]}  detection={rate_txt}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.chaos", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS))
    parser.add_argument(
        "--scenarios", nargs="+", choices=sorted(SCENARIOS), default=None
    )
    parser.add_argument(
        "--suite", choices=("engine", "process", "all"), default="engine",
        help="engine: the in-process fault matrix (default); process: the "
        "supervised serving layer under worker_* faults; all: both",
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the full JSON report here",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="blind-spot baseline (FAULTS_baseline.json); undetected "
        "paranoid-mode injections not listed there exit 1",
    )
    parser.add_argument(
        "--write-baseline", type=pathlib.Path, default=None, metavar="PATH",
        help="record this run's blind spots to PATH and exit 0",
    )
    args = parser.parse_args(argv)

    engine_report = process_report = None
    if args.suite in ("engine", "all"):
        engine_report = run_matrix(args.seeds, scenarios=args.scenarios)
        print(_render(engine_report), flush=True)
    if args.suite in ("process", "all"):
        process_report = run_process_matrix(args.seeds)
        print(_render_process(process_report), flush=True)
    if args.out is not None:
        if engine_report is not None and process_report is not None:
            doc = dict(engine_report)
            doc["process"] = process_report
        else:
            doc = engine_report if engine_report is not None else process_report
        args.out.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.out}", flush=True)
    if args.write_baseline is not None:
        # merge into an existing baseline so the engine and process
        # suites can maintain their halves independently
        doc = {"schema": SCHEMA_VERSION, "blind_spots": {}, "covers": {}}
        if args.write_baseline.exists():
            doc.update(json.loads(args.write_baseline.read_text()))
        if engine_report is not None:
            doc["blind_spots"] = blind_spots(engine_report)
            # informational: the scenario/kind universe this baseline's
            # empty-or-not blind-spot list was established over
            doc["covers"] = {
                "scenarios": engine_report["scenarios"],
                "kinds": engine_report["kinds"],
            }
        if process_report is not None:
            doc["process_blind_spots"] = process_blind_spots(process_report)
            doc["process_covers"] = {
                "scenarios": ["serve_pool"],
                "kinds": process_report["kinds"],
            }
        args.write_baseline.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.write_baseline}", flush=True)
        return 0
    baseline = None
    if args.baseline is not None and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
    failures = []
    if engine_report is not None:
        failures.extend(gate(engine_report, baseline))
    if process_report is not None:
        failures.extend(gate_process(process_report, baseline))
    if failures:
        print("\nUNDOCUMENTED BLIND SPOTS:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
