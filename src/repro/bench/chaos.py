"""Chaos harness: seeded fault injection vs paranoid invariant checking.

Runs the E1/E2 smoke problems, a synthetic primitive pipeline, structure
construction, and the cycle-accurate VM programs (``vm_sort`` /
``vm_route`` / ``vm_scan`` / ``vm_broadcast``, each differential against
its engine primitive — see :mod:`repro.mesh.vm_oracle`) under a matrix of
fault plans (kind x seed), once with paranoid mode on and once off
("bare"), and classifies what happened to every injected fault:

* ``detected:paranoid`` — :class:`repro.mesh.faults.InvariantViolation`
  raised (a primitive-boundary check or a phase-boundary validator fired);
* ``detected:validator`` — an always-on assertion outside paranoid mode
  caught it;
* ``crash`` — the corruption surfaced as an ordinary exception (loud,
  but not a diagnosis);
* ``silent_corruption`` — the run completed with outputs differing from
  the clean run's fingerprint (the failure mode paranoid mode exists to
  prevent);
* ``no_effect`` — the run completed byte-identical despite the
  injection (e.g. the perturbed value was never read);
* ``no_opportunity`` — the scenario never presented the plan's fault
  kind (nothing was injected; excluded from the detection gate).

The report is a pure function of the seed matrix: identical seeds give
identical injection logs and identical classifications.  The CLI exits 1
when a paranoid-mode cell with an injected fault went undetected
(``silent_corruption`` / ``no_effect``) and is not documented in the
committed blind-spot baseline (``FAULTS_baseline.json``)::

    python -m repro.bench.chaos --seeds 1 2 3 --baseline FAULTS_baseline.json
    python -m repro.bench.chaos --seeds 1 2 3 --write-baseline FAULTS_baseline.json
"""

from __future__ import annotations

import argparse
import hashlib
import json
import pathlib
import sys

import numpy as np

from repro.mesh.engine import MeshEngine
from repro.mesh.faults import (
    ADVERSARIAL_KINDS,
    FAULT_KINDS,
    VM_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InvariantViolation,
    apply_adversarial,
)

__all__ = [
    "SCENARIOS",
    "SCENARIO_KINDS",
    "run_cell",
    "run_matrix",
    "gate",
    "main",
]

SCHEMA_VERSION = 1
#: default seeds of the nightly chaos matrix
DEFAULT_SEEDS = (1, 2, 3)


def _fingerprint(*parts) -> str:
    """Order-sensitive digest of arrays/scalars (run-output identity)."""
    h = hashlib.sha256()
    for part in parts:
        if isinstance(part, np.ndarray):
            h.update(np.ascontiguousarray(part).tobytes())
        else:
            h.update(repr(part).encode())
        h.update(b"|")
    return h.hexdigest()[:16]


# -- scenarios -------------------------------------------------------------
#
# Each scenario builds its problem deterministically, runs it to
# completion, and returns an output fingerprint.  ``injector=None`` with
# ``paranoid=False`` is the clean reference run.


def _scenario_e1(paranoid: bool, injector: FaultInjector | None) -> str:
    """E1 smoke: hierarchical-DAG multisearch (adversarial-input surface)."""
    from repro.core.hierdag import hierdag_multisearch
    from repro.core.model import QuerySet
    from repro.graphs.adapters import hierdag_search_structure
    from repro.graphs.hierarchical import build_mu_ary_search_dag

    dag, leaf_keys = build_mu_ary_search_dag(2, 8, seed=1)
    st = hierdag_search_structure(dag)
    rng = np.random.default_rng(2)
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], 256)
    eng = MeshEngine.for_problem(max(int(dag.size), 256), paranoid=paranoid)
    qs = QuerySet.start(keys, 0)
    if injector is not None:
        injector.install(eng)
        apply_adversarial(injector, st, qs)
    res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
    return _fingerprint(qs.current, qs.steps, res.mesh_steps)


def _scenario_e2(paranoid: bool, injector: FaultInjector | None) -> str:
    """E2 smoke: Constrained-Multisearch (sort/rar/scan primitive surface)."""
    from repro.core.constrained import constrained_multisearch
    from repro.core.model import QuerySet
    from repro.core.splitters import splitting_from_labels
    from repro.graphs.adapters import ktree_directed_structure
    from repro.graphs.ktree import build_balanced_search_tree

    t = build_balanced_search_tree(2, 8, seed=1)
    st = ktree_directed_structure(t)
    sp = splitting_from_labels(t.alpha_splitter().comp, t.children, 0.5)
    rng = np.random.default_rng(3)
    keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 256)
    eng = MeshEngine.for_problem(max(int(t.size), 256), paranoid=paranoid)
    qs = QuerySet.start(keys, np.zeros(256, dtype=np.int64))
    if injector is not None:
        injector.install(eng)
        apply_adversarial(injector, st, qs)
    constrained_multisearch(eng, st, qs, sp)
    return _fingerprint(qs.current, qs.steps, eng.clock.time)


def _scenario_primitives(paranoid: bool, injector: FaultInjector | None) -> str:
    """Synthetic pipeline over the primitives E1/E2 don't exercise:
    ``sort_by`` -> ``route`` -> ``rar`` -> inter-region ``transfer``."""
    eng = MeshEngine.for_problem(64, paranoid=paranoid)
    if injector is not None:
        injector.install(eng)
    rng = np.random.default_rng(5)
    keys = rng.integers(0, 1000, 64).astype(np.int64)
    r = eng.root
    (srt,) = r.sort_by(keys, label="chaos:sort")
    perm = rng.permutation(64)
    (routed,) = r.route(perm, srt, label="chaos:route")
    addr = rng.integers(0, 64, 64)
    (vals,) = r.rar(addr, routed, label="chaos:rar")
    half = r.spec.rows // 2
    top = r.subregion(0, 0, half, r.spec.cols)
    bot = r.subregion(half, 0, r.spec.rows - half, r.spec.cols)
    (moved,) = eng.transfer(top, bot, routed[:16], label="chaos:xfer")
    return _fingerprint(srt, routed, vals, moved, eng.clock.time)


def _scenario_construct(paranoid: bool, injector: FaultInjector | None) -> str:
    """Structure construction: the ``construct:*`` charge sites.

    Builds a small Kirkpatrick hierarchy through
    :class:`~repro.mesh.construct.Construction`, so the sort / scan /
    route / independent-set charges of the build pipeline are the fault
    surface.  The tied-key permutation swap lives here too: the
    independent-set degree sort is almost all ties, which is exactly the
    case the ``sort:stable`` invariant closes.
    """
    from repro.geometry.kirkpatrick import build_kirkpatrick, kirkpatrick_structure
    from repro.mesh.construct import Construction

    rng = np.random.default_rng(7)
    pts = rng.uniform(0.0, 1.0, (48, 2))
    construct = Construction(48 + 3, paranoid=paranoid)
    if injector is not None:
        injector.install(construct.engine)
    hier = build_kirkpatrick(pts, seed=3, construct=construct)
    st, mu = kirkpatrick_structure(hier, construct=construct)
    return _fingerprint(
        *(lv.triangles for lv in hier.levels),
        st.adjacency, st.level, mu, construct.clock.time,
    )


def _scenario_vm(program: str, seed: int):
    """A ``vm_*`` scenario: one VM program vs its engine oracle.

    ``paranoid`` maps onto the VM chaos layer's checks (the step-level
    integrity boundary plus the program's phase checks), so an injected
    ``vm_*`` fault raises :class:`InvariantViolation` exactly like an
    engine-primitive fault under engine paranoid mode.  The fingerprint
    folds in the differential verdict against the engine primitive, so a
    bare-mode fault that changes the answer is classified
    ``silent_corruption`` even if the VM run itself completes quietly.
    """
    from repro.mesh import vm_oracle

    def scenario(paranoid: bool, injector: FaultInjector | None) -> str:
        inputs = vm_oracle.make_inputs(program, 8, 8, seed=seed)
        ref = vm_oracle.engine_reference(inputs)
        out, steps = vm_oracle.vm_run(inputs, injector=injector, check=paranoid)
        match = vm_oracle.compare(program, out, ref)
        return _fingerprint(*(np.asarray(a) for a in out), steps, match)

    scenario.__name__ = f"_scenario_vm_{program}"
    return scenario


SCENARIOS = {
    "e1_smoke": _scenario_e1,
    "e2_smoke": _scenario_e2,
    "primitives": _scenario_primitives,
    "construct": _scenario_construct,
    "vm_sort": _scenario_vm("sort", seed=11),
    "vm_route": _scenario_vm("route", seed=13),
    "vm_scan": _scenario_vm("scan", seed=17),
    "vm_broadcast": _scenario_vm("broadcast", seed=19),
}

ALL_KINDS = FAULT_KINDS + ADVERSARIAL_KINDS + VM_FAULT_KINDS

#: each scenario's fault surface: engine scenarios never open a VM, and
#: the VM scenarios never cross an engine primitive with an injector
#: installed, so running the complementary kinds would only produce
#: ``no_opportunity`` cells (and, for the heavyweight multisearch
#: scenarios, burn nightly minutes doing it)
SCENARIO_KINDS = {
    "e1_smoke": FAULT_KINDS + ADVERSARIAL_KINDS,
    "e2_smoke": FAULT_KINDS + ADVERSARIAL_KINDS,
    "primitives": FAULT_KINDS + ADVERSARIAL_KINDS,
    "construct": FAULT_KINDS + ADVERSARIAL_KINDS,
    "vm_sort": VM_FAULT_KINDS,
    "vm_route": VM_FAULT_KINDS,
    "vm_scan": VM_FAULT_KINDS,
    "vm_broadcast": VM_FAULT_KINDS,
}


# -- one cell --------------------------------------------------------------


def run_cell(scenario: str, kind: str, seed: int, paranoid: bool, clean: str) -> dict:
    """Run one (scenario, kind, seed, mode) cell and classify the outcome."""
    fn = SCENARIOS[scenario]
    injector = FaultInjector(FaultPlan(seed=seed, kind=kind))
    error = None
    try:
        fp = fn(paranoid, injector)
        if not injector.injected:
            outcome = "no_opportunity"
        elif fp == clean:
            outcome = "no_effect"
        else:
            outcome = "silent_corruption"
    except InvariantViolation as exc:
        outcome = "detected:paranoid"
        error = exc.to_dict()
    except AssertionError as exc:
        outcome = "detected:validator"
        error = {"detail": str(exc)}
    except Exception as exc:  # noqa: BLE001 - classification, not handling
        outcome = "crash"
        error = {"type": type(exc).__name__, "detail": str(exc)}
    cell = {
        "scenario": scenario,
        "kind": kind,
        "seed": seed,
        "mode": "paranoid" if paranoid else "bare",
        "outcome": outcome,
        "injected": injector.log(),
        "opportunities": int(injector.opportunities.get(kind, 0)),
    }
    if error is not None:
        cell["error"] = error
    return cell


def run_matrix(seeds, scenarios=None, kinds=None) -> dict:
    """The full deterministic chaos report (no timestamps: diffable)."""
    scenarios = list(scenarios or SCENARIOS)
    kinds = list(kinds or ALL_KINDS)
    clean = {name: SCENARIOS[name](False, None) for name in scenarios}
    results = []
    for scenario in scenarios:
        surface = SCENARIO_KINDS.get(scenario, ALL_KINDS)
        for kind in (k for k in kinds if k in surface):
            for seed in seeds:
                for paranoid in (True, False):
                    results.append(
                        run_cell(scenario, kind, seed, paranoid, clean[scenario])
                    )
    summary: dict[str, dict[str, int]] = {"paranoid": {}, "bare": {}}
    injected_cells = {"paranoid": 0, "bare": 0}
    detected_cells = {"paranoid": 0, "bare": 0}
    for cell in results:
        mode = cell["mode"]
        summary[mode][cell["outcome"]] = summary[mode].get(cell["outcome"], 0) + 1
        if cell["injected"] or cell["outcome"].startswith("detected"):
            injected_cells[mode] += 1
            if cell["outcome"].startswith("detected"):
                detected_cells[mode] += 1
    rates = {
        mode: (detected_cells[mode] / injected_cells[mode] if injected_cells[mode] else None)
        for mode in ("paranoid", "bare")
    }
    return {
        "schema": SCHEMA_VERSION,
        "seeds": list(seeds),
        "scenarios": scenarios,
        "kinds": kinds,
        "results": results,
        "summary": summary,
        "detection_rate": rates,
    }


def _blind_key(cell: dict) -> str:
    return f"{cell['mode']}:{cell['scenario']}:{cell['kind']}"


def gate(report: dict, baseline: dict | None) -> list[str]:
    """Undetected paranoid-mode injections not documented as blind spots.

    A paranoid cell whose fault was injected but neither detected nor
    crashed must appear in the baseline's ``blind_spots`` map, else it is
    a gate failure (the chaos CI job exits 1).
    """
    known = (baseline or {}).get("blind_spots", {})
    failures = []
    for cell in report["results"]:
        if cell["mode"] != "paranoid" or not cell["injected"]:
            continue
        if cell["outcome"] in ("silent_corruption", "no_effect"):
            key = _blind_key(cell)
            if key not in known:
                failures.append(
                    f"{key} seed={cell['seed']}: injected fault went "
                    f"{cell['outcome']} and is not in the blind-spot baseline"
                )
    return failures


def blind_spots(report: dict) -> dict[str, str]:
    """The report's undetected paranoid cells, as a baseline fragment."""
    spots: dict[str, str] = {}
    for cell in report["results"]:
        if (
            cell["mode"] == "paranoid"
            and cell["injected"]
            and cell["outcome"] in ("silent_corruption", "no_effect")
        ):
            spots.setdefault(
                _blind_key(cell),
                f"{cell['outcome']} (first seen seed={cell['seed']})",
            )
    return spots


def _render(report: dict) -> str:
    lines = ["chaos matrix:"]
    for cell in report["results"]:
        inj = len(cell["injected"])
        lines.append(
            f"  {cell['mode']:<8} {cell['scenario']:<12} "
            f"{cell['kind']:<24} seed={cell['seed']} -> {cell['outcome']}"
            + (f" ({inj} injected)" if inj else "")
        )
    for mode in ("paranoid", "bare"):
        rate = report["detection_rate"][mode]
        rate_txt = "n/a" if rate is None else f"{rate:.0%}"
        lines.append(f"{mode}: {report['summary'][mode]}  detection={rate_txt}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.chaos", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument("--seeds", type=int, nargs="+", default=list(DEFAULT_SEEDS))
    parser.add_argument(
        "--scenarios", nargs="+", choices=sorted(SCENARIOS), default=None
    )
    parser.add_argument(
        "--out", type=pathlib.Path, default=None,
        help="write the full JSON report here",
    )
    parser.add_argument(
        "--baseline", type=pathlib.Path, default=None,
        help="blind-spot baseline (FAULTS_baseline.json); undetected "
        "paranoid-mode injections not listed there exit 1",
    )
    parser.add_argument(
        "--write-baseline", type=pathlib.Path, default=None, metavar="PATH",
        help="record this run's blind spots to PATH and exit 0",
    )
    args = parser.parse_args(argv)

    report = run_matrix(args.seeds, scenarios=args.scenarios)
    print(_render(report), flush=True)
    if args.out is not None:
        args.out.write_text(json.dumps(report, indent=2) + "\n")
        print(f"wrote {args.out}", flush=True)
    if args.write_baseline is not None:
        doc = {
            "schema": SCHEMA_VERSION,
            "blind_spots": blind_spots(report),
            # informational: the scenario/kind universe this baseline's
            # empty-or-not blind-spot list was established over
            "covers": {
                "scenarios": report["scenarios"],
                "kinds": report["kinds"],
            },
        }
        args.write_baseline.write_text(json.dumps(doc, indent=2) + "\n")
        print(f"wrote {args.write_baseline}", flush=True)
        return 0
    baseline = None
    if args.baseline is not None and args.baseline.exists():
        baseline = json.loads(args.baseline.read_text())
    failures = gate(report, baseline)
    if failures:
        print("\nUNDOCUMENTED BLIND SPOTS:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
