"""Plain-text tables for bench output (the "rows the paper would report").

The paper has no numeric tables, so each bench prints the table its
theorem implies: measured mesh steps next to the predicted form and the
baseline, one row per sweep point.  ``Table`` keeps that output uniform
and machine-greppable (EXPERIMENTS.md quotes these tables verbatim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["Table"]


@dataclass
class Table:
    title: str
    columns: list[str]
    rows: list[list] = field(default_factory=list)

    def add(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values for {len(self.columns)} columns"
            )
        self.rows.append(list(values))

    def render(self) -> str:
        def fmt(v) -> str:
            if isinstance(v, float):
                return f"{v:.3g}"
            return str(v)

        cells = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(c), *(len(r[i]) for r in cells)) if cells else len(c)
            for i, c in enumerate(self.columns)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  " + "  ".join(c.rjust(w) for c, w in zip(self.columns, widths)))
        for r in cells:
            lines.append("  " + "  ".join(v.rjust(w) for v, w in zip(r, widths)))
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render(), flush=True)
