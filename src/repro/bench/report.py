"""Render and diff ``BENCH_<name>.json`` blobs (review artifacts).

The parallel runner (:mod:`repro.bench.runner`) writes machine-readable
bench documents; this CLI turns them back into things a reviewer can
read:

* ``python -m repro.bench.report BENCH_e1_hierdag.json`` — per-point
  wall/steps/speedup table plus, when the run was collected with
  ``--profile``, the per-label mesh-step breakdown;
* ``python -m repro.bench.report --diff OLD.json NEW.json`` — per-point
  wall-clock and mesh-step deltas, per-label profile deltas when both
  documents carry profiles, and the same regression verdict as the
  runner's ``--compare``: the exit status is non-zero exactly when
  ``runner.compare(NEW, OLD)`` reports a fast-path wall regression above
  the tolerance (default ``REGRESSION_TOLERANCE``).
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.runner import REGRESSION_TOLERANCE, compare
from repro.mesh.profile import CostProfile

__all__ = ["render_doc", "render_diff", "main"]


def _load(path: pathlib.Path) -> dict:
    return json.loads(pathlib.Path(path).read_text())


def _params_key(point: dict) -> str:
    return json.dumps(point["params"], sort_keys=True)


def _params_txt(point: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in point["params"].items())


def _fmt_delta(old: float, new: float) -> str:
    if old == 0:
        return "n/a" if new == 0 else "+inf"
    return f"{(new / old - 1):+.1%}"


def render_doc(doc: dict) -> str:
    """Per-phase breakdown of one bench run."""
    lines = [
        f"bench {doc['bench']}  (created {doc.get('created', '?')}, "
        f"{len(doc['points'])} points, repeats={doc.get('repeats', '?')})"
    ]
    for point in doc["points"]:
        fast = point["fast"]
        slow = point["slow"]
        steps = fast.get("mesh_steps")
        steps_txt = "-" if steps is None else f"{steps:.0f}"
        lines.append(
            f"  [{_params_txt(point)}] fast={fast['wall_s_min'] * 1e3:.2f}ms "
            f"slow={slow['wall_s_min'] * 1e3:.2f}ms "
            f"speedup={point['speedup']:.2f}x steps={steps_txt} "
            f"rss={point.get('peak_rss_kb', 0) / 1024:.0f}MB"
        )
        if "profile" in point:
            prof = CostProfile.from_dict(point["profile"])
            lines.extend("    " + ln for ln in prof.render().splitlines())
    if "profile" in doc:
        lines.append("merged per-label profile:")
        prof = CostProfile.from_dict(doc["profile"])
        lines.extend("  " + ln for ln in prof.render().splitlines())
    return "\n".join(lines)


def render_diff(old: dict, new: dict, tolerance: float) -> tuple[str, list[str]]:
    """Human-readable delta of two bench documents + regression failures.

    The failure list is exactly what ``runner --compare`` would produce
    for ``new`` against baseline ``old`` — the caller turns non-emptiness
    into the exit status.
    """
    lines = [
        f"diff {old['bench']} -> {new['bench']}  "
        f"(old {old.get('created', '?')}, new {new.get('created', '?')})"
    ]
    old_by_params = {_params_key(p): p for p in old["points"]}
    for point in new["points"]:
        base = old_by_params.get(_params_key(point))
        if base is None:
            lines.append(f"  [{_params_txt(point)}] new point (no baseline)")
            continue
        ow, nw = base["fast"]["wall_s_min"], point["fast"]["wall_s_min"]
        os_, ns = base["fast"].get("mesh_steps"), point["fast"].get("mesh_steps")
        steps_txt = "steps=-"
        if os_ is not None and ns is not None:
            steps_txt = f"steps {os_:.0f} -> {ns:.0f} ({_fmt_delta(os_, ns)})"
        lines.append(
            f"  [{_params_txt(point)}] fast wall {ow * 1e3:.2f}ms -> "
            f"{nw * 1e3:.2f}ms ({_fmt_delta(ow, nw)})  {steps_txt}"
        )
    dropped = [
        p for key, p in old_by_params.items()
        if key not in {_params_key(q) for q in new["points"]}
    ]
    for point in dropped:
        lines.append(f"  [{_params_txt(point)}] dropped (only in baseline)")
    if "profile" in old and "profile" in new:
        oldp = CostProfile.from_dict(old["profile"])
        newp = CostProfile.from_dict(new["profile"])
        labels = sorted(
            set(oldp.by_label) | set(newp.by_label),
            key=lambda lb: -max(oldp.by_label.get(lb, 0.0), newp.by_label.get(lb, 0.0)),
        )
        lines.append("per-label step deltas:")
        for label in labels:
            ov = oldp.by_label.get(label, 0.0)
            nv = newp.by_label.get(label, 0.0)
            if ov == nv:
                continue
            lines.append(
                f"  {label:<24} {ov:>12.0f} -> {nv:>12.0f} ({_fmt_delta(ov, nv)})"
            )
    failures = compare(new, old, tolerance)
    if failures:
        lines.append("REGRESSIONS:")
        lines.extend(f"  {f}" for f in failures)
    else:
        lines.append(f"no fast-path wall regression > {tolerance:.0%}")
    return "\n".join(lines), failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.report", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument(
        "files", nargs="+", type=pathlib.Path,
        help="one BENCH_<name>.json to render, or two with --diff",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="diff two bench documents: --diff OLD.json NEW.json; exit "
        "non-zero iff the runner's --compare would flag NEW against OLD",
    )
    parser.add_argument("--tolerance", type=float, default=REGRESSION_TOLERANCE)
    args = parser.parse_args(argv)

    if args.diff:
        if len(args.files) != 2:
            parser.error("--diff takes exactly two files: OLD.json NEW.json")
        old, new = _load(args.files[0]), _load(args.files[1])
        text, failures = render_diff(old, new, args.tolerance)
        print(text, flush=True)
        return 1 if failures else 0
    for path in args.files:
        print(render_doc(_load(path)), flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
