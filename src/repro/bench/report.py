"""Render and diff ``BENCH_<name>.json`` blobs (review artifacts).

The parallel runner (:mod:`repro.bench.runner`) writes machine-readable
bench documents; this CLI turns them back into things a reviewer can
read:

* ``python -m repro.bench.report BENCH_e1_hierdag.json`` — per-point
  wall/steps/speedup table plus, when the run was collected with
  ``--profile``, the per-label mesh-step breakdown;
* ``python -m repro.bench.report --diff OLD.json NEW.json`` — per-point
  wall-clock and mesh-step deltas, per-label profile deltas when both
  documents carry profiles, and the same regression verdict as the
  runner's ``--compare``: the exit status is non-zero exactly when
  ``runner.compare(NEW, OLD)`` reports a fast-path wall regression above
  the tolerance (default ``REGRESSION_TOLERANCE``);
* ``python -m repro.bench.report --diff TRACE_OLD.json TRACE_NEW.json``
  — when both files are ``TRACE_*`` span-tree sidecars (they carry a
  ``spanTrees`` key), the diff is *structural*: per-span-path net step
  deltas (which phase regressed), added/removed spans, and the same
  exit-code convention as the runner's ``--compare`` (1 on a per-span
  step regression above the tolerance).

Missing or malformed input files exit with status 2 (distinct from the
regression exit 1), so CI can tell "worse" from "broken".
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.bench.runner import REGRESSION_TOLERANCE, compare, error_kind_of
from repro.mesh.profile import CostProfile
from repro.mesh.trace import Span

__all__ = [
    "ReportError",
    "render_doc",
    "render_diff",
    "render_trace_doc",
    "render_trace_diff",
    "span_paths",
    "main",
]


class ReportError(Exception):
    """A report input is missing or malformed (CLI exit status 2)."""


def _load(path: pathlib.Path) -> dict:
    try:
        text = pathlib.Path(path).read_text()
    except OSError as exc:
        raise ReportError(f"{path}: cannot read ({exc})") from exc
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        raise ReportError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(doc, dict):
        raise ReportError(f"{path}: expected a JSON object, got {type(doc).__name__}")
    return doc


def _is_trace_doc(doc: dict) -> bool:
    """TRACE_* sidecars carry span trees; BENCH_* documents carry points."""
    return "spanTrees" in doc or ("traceEvents" in doc and "points" not in doc)


def span_paths(doc: dict) -> dict[tuple[str, ...], float]:
    """Flatten a TRACE sidecar: span path -> net self steps (fold applied).

    Aggregates across the document's tracers; values sum to the traced
    run's ``clock.time``.  Raises :class:`ReportError` when the document
    has no usable ``spanTrees``.
    """
    trees = doc.get("spanTrees")
    if not isinstance(trees, list) or not trees:
        raise ReportError(
            "trace document has no spanTrees (written by an older runner? "
            "re-record with --trace)"
        )
    out: dict[tuple[str, ...], float] = {}

    def walk(span: Span, prefix: tuple[str, ...]) -> None:
        path = prefix + (span.name,)
        out[path] = out.get(path, 0.0) + span.steps_self
        for child in span.children:
            walk(child, path)

    for tree in trees:
        try:
            root = Span.from_dict(tree["root"])
        except (KeyError, TypeError, AttributeError) as exc:
            raise ReportError(f"malformed span tree in trace document: {exc}") from exc
        walk(root, ())
    return out


def _params_key(point: dict) -> str:
    # same numeric normalization as the runner's checkpoint/compare key,
    # so 4096 and 4096.0 pair up across documents
    from repro.bench.runner import _params_key as _runner_params_key

    return _runner_params_key(point["params"])


def _params_txt(point: dict) -> str:
    return ", ".join(f"{k}={v}" for k, v in point["params"].items())


def _fmt_delta(old: float, new: float) -> str:
    if old == 0:
        return "n/a" if new == 0 else "+inf"
    return f"{(new / old - 1):+.1%}"


def render_doc(doc: dict) -> str:
    """Per-phase breakdown of one bench run."""
    lines = [
        f"bench {doc['bench']}  (created {doc.get('created', '?')}, "
        f"{len(doc['points'])} points, repeats={doc.get('repeats', '?')})"
    ]
    prov = doc.get("provenance")
    if prov:
        versions = prov.get("versions", {})
        ver_txt = ", ".join(
            f"{k} {v}" for k, v in versions.items() if v is not None
        )
        absent = [k for k, v in versions.items() if v is None]
        if absent:
            ver_txt += "; absent: " + ", ".join(absent)
        backend_txt = prov.get("backend", "?")
        if prov.get("backend_native") is False:
            backend_txt += f" (fallback: {prov.get('backend_fallback_reason')})"
        lines.append(f"  environment: backend={backend_txt}  {ver_txt}")
        if prov.get("cpu"):
            lines.append(f"  cpu: {prov['cpu']} ({prov.get('platform', '?')})")
    errored = [p for p in doc["points"] if "error" in p]
    for point in doc["points"]:
        if "error" in point:
            lines.append(
                f"  [{_params_txt(point)}] ERROR({error_kind_of(point)}) after "
                f"{point.get('attempts', '?')} attempt(s): {point['error']}"
            )
            continue
        fast = point["fast"]
        slow = point["slow"]
        steps = fast.get("mesh_steps")
        steps_txt = "-" if steps is None else f"{steps:.0f}"
        speedup = point.get("speedup")
        speedup_txt = "-" if speedup is None else f"{speedup:.2f}x"
        lines.append(
            f"  [{_params_txt(point)}] fast={fast['wall_s_min'] * 1e3:.2f}ms "
            f"slow={slow['wall_s_min'] * 1e3:.2f}ms "
            f"speedup={speedup_txt} steps={steps_txt} "
            f"rss={point.get('peak_rss_kb', 0) / 1024:.0f}MB"
        )
        for warning in point.get("warnings", ()):
            lines.append(f"    WARNING {warning}")
        if "profile" in point:
            prof = CostProfile.from_dict(point["profile"])
            lines.extend("    " + ln for ln in prof.render().splitlines())
    if errored:
        kinds: dict[str, int] = {}
        for p in errored:
            kinds[error_kind_of(p)] = kinds.get(error_kind_of(p), 0) + 1
        kind_txt = ", ".join(f"{k}={n}" for k, n in sorted(kinds.items()))
        lines.append(
            f"ERRORS: {len(errored)} of {len(doc['points'])} points failed "
            f"({kind_txt}) — see lines above"
        )
    if "profile" in doc:
        lines.append("merged per-label profile:")
        prof = CostProfile.from_dict(doc["profile"])
        lines.extend("  " + ln for ln in prof.render().splitlines())
    return "\n".join(lines)


def render_trace_doc(doc: dict) -> str:
    """Indented per-span-path step table of one TRACE sidecar."""
    paths = span_paths(doc)
    total = sum(paths.values())
    lines = [f"trace: {len(paths)} spans, {total:.0f} net steps"]
    for path in sorted(paths):
        depth = len(path) - 1
        lines.append(f"{'  ' * depth}{path[-1]:<{max(1, 32 - 2 * depth)}} "
                     f"steps={paths[path]:>12.0f}")
    return "\n".join(lines)


def render_trace_diff(old: dict, new: dict, tolerance: float) -> tuple[str, list[str]]:
    """Structural span-tree delta of two TRACE sidecars + regressions.

    Per common span path, the net self-step delta; paths only in one
    document are reported as added/removed.  A common path whose steps
    grew by more than ``tolerance`` is a regression (exit 1 in the CLI,
    matching ``runner --compare``'s convention).
    """
    old_paths = span_paths(old)
    new_paths = span_paths(new)
    lines = ["trace diff (net per-span steps, parallel folds applied):"]
    failures: list[str] = []
    for path in sorted(set(old_paths) | set(new_paths)):
        name = ";".join(path)
        depth = len(path) - 1
        pad = "  " * depth
        if path not in old_paths:
            lines.append(f"{pad}{path[-1]}: added ({new_paths[path]:.0f} steps)")
            continue
        if path not in new_paths:
            lines.append(f"{pad}{path[-1]}: removed (was {old_paths[path]:.0f} steps)")
            continue
        ov, nv = old_paths[path], new_paths[path]
        if ov == nv:
            continue
        lines.append(f"{pad}{path[-1]}: {ov:.0f} -> {nv:.0f} ({_fmt_delta(ov, nv)})")
        if ov > 0 and nv > ov * (1 + tolerance):
            failures.append(
                f"span {name}: {nv:.0f} steps vs baseline {ov:.0f} "
                f"(+{(nv / ov - 1):.0%} > {tolerance:.0%})"
            )
    ot, nt = sum(old_paths.values()), sum(new_paths.values())
    lines.append(f"total: {ot:.0f} -> {nt:.0f} ({_fmt_delta(ot, nt)})")
    if failures:
        lines.append("REGRESSIONS:")
        lines.extend(f"  {f}" for f in failures)
    else:
        lines.append(f"no per-span step regression > {tolerance:.0%}")
    return "\n".join(lines), failures


def render_diff(old: dict, new: dict, tolerance: float) -> tuple[str, list[str]]:
    """Human-readable delta of two bench documents + regression failures.

    The failure list is exactly what ``runner --compare`` would produce
    for ``new`` against baseline ``old`` — the caller turns non-emptiness
    into the exit status.
    """
    lines = [
        f"diff {old['bench']} -> {new['bench']}  "
        f"(old {old.get('created', '?')}, new {new.get('created', '?')})"
    ]
    op, np_ = old.get("provenance"), new.get("provenance")
    if op and np_ and op != np_:
        changed = sorted(
            k for k in set(op) | set(np_) if op.get(k) != np_.get(k)
        )
        lines.append(
            "  WARNING provenance differs ("
            + ", ".join(f"{k}: {op.get(k)} -> {np_.get(k)}" for k in changed)
            + ") — wall-clock deltas may reflect the environment, not the code"
        )
    old_by_params = {_params_key(p): p for p in old["points"]}
    for point in new["points"]:
        base = old_by_params.get(_params_key(point))
        if "error" in point:
            lines.append(
                f"  [{_params_txt(point)}] ERROR({error_kind_of(point)}): "
                f"{point['error']}"
            )
            continue
        if base is None:
            lines.append(f"  [{_params_txt(point)}] new point (no baseline)")
            continue
        if "error" in base:
            lines.append(
                f"  [{_params_txt(point)}] baseline point errored "
                f"({error_kind_of(base)} — {base['error']}); no comparison"
            )
            continue
        ow, nw = base["fast"]["wall_s_min"], point["fast"]["wall_s_min"]
        os_, ns = base["fast"].get("mesh_steps"), point["fast"].get("mesh_steps")
        steps_txt = "steps=-"
        if os_ is not None and ns is not None:
            steps_txt = f"steps {os_:.0f} -> {ns:.0f} ({_fmt_delta(os_, ns)})"
        lines.append(
            f"  [{_params_txt(point)}] fast wall {ow * 1e3:.2f}ms -> "
            f"{nw * 1e3:.2f}ms ({_fmt_delta(ow, nw)})  {steps_txt}"
        )
    dropped = [
        p for key, p in old_by_params.items()
        if key not in {_params_key(q) for q in new["points"]}
    ]
    for point in dropped:
        lines.append(f"  [{_params_txt(point)}] dropped (only in baseline)")
    if "profile" in old and "profile" in new:
        oldp = CostProfile.from_dict(old["profile"])
        newp = CostProfile.from_dict(new["profile"])
        labels = sorted(
            set(oldp.by_label) | set(newp.by_label),
            key=lambda lb: -max(oldp.by_label.get(lb, 0.0), newp.by_label.get(lb, 0.0)),
        )
        lines.append("per-label step deltas:")
        for label in labels:
            ov = oldp.by_label.get(label, 0.0)
            nv = newp.by_label.get(label, 0.0)
            if ov == nv:
                continue
            lines.append(
                f"  {label:<24} {ov:>12.0f} -> {nv:>12.0f} ({_fmt_delta(ov, nv)})"
            )
    failures = compare(new, old, tolerance)
    if failures:
        lines.append("REGRESSIONS:")
        lines.extend(f"  {f}" for f in failures)
    else:
        lines.append(f"no fast-path wall regression > {tolerance:.0%}")
    return "\n".join(lines), failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.bench.report", description=__doc__.split("\n", 1)[0]
    )
    parser.add_argument(
        "files", nargs="+", type=pathlib.Path,
        help="one BENCH_<name>.json to render, or two with --diff",
    )
    parser.add_argument(
        "--diff", action="store_true",
        help="diff two bench documents (or two TRACE_* span-tree sidecars): "
        "--diff OLD.json NEW.json; exit 1 on a regression beyond the "
        "tolerance, 2 on a missing/malformed input",
    )
    parser.add_argument("--tolerance", type=float, default=REGRESSION_TOLERANCE)
    args = parser.parse_args(argv)

    try:
        if args.diff:
            if len(args.files) != 2:
                parser.error("--diff takes exactly two files: OLD.json NEW.json")
            old, new = _load(args.files[0]), _load(args.files[1])
            if _is_trace_doc(old) != _is_trace_doc(new):
                raise ReportError(
                    "cannot diff a bench document against a trace sidecar "
                    f"({args.files[0]} vs {args.files[1]})"
                )
            if _is_trace_doc(old):
                text, failures = render_trace_diff(old, new, args.tolerance)
            else:
                try:
                    text, failures = render_diff(old, new, args.tolerance)
                except (KeyError, TypeError) as exc:
                    raise ReportError(
                        f"malformed bench document: missing {exc}"
                    ) from exc
            print(text, flush=True)
            return 1 if failures else 0
        for path in args.files:
            doc = _load(path)
            if _is_trace_doc(doc):
                print(render_trace_doc(doc), flush=True)
            else:
                try:
                    print(render_doc(doc), flush=True)
                except (KeyError, TypeError) as exc:
                    raise ReportError(
                        f"{path}: malformed bench document: missing {exc}"
                    ) from exc
        return 0
    except ReportError as exc:
        print(f"repro.bench.report: error: {exc}", file=sys.stderr, flush=True)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
