"""A hypercube-network comparator (the paper's [DR90] contrast).

The introduction positions the mesh result against Dehne & Rau-Chaplin's
hypercube multisearch, whose strategy — advance all queries
synchronously, one full-network concurrent read per step — costs time
proportional to the network *diameter* per advancement.  On a hypercube
the diameter is ``log N``, so the synchronous strategy is perfectly
viable there (``O(r log n)`` total); on the mesh its ``sqrt(n)``
diameter is exactly why the paper needs the copying machinery.

This module provides a counted hypercube engine with just enough surface
(``rar`` / ``charge_local`` / ``check_capacity`` / ``subregion``-free
duck-typing) that :func:`repro.core.baseline.synchronous_multisearch`
runs on it unchanged, so benches can put three rows side by side:

* hypercube synchronous — ``O(r log n)``  (what [DR90] does),
* mesh synchronous      — ``O(r sqrt(n))`` (what the paper rules out),
* mesh multisearch      — ``O(sqrt(n) + r sqrt(n)/log n)`` (the paper).

Cost model (standard hypercube results): concurrent-read/route =
``O(d)`` with ``d = log2 N`` (randomized routing / monotone routes);
scan/reduce/broadcast = ``O(d)``; sort = ``O(d^2)`` (bitonic — optimal
``O(d log d)`` AKS-style networks exist but bitonic is the implementable
classic, mirroring the shearsort-vs-optimal note for the mesh).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.mesh.clock import StepClock

__all__ = ["HypercubeCostModel", "HypercubeEngine", "HypercubeNode"]


@dataclass(frozen=True)
class HypercubeCostModel:
    """Per-primitive constants; each costs ``constant * dimension`` except
    sort, which costs ``sort * dimension**2`` (bitonic)."""

    route: float = 2.0
    scan: float = 1.0
    broadcast: float = 1.0
    sort: float = 0.5
    local: float = 1.0


class HypercubeEngine:
    """An N = 2^d processor hypercube with a step clock."""

    def __init__(self, dimension: int, capacity: int = 16) -> None:
        if dimension < 0:
            raise ValueError(f"dimension must be >= 0, got {dimension}")
        self.dimension = dimension
        self.capacity = capacity
        self.cost = HypercubeCostModel()
        self.clock = StepClock()
        self.root = HypercubeNode(self)

    @classmethod
    def for_problem(cls, n: int, capacity: int = 16) -> "HypercubeEngine":
        """Smallest hypercube with at least ``n`` processors."""
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        return cls(max(0, math.ceil(math.log2(n))), capacity=capacity)

    @property
    def size(self) -> int:
        return 2**self.dimension

    @property
    def side(self) -> int:
        """Diameter (the analogue of the mesh's side for cost purposes)."""
        return max(1, self.dimension)


class HypercubeNode:
    """The whole-network 'region': duck-types the subset of
    :class:`repro.mesh.engine.Region` the multisearch drivers use."""

    def __init__(self, engine: HypercubeEngine) -> None:
        self.engine = engine

    @property
    def size(self) -> int:
        return self.engine.size

    @property
    def side(self) -> int:
        return self.engine.side

    def _charge(self, constant: float, label: str) -> None:
        self.engine.clock.charge(constant * self.engine.side, label)

    def charge_local(self, steps: int = 1, label: str = "local") -> None:
        self.engine.clock.charge(self.engine.cost.local * steps, label)

    def check_capacity(self, count: int, per_proc: int = 1, what: str = "records") -> None:
        limit = self.size * min(per_proc, self.engine.capacity)
        if count > limit:
            from repro.mesh.engine import CapacityError

            raise CapacityError(
                f"{count} {what} exceed hypercube capacity {limit}"
            )

    def rar(self, addresses: np.ndarray, *tables: np.ndarray, fill=0, label="rar"):
        """Concurrent read in O(diameter) (randomized hypercube routing)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        self._charge(self.engine.cost.route, label)
        live = addresses >= 0
        outs = []
        for t in tables:
            t = np.asarray(t)
            if live.any() and int(addresses[live].max()) >= t.shape[0]:
                raise ValueError("rar address out of range")
            out = np.full((addresses.shape[0],) + t.shape[1:], fill, dtype=t.dtype)
            out[live] = t[addresses[live]]
            outs.append(out)
        return tuple(outs)

    def sort_by(self, keys: np.ndarray, *arrays: np.ndarray, label: str = "sort"):
        """Bitonic sort: O(d^2)."""
        self.engine.clock.charge(
            self.engine.cost.sort * self.engine.side**2, label
        )
        order = np.argsort(np.asarray(keys), kind="stable")
        out = [np.asarray(keys)[order]]
        out.extend(np.asarray(a)[order] for a in arrays)
        return tuple(out)

    def scan(self, values: np.ndarray, op: str = "add", inclusive: bool = True,
             label: str = "scan") -> np.ndarray:
        self._charge(self.engine.cost.scan, label)
        values = np.asarray(values)
        if op != "add":
            raise ValueError("hypercube scan supports add only")
        result = np.cumsum(values)
        if inclusive:
            return result
        out = np.empty_like(result)
        out[1:] = result[:-1]
        out[0] = 0
        return out

    def reduce(self, values: np.ndarray, op: str = "add", label: str = "reduce"):
        self._charge(self.engine.cost.scan, label)
        values = np.asarray(values)
        if op == "add":
            return values.sum()
        return values.min() if op == "min" else values.max()

    def broadcast(self, value, label: str = "broadcast"):
        self._charge(self.engine.cost.broadcast, label)
        return value
