"""Kirkpatrick's subdivision hierarchy for planar point location [Kir83].

Construction (sequential, per the DESIGN.md substitution: the paper
delegates mesh construction to [DSS88] and contributes the query phase):

1. enclose the input subdivision in a large bounding triangle and take a
   triangulation of everything (scipy Delaunay generates the workload's
   base subdivision; any triangulation works);
2. repeatedly remove a greedy independent set of non-corner vertices of
   degree <= 8, retriangulate each star-shaped hole by ear clipping, and
   link every new triangle to the old triangles its interior overlaps;
3. stop when only the bounding triangle remains.

The result is a hierarchical DAG (paper Figure 1's shape, with the
sandwiched level-size law): DAG level 0 is the bounding triangle, level
``i+1`` holds the triangles of the next finer triangulation, and a point
location query descends by testing which child triangle contains the
point — O(1) work per node because a node's payload carries its <= 8
children's coordinates (O(1) words).  ``n`` point locations are then one
multisearch, solved by Theorem 2 in ``O(sqrt(n))`` (experiment E7).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np
from scipy.spatial import Delaunay

from repro.core.model import STOP, SearchStructure
from repro.geometry.primitives import orient2d, point_in_triangle, triangles_overlap
from repro.geometry.triangulate import ear_clip
from repro.mesh.construct import Construction
from repro.util.rng import make_rng

__all__ = [
    "KirkpatrickHierarchy",
    "build_kirkpatrick",
    "kirkpatrick_structure",
    "kirkpatrick_successor",
    "kirkpatrick_snapshot_arrays",
    "kirkpatrick_from_snapshot",
]

#: max children a DAG node may have (removed vertices have degree <= 8,
#: so a hole has <= 8 old triangles; surviving triangles have 1 child)
MAX_CHILDREN = 10


@dataclass
class _Level:
    """One triangulation level: triangles as vertex-index triples."""

    triangles: np.ndarray  # (T, 3) int64
    #: children[t] = indices of overlapping triangles in the next FINER level
    children: list[list[int]] = field(default_factory=list)


@dataclass
class KirkpatrickHierarchy:
    """The hierarchy, finest level first."""

    points: np.ndarray  # (n + 3, 2); the last 3 are the bounding corners
    levels: list[_Level]  # levels[0] = base (finest) ... levels[-1] = 1 triangle

    @property
    def n_levels(self) -> int:
        return len(self.levels)

    @property
    def base_triangles(self) -> np.ndarray:
        return self.levels[0].triangles

    def locate_brute(self, q: np.ndarray) -> np.ndarray:
        """Oracle: base-level triangle containing each query point (or -1)."""
        q = np.atleast_2d(q)
        tris = self.base_triangles
        a = self.points[tris[:, 0]]
        b = self.points[tris[:, 1]]
        c = self.points[tris[:, 2]]
        out = np.full(q.shape[0], -1, dtype=np.int64)
        for i, p in enumerate(q):
            inside = point_in_triangle(p[None, :], a, b, c)
            hits = np.flatnonzero(inside)
            if hits.size:
                out[i] = hits[0]
        return out

    def locate(self, q: np.ndarray) -> np.ndarray:
        """Sequential hierarchy descent (the per-query O(log n) search)."""
        q = np.atleast_2d(q)
        out = np.full(q.shape[0], -1, dtype=np.int64)
        pts = self.points
        for i, p in enumerate(q):
            lvl = len(self.levels) - 1
            tri_idx = 0
            tris = self.levels[lvl].triangles
            t = tris[tri_idx]
            if not point_in_triangle(p, pts[t[0]], pts[t[1]], pts[t[2]]):
                continue  # outside the bounding triangle
            while lvl > 0:
                found = -1
                for ch in self.levels[lvl].children[tri_idx]:
                    t = self.levels[lvl - 1].triangles[ch]
                    if point_in_triangle(p, pts[t[0]], pts[t[1]], pts[t[2]]):
                        found = ch
                        break
                if found < 0:
                    raise RuntimeError("hierarchy descent lost the point")
                tri_idx = found
                lvl -= 1
            out[i] = tri_idx
        return out


def _hole_polygon(v: int, tris: list[tuple[int, int, int]]) -> list[int]:
    """Order the link of vertex ``v`` (edges opposite ``v``) into a cycle.

    Chains the undirected link edges; orientation is normalized by the
    caller (shoelace sign), so winding consistency is not assumed here.
    """
    edges: dict[int, list[int]] = {}
    for t in tris:
        rest = [x for x in t if x != v]
        edges.setdefault(rest[0], []).append(rest[1])
        edges.setdefault(rest[1], []).append(rest[0])
    start = next(iter(edges))
    cycle = [start]
    prev = -1
    while True:
        cur = cycle[-1]
        nbrs = [w for w in edges[cur] if w != prev]
        if not nbrs:
            break
        nxt_v = nbrs[0]
        if nxt_v == start:
            break
        cycle.append(nxt_v)
        prev = cur
        if len(cycle) > len(edges) + 1:
            raise RuntimeError("link of vertex is not a simple cycle")
    if len(cycle) != len(edges):
        raise RuntimeError("link of vertex is not a single cycle")
    return cycle


def build_kirkpatrick(
    points: np.ndarray,
    seed=0,
    max_degree: int = 8,
    bound_scale: float = 8.0,
    construct: Construction | None = None,
) -> KirkpatrickHierarchy:
    """Build the hierarchy over a Delaunay triangulation of ``points``.

    Traced phases: ``kirkpatrick:build`` wrapping ``kirkpatrick:delaunay``
    (the base triangulation) and one ``kirkpatrick:round`` per removal
    round.  The spans carry *modelled mesh steps* charged to
    ``construct`` (a fresh :class:`Construction` when None): each round
    sorts its incidence records, selects the independent set, and
    retriangulates the holes in parallel on a submesh sized for that
    round, so the total construction cost is O(sqrt(n)) — wall time stays
    recorded alongside.  Outputs are byte-identical with or without a
    construction attached.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 2:
        raise ValueError(f"points must be (n, 2), got {points.shape}")
    if construct is None:
        construct = Construction(points.shape[0] + 3)
    with construct.span("kirkpatrick:build"):
        return _build_kirkpatrick(points, seed, max_degree, bound_scale, construct)


def _build_kirkpatrick(
    points: np.ndarray,
    seed,
    max_degree: int,
    bound_scale: float,
    construct: Construction,
) -> KirkpatrickHierarchy:
    rng = make_rng(seed)
    lo, hi = points.min(axis=0), points.max(axis=0)
    center = (lo + hi) / 2
    radius = float(np.max(hi - lo)) * bound_scale + 1.0
    corners = center + radius * np.array(
        [[0.0, 2.0], [-1.9, -1.2], [1.9, -1.2]]
    )
    all_pts = np.vstack([points, corners])
    n = points.shape[0]
    corner_ids = {n, n + 1, n + 2}

    with construct.span("kirkpatrick:delaunay"):
        base = Delaunay(all_pts).simplices.astype(np.int64)
        # normalize orientation CCW
        a, b, c = all_pts[base[:, 0]], all_pts[base[:, 1]], all_pts[base[:, 2]]
        flip = orient2d(a, b, c) < 0
        base[flip] = base[flip][:, [0, 2, 1]]
        # modelled mesh cost: sort the points into mesh order, then route
        # the triangle records of the base triangulation to their slots
        construct.sort(all_pts[:, 0], n=all_pts.shape[0])
        construct.route(
            np.arange(base.shape[0]), base[:, 0], n=base.shape[0]
        )

    levels = [_Level(triangles=base)]
    current = [tuple(int(x) for x in t) for t in base]

    round_no = 0
    while True:
        verts: set[int] = set()
        for t in current:
            verts.update(t)
        removable = verts - corner_ids
        if not removable:
            break
        round_no += 1
        with construct.span("kirkpatrick:round"):
            T = len(current)
            # modelled mesh cost of the round's graph bookkeeping: sort the
            # 3T (vertex, triangle) incidence records, scan for run starts
            tri_arr = np.array(current, dtype=np.int64)
            construct.sort(tri_arr.ravel(), n=3 * T)
            construct.scan(np.ones(3 * T, dtype=np.int64), n=3 * T)
            neighbors: dict[int, set[int]] = {v: set() for v in verts}
            incident: dict[int, list[int]] = {v: [] for v in verts}
            for ti, t in enumerate(current):
                for x in t:
                    incident[x].append(ti)
                for x in t:
                    for y in t:
                        if x != y:
                            neighbors[x].add(y)
            chosen = construct.independent_set(
                neighbors, removable, max_degree=max_degree, seed=rng, n=len(verts)
            )
            if not chosen:
                raise RuntimeError("no removable vertex found")  # pragma: no cover

            removed_tris: set[int] = set()
            new_tris: list[tuple[int, int, int]] = []
            #: per new triangle, the old-level triangle indices it overlaps
            links: list[list[int]] = []
            # holes of one independent set are disjoint: retriangulate them
            # in parallel, the round pays the costliest hole
            with construct.parallel() as par:
                for v in chosen:
                    with par.branch():
                        hole_tris = incident[v]
                        removed_tris.update(hole_tris)
                        cycle = _hole_polygon(v, [current[ti] for ti in hole_tris])
                        poly = all_pts[cycle]
                        # ensure CCW for ear clipping
                        area2 = float(
                            np.sum(
                                poly[:, 0] * np.roll(poly[:, 1], -1)
                                - np.roll(poly[:, 0], -1) * poly[:, 1]
                            )
                        )
                        if area2 < 0:
                            cycle = cycle[::-1]
                            poly = all_pts[cycle]
                        tri_idx = ear_clip(poly, construct=construct)
                        for ta, tb, tc in tri_idx:
                            new_t = (cycle[ta], cycle[tb], cycle[tc])
                            overlaps = [
                                ti
                                for ti in hole_tris
                                if triangles_overlap(
                                    all_pts[list(new_t)], all_pts[list(current[ti])]
                                )
                            ]
                            if not overlaps:
                                raise RuntimeError(
                                    "new triangle overlaps no old triangle"
                                )
                            new_tris.append(new_t)
                            links.append(overlaps)

            survivors = [ti for ti in range(len(current)) if ti not in removed_tris]
            next_tris = [current[ti] for ti in survivors] + new_tris
            next_children = [[ti] for ti in survivors] + links
            next_arr = np.array(next_tris, dtype=np.int64)
            # compress the survivors and route the next level into place
            construct.scan(np.ones(T, dtype=np.int64), n=T)
            construct.route(
                np.arange(next_arr.shape[0]), next_arr[:, 0], n=next_arr.shape[0]
            )
            levels.append(
                _Level(
                    triangles=next_arr,
                    children=next_children,
                )
            )
            current = next_tris
        if round_no > 10 * (n + 4):
            raise RuntimeError("hierarchy construction did not converge")

    return KirkpatrickHierarchy(points=all_pts, levels=levels)


def kirkpatrick_structure(
    hier: KirkpatrickHierarchy, construct: Construction | None = None
) -> tuple[SearchStructure, float]:
    """The hierarchy as a hierarchical-DAG SearchStructure.

    DAG level 0 = the single coarsest triangle; level ``i+1`` = the next
    finer triangulation.  Node payload: ``[own 6 coords, child coords
    (MAX_CHILDREN * 6)]``; adjacency: child DAG-vertex ids.  Returns the
    structure and the measured level growth factor ``mu``.  The
    ``kirkpatrick:structure`` span charges the modelled cost of the DAG
    flattening (sort nodes by level, route them to their slots).
    """
    levels = hier.levels  # finest first
    L = len(levels)
    # DAG level d corresponds to triangulation level (L - 1 - d)
    sizes = [levels[L - 1 - d].triangles.shape[0] for d in range(L)]
    starts = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    V = int(starts[-1])
    adjacency = np.full((V, MAX_CHILDREN), -1, dtype=np.int64)
    payload = np.zeros((V, 6 + 6 * MAX_CHILDREN))
    level = np.zeros(V, dtype=np.int64)
    pts = hier.points
    if construct is None:
        construct = Construction(V)

    with construct.span("kirkpatrick:structure"):
        for d in range(L):
            tl = L - 1 - d  # triangulation level
            tris = levels[tl].triangles
            base = int(starts[d])
            level[base : base + tris.shape[0]] = d
            coords = pts[tris].reshape(tris.shape[0], 6)
            payload[base : base + tris.shape[0], :6] = coords
            if d < L - 1:
                child_base = int(starts[d + 1])
                for ti, kids in enumerate(levels[tl].children):
                    if len(kids) > MAX_CHILDREN:
                        raise RuntimeError(
                            f"triangle has {len(kids)} children > {MAX_CHILDREN}"
                        )
                    for slot, ch in enumerate(kids):
                        adjacency[base + ti, slot] = child_base + ch
                        ct = levels[tl - 1].triangles[ch]
                        payload[base + ti, 6 + 6 * slot : 12 + 6 * slot] = pts[
                            ct
                        ].reshape(6)
        # modelled mesh cost: sort nodes by DAG level, route each node's
        # record (adjacency + payload ride as O(1) words) to its slot
        construct.sort(level, n=V)
        construct.route(np.arange(V), level, n=V)

    h = L - 1

    structure = SearchStructure(
        adjacency=adjacency,
        payload=payload,
        level=level,
        successor=kirkpatrick_successor(h),
        directed=True,
    )
    mu = (sizes[-1] / max(sizes[0], 1)) ** (1.0 / max(h, 1)) if h >= 1 else 2.0
    return structure, float(max(mu, 1.05))


def kirkpatrick_successor(h: int):
    """The point-in-child-triangle descent over a DAG of height ``h``.

    A factory rather than a closure inside :func:`kirkpatrick_structure`
    so a snapshot-restored structure (:mod:`repro.serve.snapshot`) can be
    rewired from its flat arrays alone, without re-running construction.
    """

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        nxt = np.full(m, STOP, dtype=np.int64)
        internal = vlevel < h
        if internal.any():
            q = np.asarray(qkey)[internal]  # (mi, 2)
            adj = vadjacency[internal]
            pl = vpayload[internal]
            mi = q.shape[0]
            chosen = np.full(mi, STOP, dtype=np.int64)
            undecided = np.ones(mi, dtype=bool)
            for slot in range(MAX_CHILDREN):
                cand = adj[:, slot]
                tri = pl[:, 6 + 6 * slot : 12 + 6 * slot].reshape(mi, 3, 2)
                ok = (
                    undecided
                    & (cand >= 0)
                    & point_in_triangle(q, tri[:, 0], tri[:, 1], tri[:, 2])
                )
                chosen[ok] = cand[ok]
                undecided &= ~ok
            nxt[internal] = chosen
        return nxt, qstate

    return successor


def kirkpatrick_snapshot_arrays(
    structure: SearchStructure, mu: float
) -> tuple[dict[str, np.ndarray], dict]:
    """Snapshot hook: the built structure as flat arrays + scalar meta.

    Everything a restored point-location service needs rides in the
    arrays: the DAG's per-level layout is recoverable from ``level``
    (nodes are contiguous per level, coarsest first), so the hierarchy
    object itself is not persisted.
    """
    arrays = {
        "adjacency": structure.adjacency,
        "payload": structure.payload,
        "level": structure.level,
    }
    meta = {"height": int(structure.level.max(initial=0)), "mu": float(mu)}
    return arrays, meta


def kirkpatrick_from_snapshot(
    arrays: dict[str, np.ndarray], meta: dict
) -> tuple[SearchStructure, float]:
    """Inverse of :func:`kirkpatrick_snapshot_arrays` (no construction)."""
    structure = SearchStructure(
        adjacency=np.asarray(arrays["adjacency"], dtype=np.int64),
        payload=np.asarray(arrays["payload"], dtype=np.float64),
        level=np.asarray(arrays["level"], dtype=np.int64),
        successor=kirkpatrick_successor(int(meta["height"])),
        directed=True,
    )
    return structure, float(meta["mu"])
