"""Geometric substrates for the paper's Section 5 applications.

* :mod:`repro.geometry.primitives` — orientation/plane predicates.
* :mod:`repro.geometry.triangulate` — ear-clipping triangulation of simple
  polygons (used to retriangulate holes in the Kirkpatrick hierarchy).
* :mod:`repro.geometry.independent` — bounded-degree independent sets.
* :mod:`repro.geometry.kirkpatrick` — the subdivision hierarchy [Kir83]
  for planar point location; a hierarchical DAG.
* :mod:`repro.geometry.hull3d` — randomized incremental 3-d convex hull
  with conflict lists.
* :mod:`repro.geometry.dk3d` — the Dobkin–Kirkpatrick hierarchical
  representation of a convex polyhedron; a hierarchical DAG for extremal
  (tangent-plane / support) queries.
"""

from repro.geometry.hull3d import convex_hull_3d
from repro.geometry.kirkpatrick import KirkpatrickHierarchy, build_kirkpatrick
from repro.geometry.dk3d import DKHierarchy, build_dk_hierarchy

__all__ = [
    "convex_hull_3d",
    "KirkpatrickHierarchy",
    "build_kirkpatrick",
    "DKHierarchy",
    "build_dk_hierarchy",
]
