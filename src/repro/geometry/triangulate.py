"""Ear-clipping triangulation of simple polygons.

Used by the Kirkpatrick hierarchy to retriangulate the star-shaped hole
left by removing an independent-set vertex.  O(k^2) per polygon, which is
O(1) amortized in the hierarchy because removed vertices have degree at
most a constant.
"""

from __future__ import annotations

import numpy as np

from repro.geometry.primitives import orient2d
from repro.mesh.trace import traced

__all__ = ["ear_clip"]


def _strict_inside(p, a, b, c, eps: float) -> bool:
    d1, d2, d3 = orient2d(p, a, b), orient2d(p, b, c), orient2d(p, c, a)
    return bool((d1 > eps) and (d2 > eps) and (d3 > eps))


def ear_clip(polygon: np.ndarray, eps: float = 1e-12, construct=None) -> np.ndarray:
    """Triangulate a simple polygon given in counter-clockwise order.

    Returns ``(k-2, 3)`` vertex-index triples into ``polygon``.  Raises
    ``ValueError`` if the polygon is not simple/CCW enough to clip.

    Traced as one ``triangulate:ear-clip`` span per polygon.  With a
    :class:`repro.mesh.construct.Construction` attached the span charges
    ``k`` modelled local steps — clipping a constant-size star-shaped
    hole is O(1) local work per incident processor; standalone calls
    (``construct=None``) stay host-only ambient spans.
    """
    polygon = np.asarray(polygon, dtype=np.float64)
    k = polygon.shape[0]
    if k < 3:
        raise ValueError(f"polygon needs >= 3 vertices, got {k}")
    if construct is None:
        with traced(None, "triangulate:ear-clip"):
            return _ear_clip(polygon, k, eps)
    with construct.span("triangulate:ear-clip"):
        construct.local(k)
        return _ear_clip(polygon, k, eps)


def _ear_clip(polygon: np.ndarray, k: int, eps: float) -> np.ndarray:
    # ensure CCW
    area2 = float(
        np.sum(
            polygon[:, 0] * np.roll(polygon[:, 1], -1)
            - np.roll(polygon[:, 0], -1) * polygon[:, 1]
        )
    )
    if area2 < 0:
        raise ValueError("polygon must be counter-clockwise")
    idx = list(range(k))
    triangles: list[tuple[int, int, int]] = []
    guard = 0
    while len(idx) > 3:
        guard += 1
        if guard > 4 * k * k:
            raise ValueError("ear clipping failed: polygon not simple?")
        clipped = False
        m = len(idx)
        for i in range(m):
            a_i, b_i, c_i = idx[(i - 1) % m], idx[i], idx[(i + 1) % m]
            a, b, c = polygon[a_i], polygon[b_i], polygon[c_i]
            if orient2d(a, b, c) <= eps:
                continue
            blocked = False
            for j_pos, j in enumerate(idx):
                if j in (a_i, b_i, c_i):
                    continue
                if _strict_inside(polygon[j], a, b, c, eps):
                    blocked = True
                    break
            if not blocked:
                triangles.append((a_i, b_i, c_i))
                idx.pop(i)
                clipped = True
                break
        if not clipped:
            raise ValueError("ear clipping stuck: degenerate polygon")
    triangles.append((idx[0], idx[1], idx[2]))
    return np.array(triangles, dtype=np.int64)
