"""Bounded-degree independent sets in planar graphs.

Kirkpatrick's lemma: a planar triangulation on ``n`` vertices has an
independent set of at least ``n/18`` vertices of degree at most 8 (by
Euler's formula at least half the vertices have degree <= 8, and greedily
picking among them loses a factor <= 9).  The greedy selection below is
the standard construction; the hierarchy builder verifies the constant
fraction empirically (F-series tests).
"""

from __future__ import annotations

from repro.util.rng import make_rng

__all__ = ["greedy_low_degree_independent_set"]


def greedy_low_degree_independent_set(
    neighbors: dict[int, set[int]],
    candidates: set[int],
    max_degree: int = 8,
    seed=0,
) -> list[int]:
    """Greedy independent set among ``candidates`` of degree <= max_degree.

    ``neighbors`` is the adjacency of the whole graph; the returned set is
    independent in the whole graph, not just among candidates.  If no
    candidate has degree <= max_degree, the threshold is raised to the
    minimum candidate degree (keeps hierarchy construction from stalling
    on tiny/degenerate instances; the theory constant applies for large n).
    """
    rng = make_rng(seed)
    eligible = [v for v in candidates if len(neighbors[v]) <= max_degree]
    if not eligible and candidates:
        floor = min(len(neighbors[v]) for v in candidates)
        eligible = [v for v in candidates if len(neighbors[v]) <= floor]
    order = list(eligible)
    rng.shuffle(order)
    chosen: list[int] = []
    blocked: set[int] = set()
    for v in order:
        if v in blocked:
            continue
        chosen.append(v)
        blocked.add(v)
        blocked.update(neighbors[v])
    return chosen
