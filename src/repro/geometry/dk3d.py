"""Dobkin–Kirkpatrick hierarchical representation of a convex polyhedron.

``P_1 = P`` (the full hull); ``P_{i+1}`` is the hull of ``V_i`` minus a
greedy bounded-degree independent set of hull vertices; the hierarchy
stops at a constant-size top polytope.  Height is O(log n) because each
round removes a constant fraction of the vertices.

The hierarchy supports **extremal queries** by coarse-to-fine descent: if
``v`` is the extreme vertex of ``P_{i+1}`` for a direction ``d``, the
extreme vertex of ``P_i`` is ``v`` or one of ``v``'s neighbours in
``P_i`` (the improving-path argument: any strictly better vertex of
``P_i`` was removed, and removed vertices have all their neighbours in
``V_{i+1}``, so an improving path of length 2 would contradict ``v``'s
optimality at level ``i+1``).  The same descent with an *angular*
objective answers 2-d tangent queries on the projection of ``P`` along a
line, which is the engine behind the multiple line–polyhedron queries of
Theorem 8.1.

As a search structure this is a hierarchical DAG: DAG level 0 is a
virtual root whose children are the top polytope's vertices; DAG level
``d+1`` holds the vertices of the next finer hull; a node's payload
carries the coordinates of its candidate set (itself + its new
neighbours), so the successor does O(1) local work.  ``n`` extremal /
tangent queries are then one multisearch, solved by Theorem 2.

Degree caveat: the candidate set of a vertex is its neighbour set in the
finer hull, which is O(1) *amortized* but not worst-case bounded for all
inputs; the builder enforces ``max_candidates`` (default 32) and raises
if exceeded (random workloads stay far below — see tests).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import STOP, SearchStructure
from repro.geometry.hull3d import Hull3D, convex_hull_3d
from repro.mesh.construct import Construction
from repro.util.rng import make_rng

__all__ = [
    "DKHierarchy",
    "build_dk_hierarchy",
    "dk_support_structure",
    "dk_tangent_structure",
    "dk_tangent_successor",
    "dk_query_mu",
    "dk_tangent_snapshot_arrays",
    "dk_tangent_from_snapshot",
]


@dataclass
class DKHierarchy:
    """The hierarchy, finest hull first (``hulls[0] = P``)."""

    points: np.ndarray  # (n, 3) original points
    hulls: list[Hull3D]  # hulls[0] finest ... hulls[-1] coarsest
    #: per level, adjacency dict vertex -> sorted neighbour array
    adjacency: list[dict[int, np.ndarray]]

    @property
    def n_levels(self) -> int:
        return len(self.hulls)

    def support_brute(self, direction: np.ndarray) -> int:
        return self.hulls[0].support(direction)

    def support(self, direction: np.ndarray) -> int:
        """Sequential coarse-to-fine extreme-vertex descent."""
        d = np.asarray(direction, dtype=np.float64)
        lvl = self.n_levels - 1
        vs = self.hulls[lvl].vertices
        v = int(vs[np.argmax(self.points[vs] @ d)])
        for lvl in range(self.n_levels - 2, -1, -1):
            cand = np.concatenate([[v], self.adjacency[lvl][v]])
            v = int(cand[np.argmax(self.points[cand] @ d)])
        return v


def _hull_adjacency(hull: Hull3D) -> dict[int, np.ndarray]:
    adj: dict[int, set[int]] = {int(v): set() for v in hull.vertices}
    for a, b in hull.edges():
        adj[int(a)].add(int(b))
        adj[int(b)].add(int(a))
    return {v: np.array(sorted(s), dtype=np.int64) for v, s in adj.items()}


def build_dk_hierarchy(
    points: np.ndarray,
    seed=0,
    max_degree: int = 8,
    stop_size: int = 8,
    max_rounds: int = 64,
    construct: Construction | None = None,
) -> DKHierarchy:
    """Build the hierarchy over the hull of ``points``.

    Traced phases: ``dk3d:build`` wrapping ``dk3d:base-hull`` and one
    ``dk3d:level`` per coarsening round.  The spans carry modelled mesh
    steps charged to ``construct`` (a fresh
    :class:`~repro.mesh.construct.Construction` when None): every level's
    independent-set selection and hull rebuild run on a submesh sized for
    that level, so the geometrically shrinking rounds sum to O(sqrt(n)).
    Outputs are byte-identical with or without a construction attached.
    """
    points = np.asarray(points, dtype=np.float64)
    rng = make_rng(seed)
    if construct is None:
        construct = Construction(max(points.shape[0], 1))
    with construct.span("dk3d:build"):
        with construct.span("dk3d:base-hull"):
            hull = convex_hull_3d(
                points, seed=rng.integers(2**31), construct=construct
            )
        hulls = [hull]
        adjacency = [_hull_adjacency(hull)]
        while hulls[-1].vertices.size > stop_size and len(hulls) < max_rounds:
            with construct.span("dk3d:level"):
                cur = hulls[-1]
                adj = adjacency[-1]
                neighbors = {v: set(int(x) for x in nb) for v, nb in adj.items()}
                chosen = construct.independent_set(
                    neighbors,
                    set(neighbors.keys()),
                    max_degree=max_degree,
                    seed=rng,
                    n=cur.vertices.size,
                )
                keep = np.array(sorted(set(int(v) for v in cur.vertices) - set(chosen)))
                if keep.size < 4 or not chosen:
                    break
                nxt = convex_hull_3d(
                    points[keep], seed=rng.integers(2**31), construct=construct
                )
                # re-index faces back to original point ids
                remapped = Hull3D(
                    points=points,
                    faces=keep[nxt.faces],
                    normals=nxt.normals,
                    offsets=nxt.offsets,
                )
                hulls.append(remapped)
                adjacency.append(_hull_adjacency(remapped))
        return DKHierarchy(points=points, hulls=hulls, adjacency=adjacency)


# ---------------------------------------------------------------------------
# search-structure construction
# ---------------------------------------------------------------------------


def _dag_arrays(hier: DKHierarchy, max_candidates: int, construct=None):
    """Flat DAG arrays shared by the support and tangent structures.

    DAG level 0: virtual root (children = coarsest hull's vertices).
    DAG level d (1..L): vertices of hull ``L - d`` (coarsest at d=1).
    Node payload: candidate coordinates aligned with adjacency slots;
    slot 0 of a non-root node is "stay on this vertex" (the child copy of
    itself one level finer).  The ``dk3d:dag-arrays`` span charges the
    modelled flattening cost: sort the V DAG nodes by level, route each
    node's candidate record to its slot.
    """
    V = 1 + sum(int(h.vertices.size) for h in hier.hulls)
    if construct is None:
        construct = Construction(V)
    with construct.span("dk3d:dag-arrays"):
        out = _dag_arrays_body(hier, max_candidates)
        level = out[2]
        construct.sort(level, n=V)
        construct.route(np.arange(V), level, n=V)
        return out


def _dag_arrays_body(hier: DKHierarchy, max_candidates: int):
    L = hier.n_levels
    level_vertices = [hier.hulls[L - d].vertices for d in range(1, L + 1)]
    sizes = [1] + [vs.size for vs in level_vertices]
    starts = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
    V = int(starts[-1])

    # map (dag level d >= 1, original vertex id) -> dag node id
    maps: list[dict[int, int]] = []
    for d in range(1, L + 1):
        vs = level_vertices[d - 1]
        maps.append({int(v): int(starts[d] + j) for j, v in enumerate(vs)})

    adjacency = np.full((V, max_candidates), -1, dtype=np.int64)
    payload = np.zeros((V, 3 * max_candidates))
    level = np.zeros(V, dtype=np.int64)
    original = np.full(V, -1, dtype=np.int64)

    # root
    top = level_vertices[0]
    if top.size > max_candidates:
        raise ValueError(f"top polytope has {top.size} > {max_candidates} vertices")
    adjacency[0, : top.size] = [maps[0][int(v)] for v in top]
    payload[0, : 3 * top.size] = hier.points[top].reshape(-1)

    for d in range(1, L + 1):
        vs = level_vertices[d - 1]
        base = int(starts[d])
        level[base : base + vs.size] = d
        original[base : base + vs.size] = vs
        if d == L:
            continue  # finest level: STOP nodes
        finer_adj = hier.adjacency[L - d - 1]  # adjacency at the next finer hull
        finer_map = maps[d]
        for j, v in enumerate(vs):
            v = int(v)
            cand = [v] + [int(u) for u in finer_adj[v]]
            if len(cand) > max_candidates:
                raise ValueError(
                    f"vertex {v} has {len(cand)} candidates > {max_candidates}"
                )
            node = base + j
            adjacency[node, : len(cand)] = [finer_map[u] for u in cand]
            payload[node, : 3 * len(cand)] = hier.points[cand].reshape(-1)
    return adjacency, payload, level, original, L


def dk_support_structure(
    hier: DKHierarchy, max_candidates: int = 32, construct=None
) -> tuple[SearchStructure, np.ndarray]:
    """Extreme-vertex (support) queries as a hierarchical-DAG multisearch.

    Query key: the direction ``(3,)``.  The search ends on the finest
    level's node for the extreme vertex; ``original`` maps DAG node ids
    back to point ids.
    """
    adjacency, payload, level, original, L = _dag_arrays(
        hier, max_candidates, construct=construct
    )
    D = max_candidates

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        nxt = np.full(m, STOP, dtype=np.int64)
        internal = vlevel < L
        if internal.any():
            adj = vadjacency[internal]
            coords = vpayload[internal].reshape(-1, D, 3)
            d = np.asarray(qkey)[internal]
            scores = np.einsum("mdc,mc->md", coords, d)
            scores[adj < 0] = -np.inf
            best = np.argmax(scores, axis=1)
            nxt[internal] = adj[np.arange(adj.shape[0]), best]
        return nxt, qstate

    structure = SearchStructure(
        adjacency=adjacency,
        payload=payload,
        level=level,
        successor=successor,
        directed=True,
    )
    return structure, original


def dk_tangent_structure(
    hier: DKHierarchy, max_candidates: int = 32, construct=None
) -> tuple[SearchStructure, np.ndarray]:
    """2-d tangent queries on the projection of ``P`` along a line.

    Query key (8,): ``[e1 (3), e2 (3), qx, qy]`` — an orthonormal basis of
    the plane perpendicular to the line, and the line's projection ``q``.
    State (1,): ``side`` (+1 = left/CCW-most tangent, -1 = right) — set
    before the search and never modified by it.

    At each level the successor picks the angularly most-extreme candidate
    around ``q`` (valid because the candidates' projected angular cone
    from an exterior ``q`` spans less than pi).  When ``q`` is inside the
    projected polygon the descent produces a non-tangent witness, which
    the application layer detects by the local neighbour test (see
    :mod:`repro.apps.linepoly`).
    """
    adjacency, payload, level, original, L = _dag_arrays(
        hier, max_candidates, construct=construct
    )
    structure = SearchStructure(
        adjacency=adjacency,
        payload=payload,
        level=level,
        successor=dk_tangent_successor(L, max_candidates),
        directed=True,
    )
    return structure, original


def dk_tangent_successor(L: int, max_candidates: int):
    """The angular-extreme tangent descent over an ``L``-level DAG.

    A factory (rather than a closure inside :func:`dk_tangent_structure`)
    so a snapshot-restored structure can be rewired from its flat arrays
    without re-running construction.
    """
    D = max_candidates

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        nxt = np.full(m, STOP, dtype=np.int64)
        internal = vlevel < L
        if internal.any():
            adj = vadjacency[internal]
            coords = vpayload[internal].reshape(-1, D, 3)
            k = np.asarray(qkey)[internal]
            e1, e2, q = k[:, 0:3], k[:, 3:6], k[:, 6:8]
            side = qstate[internal, 0]
            px = np.einsum("mdc,mc->md", coords, e1) - q[:, 0:1]
            py = np.einsum("mdc,mc->md", coords, e2) - q[:, 1:2]
            live = adj >= 0
            # tournament scan: the most-extreme candidate under the CCW
            # comparator cross(a, b) * side < 0 means b beats a
            mi = adj.shape[0]
            best = np.zeros(mi, dtype=np.int64)
            for slot in range(1, D):
                cand_live = live[:, slot]
                bx = px[np.arange(mi), best]
                by = py[np.arange(mi), best]
                cross = bx * py[:, slot] - by * px[:, slot]
                better = cand_live & (cross * side > 0)
                best[better] = slot
            nxt[internal] = adj[np.arange(mi), best]
        return nxt, qstate

    return successor


def dk_query_mu(hier: DKHierarchy) -> float:
    """The measured level growth factor fed to ``hierdag_multisearch``."""
    return max(
        1.1,
        (hier.hulls[0].vertices.size / max(hier.hulls[-1].vertices.size, 1))
        ** (1.0 / max(hier.n_levels - 1, 1)),
    )


def dk_tangent_snapshot_arrays(
    hier: DKHierarchy, max_candidates: int = 32
) -> tuple[dict[str, np.ndarray], dict]:
    """Snapshot hook: tangent structure + the finest-hull neighbourhoods.

    Persists everything the line-polyhedron service needs at query time:
    the flat DAG arrays, the DAG-node -> point-id map, the points, and
    the finest hull's adjacency (CSR: vertex ids, offsets, concatenated
    neighbour lists) used by the local tangency verification.
    """
    structure, original = dk_tangent_structure(hier, max_candidates)
    adj0 = hier.adjacency[0]
    verts = np.array(sorted(adj0), dtype=np.int64)
    counts = np.array([adj0[int(v)].size for v in verts], dtype=np.int64)
    offsets = np.concatenate([[0], np.cumsum(counts)]).astype(np.int64)
    flat = (
        np.concatenate([adj0[int(v)] for v in verts])
        if verts.size
        else np.zeros(0, dtype=np.int64)
    )
    arrays = {
        "adjacency": structure.adjacency,
        "payload": structure.payload,
        "level": structure.level,
        "original": original,
        "points": hier.points,
        "hull_vertices": verts,
        "hull_offsets": offsets,
        "hull_neighbors": flat,
    }
    meta = {
        "levels": int(hier.n_levels),
        "max_candidates": int(max_candidates),
        "mu": float(dk_query_mu(hier)),
    }
    return arrays, meta


def dk_tangent_from_snapshot(
    arrays: dict[str, np.ndarray], meta: dict
) -> tuple[SearchStructure, np.ndarray, np.ndarray, dict[int, np.ndarray], float]:
    """Inverse of :func:`dk_tangent_snapshot_arrays` (no construction).

    Returns ``(structure, original, points, finest_adjacency, mu)``.
    """
    structure = SearchStructure(
        adjacency=np.asarray(arrays["adjacency"], dtype=np.int64),
        payload=np.asarray(arrays["payload"], dtype=np.float64),
        level=np.asarray(arrays["level"], dtype=np.int64),
        successor=dk_tangent_successor(
            int(meta["levels"]), int(meta["max_candidates"])
        ),
        directed=True,
    )
    verts = np.asarray(arrays["hull_vertices"], dtype=np.int64)
    offsets = np.asarray(arrays["hull_offsets"], dtype=np.int64)
    flat = np.asarray(arrays["hull_neighbors"], dtype=np.int64)
    adj = {
        int(v): flat[int(offsets[j]) : int(offsets[j + 1])]
        for j, v in enumerate(verts)
    }
    return (
        structure,
        np.asarray(arrays["original"], dtype=np.int64),
        np.asarray(arrays["points"], dtype=np.float64),
        adj,
        float(meta["mu"]),
    )
