"""Incremental 3-d convex hull (beneath–beyond).

Points are inserted one at a time; the faces visible from the new point
are found by a vectorized signed-distance test against all live faces,
the horizon (edges with exactly one visible adjacent face) is extracted
from an edge->faces map, and a cone of new faces is built on it.  With
random insertion order this is the standard randomized incremental
construction; the per-insertion scan is O(F) but fully vectorized, which
is the right trade-off for the problem sizes the mesh simulation reaches
(the guides' advice: vectorize the hot loop, don't micro-optimize Python).

Degenerate inputs (coplanar quadruples) are handled by epsilon tests and,
for the initial simplex, by scanning for a non-degenerate quadruple;
workloads joggle their inputs when they are adversarially flat.

The result is a watertight, outward-oriented triangulated hull, verified
in tests against ``scipy.spatial.ConvexHull`` (equal vertex sets, equal
volume) and by direct invariant checks (every input point inside, every
face boundary matched by exactly one neighbour).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Hull3D", "convex_hull_3d"]

_EPS = 1e-9


@dataclass
class Hull3D:
    """A triangulated convex hull.

    ``faces`` index into the *original* point array; normals point
    outward; ``vertices`` are the sorted unique point indices on the hull.
    """

    points: np.ndarray  # (n, 3) the original input points
    faces: np.ndarray  # (F, 3) int64, outward-oriented
    normals: np.ndarray  # (F, 3) unit outward normals
    offsets: np.ndarray  # (F,) with face plane {x : n.x = d}

    @property
    def vertices(self) -> np.ndarray:
        return np.unique(self.faces)

    def volume(self) -> float:
        """Enclosed volume via the divergence theorem."""
        a = self.points[self.faces[:, 0]]
        b = self.points[self.faces[:, 1]]
        c = self.points[self.faces[:, 2]]
        return float(np.abs(np.einsum("ij,ij->i", a, np.cross(b, c)).sum()) / 6.0)

    def contains(self, q: np.ndarray, eps: float = 1e-9) -> np.ndarray:
        """True where query points lie inside (or on) the hull.

        Exact O(F) per point, vectorized; the substrate inclusion test.
        """
        q = np.atleast_2d(np.asarray(q, dtype=np.float64))
        d = q @ self.normals.T - self.offsets[None, :]
        return (d <= eps).all(axis=1)

    def support(self, direction: np.ndarray) -> int:
        """Index of the hull vertex extreme in ``direction`` (brute force)."""
        vs = self.vertices
        return int(vs[np.argmax(self.points[vs] @ np.asarray(direction, dtype=np.float64))])

    def edges(self) -> np.ndarray:
        """Unique undirected hull edges as an ``(E, 2)`` sorted-index array."""
        e = np.concatenate(
            [self.faces[:, [0, 1]], self.faces[:, [1, 2]], self.faces[:, [2, 0]]]
        )
        e.sort(axis=1)
        return np.unique(e, axis=0)


def _initial_simplex(points: np.ndarray, eps: float) -> list[int]:
    """Four affinely independent point indices, or raise."""
    n = points.shape[0]
    i0 = 0
    # farthest from p0
    d = np.linalg.norm(points - points[i0], axis=1)
    i1 = int(np.argmax(d))
    if d[i1] < eps:
        raise ValueError("all points coincide")
    # farthest from line p0-p1
    u = points[i1] - points[i0]
    u = u / np.linalg.norm(u)
    rel = points - points[i0]
    perp = rel - np.outer(rel @ u, u)
    dists = np.linalg.norm(perp, axis=1)
    i2 = int(np.argmax(dists))
    if dists[i2] < eps:
        raise ValueError("all points collinear")
    # farthest from plane p0-p1-p2
    nrm = np.cross(points[i1] - points[i0], points[i2] - points[i0])
    nrm = nrm / np.linalg.norm(nrm)
    h = np.abs(rel @ nrm)
    i3 = int(np.argmax(h))
    if h[i3] < eps:
        raise ValueError("all points coplanar")
    return [i0, i1, i2, i3]


def convex_hull_3d(points: np.ndarray, seed=None, eps: float = _EPS, construct=None) -> Hull3D:
    """Compute the convex hull of ``points`` ((n, 3), n >= 4).

    ``seed`` randomizes the insertion order (recommended; ``None`` keeps
    the input order after the initial simplex).

    Traced phases: ``hull3d:build`` wrapping ``hull3d:simplex``
    (initial-simplex search) and ``hull3d:insert`` (the incremental
    insertion loop).  With a :class:`repro.mesh.construct.Construction`
    attached, the spans charge the modelled mesh cost of the
    divide-and-conquer hull on a submesh sized for ``n`` — a constant
    number of extreme-point reductions, one sort of the points, scans,
    and a route of the final faces; the host-side insertion loop itself
    is the sequential stand-in and stays wall-time-only.
    """
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise ValueError(f"points must be (n, 3), got {points.shape}")
    n = points.shape[0]
    if n < 4:
        raise ValueError(f"need >= 4 points, got {n}")
    if construct is None:
        from repro.mesh.construct import Construction

        construct = Construction(n)
    with construct.span("hull3d:build"):
        return _convex_hull_3d(points, seed, eps, construct)


def _convex_hull_3d(points: np.ndarray, seed, eps: float, construct) -> Hull3D:
    n = points.shape[0]
    with construct.span("hull3d:simplex"):
        simplex = _initial_simplex(points, eps)
        # modelled: the four farthest-point selections are global reduces
        for _ in range(4):
            construct.reduce(points[:, 0], op="max", n=n)
    centroid = points[simplex].mean(axis=0)

    faces: list[tuple[int, int, int]] = []
    normals: list[np.ndarray] = []
    offsets: list[float] = []
    alive: list[bool] = []
    edge_faces: dict[tuple[int, int], list[int]] = {}

    def add_face(a: int, b: int, c: int) -> None:
        nrm = np.cross(points[b] - points[a], points[c] - points[a])
        norm = np.linalg.norm(nrm)
        if norm < 1e-30:
            raise ValueError("degenerate hull face")
        nrm = nrm / norm
        off = float(nrm @ points[a])
        if nrm @ centroid > off:  # orient outward
            b, c = c, b
            nrm = -nrm
            off = float(nrm @ points[a])
        fid = len(faces)
        faces.append((a, b, c))
        normals.append(nrm)
        offsets.append(off)
        alive.append(True)
        for u, v in ((a, b), (b, c), (c, a)):
            edge_faces.setdefault((min(u, v), max(u, v)), []).append(fid)

    s = simplex
    add_face(s[0], s[1], s[2])
    add_face(s[0], s[1], s[3])
    add_face(s[0], s[2], s[3])
    add_face(s[1], s[2], s[3])

    order = [i for i in range(n) if i not in set(simplex)]
    if seed is not None:
        rng = np.random.default_rng(seed)
        rng.shuffle(order)

    normals_arr = np.array(normals)
    offsets_arr = np.array(offsets)

    with construct.span("hull3d:insert"):
        # modelled: one sort of the points into mesh order, a scan to rank
        # them, and (after the loop) a route of the final face records
        construct.sort(points[:, 0], n=n)
        construct.scan(np.ones(n, dtype=np.int64), n=n)
        for p_idx in order:
            p = points[p_idx]
            alive_arr = np.array(alive)
            dists = normals_arr @ p - offsets_arr
            visible = np.flatnonzero(alive_arr & (dists > eps))
            if visible.size == 0:
                continue  # inside the current hull
            visible_set = set(int(f) for f in visible)
            # horizon: edges of visible faces whose other side is hidden (or
            # boundary — cannot happen on a closed hull)
            horizon: list[tuple[int, int]] = []
            for f in visible_set:
                a, b, c = faces[f]
                for u, v in ((a, b), (b, c), (c, a)):
                    key = (min(u, v), max(u, v))
                    adj = [g for g in edge_faces[key] if alive[g]]
                    others = [g for g in adj if g not in visible_set]
                    if others:
                        # orient the horizon edge as it appears in the visible
                        # face so the new face keeps a consistent winding
                        horizon.append((u, v))
            for f in visible_set:
                alive[f] = False
            for u, v in horizon:
                add_face(u, v, p_idx)
            normals_arr = np.array(normals)
            offsets_arr = np.array(offsets)

        keep = np.flatnonzero(alive)
        faces_arr = np.array([faces[i] for i in keep], dtype=np.int64)
        if faces_arr.shape[0]:
            construct.route(
                np.arange(faces_arr.shape[0]),
                faces_arr[:, 0],
                n=faces_arr.shape[0],
            )
    return Hull3D(
        points=points,
        faces=faces_arr,
        normals=normals_arr[keep],
        offsets=offsets_arr[keep],
    )
