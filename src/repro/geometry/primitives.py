"""Geometric predicates (2-d and 3-d).

Plain float arithmetic with explicit epsilons: the workloads are random
point sets (joggled where needed), so robustness requirements are mild;
every consumer states which side of a tie it tolerates.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "orient2d",
    "point_in_triangle",
    "triangles_overlap",
    "plane_from_points",
    "signed_volume",
]


def orient2d(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> np.ndarray:
    """Twice the signed area of triangle abc; > 0 for counter-clockwise.

    Vectorized over leading axes: ``a``, ``b``, ``c`` are ``(..., 2)``.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    c = np.asarray(c, dtype=np.float64)
    return (b[..., 0] - a[..., 0]) * (c[..., 1] - a[..., 1]) - (
        b[..., 1] - a[..., 1]
    ) * (c[..., 0] - a[..., 0])


def point_in_triangle(
    p: np.ndarray, a: np.ndarray, b: np.ndarray, c: np.ndarray, eps: float = 1e-12
) -> np.ndarray:
    """True where point ``p`` lies in (or on the boundary of) triangle abc.

    Works for either orientation of abc.  Vectorized over leading axes.
    """
    d1 = orient2d(p, a, b)
    d2 = orient2d(p, b, c)
    d3 = orient2d(p, c, a)
    has_neg = (d1 < -eps) | (d2 < -eps) | (d3 < -eps)
    has_pos = (d1 > eps) | (d2 > eps) | (d3 > eps)
    return ~(has_neg & has_pos)


def _tri_axes(tri: np.ndarray) -> np.ndarray:
    """Outward edge normals of a 2-d triangle ``(3, 2)``."""
    edges = np.roll(tri, -1, axis=0) - tri
    return np.stack([edges[:, 1], -edges[:, 0]], axis=1)


def triangles_overlap(t1: np.ndarray, t2: np.ndarray, eps: float = 1e-12) -> bool:
    """True iff the *interiors* of two 2-d triangles intersect (SAT test).

    Shared edges/vertices do not count as overlap, which is what the
    Kirkpatrick parent-linking needs (a new triangle is linked to the old
    triangles whose interiors it shares area with).
    """
    t1 = np.asarray(t1, dtype=np.float64)
    t2 = np.asarray(t2, dtype=np.float64)
    for tri, other in ((t1, t2), (t2, t1)):
        for axis in _tri_axes(tri):
            p1 = tri @ axis
            p2 = other @ axis
            if p1.max() <= p2.min() + eps or p2.max() <= p1.min() + eps:
                return False
    return True


def plane_from_points(a: np.ndarray, b: np.ndarray, c: np.ndarray) -> tuple[np.ndarray, float]:
    """Plane through 3-d points a, b, c: returns (unit normal n, offset d)
    with the plane ``{x : n . x = d}``; normal by right-hand rule."""
    a = np.asarray(a, dtype=np.float64)
    n = np.cross(b - a, c - a)
    norm = np.linalg.norm(n)
    if norm < 1e-30:
        raise ValueError("degenerate plane (collinear points)")
    n = n / norm
    return n, float(n @ a)


def signed_volume(a, b, c, d) -> float:
    """6x the signed volume of tetrahedron abcd (> 0 if d on the positive
    side of plane abc by the right-hand rule)."""
    a = np.asarray(a, dtype=np.float64)
    return float(np.dot(np.cross(np.asarray(b) - a, np.asarray(c) - a), np.asarray(d) - a))
