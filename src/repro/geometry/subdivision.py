"""General planar subdivisions (polygonal faces) for point location.

Kirkpatrick's result [Kir83] is for arbitrary planar subdivisions, not
just triangulations: triangulate the faces, build the hierarchy over the
triangles, and map each located triangle back to its face.  This module
supplies the subdivision side of that reduction:

* :func:`merged_face_subdivision` generates a random polygonal
  subdivision *over a hierarchy's own base triangulation* by
  agglomerating adjacent triangles into faces (union-find over the dual
  graph) — the standard way to get a valid subdivision workload without
  implementing a full segment-arrangement builder, and sharing the
  triangulation keeps the hierarchy and the subdivision exactly
  consistent;
* :class:`PlanarSubdivision` holds the triangle -> face map and the
  brute-force face-location oracle.

The mesh application (:func:`repro.apps.pointloc.locate_faces_mesh`)
answers face queries by the Theorem 2 triangle multisearch composed with
the map — the triangle-to-face translation is one local step per query.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.kirkpatrick import KirkpatrickHierarchy
from repro.geometry.primitives import point_in_triangle
from repro.mesh.construct import Construction
from repro.util.rng import make_rng

__all__ = ["PlanarSubdivision", "merged_face_subdivision"]


@dataclass
class PlanarSubdivision:
    """A triangulated planar subdivision with polygonal faces.

    ``triangles`` is the base triangulation of the (bounded) region;
    ``face_of_triangle[t]`` is the polygonal face triangle ``t`` belongs
    to.  Faces are edge-connected unions of triangles.
    """

    points: np.ndarray  # (P, 2)
    triangles: np.ndarray  # (T, 3) int64
    face_of_triangle: np.ndarray  # (T,) int64, dense 0..F-1

    @property
    def n_faces(self) -> int:
        return int(self.face_of_triangle.max()) + 1

    def face_sizes(self) -> np.ndarray:
        return np.bincount(self.face_of_triangle, minlength=self.n_faces)

    def locate_face_brute(self, q: np.ndarray) -> np.ndarray:
        """Oracle: face containing each query point (-1 = outside)."""
        q = np.atleast_2d(q)
        a = self.points[self.triangles[:, 0]]
        b = self.points[self.triangles[:, 1]]
        c = self.points[self.triangles[:, 2]]
        out = np.full(q.shape[0], -1, dtype=np.int64)
        for i, p in enumerate(q):
            hits = np.flatnonzero(point_in_triangle(p[None, :], a, b, c))
            if hits.size:
                out[i] = self.face_of_triangle[hits[0]]
        return out


def _triangle_adjacency(triangles: np.ndarray) -> list[tuple[int, int]]:
    """Dual-graph edges: triangle pairs sharing an edge."""
    edge_owner: dict[tuple[int, int], int] = {}
    dual: list[tuple[int, int]] = []
    for t, (a, b, c) in enumerate(triangles):
        for u, v in ((a, b), (b, c), (c, a)):
            key = (min(int(u), int(v)), max(int(u), int(v)))
            if key in edge_owner:
                dual.append((edge_owner[key], t))
            else:
                edge_owner[key] = t
    return dual


def merged_face_subdivision(
    hier: KirkpatrickHierarchy,
    merge_fraction: float = 0.6,
    seed=0,
    construct: Construction | None = None,
) -> PlanarSubdivision:
    """A random polygonal subdivision over ``hier``'s base triangulation.

    ``merge_fraction`` of the spanning budget ``T - 1`` dual-graph
    contractions are performed (random order, union-find), gluing
    adjacent triangles into polygonal faces — the face count ends at
    ``~(1 - merge_fraction) * T``.  Faces stay edge-connected by
    construction; with fraction 0 every face is a triangle, with
    fraction near 1 a few large polygons remain.

    The ``subdivision:merge-faces`` span charges the modelled mesh cost
    of the merge (sort the 3T dual-edge records, a logarithmic number of
    pointer-jumping label scans, one route of the face labels) to
    ``construct`` (a fresh :class:`Construction` when None).
    """
    if not (0.0 <= merge_fraction < 1.0):
        raise ValueError(f"merge_fraction must be in [0, 1), got {merge_fraction}")
    if construct is None:
        construct = Construction(max(int(hier.base_triangles.shape[0]), 1))
    with construct.span("subdivision:merge-faces"):
        rng = make_rng(seed)
        triangles = hier.base_triangles
        T = triangles.shape[0]
        dual = _triangle_adjacency(triangles)
        rng.shuffle(dual)
        # modelled: sort the 3T (edge, triangle) records to find shared
        # edges, then pointer-jump component labels to a fixed point
        construct.sort(triangles.ravel(), n=3 * T)
        jump_rounds = max(1, int(np.ceil(np.log2(max(T, 2)))))
        for _ in range(jump_rounds):
            construct.scan(np.ones(T, dtype=np.int64), n=T)

        parent = np.arange(T)

        def find(x: int) -> int:
            while parent[x] != x:
                parent[x] = parent[parent[x]]
                x = int(parent[x])
            return x

        n_merges = int(merge_fraction * max(T - 1, 0))
        done = 0
        for a, b in dual:
            if done >= n_merges:
                break
            ra, rb = find(a), find(b)
            if ra != rb:
                parent[ra] = rb
                done += 1
        roots = np.array([find(t) for t in range(T)])
        _, face = np.unique(roots, return_inverse=True)
        face = face.astype(np.int64)
        # modelled: route the final face label back to each triangle
        construct.route(np.arange(T), face, n=T)
        return PlanarSubdivision(
            points=hier.points,
            triangles=triangles,
            face_of_triangle=face,
        )
