"""repro — multisearch on a mesh-connected computer.

A full reproduction of

    Atallah, Dehne, Miller, Rau-Chaplin, Tsay:
    "Multisearch Techniques for Implementing Data Structures on a
    Mesh-Connected Computer" (SPAA 1991)

as an executable Python library: a step-counted mesh-computer simulator,
the paper's multisearch algorithms (hierarchical DAGs, alpha-partitionable
and alpha-beta-partitionable graphs, constrained multisearch), and the
applications (planar point location, line-polyhedron queries, polyhedron
separation, 3-d hull merging, multiple interval intersection search).

Quickstart::

    import numpy as np
    from repro import (
        MeshEngine, QuerySet, hierdag_multisearch,
        build_mu_ary_search_dag, hierdag_search_structure,
    )

    dag, leaf_keys = build_mu_ary_search_dag(mu=2, height=12)
    structure = hierdag_search_structure(dag)
    engine = MeshEngine.for_problem(structure.size)
    keys = np.random.default_rng(0).uniform(leaf_keys[0], leaf_keys[-1], 4096)
    qs = QuerySet.start(keys, start_vertex=0)
    result = hierdag_multisearch(engine, structure, qs, mu=2.0)
    print(result.mesh_steps / structure.size ** 0.5)  # O(sqrt(n)) ratio

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
per-theorem experiment results.
"""

from repro.core import (
    MultisearchResult,
    QuerySet,
    SearchStructure,
    alpha_multisearch,
    alphabeta_multisearch,
    constrained_multisearch,
    hierdag_multisearch,
    run_reference,
    synchronous_multisearch,
)
from repro.core.splitters import Splitting, normalize_splitting, splitting_from_labels
from repro.graphs import (
    BalancedKTree,
    HierarchicalDAG,
    build_balanced_search_tree,
    build_mu_ary_search_dag,
)
from repro.graphs.adapters import (
    hierdag_search_structure,
    ktree_directed_structure,
    ktree_range_structure,
)
from repro.mesh import MeshEngine, MeshVM

__version__ = "1.0.0"

__all__ = [
    "MeshEngine",
    "MeshVM",
    "QuerySet",
    "SearchStructure",
    "MultisearchResult",
    "Splitting",
    "run_reference",
    "hierdag_multisearch",
    "alpha_multisearch",
    "alphabeta_multisearch",
    "constrained_multisearch",
    "synchronous_multisearch",
    "splitting_from_labels",
    "normalize_splitting",
    "HierarchicalDAG",
    "BalancedKTree",
    "build_mu_ary_search_dag",
    "build_balanced_search_tree",
    "hierdag_search_structure",
    "ktree_directed_structure",
    "ktree_range_structure",
]
