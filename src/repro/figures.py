"""Reproductions of the paper's Figures 1-5 (experiments F1-F5).

The figures are definitional illustrations; each function here *constructs*
the pictured object, *validates* the laws the figure illustrates, and
returns a small report (plus an ASCII rendering for the bench output).

=====  ======================================================
F1     hierarchical DAG with mu = 2 (Figure 1)
F2     directed balanced binary tree + alpha-splitter, alpha = 1/2 (Figure 2)
F3     undirected tree + alpha- and beta-splitters at distance ~h/6 (Figure 3)
F4     the B_i band decomposition (Figure 4)
F5     the B_i^1 / B_i^2 split of a band (Figure 5)
=====  ======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.bands import BandDecomposition, compute_bands
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.graphs.ktree import build_balanced_search_tree
from repro.graphs.validate import (
    check_alpha_partition,
    check_hierarchical_dag,
    check_splitter,
    check_splitter_distance,
)

__all__ = ["figure1", "figure2", "figure3", "figure4", "figure5", "FigureReport"]


@dataclass
class FigureReport:
    """Validation outcome + ASCII rendering of one figure."""

    name: str
    facts: dict[str, float] = field(default_factory=dict)
    rendering: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"== {self.name} =="]
        lines += [f"  {k} = {v}" for k, v in self.facts.items()]
        if self.rendering:
            lines.append(self.rendering)
        return "\n".join(lines)


def figure1(height: int = 6, seed=0) -> FigureReport:
    """Figure 1: a hierarchical DAG with mu = 2."""
    dag, _ = build_mu_ary_search_dag(2, height, seed=seed)
    check_hierarchical_dag(dag)
    bars = "\n".join(
        f"  L_{i}: " + "#" * min(int(s), 64) for i, s in enumerate(dag.level_sizes)
    )
    return FigureReport(
        name="Figure 1: hierarchical DAG, mu=2",
        facts={
            "height": float(dag.height),
            "vertices": float(dag.n_vertices),
            "mu": float(dag.mu),
            "max_out_degree": float(dag.max_out_degree),
        },
        rendering=bars,
    )


def figure2(height: int = 8, seed=0) -> FigureReport:
    """Figure 2: directed balanced binary tree and its 1/2-splitter."""
    tree = build_balanced_search_tree(2, height, seed=seed)
    lab = tree.alpha_splitter()
    check_alpha_partition(lab)
    check_splitter(lab, tree.children, tree.size, 0.5, constant=6.0)
    sizes = lab.component_sizes(tree.children)
    return FigureReport(
        name="Figure 2: alpha-splitter of a directed balanced binary tree",
        facts={
            "n": float(tree.size),
            "components": float(lab.n_components),
            "H_size": float(sizes[0]),
            "max_T_size": float(sizes[1:].max()),
            "cut_edges": float(lab.cut_edges.shape[0]),
            "sqrt_n": float(tree.size**0.5),
        },
    )


def figure3(height: int = 12, seed=0) -> FigureReport:
    """Figure 3: undirected tree with S1 (alpha=1/2) and S2 (beta=1/3)."""
    tree = build_balanced_search_tree(2, height, seed=seed)
    s1, s2, dist = tree.alpha_beta_splitters()
    check_splitter(s1, tree.children, tree.size, 0.5, constant=6.0)
    check_splitter(s2, tree.children, tree.size, 1.0 / 3.0, constant=16.0)
    true_dist = check_splitter_distance(tree, s1, s2, dist)
    return FigureReport(
        name="Figure 3: alpha- and beta-splitters of an undirected tree",
        facts={
            "n": float(tree.size),
            "height": float(height),
            "S1_components": float(s1.n_components),
            "S2_components": float(s2.n_components),
            "border_distance": float(true_dist),
            "h_over_6": float(height / 6.0),
        },
    )


def _band_report(deco: BandDecomposition, level_sizes: np.ndarray) -> list[str]:
    rows = []
    for b in deco.bands:
        rows.append(
            f"  B_{b.index}: levels [{b.lo_level},{b.hi_level}] "
            f"dh={b.n_levels} |B|={b.n_vertices} m={b.m}"
        )
    rows.append(f"  B*: levels [{deco.bstar_lo},{deco.h}] |B*|={deco.bstar_n_vertices}")
    return rows


def figure4(height: int = 20, mu: float = 2.0, c: int = 2) -> FigureReport:
    """Figure 4: the band decomposition ``B_0, ..., B_{log*h-1}, B*``."""
    level_sizes = np.array([int(mu**i) for i in range(height + 1)], dtype=np.int64)
    deco = compute_bands(level_sizes, mu, c=c)
    n = int(level_sizes.sum())
    facts: dict[str, float] = {
        "h": float(height),
        "log_star_h": float(deco.log_star_h),
        "bands": float(len(deco.bands)),
        "bstar_levels": float(deco.h - deco.bstar_lo + 1),
    }
    # the size law |B_i| = O(n / (log^(i) h)^2)
    from repro.util.mathx import iterated_log

    for b in deco.bands:
        bound = n / max(iterated_log(height, b.index, mu), 1.0) ** 2
        facts[f"B{b.index}_size_over_bound"] = float(b.n_vertices / max(bound, 1.0))
    return FigureReport(
        name="Figure 4: B_i band decomposition",
        facts=facts,
        rendering="\n".join(_band_report(deco, level_sizes)),
    )


def figure5(height: int = 20, mu: float = 2.0, c: int = 2) -> FigureReport:
    """Figure 5: the ``B_i^1`` / ``B_i^2`` split of each band."""
    level_sizes = np.array([int(mu**i) for i in range(height + 1)], dtype=np.int64)
    deco = compute_bands(level_sizes, mu, c=c)
    cum = np.concatenate([[0], np.cumsum(level_sizes)])
    facts: dict[str, float] = {}
    rows = []
    for b in deco.bands:
        b1 = b.b1_levels
        lo2, hi2 = b.b2_levels
        if b1 is not None:
            size1 = int(cum[b1[1] + 1] - cum[b1[0]])
            # law: |B_i^1| = O(|B_i| / (dh_i)^2)
            facts[f"B{b.index}1_size_ratio"] = float(
                size1 / max(b.n_vertices / b.n_levels**2, 1.0)
            )
            rows.append(
                f"  B_{b.index}^1: levels [{b1[0]},{b1[1]}] size={size1};"
                f" B_{b.index}^2: levels [{lo2},{hi2}]"
            )
        else:
            rows.append(f"  B_{b.index}^1 empty; B_{b.index}^2: levels [{lo2},{hi2}]")
    return FigureReport(
        name="Figure 5: B_i^1 / B_i^2 split",
        facts=facts,
        rendering="\n".join(rows),
    )
