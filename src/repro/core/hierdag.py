"""Multisearch for hierarchical DAGs (paper Section 3, Algorithm 1, Theorem 2).

Strategy: solve the multisearch level-band by level-band — ``B_0``, then
``B_1``, ..., then the O(1)-level tail ``B*``.  For each band ``B_i`` the
mesh is partitioned into ``g_i x g_i`` ``B_i``-submeshes (``g_i =
log^(i) h`` ideally), every submesh holds its own copy of ``B_i`` (made
affordable by the Step 1/2 labelling and distribution scheme), and every
submesh advances *its resident queries* through the band with Lemma 1's
two-phase solver:

* Phase 1: the ``B_i``-submesh is cut into ``Delta h_i x Delta h_i``
  ``B_i^1``-submeshes, each holding a copy of the (much smaller) prefix
  ``B_i^1``; queries advance level by level inside those tiny submeshes —
  ``Delta h_i`` levels at ``O(sqrt(|B_i|) / Delta h_i)`` each =
  ``O(sqrt(|B_i|))``.
* Phase 2: the last ``O(log Delta h_i)`` levels (``B_i^2``) advance level
  by level on the whole ``B_i``-submesh.

Implementation notes (cost honesty):

* All ``B_i``-submeshes execute the identical schedule simultaneously, so
  the parallel-max cost equals one submesh's cost; the engine clock is
  charged once per primitive at the submesh's side, and the data movement
  of all submeshes is executed as one vectorized batch per level (each
  query reads only vertices of the current band, which its submesh's copy
  holds, so the batch is observationally identical to the per-submesh
  RARs it accounts for).
* Granularities adapt to capacity: ``g_i`` (and the inner grid ``q_i``)
  shrink below their ideal values when a band's record count would not
  fit in ``O(1)`` words per processor of the ideal submesh — this only
  happens at small ``n``, where the paper's asymptotic constants have not
  kicked in, and degrades cost, never correctness.
* Queries are advanced strictly level-synchronously; a query whose search
  path starts below ``L_0`` simply joins when its band is processed, and
  a query whose successor returns STOP drops out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.bands import Band, BandDecomposition, compute_bands
from repro.core.model import STOP, MultisearchResult, QuerySet, SearchStructure
from repro.mesh.engine import MeshEngine
from repro.util.mathx import iterated_log

__all__ = ["BandPlan", "HierDagPlan", "plan_hierdag", "hierdag_multisearch", "lemma1_band_steps"]


@dataclass(frozen=True)
class BandPlan:
    """Execution plan for one band ``B_i``."""

    band: Band
    #: ``B_i``-partition granularity (mesh cut into g x g submeshes)
    g: int
    #: inner ``B_i^1`` grid granularity within a ``B_i``-submesh
    q: int
    #: side of one ``B_i``-submesh
    sub_side: int
    #: side of one ``B_i^1``-submesh
    inner_side: int


@dataclass
class HierDagPlan:
    """Full Algorithm 1 plan: per-band grids plus the ``B*`` tail."""

    decomposition: BandDecomposition
    bands: list[BandPlan]
    mesh_side: int
    records_per_vertex: int

    @property
    def grids(self) -> list[int]:
        return [bp.g for bp in self.bands]


def _records(level_sizes: np.ndarray, lo: int, hi: int, rec_per_vertex: int) -> int:
    return int(level_sizes[lo : hi + 1].sum()) * rec_per_vertex


def plan_hierdag(
    structure: SearchStructure,
    mesh_side: int,
    mu: float,
    c: int | None = None,
    per_proc: int = 8,
) -> HierDagPlan:
    """Choose band grids for Algorithm 1 on a ``mesh_side^2`` mesh.

    ``per_proc`` is the O(1) records-per-processor budget used when
    shrinking grids below the ideal ``g_i = log^(i) h``.
    """
    level_sizes = np.bincount(structure.level, minlength=int(structure.level.max()) + 1)
    deco = compute_bands(level_sizes, mu, c)
    rec_per_vertex = 1 + structure.max_degree  # vertex + adjacency words
    plans: list[BandPlan] = []
    prev_g = mesh_side  # g_i must not exceed the previous (finer) grid
    for band in deco.bands:
        ideal = max(1, int(math.floor(iterated_log(deco.h, band.index, mu))))
        g = min(ideal, prev_g)
        records = _records(level_sizes, band.lo_level, band.hi_level, rec_per_vertex)
        while g > 1 and (mesh_side // g) ** 2 * per_proc < records:
            g -= 1
        sub_side = max(1, mesh_side // g)
        # inner grid for Phase 1
        q = 1
        inner_side = sub_side
        b1 = band.b1_levels
        if b1 is not None:
            ideal_q = band.n_levels
            q = max(1, min(ideal_q, sub_side))
            rec1 = _records(level_sizes, b1[0], b1[1], rec_per_vertex)
            while q > 1 and (sub_side // q) ** 2 * per_proc < rec1:
                q -= 1
            inner_side = max(1, sub_side // q)
        plans.append(BandPlan(band, g, q, sub_side, inner_side))
        prev_g = g
    return HierDagPlan(deco, plans, mesh_side, rec_per_vertex)


def _advance_level(structure: SearchStructure, qs: QuerySet, level: int) -> int:
    """Advance every active query currently at ``level`` by one step."""
    act = qs.current != STOP
    if not act.any():
        return 0
    cur = qs.current
    at = act & (structure.level[np.clip(cur, 0, None)] == level) & (cur >= 0)
    idx = np.flatnonzero(at)
    if idx.size == 0:
        qs.log_visit()
        return 0
    cs = cur[idx]
    nxt, new_state = structure.successor(
        cs,
        structure.payload[cs],
        structure.adjacency[cs],
        structure.level[cs],
        qs.key[idx],
        qs.state[idx],
    )
    qs.current[idx] = nxt
    qs.state[idx] = new_state
    qs.steps[idx] += 1
    qs.log_visit()
    return int(idx.size)


def lemma1_band_steps(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    plan: BandPlan,
    label: str = "hierdag",
) -> dict[str, float]:
    """Lemma 1: solve the multisearch for one band on its submeshes.

    Charges: Phase 1 — one duplication of ``B_i^1`` (constant number of
    standard ops at submesh side) plus one RAR+local per ``B_i^1`` level
    at the inner side; Phase 2 — one RAR+local per ``B_i^2`` level at the
    submesh side.  Returns the per-phase charges for diagnostics.
    """
    clock = engine.clock
    cost = clock.cost
    detail = {"phase1": 0.0, "phase2": 0.0, "dup_b1": 0.0}
    band = plan.band
    b1 = band.b1_levels
    if b1 is not None:
        dup = (cost.sort + cost.route) * plan.sub_side
        clock.charge(dup, f"{label}:dup-b1")
        detail["dup_b1"] += dup
        step1 = cost.route * plan.inner_side + cost.local
        for lvl in range(b1[0], b1[1] + 1):
            clock.charge(step1, f"{label}:phase1")
            detail["phase1"] += step1
            _advance_level(structure, qs, lvl)
    lo2, hi2 = band.b2_levels
    step2 = cost.route * plan.sub_side + cost.local
    for lvl in range(lo2, hi2 + 1):
        clock.charge(step2, f"{label}:phase2")
        detail["phase2"] += step2
        _advance_level(structure, qs, lvl)
    return detail


def hierdag_multisearch(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    mu: float,
    c: int | None = None,
    plan: HierDagPlan | None = None,
) -> MultisearchResult:
    """Algorithm 1: multisearch on a hierarchical DAG in ``O(sqrt(n))``.

    Mutates ``qs`` (all queries run until their successor STOPs or the
    bottom level is passed) and charges the engine clock.  Returns a
    :class:`MultisearchResult` whose ``detail`` records per-stage charges.
    """
    clock = engine.clock
    cost = clock.cost
    if plan is None:
        plan = plan_hierdag(structure, engine.shape.rows, mu, c)
    deco = plan.decomposition
    start_time = clock.current
    detail: dict[str, float] = {}

    # Steps 1-2: labelling and band distribution.  Step 1 is t local
    # passes; Step 2 per band i is a constant number of standard ops per
    # B_{i+1}-submesh (distribute B_i among label-i processors, replicate
    # the union of earlier bands into each B_i-submesh), all submeshes in
    # parallel -> charged at the B_{i+1}-submesh side.
    clock.charge(cost.local * max(1, len(plan.bands)), "hierdag:labels")
    setup = 0.0
    for j, bp in enumerate(plan.bands):
        parent_side = plan.bands[j + 1].sub_side if j + 1 < len(plan.bands) else plan.mesh_side
        charge = (cost.sort + cost.route + cost.scan) * parent_side
        clock.charge(charge, "hierdag:distribute")
        setup += charge
    detail["setup"] = setup

    # Step 3: per band, duplicate B_i into each B_i-submesh, then Lemma 1.
    multisteps = 0
    for j, bp in enumerate(plan.bands):
        parent_side = plan.bands[j + 1].sub_side if j + 1 < len(plan.bands) else plan.mesh_side
        dup = (cost.sort + cost.route) * parent_side
        clock.charge(dup, "hierdag:dup-band")
        detail[f"band{j}:dup"] = dup
        d = lemma1_band_steps(engine, structure, qs, bp)
        for k, v in d.items():
            detail[f"band{j}:{k}"] = v
        multisteps += bp.band.n_levels

    # Step 4: B* level by level on the whole mesh (O(1) levels).
    bstar = 0.0
    step_cost = cost.route * plan.mesh_side + cost.local
    for lvl in range(deco.bstar_lo, deco.h + 1):
        clock.charge(step_cost, "hierdag:bstar")
        bstar += step_cost
        _advance_level(structure, qs, lvl)
        multisteps += 1
    detail["bstar"] = bstar

    return MultisearchResult(
        queries=qs,
        mesh_steps=clock.current - start_time,
        multisteps=multisteps,
        detail=detail,
    )
