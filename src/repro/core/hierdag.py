"""Multisearch for hierarchical DAGs (paper Section 3, Algorithm 1, Theorem 2).

Strategy: solve the multisearch level-band by level-band — ``B_0``, then
``B_1``, ..., then the O(1)-level tail ``B*``.  For each band ``B_i`` the
mesh is partitioned into ``g_i x g_i`` ``B_i``-submeshes (``g_i =
log^(i) h`` ideally), every submesh holds its own copy of ``B_i`` (made
affordable by the Step 1/2 labelling and distribution scheme), and every
submesh advances *its resident queries* through the band with Lemma 1's
two-phase solver:

* Phase 1: the ``B_i``-submesh is cut into ``Delta h_i x Delta h_i``
  ``B_i^1``-submeshes, each holding a copy of the (much smaller) prefix
  ``B_i^1``; queries advance level by level inside those tiny submeshes —
  ``Delta h_i`` levels at ``O(sqrt(|B_i|) / Delta h_i)`` each =
  ``O(sqrt(|B_i|))``.
* Phase 2: the last ``O(log Delta h_i)`` levels (``B_i^2``) advance level
  by level on the whole ``B_i``-submesh.

Implementation notes (cost honesty):

* All ``B_i``-submeshes execute the identical schedule simultaneously, so
  the parallel-max cost equals one submesh's cost; the engine clock is
  charged once per primitive at the submesh's side, and the data movement
  of all submeshes is executed as one vectorized batch per level (each
  query reads only vertices of the current band, which its submesh's copy
  holds, so the batch is observationally identical to the per-submesh
  RARs it accounts for).
* Granularities adapt to capacity: ``g_i`` (and the inner grid ``q_i``)
  shrink below their ideal values when a band's record count would not
  fit in ``O(1)`` words per processor of the ideal submesh — this only
  happens at small ``n``, where the paper's asymptotic constants have not
  kicked in, and degrades cost, never correctness.
* Queries are advanced strictly level-synchronously; a query whose search
  path starts below ``L_0`` simply joins when its band is processed, and
  a query whose successor returns STOP drops out.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.core.bands import Band, BandDecomposition, compute_bands
from repro.core.model import STOP, MultisearchResult, QuerySet, SearchStructure
from repro.mesh.engine import MeshEngine
from repro.mesh.faults import paranoid_boundary
from repro.mesh.records import fused_view, should_fuse
from repro.mesh.trace import traced
from repro.util.mathx import iterated_log

__all__ = ["BandPlan", "HierDagPlan", "plan_hierdag", "hierdag_multisearch", "lemma1_band_steps"]


@dataclass(frozen=True)
class BandPlan:
    """Execution plan for one band ``B_i``."""

    band: Band
    #: ``B_i``-partition granularity (mesh cut into g x g submeshes)
    g: int
    #: inner ``B_i^1`` grid granularity within a ``B_i``-submesh
    q: int
    #: side of one ``B_i``-submesh
    sub_side: int
    #: side of one ``B_i^1``-submesh
    inner_side: int


@dataclass
class HierDagPlan:
    """Full Algorithm 1 plan: per-band grids plus the ``B*`` tail."""

    decomposition: BandDecomposition
    bands: list[BandPlan]
    mesh_side: int
    records_per_vertex: int

    @property
    def grids(self) -> list[int]:
        return [bp.g for bp in self.bands]


def _records(level_sizes: np.ndarray, lo: int, hi: int, rec_per_vertex: int) -> int:
    return int(level_sizes[lo : hi + 1].sum()) * rec_per_vertex


def plan_hierdag(
    structure: SearchStructure,
    mesh_side: int,
    mu: float,
    c: int | None = None,
    per_proc: int = 8,
) -> HierDagPlan:
    """Choose band grids for Algorithm 1 on a ``mesh_side^2`` mesh.

    ``per_proc`` is the O(1) records-per-processor budget used when
    shrinking grids below the ideal ``g_i = log^(i) h``.
    """
    level_sizes = np.bincount(structure.level, minlength=int(structure.level.max()) + 1)
    deco = compute_bands(level_sizes, mu, c)
    rec_per_vertex = 1 + structure.max_degree  # vertex + adjacency words
    plans: list[BandPlan] = []
    prev_g = mesh_side  # g_i must not exceed the previous (finer) grid
    for band in deco.bands:
        ideal = max(1, int(math.floor(iterated_log(deco.h, band.index, mu))))
        g = min(ideal, prev_g)
        records = _records(level_sizes, band.lo_level, band.hi_level, rec_per_vertex)
        while g > 1 and (mesh_side // g) ** 2 * per_proc < records:
            g -= 1
        sub_side = max(1, mesh_side // g)
        # inner grid for Phase 1
        q = 1
        inner_side = sub_side
        b1 = band.b1_levels
        if b1 is not None:
            ideal_q = band.n_levels
            q = max(1, min(ideal_q, sub_side))
            rec1 = _records(level_sizes, b1[0], b1[1], rec_per_vertex)
            while q > 1 and (sub_side // q) ** 2 * per_proc < rec1:
                q -= 1
            inner_side = max(1, sub_side // q)
        plans.append(BandPlan(band, g, q, sub_side, inner_side))
        prev_g = g
    return HierDagPlan(deco, plans, mesh_side, rec_per_vertex)


def _cached_plan(
    structure: SearchStructure, mesh_side: int, mu: float, c: int | None
) -> HierDagPlan:
    """Memoized :func:`plan_hierdag` (the plan is a pure function of the
    structure's level histogram and the parameters).

    Cached on the structure object, guarded by the identity of its level
    array; replacing ``structure.level`` invalidates the entry.  Used by
    the fast path so repeated multisearches over one structure stop
    re-deriving the same band grids.
    """
    key = (mesh_side, mu, c)
    cached = getattr(structure, "_repro_plan", None)
    if cached is not None and cached[0] == key and cached[1] is structure.level:
        return cached[2]
    plan = plan_hierdag(structure, mesh_side, mu, c)
    try:
        structure._repro_plan = (key, structure.level, plan)
    except (AttributeError, TypeError):  # frozen/slotted structures: no cache
        pass
    return plan


def _unit_level_steps(structure: SearchStructure) -> bool:
    """True when every edge drops exactly one level (cached on the structure).

    When it holds, an advancing query's new level is ``old + 1`` (or ``-1``
    on STOP), so the advancer can skip the random ``level[nxt]`` gather.
    """
    cached = getattr(structure, "_repro_unit_levels", None)
    if cached is not None and cached[0] is structure.adjacency:
        return cached[1]
    adj = structure.adjacency
    lvl = structure.level
    valid = adj >= 0
    ok = bool(
        np.array_equal(
            lvl[adj[valid]], np.broadcast_to(lvl[:, None] + 1, adj.shape)[valid]
        )
    )
    try:
        structure._repro_unit_levels = (structure.adjacency, ok)
    except (AttributeError, TypeError):  # frozen/slotted structures: no cache
        pass
    return ok


def _advance_level(structure: SearchStructure, qs: QuerySet, level: int) -> int:
    """Advance every active query currently at ``level`` by one step."""
    act = qs.current != STOP
    if not act.any():
        return 0
    cur = qs.current
    at = act & (structure.level[np.clip(cur, 0, None)] == level) & (cur >= 0)
    idx = np.flatnonzero(at)
    if idx.size == 0:
        qs.log_visit()
        return 0
    cs = cur[idx]
    nxt, new_state = structure.successor(
        cs,
        structure.payload[cs],
        structure.adjacency[cs],
        structure.level[cs],
        qs.key[idx],
        qs.state[idx],
    )
    qs.current[idx] = nxt
    qs.state[idx] = new_state
    qs.steps[idx] += 1
    qs.log_visit()
    return int(idx.size)


class _FastAdvancer:
    """Host-fast equivalent of :func:`_advance_level` for one multisearch run.

    Instead of re-deriving "which queries sit at this level" from scratch
    every level (a clip + gather + three comparisons over all ``m``
    queries), it carries each query's current level in an array that the
    advance itself keeps up to date, and gathers the selected queries'
    vertex records straight out of the structure's packed
    :func:`fused_view` block — one row fancy-index per advance.

    The query side is packed the same way: an *owned* int64 block
    ``[current, steps, key-bits, state-bits]`` (floats bit-cast) feeds
    each advance with a single row gather and is flushed back into the
    :class:`QuerySet` by :meth:`flush` — required after the last advance.
    Successor inputs are column *views* of the gathered rows (the
    Section 2 contract already makes them read-only to successors), so
    selection set, successor inputs and query-state updates are
    element-for-element those of :func:`_advance_level` and outputs are
    byte-identical.  With ``record_trace`` on, ``qs.current`` must stay
    live at every visit, so the advancer operates on ``qs`` directly.
    """

    def __init__(self, structure: SearchStructure, qs: QuerySet) -> None:
        self.structure = structure
        self.qs = qs
        fv = fused_view(structure)
        self.vblk, self._pc, self._pw, self._pdt = fv.span("payload")
        _, self._ac, self._aw, _ = fv.span("adjacency")
        _, self._lc, _, _ = fv.span("level")
        levels = np.full(qs.m, -1, dtype=np.int64)
        at = qs.current >= 0  # active and placed (STOP is the only negative)
        levels[at] = structure.level[qs.current[at]]
        self.levels = levels
        self._unit = _unit_level_steps(structure)
        self._owned = not qs.record_trace
        if self._owned:
            m = qs.m
            self._key_1d = qs.key.ndim == 1
            kw = 1 if self._key_1d else qs.key.shape[1]
            sw = qs.state.shape[1]
            key = np.ascontiguousarray(qs.key).reshape(m, kw).view(np.int64)
            state = np.ascontiguousarray(qs.state).reshape(m, sw).view(np.int64)
            self._kc, self._kw = 2, kw
            self._sc, self._sw = 2 + kw, sw
            self.qblk = np.concatenate(
                [qs.current[:, None], qs.steps[:, None], key, state], axis=1
            )

    def flush(self) -> None:
        """Write the owned query block back into the :class:`QuerySet`."""
        if not self._owned:
            return
        qs = self.qs
        qs.current[:] = self.qblk[:, 0]
        qs.steps[:] = self.qblk[:, 1]
        qs.state[...] = (
            self.qblk[:, self._sc : self._sc + self._sw]
            .view(np.float64)
            .reshape(qs.state.shape)
        )

    def advance(self, level: int) -> int:
        if not self._owned:
            return self._advance_traced(level)
        sel = np.flatnonzero(self.levels == level)
        if sel.size == 0:
            return 0  # log_visit is a no-op without tracing
        full = sel.size == self.levels.shape[0]
        qrow = self.qblk if full else self.qblk[sel]
        cs = qrow[:, 0]
        vrow = self.vblk[cs]
        payload = vrow[:, self._pc : self._pc + self._pw].view(self._pdt)
        adjacency = vrow[:, self._ac : self._ac + self._aw]
        vlevel = vrow[:, self._lc]
        if self._key_1d:
            key = qrow[:, self._kc].view(np.float64)
        else:
            key = qrow[:, self._kc : self._kc + self._kw].view(np.float64)
        st = qrow[:, self._sc : self._sc + self._sw].view(np.float64)
        nxt, new_state = self.structure.successor(
            cs, payload, adjacency, vlevel, key, st
        )
        if self._unit:  # new level is old + 1 (or -1 on STOP): no gather
            lv = np.where(nxt >= 0, vlevel + 1, np.int64(-1))
        else:
            # negative ids (STOP == -1) wrap to a garbage level, then fixed
            lv = self.structure.level[nxt]
            lv[nxt < 0] = -1
        if full:  # sel is arange(m): write whole columns, rebind levels
            self.qblk[:, 0] = nxt
            self.qblk[:, 1] += 1
            if new_state is not st:
                self.qblk[:, self._sc : self._sc + self._sw] = (
                    np.ascontiguousarray(new_state, dtype=np.float64)
                    .reshape(nxt.shape[0], -1)
                    .view(np.int64)
                )
            self.levels = lv
        else:
            self.qblk[sel, 0] = nxt
            self.qblk[sel, 1] = qrow[:, 1] + 1
            if new_state is not st:
                self.qblk[sel, self._sc : self._sc + self._sw] = (
                    np.ascontiguousarray(new_state, dtype=np.float64)
                    .reshape(nxt.shape[0], -1)
                    .view(np.int64)
                )
            self.levels[sel] = lv
        return int(sel.size)

    def _advance_traced(self, level: int) -> int:
        qs = self.qs
        sel = np.flatnonzero(self.levels == level)
        if sel.size == 0:
            if qs.active.any():  # mirror _advance_level's log/no-log split
                qs.log_visit()
            return 0
        cs = qs.current[sel]
        vrow = self.vblk[cs]
        st = qs.state[sel]
        nxt, new_state = self.structure.successor(
            cs,
            vrow[:, self._pc : self._pc + self._pw].view(self._pdt),
            vrow[:, self._ac : self._ac + self._aw],
            vrow[:, self._lc],
            qs.key[sel],
            st,
        )
        qs.current[sel] = nxt
        if new_state is not st:  # writing the gathered state back is a no-op
            qs.state[sel] = new_state
        qs.steps[sel] += 1
        if self._unit:
            lv = np.where(nxt >= 0, vrow[:, self._lc] + 1, np.int64(-1))
        else:
            lv = self.structure.level[nxt]
            lv[nxt < 0] = -1
        self.levels[sel] = lv
        qs.log_visit()
        return int(sel.size)


def lemma1_band_steps(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    plan: BandPlan,
    label: str = "hierdag",
    advancer: "_FastAdvancer | None" = None,
) -> dict[str, float]:
    """Lemma 1: solve the multisearch for one band on its submeshes.

    Charges: Phase 1 — one duplication of ``B_i^1`` (constant number of
    standard ops at submesh side) plus one RAR+local per ``B_i^1`` level
    at the inner side; Phase 2 — one RAR+local per ``B_i^2`` level at the
    submesh side.  Returns the per-phase charges for diagnostics.
    """
    clock = engine.clock
    cost = clock.cost
    local_advancer = None
    if advancer is None and engine.fast_path and should_fuse(structure):
        advancer = local_advancer = _FastAdvancer(structure, qs)
    step = advancer.advance if advancer is not None else (
        lambda lvl: _advance_level(structure, qs, lvl)
    )
    detail = {"phase1": 0.0, "phase2": 0.0, "dup_b1": 0.0}
    band = plan.band
    b1 = band.b1_levels
    if b1 is not None:
        with traced(clock, f"{label}:phase1"):
            detail["dup_b1"] += engine.charge_phase(
                plan.sub_side, cost.sort + cost.route, f"{label}:dup-b1"
            )
            for lvl in range(b1[0], b1[1] + 1):
                detail["phase1"] += engine.charge_phase(
                    plan.inner_side, cost.route, f"{label}:phase1",
                    extra=cost.local,
                )
                step(lvl)
    lo2, hi2 = band.b2_levels
    with traced(clock, f"{label}:phase2"):
        for lvl in range(lo2, hi2 + 1):
            detail["phase2"] += engine.charge_phase(
                plan.sub_side, cost.route, f"{label}:phase2", extra=cost.local
            )
            step(lvl)
    if local_advancer is not None:  # caller-owned advancers flush later
        local_advancer.flush()
    return detail


def hierdag_multisearch(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    mu: float,
    c: int | None = None,
    plan: HierDagPlan | None = None,
) -> MultisearchResult:
    """Algorithm 1: multisearch on a hierarchical DAG in ``O(sqrt(n))``.

    Mutates ``qs`` (all queries run until their successor STOPs or the
    bottom level is passed) and charges the engine clock.  Returns a
    :class:`MultisearchResult` whose ``detail`` records per-stage charges.
    """
    clock = engine.clock
    cost = clock.cost
    if plan is None:
        if engine.fast_path:
            plan = _cached_plan(structure, engine.shape.rows, mu, c)
        else:
            plan = plan_hierdag(structure, engine.shape.rows, mu, c)
    deco = plan.decomposition
    start_time = clock.current
    detail: dict[str, float] = {}
    advancer = (
        _FastAdvancer(structure, qs)
        if engine.fast_path and should_fuse(structure)
        else None
    )

    with traced(clock, "hierdag"):
        # paranoid: the Lemma 1 proofs assume well-formed inputs; check them
        # once at entry (adversarial pointers/keys/levels are caught here,
        # before any primitive can crash on them)
        paranoid_boundary(engine, "hierdag:entry", structure=structure, qs=qs)
        # Steps 1-2: labelling and band distribution.  Step 1 is t local
        # passes; Step 2 per band i is a constant number of standard ops per
        # B_{i+1}-submesh (distribute B_i among label-i processors, replicate
        # the union of earlier bands into each B_i-submesh), all submeshes in
        # parallel -> charged at the B_{i+1}-submesh side.
        with traced(clock, "hierdag:setup"):
            clock.charge(cost.local * max(1, len(plan.bands)), "hierdag:labels")
            setup = 0.0
            for j, bp in enumerate(plan.bands):
                parent_side = plan.bands[j + 1].sub_side if j + 1 < len(plan.bands) else plan.mesh_side
                setup += engine.charge_phase(
                    parent_side, cost.sort + cost.route + cost.scan,
                    "hierdag:distribute",
                )
            detail["setup"] = setup

        # Step 3: per band, duplicate B_i into each B_i-submesh, then Lemma 1.
        multisteps = 0
        for j, bp in enumerate(plan.bands):
            with traced(clock, f"hierdag:band{j}"):
                parent_side = plan.bands[j + 1].sub_side if j + 1 < len(plan.bands) else plan.mesh_side
                dup = engine.charge_phase(
                    parent_side, cost.sort + cost.route, "hierdag:dup-band"
                )
                detail[f"band{j}:dup"] = dup
                d = lemma1_band_steps(engine, structure, qs, bp, advancer=advancer)
                for k, v in d.items():
                    detail[f"band{j}:{k}"] = v
                multisteps += bp.band.n_levels
                # paranoid: re-check the structure at each band boundary
                # (the queries' live state is flushed only at the end)
                paranoid_boundary(engine, f"hierdag:band{j}", structure=structure)

        # Step 4: B* level by level on the whole mesh (O(1) levels).
        bstar = 0.0
        with traced(clock, "hierdag:bstar"):
            for lvl in range(deco.bstar_lo, deco.h + 1):
                bstar += engine.charge_phase(
                    plan.mesh_side, cost.route, "hierdag:bstar", extra=cost.local
                )
                if advancer is not None:
                    advancer.advance(lvl)
                else:
                    _advance_level(structure, qs, lvl)
                multisteps += 1
        detail["bstar"] = bstar

        if advancer is not None:
            advancer.flush()
        paranoid_boundary(engine, "hierdag:exit", structure=structure, qs=qs)
    return MultisearchResult(
        queries=qs,
        mesh_steps=clock.current - start_time,
        multisteps=multisteps,
        detail=detail,
    )
