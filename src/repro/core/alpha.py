"""Multisearch for alpha-partitionable directed graphs (Section 4.5,
Algorithm 2, Theorem 5).

One *log-phase* advances every active query by Omega(log n) steps (or to
termination) in ``O(sqrt(n))`` time:

1. advance every query one step (full-mesh multistep) — on the first
   log-phase this is the initial visit of the first path vertex;
2. ``Constrained-Multisearch(G(S), alpha)``: queries run inside their
   current subgraph ``H_i`` or ``T_j`` until they would leave it;
3. advance every query one step — this carries the queries that stopped
   at the border of an ``H_i`` across the splitter edge into their ``T_j``
   (correctness case analysis in the proof of Lemma 4);
4. ``Constrained-Multisearch(G(S), alpha)`` again — the ``T_j`` leg.

The driver iterates log-phases until every query's search terminates,
``O(ceil(r / log n))`` iterations for longest path ``r``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constrained import ConstrainedStats, constrained_multisearch
from repro.core.model import (
    GraphStore,
    MultisearchResult,
    QuerySet,
    SearchStructure,
    advance_queries,
)
from repro.core.splitters import Splitting
from repro.mesh.engine import MeshEngine
from repro.mesh.faults import paranoid_boundary
from repro.mesh.trace import traced

__all__ = ["alpha_multisearch", "run_log_phase", "LogPhaseStats"]


@dataclass
class LogPhaseStats:
    """Diagnostics for one Algorithm 2/3 log-phase."""

    phase: int
    advanced_step1: int = 0
    advanced_step3: int = 0
    cm_stats: list[ConstrainedStats] = field(default_factory=list)


def run_log_phase(
    engine: MeshEngine,
    structure: SearchStructure,
    store: GraphStore,
    qs: QuerySet,
    splittings: tuple[Splitting, Splitting],
    phase: int,
) -> LogPhaseStats:
    """One log-phase (Algorithm 2 when both splittings coincide,
    Algorithm 3 when they are the S1/S2 pair)."""
    stats = LogPhaseStats(phase=phase)
    with traced(engine.clock, f"logphase{phase}"):
        if phase > 0:
            with traced(engine.clock, "logphase:step1"):
                adv = advance_queries(store, structure, qs, label="logphase:step1")
                stats.advanced_step1 = int(adv.sum())
        # step 2 (the constrained_multisearch call opens its own "cm" span)
        stats.cm_stats.append(
            constrained_multisearch(engine, structure, qs, splittings[0])
        )
        # step 3
        with traced(engine.clock, "logphase:step3"):
            adv = advance_queries(store, structure, qs, label="logphase:step3")
            stats.advanced_step3 = int(adv.sum())
        # step 4
        stats.cm_stats.append(
            constrained_multisearch(engine, structure, qs, splittings[1])
        )
        # Paranoid re-check at the phase boundary: the log-phase hands a
        # consistent (structure, qs) pair back to the driver.
        paranoid_boundary(engine, f"logphase{phase}:exit", structure=structure, qs=qs)
    return stats


def alpha_multisearch(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    splitting: Splitting,
    max_phases: int | None = None,
) -> MultisearchResult:
    """Theorem 5: multisearch on an alpha-partitionable directed graph.

    ``splitting`` must be the (normalized) alpha-splitting ``G(S) =
    {H_1..H_k1, T_1..T_k2}`` — component labels only; the H/T distinction
    is not needed at run time because Constrained-Multisearch treats all
    subgraphs uniformly and step 3 carries queries across the splitter.

    Runs until every query terminates; charges ``O(sqrt(n))`` per
    log-phase.  Returns per-phase diagnostics in ``detail``.
    """
    with traced(engine.clock, "alpha"):
        paranoid_boundary(
            engine, "alpha:entry", structure=structure, qs=qs, splitting=splitting
        )
        store = GraphStore.load(engine.root, structure)
        start = engine.clock.current
        phases: list[LogPhaseStats] = []
        limit = max_phases if max_phases is not None else 4 * structure.n_vertices + 16
        phase = 0
        while qs.active.any():
            if phase >= limit:
                raise RuntimeError(f"multisearch did not terminate in {limit} log-phases")
            phases.append(
                run_log_phase(engine, structure, store, qs, (splitting, splitting), phase)
            )
            phase += 1
        paranoid_boundary(engine, "alpha:exit", structure=structure, qs=qs)
        total_advanced = int(qs.steps.sum())
    return MultisearchResult(
        queries=qs,
        mesh_steps=engine.clock.current - start,
        multisteps=int(qs.steps.max(initial=0)),
        detail={
            "log_phases": float(phase),
            "total_advanced": float(total_advanced),
            "min_steps_per_phase": float(
                min((p.cm_stats[0].rounds for p in phases), default=0)
            ),
        },
    )
