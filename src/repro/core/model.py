"""The multisearch problem model (paper Section 2 and Appendix).

A *search structure* is a constant-degree graph ``G`` whose vertices carry
O(1) words of payload.  A *query* carries a constant-size key plus a small
mutable state, and a *successor function* ``f`` that, given one vertex's
record and one query's record, produces the next vertex to visit (or
``STOP``) in O(1) time — the on-line search-path model of the paper.

On the mesh, ``G``'s vertices live one per processor together with their
adjacency (Appendix "initial configuration"), and a query *visits* a
vertex when some processor holds copies of both records.  The mesh
algorithms move copies of vertex records to queries (never the reverse
semantics), which is what :class:`GraphStore` + :meth:`QuerySet.visit`
implement on top of the engine's RAR primitive.

:func:`run_reference` is the sequential oracle: it executes all search
processes directly (no mesh, no costs) and records the full search paths,
so every mesh algorithm can be verified query-by-query.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Protocol

import numpy as np

from repro.mesh.engine import Region

__all__ = [
    "STOP",
    "SuccessorFn",
    "SearchStructure",
    "QuerySet",
    "GraphStore",
    "MultisearchResult",
    "IllegalMoveError",
    "check_moves",
    "run_reference",
]

#: sentinel next-vertex id meaning "search path terminated"
STOP = -1


class SuccessorFn(Protocol):
    """Vectorized on-line successor function ``f``.

    All arguments are batched per-query: element *i* describes query *i*
    visiting its current vertex.  Must return ``(next_vertex_ids,
    new_state)`` where ``next_vertex_ids[i] == STOP`` terminates query *i*.
    Each element's computation may use only that element's inputs (O(1)
    information), which is what makes the function implementable in one
    local mesh step.
    """

    def __call__(
        self,
        vid: np.ndarray,
        vpayload: np.ndarray,
        vadjacency: np.ndarray,
        vlevel: np.ndarray,
        qkey: np.ndarray,
        qstate: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]: ...


@dataclass
class SearchStructure:
    """A search structure ``G`` plus its successor function.

    Attributes
    ----------
    adjacency:
        ``(V, d)`` int64 with ``-1`` padding.  For directed graphs these
        are the out-neighbours; for undirected graphs the full neighbour
        lists (both cases constant-degree).
    payload:
        ``(V, p)`` float64 per-vertex search information.
    level:
        ``(V,)`` int64; level index for hierarchical DAGs, depth for
        trees, zero otherwise.  The paper assumes this is precomputed.
    successor:
        The on-line successor function ``f``.
    labels:
        Optional per-vertex label arrays (splitter component indices etc.)
        stored alongside the vertex, as Section 4 assumes ("every
        processor stores ... an index indicating to which graph in G(S)
        the vertex belongs").
    """

    adjacency: np.ndarray
    payload: np.ndarray
    level: np.ndarray
    successor: SuccessorFn
    directed: bool = True
    labels: dict[str, np.ndarray] = field(default_factory=dict)

    def __post_init__(self) -> None:
        V = self.adjacency.shape[0]
        if self.payload.shape[0] != V or self.level.shape[0] != V:
            raise ValueError("adjacency/payload/level vertex counts differ")
        for name, arr in self.labels.items():
            if arr.shape[0] != V:
                raise ValueError(f"label {name!r} has wrong length")

    @property
    def n_vertices(self) -> int:
        return int(self.adjacency.shape[0])

    @property
    def n_edges(self) -> int:
        live = int((self.adjacency >= 0).sum())
        return live if self.directed else live // 2

    @property
    def size(self) -> int:
        """Paper's ``n = |V| + |E|``.

        Memoized against the adjacency array's identity: counting live
        edges is an O(V * d) reduction, and ``size`` is read at the top of
        every multisearch call.  Replacing ``adjacency`` invalidates the
        cache; mutating it in place (nothing in the codebase does) would
        require clearing ``_repro_size``.
        """
        cached = self.__dict__.get("_repro_size")
        if cached is not None and cached[0] is self.adjacency:
            return cached[1]
        n = self.n_vertices + self.n_edges
        self.__dict__["_repro_size"] = (self.adjacency, n)
        return n

    @property
    def max_degree(self) -> int:
        return int(self.adjacency.shape[1])


@dataclass
class QuerySet:
    """A batch of search queries with their live search state.

    ``current[i]`` is the vertex query *i* is visiting (``STOP`` once the
    search terminated or before it started); ``steps[i]`` counts advances;
    ``trace`` (optional) records every visited vertex for verification.
    """

    key: np.ndarray  # (m,) or (m, q) float64
    state: np.ndarray  # (m, s) float64
    current: np.ndarray  # (m,) int64
    steps: np.ndarray  # (m,) int64
    record_trace: bool = False
    trace: list[np.ndarray] = field(default_factory=list)

    @classmethod
    def start(
        cls,
        key: np.ndarray,
        start_vertex: np.ndarray | int,
        state_width: int = 1,
        record_trace: bool = False,
    ) -> "QuerySet":
        key = np.asarray(key, dtype=np.float64)
        m = key.shape[0]
        current = np.broadcast_to(np.asarray(start_vertex, dtype=np.int64), (m,)).copy()
        qs = cls(
            key=key,
            state=np.zeros((m, state_width)),
            current=current,
            steps=np.zeros(m, dtype=np.int64),
            record_trace=record_trace,
        )
        if record_trace:
            qs.trace.append(current.copy())
        return qs

    @property
    def m(self) -> int:
        return int(self.current.shape[0])

    @property
    def active(self) -> np.ndarray:
        return self.current != STOP

    def log_visit(self) -> None:
        if self.record_trace:
            self.trace.append(self.current.copy())

    def paths(self) -> list[list[int]]:
        """Per-query visited-vertex sequences (requires ``record_trace``).

        Consecutive duplicate entries are collapsed: mesh schedules log a
        visit snapshot after every round, including rounds in which a
        query did not move, whereas the reference logs one entry per
        advance.  A successor that legally moves along an edge never
        returns the current vertex, so collapsing is lossless.
        """
        if not self.record_trace:
            raise RuntimeError("trace recording was not enabled")
        stacked = np.stack(self.trace, axis=1)  # (m, T)
        out: list[list[int]] = []
        for row in stacked:
            path: list[int] = []
            for v in row:
                v = int(v)
                if v != STOP and (not path or path[-1] != v):
                    path.append(v)
            out.append(path)
        return out


@dataclass
class MultisearchResult:
    """Outcome of a mesh multisearch run."""

    queries: QuerySet
    mesh_steps: float
    multisteps: int
    detail: dict[str, float] = field(default_factory=dict)


class GraphStore:
    """Vertex records of (a subgraph of) ``G`` resident in a mesh region.

    Slot *j* of the region holds the record of global vertex ``ids[j]``;
    ``ids`` is kept sorted so membership/locating is the standard
    sort-and-merge, whose cost is part of every RAR/route charge.
    """

    def __init__(
        self,
        region: Region,
        ids: np.ndarray,
        adjacency: np.ndarray,
        payload: np.ndarray,
        level: np.ndarray,
        per_proc: int = 4,
    ) -> None:
        ids = np.asarray(ids, dtype=np.int64)
        order = np.argsort(ids, kind="stable")
        self.region = region
        self.ids = ids[order]
        self.adjacency = np.asarray(adjacency)[order]
        self.payload = np.asarray(payload)[order]
        self.level = np.asarray(level)[order]
        region.check_capacity(self.ids.size, per_proc=per_proc, what="vertex records")

    @classmethod
    def load(
        cls,
        region: Region,
        structure: SearchStructure,
        vertex_ids: np.ndarray | None = None,
        per_proc: int = 4,
    ) -> "GraphStore":
        """Place (a subgraph of) ``structure`` into ``region``."""
        if vertex_ids is None:
            vertex_ids = np.arange(structure.n_vertices, dtype=np.int64)
        vertex_ids = np.asarray(vertex_ids, dtype=np.int64)
        return cls(
            region,
            vertex_ids,
            structure.adjacency[vertex_ids],
            structure.payload[vertex_ids],
            structure.level[vertex_ids],
            per_proc=per_proc,
        )

    @property
    def n_local(self) -> int:
        return int(self.ids.size)

    def locate(self, vids: np.ndarray) -> np.ndarray:
        """Local slot of each global vertex id; ``-1`` if not resident."""
        vids = np.asarray(vids, dtype=np.int64)
        pos = np.searchsorted(self.ids, vids)
        pos_clip = np.clip(pos, 0, max(self.ids.size - 1, 0))
        hit = (self.ids.size > 0) & (vids >= 0)
        if self.ids.size:
            hit = hit & (self.ids[pos_clip] == vids)
        return np.where(hit, pos_clip, -1)

    def contains(self, vids: np.ndarray) -> np.ndarray:
        return self.locate(vids) >= 0

    def gather(self, vids: np.ndarray, label: str = "visit"):
        """RAR the records of ``vids`` to the requesting queries.

        Returns ``(found_mask, payload, adjacency, level)``; entries with
        ``found_mask == False`` are undefined.  One RAR charge on the
        region (covers the sort-and-merge concurrent-read simulation).
        """
        slots = self.locate(vids)
        payload, adjacency, level = self.region.rar(
            slots, self.payload, self.adjacency, self.level, label=label
        )
        return slots >= 0, payload, adjacency, level


def advance_queries(
    store: GraphStore,
    structure: SearchStructure,
    qs: QuerySet,
    mask: np.ndarray | None = None,
    label: str = "multistep",
) -> np.ndarray:
    """One multistep for the masked queries against ``store``'s region.

    Gathers each masked query's current vertex record (one RAR), applies
    the successor function (one local step), and moves the query pointers.
    Queries whose current vertex is not resident in the store are left
    untouched; returns the mask of queries that actually advanced.
    """
    if mask is None:
        mask = qs.active
    mask = mask & qs.active
    found, vpay, vadj, vlev = store.gather(qs.current, label=label)
    do = mask & found
    store.region.charge_local(1, label=label + ":f")
    if do.any():
        nxt, new_state = structure.successor(
            qs.current[do], vpay[do], vadj[do], vlev[do], qs.key[do], qs.state[do]
        )
        qs.current[do] = nxt
        qs.state[do] = new_state
        qs.steps[do] += 1
    qs.log_visit()
    return do


class IllegalMoveError(AssertionError):
    """A successor function proposed a move that is not along an edge of G."""


def check_moves(structure: SearchStructure, cur: np.ndarray, nxt: np.ndarray) -> None:
    """Assert every proposed move follows an edge (Section 2's contract).

    For directed graphs the move must be along an out-edge of the current
    vertex; for undirected graphs the adjacency rows already list all
    neighbours.  ``STOP`` is always legal.
    """
    live = nxt != STOP
    if not live.any():
        return
    allowed = (structure.adjacency[cur[live]] == nxt[live][:, None]).any(axis=1)
    if not allowed.all():
        bad = int(np.flatnonzero(live)[~allowed][0])
        raise IllegalMoveError(
            f"successor moved query from vertex {int(cur[bad])} to "
            f"{int(nxt[bad])}, which is not a neighbour"
        )


def run_reference(
    structure: SearchStructure,
    key: np.ndarray,
    start_vertex: np.ndarray | int,
    state_width: int = 1,
    max_steps: int | None = None,
    validate_moves: bool = False,
) -> QuerySet:
    """Sequential oracle: run every search process to completion.

    No mesh, no costs — used to verify mesh algorithms.  ``max_steps``
    guards against non-terminating successor functions (default
    ``4 * V + 16``).  ``validate_moves`` additionally asserts that every
    step follows an edge of ``G`` (catches successor functions that
    violate the Section 2 contract; the mesh algorithms silently assume
    it, so enable this when developing a new structure).
    """
    qs = QuerySet.start(key, start_vertex, state_width, record_trace=True)
    limit = max_steps if max_steps is not None else 4 * structure.n_vertices + 16
    for _ in range(limit):
        act = qs.active
        if not act.any():
            break
        cur = qs.current[act]
        nxt, new_state = structure.successor(
            cur,
            structure.payload[cur],
            structure.adjacency[cur],
            structure.level[cur],
            qs.key[act],
            qs.state[act],
        )
        if validate_moves:
            check_moves(structure, cur, np.asarray(nxt))
        qs.current[act] = nxt
        qs.state[act] = new_state
        qs.steps[act] += 1
        qs.log_visit()
    else:
        if qs.active.any():
            raise RuntimeError(
                f"{int(qs.active.sum())} queries still active after {limit} steps"
            )
    return qs
