"""The ``B_i`` band decomposition of a hierarchical DAG (paper Section 3).

With all logarithms base ``mu`` and ``log^(0) x = x/2``, the paper defines
band boundaries ``l_i = h - 2 * log^(i) h`` and

* ``B_i`` = the subgraph induced by levels ``[l_i, l_{i+1} - 1]`` for
  ``0 <= i <= log*h - 1`` (so ``l_0 = 0``: the bands start at the root);
* ``B*`` = levels ``[l_{log*h}, h]``.

(The paper's text says ``B*`` starts at ``h - 2 log^(log*h - 1) h``, which
would overlap all of ``B_{log*h-1}``; the exponent must be ``log*h`` for
the bands to tile the levels, and then ``log^(log*h) h < mu^c`` makes
``B*`` O(1) levels — we implement the corrected version and note it here.)

Facts reproduced by F4/F5 and the tests:

* ``|B_i| = O(mu^(h - 2 log^(i+1) h)) = O(n / (log^(i) h)^2)``,
* ``Delta h_i = l_{i+1} - l_i = O(log^(i) h)``,
* the ``B_i^1`` / ``B_i^2`` split: with ``m_i = ceil(2 log_mu Delta h_i)``,
  ``B_i^1`` is all but the last ``m_i + 1`` levels of ``B_i`` and satisfies
  ``|B_i^1| = O(|B_i| / (Delta h_i)^2)``; ``B_i^2`` is the rest.

``compute_bands`` takes the exact level sizes, so all size claims can be
checked against actual vertex counts rather than the ``mu^i`` idealization.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.util.mathx import ilog, iterated_log, log_star, mu_constant

__all__ = ["Band", "BandDecomposition", "compute_bands"]


@dataclass(frozen=True)
class Band:
    """One band ``B_i``: levels ``[lo_level, hi_level]`` inclusive."""

    index: int
    lo_level: int
    hi_level: int
    #: number of vertices in the band
    n_vertices: int
    #: ``m_i``: number of level-steps handled by Phase 2 (``B_i^2``);
    #: ``B_i^1`` covers levels ``[lo_level, hi_level - m]`` (may be empty).
    m: int

    @property
    def n_levels(self) -> int:
        """The paper's ``Delta h_i``."""
        return self.hi_level - self.lo_level + 1

    @property
    def b1_levels(self) -> tuple[int, int] | None:
        """Level range of ``B_i^1`` = ``[lo, hi - 1 - m]``, or None if empty."""
        hi = self.hi_level - 1 - self.m
        if hi < self.lo_level:
            return None
        return (self.lo_level, hi)

    @property
    def b2_levels(self) -> tuple[int, int]:
        """Level range of ``B_i^2`` = ``[hi - m, hi]`` (clamped to the band)."""
        return (max(self.lo_level, self.hi_level - self.m), self.hi_level)


@dataclass(frozen=True)
class BandDecomposition:
    """Bands ``B_0 .. B_{t-1}`` plus the O(1)-level tail ``B*``."""

    mu: float
    h: int
    c: int
    log_star_h: int
    bands: tuple[Band, ...]
    bstar_lo: int
    bstar_n_vertices: int

    @property
    def bstar_levels(self) -> tuple[int, int]:
        return (self.bstar_lo, self.h)


def compute_bands(
    level_sizes: np.ndarray, mu: float, c: int | None = None
) -> BandDecomposition:
    """Compute the band decomposition for a DAG with the given level sizes.

    Degenerate cases (small ``h``, collapsing log towers, bands that would
    be empty) fold into ``B*``; correctness never depends on the bands
    being nontrivial, only the O(sqrt(n)) bound does (and only for large
    ``n``, as in the paper).
    """
    level_sizes = np.asarray(level_sizes, dtype=np.int64)
    h = int(level_sizes.size - 1)
    if c is None:
        c = mu_constant(mu)
    if h < 1:
        return BandDecomposition(mu, h, c, -1, (), 0, int(level_sizes.sum()))
    t = log_star(h, mu, c)
    cum = np.concatenate([[0], np.cumsum(level_sizes)])

    def band_vertices(lo: int, hi: int) -> int:
        return int(cum[hi + 1] - cum[lo])

    # boundaries l_i = h - 2 log^(i) h, clamped and monotone
    bounds: list[int] = []
    for i in range(max(t, 0) + 1):
        v = iterated_log(h, i, mu)
        li = max(0, int(math.ceil(h - 2.0 * v)))
        bounds.append(li)
    for j in range(1, len(bounds)):
        bounds[j] = max(bounds[j], bounds[j - 1])

    bands: list[Band] = []
    if t >= 1:
        for i in range(t):
            lo, hi = bounds[i], bounds[i + 1] - 1
            if hi < lo:
                continue  # empty band folds away
            dh = hi - lo + 1
            m = int(math.ceil(2.0 * ilog(dh, mu))) if dh >= 2 else dh - 1
            m = max(0, min(m, dh - 1))
            bands.append(Band(len(bands), lo, hi, band_vertices(lo, hi), m))
    bstar_lo = bounds[t] if t >= 1 else 0
    return BandDecomposition(
        mu=mu,
        h=h,
        c=c,
        log_star_h=t,
        bands=tuple(bands),
        bstar_lo=bstar_lo,
        bstar_n_vertices=band_vertices(bstar_lo, h),
    )
