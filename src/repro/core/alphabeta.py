"""Multisearch for alpha-beta-partitionable undirected graphs
(Section 4.6, Algorithm 3, Theorem 7).

Identical shape to Algorithm 2, but the two Constrained-Multisearch calls
of a log-phase use *different* splittings: step 2 runs within the
components of the alpha-splitter ``S_1``, step 4 within those of the
beta-splitter ``S_2``.  Correctness (Lemma 6) rests on the distance
``Omega(log n)`` between the borders of ``S_1`` and ``S_2``: a query that
stops at the border of ``S_1`` is, after the single step-3 advance, at
least ``Omega(log n)`` steps away from the border of ``S_2``, so the
step-4 call can complete the log-phase without leaving its ``S_2``
component.
"""

from __future__ import annotations

from repro.core.alpha import LogPhaseStats, run_log_phase
from repro.core.model import GraphStore, MultisearchResult, QuerySet, SearchStructure
from repro.core.splitters import Splitting
from repro.mesh.engine import MeshEngine
from repro.mesh.faults import paranoid_boundary
from repro.mesh.trace import traced

__all__ = ["alphabeta_multisearch"]


def alphabeta_multisearch(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    splitting1: Splitting,
    splitting2: Splitting,
    max_phases: int | None = None,
) -> MultisearchResult:
    """Theorem 7: multisearch on an alpha-beta-partitionable undirected graph.

    ``splitting1``/``splitting2`` are the (normalized) splittings induced
    by the alpha- and beta-splitters; their borders must be Omega(log n)
    apart for the Theorem 7 bound (correctness holds regardless — a query
    that crosses both borders within one log-phase simply advances fewer
    steps that phase and the driver runs more phases).
    """
    with traced(engine.clock, "alphabeta"):
        paranoid_boundary(
            engine, "alphabeta:entry", structure=structure, qs=qs,
            splitting=splitting1,
        )
        paranoid_boundary(engine, "alphabeta:entry2", splitting=splitting2)
        store = GraphStore.load(engine.root, structure)
        start = engine.clock.current
        phases: list[LogPhaseStats] = []
        limit = max_phases if max_phases is not None else 4 * structure.n_vertices + 16
        phase = 0
        while qs.active.any():
            if phase >= limit:
                raise RuntimeError(f"multisearch did not terminate in {limit} log-phases")
            phases.append(
                run_log_phase(
                    engine, structure, store, qs, (splitting1, splitting2), phase
                )
            )
            phase += 1
        paranoid_boundary(engine, "alphabeta:exit", structure=structure, qs=qs)
    return MultisearchResult(
        queries=qs,
        mesh_steps=engine.clock.current - start,
        multisteps=int(qs.steps.max(initial=0)),
        detail={
            "log_phases": float(phase),
            "total_advanced": float(qs.steps.sum()),
        },
    )
