"""The paper's algorithms: multisearch on a mesh-connected computer.

Module map (paper section -> module):

========================================  =============================
Section 2 + Appendix (problem model)      :mod:`repro.core.model`
Section 3 bands ``B_i`` / ``B*``          :mod:`repro.core.bands`
Algorithm 1 Step 1 labels                 :mod:`repro.core.labels`
Section 3 / Algorithm 1 / Theorem 2       :mod:`repro.core.hierdag`
Section 4.1-4.3 splitters                 :mod:`repro.core.splitters`
Section 4.4 Constrained-Multisearch       :mod:`repro.core.constrained`
Section 4.5 / Algorithm 2 / Theorem 5     :mod:`repro.core.alpha`
Section 4.6 / Algorithm 3 / Theorem 7     :mod:`repro.core.alphabeta`
[DR90]-style synchronous baseline         :mod:`repro.core.baseline`
Closed-form predicted costs               :mod:`repro.core.analysis`
========================================  =============================
"""

from repro.core.model import (
    SearchStructure,
    QuerySet,
    MultisearchResult,
    run_reference,
)
from repro.core.constrained import constrained_multisearch
from repro.core.hierdag import hierdag_multisearch
from repro.core.alpha import alpha_multisearch
from repro.core.alphabeta import alphabeta_multisearch
from repro.core.baseline import synchronous_multisearch

__all__ = [
    "SearchStructure",
    "QuerySet",
    "MultisearchResult",
    "run_reference",
    "constrained_multisearch",
    "hierdag_multisearch",
    "alpha_multisearch",
    "alphabeta_multisearch",
    "synchronous_multisearch",
]
