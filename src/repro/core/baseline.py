"""The synchronous multisearch baseline ([DR90]-style).

The hypercube algorithm of Dehne & Rau-Chaplin moves *all* queries
synchronously one step at a time; each advancement is a full-network
concurrent read and costs time proportional to the network diameter.  On
the mesh that is ``O(sqrt(n))`` per multistep and ``O(r * sqrt(n))``
total — exactly the strategy the paper's introduction rules out as
non-viable, and the natural comparator for experiments E1/E3/E4.

It is also the correct *reference mesh algorithm*: always ``O(1)`` memory,
no assumptions on ``G`` beyond constant degree.
"""

from __future__ import annotations

from repro.core.model import (
    GraphStore,
    MultisearchResult,
    QuerySet,
    SearchStructure,
    advance_queries,
)
from repro.mesh.engine import MeshEngine

__all__ = ["synchronous_multisearch"]


def synchronous_multisearch(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    max_steps: int | None = None,
) -> MultisearchResult:
    """Advance all queries in lockstep, one full-mesh RAR per multistep."""
    store = GraphStore.load(engine.root, structure)
    start = engine.clock.current
    limit = max_steps if max_steps is not None else 4 * structure.n_vertices + 16
    multisteps = 0
    while qs.active.any():
        if multisteps >= limit:
            raise RuntimeError(f"baseline did not terminate in {limit} multisteps")
        advance_queries(store, structure, qs, label="baseline:multistep")
        multisteps += 1
    return MultisearchResult(
        queries=qs,
        mesh_steps=engine.clock.current - start,
        multisteps=multisteps,
        detail={"multisteps": float(multisteps)},
    )
