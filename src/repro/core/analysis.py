"""Closed-form predicted mesh costs for the paper's theorems.

Benches compare measured ``engine.clock`` step counts against these
predictions; the point is the *shape* (ratios bounded, crossovers in the
right place), not the constants, but the constants here are derived from
the same :class:`~repro.mesh.clock.CostModel` the engine charges, so the
agreement is usually tight.
"""

from __future__ import annotations

import math

from repro.mesh.clock import CostModel

__all__ = [
    "predict_sqrt_n",
    "predict_theorem5",
    "predict_baseline",
    "predict_logphase",
    "crossover_r",
]


def predict_sqrt_n(n: int, constant: float = 1.0) -> float:
    """``constant * sqrt(n)`` — Theorem 2 / Lemma 3 / Lemma 4 shape."""
    return constant * math.sqrt(n)


def predict_logphase(n: int, cost: CostModel | None = None) -> float:
    """Predicted steps for one Algorithm 2/3 log-phase on an n-mesh.

    2 full-mesh multisteps (RAR + local) + 2 Constrained-Multisearch
    calls; each CM is ~5 global ops plus ``log2 n`` submesh rounds at side
    ``n^(1/4)`` (for delta = 1/2).
    """
    cost = cost or CostModel()
    side = math.sqrt(n)
    advance = cost.route * side + cost.local
    cm_global = (cost.route * 4 + cost.sort) * side
    cm_rounds = math.log2(max(n, 2)) * (cost.route * n**0.25 + cost.local)
    return 2 * advance + 2 * (cm_global + cm_rounds)


def predict_theorem5(n: int, r: int, cost: CostModel | None = None) -> float:
    """``O(sqrt(n) + r sqrt(n)/log n)``: log-phases needed for path length r."""
    phases = max(1, math.ceil(r / math.log2(max(n, 2))))
    return phases * predict_logphase(n, cost)


def predict_baseline(n: int, r: int, cost: CostModel | None = None) -> float:
    """Synchronous baseline: ``r`` full-mesh multisteps."""
    cost = cost or CostModel()
    return r * (cost.route * math.sqrt(n) + cost.local)


def crossover_r(n: int, cost: CostModel | None = None) -> float:
    """Path length ``r`` beyond which Theorem 5 beats the baseline.

    Solves ``predict_theorem5(n, r) = predict_baseline(n, r)`` treating
    the phase count as the continuous ``r / log2 n``; the paper's claim is
    that this is ``Theta(log n)`` (constant number of log-phases).
    """
    cost = cost or CostModel()
    per_step_base = cost.route * math.sqrt(n) + cost.local
    per_phase = predict_logphase(n, cost)
    # baseline: r * per_step_base ; ours: (r / log n) * per_phase
    # equal when r * per_step_base = (r / log n) * per_phase, i.e. never in r;
    # ours wins iff per_phase / log n < per_step_base, so the crossover is
    # the r at which one full phase pays off:
    return per_phase / per_step_base
