"""Algorithm 1 Step 1: the processor labelling scheme.

Iterating ``i = log*h - 1 .. 0``, every ``B_{i+1}``-submesh marks the
processors of its top-left ``B_i``-submesh with label ``i`` (later, smaller
``i`` overwrite).  In Step 2, the processors of each ``B_{i+1}``-submesh
with label ``i`` store that submesh's copy of ``B_i``.

The paper's counting argument (reproduced by ``count_label_fraction`` and
checked in the tests) is that the later overwrites steal only a
``sum_j (log^(j+1) h / log^(j) h)^2`` fraction, so each ``B_i``-submesh
keeps ``Theta(n / (log^(i) h)^2)`` label-``i`` processors — enough to store
``B_i`` with O(1) words each.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.topology import RegionSpec, block_partition

__all__ = ["compute_labels", "count_label_fraction", "distribute_evenly"]


def compute_labels(side: int, grids: list[int]) -> np.ndarray:
    """Label grid for a ``side x side`` mesh.

    ``grids[i]`` is the ``B_i``-partitioning granularity ``g_i`` (the mesh
    is cut into ``g_i x g_i`` ``B_i``-submeshes); ``grids`` must be
    non-increasing in block size, i.e. ``g_0 >= g_1 >= ... >= g_{t-1}``.
    Returns an ``(side, side)`` int array with label ``i`` on the
    processors assigned to store ``B_i`` copies, and ``-1`` elsewhere.
    """
    t = len(grids)
    labels = np.full((side, side), -1, dtype=np.int64)
    root = RegionSpec(0, 0, side, side)
    for i in range(t - 1, -1, -1):
        gi = grids[i]
        g_next = grids[i + 1] if i + 1 < t else 1
        # each B_{i+1}-submesh marks its top-left B_i-submesh
        for parent in block_partition(root, g_next, g_next):
            inner = max(1, gi // g_next)
            blocks = block_partition(parent, inner, inner)
            top_left = blocks[0]
            labels[
                top_left.row0 : top_left.row_end, top_left.col0 : top_left.col_end
            ] = i
    return labels


def count_label_fraction(labels: np.ndarray, grids: list[int], i: int) -> float:
    """Minimum surviving label-``i`` fraction over the labelled submeshes.

    Step 1 labels, inside every ``B_{i+1}``-submesh, the processors of its
    *top-left* ``B_i``-submesh; later iterations (smaller ``j``) overwrite
    some of them.  The paper's counting argument bounds the surviving
    fraction below by ``1 - sum_{j<i} (g_{j+1} / g_j)^2 = Theta(1)``; this
    returns the worst observed fraction over all labelled windows.
    """
    side = labels.shape[0]
    root = RegionSpec(0, 0, side, side)
    t = len(grids)
    gi = grids[i]
    g_next = grids[i + 1] if i + 1 < t else 1
    worst = 1.0
    for parent in block_partition(root, g_next, g_next):
        inner = max(1, gi // g_next)
        top_left = block_partition(parent, inner, inner)[0]
        window = labels[
            top_left.row0 : top_left.row_end, top_left.col0 : top_left.col_end
        ]
        worst = min(worst, float((window == i).mean()))
    return worst


def distribute_evenly(eligible: np.ndarray, n_records: int) -> np.ndarray:
    """Theorem 2 Step 2(a)'s recursive distribution (Appendix, 5 steps).

    Spread ``n_records`` data items over the ``eligible`` (label = i)
    processors of a square window so that every eligible processor holds
    an almost-equal share: recursively split the square into four
    quadrants, apportion the records in proportion to each quadrant's
    eligible count (ceil for the leading quadrants so nothing is lost),
    and recurse until O(1)-size subsquares.

    Returns a grid of per-processor record counts.  Guarantee (tested):
    counts differ by at most 1 among eligible processors, ineligible
    processors hold 0, and the counts sum to ``n_records``.
    """
    eligible = np.asarray(eligible, dtype=bool)
    if eligible.ndim != 2:
        raise ValueError("eligible must be a 2-d window")
    total = int(eligible.sum())
    if n_records > 0 and total == 0:
        raise ValueError("no eligible processors to hold the records")
    counts = np.zeros(eligible.shape, dtype=np.int64)

    def recurse(r0: int, c0: int, rows: int, cols: int, records: int) -> None:
        # invariant: base * k <= records <= (base + 1) * k for the window's
        # eligible count k, where base = records // k — i.e. the records
        # can be placed with per-processor counts in {base, base + 1}
        if records == 0:
            return
        window = eligible[r0 : r0 + rows, c0 : c0 + cols]
        k = int(window.sum())
        if rows * cols <= 4 or rows == 1 or cols == 1:
            # O(1)-size base case: split evenly over eligible processors
            pos = np.argwhere(window)
            base, extra = divmod(records, k)
            for j, (rr, cc) in enumerate(pos):
                counts[r0 + rr, c0 + cc] += base + (1 if j < extra else 0)
            return
        half_r, half_c = (rows + 1) // 2, (cols + 1) // 2
        quads = [
            (r0, c0, half_r, half_c),
            (r0, c0 + half_c, half_r, cols - half_c),
            (r0 + half_r, c0, rows - half_r, half_c),
            (r0 + half_r, c0 + half_c, rows - half_r, cols - half_c),
        ]
        quads = [(a, b, h, w) for a, b, h, w in quads if h > 0 and w > 0]
        base, extra = divmod(records, k)
        for a, b, h, w in quads:
            kq = int(eligible[a : a + h, b : b + w].sum())
            if kq == 0:
                continue
            eq = min(kq, extra)
            extra -= eq
            recurse(a, b, h, w, base * kq + eq)
        if extra:  # pragma: no cover - arithmetic guard
            raise RuntimeError("distribution did not place every record")

    recurse(0, 0, eligible.shape[0], eligible.shape[1], n_records)
    return counts
