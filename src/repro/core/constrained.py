"""Constrained-Multisearch (paper Section 4.4, Lemma 3).

Given a splitting ``Psi = {G_1, ..., G_k}`` with ``|G_i| = O(n^delta)`` and
``k = O(n^(1-delta))``, advance every query currently visiting a vertex of
some ``G_i`` by up to ``log2 n`` steps, stopping early when the next vertex
leaves its subgraph.  Implementation follows the paper's seven steps:

1. mark queries whose current vertex lies in some ``G_i``;
2. compute the congestion ``Gamma_i = ceil(#queries in G_i / n^delta)``;
3. exit if no query is marked;
4. create ``Gamma_i`` copies of each ``G_i``, one per *virtual
   delta-submesh* (the mesh is cut into a grid of physical submeshes of
   ``~n^delta`` processors, each simulating O(1) virtual ones);
5. route every marked query to a copy of its subgraph, at most
   ``O(n^delta)`` queries per copy;
6. ``log2 n`` rounds: each copy advances its queries one step, unmarking
   those whose next vertex leaves the subgraph (they stay put);
7. discard the copies (and route the queries back for the next stage).

Cost: steps 1–5 and 7 are a constant number of full-mesh operations
(``O(sqrt(n))``); each round of step 6 runs on all delta-submeshes in
parallel (``O(sqrt(n^delta))`` per round, ``O(sqrt(n^delta) * log n) =
o(sqrt(n))`` total).  The engine charges exactly this: the global ops are
executed as root-region primitives; the per-round submesh work is charged
on the most-loaded physical submesh (the parallel max) while the data
movement of all copies is executed as one vectorized batch — each copy
only ever touches vertex records it owns, so the batch is observationally
identical to the per-submesh RARs it accounts for.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from repro.core.model import STOP, QuerySet, SearchStructure
from repro.core.splitters import Splitting
from repro.mesh.engine import MeshEngine, Region
from repro.mesh.faults import paranoid_boundary
from repro.mesh.records import fused_view, should_fuse
from repro.mesh.topology import block_spec
from repro.mesh.trace import traced
from repro.util.mathx import ceil_div

__all__ = ["constrained_multisearch", "ConstrainedStats"]


@dataclass
class ConstrainedStats:
    """Diagnostics from one Constrained-Multisearch call."""

    marked: int = 0
    copies_created: int = 0
    rounds: int = 0
    max_queries_per_copy: int = 0
    max_copies_per_submesh: int = 0
    advanced_total: int = 0
    steps_histogram: dict[int, int] = field(default_factory=dict)


def _grid_g(engine: MeshEngine, n: int, delta: float) -> int:
    """Grid granularity: ``g x g`` blocks of ``~n^delta`` processors."""
    sub_records = max(1.0, float(n) ** delta)
    sub_side = max(1, math.ceil(math.sqrt(sub_records)))
    return max(1, engine.shape.rows // sub_side)


def _delta_grid(engine: MeshEngine, n: int, delta: float) -> tuple[list[Region], int]:
    """Physical delta-submesh grid, fully materialized."""
    g = _grid_g(engine, n, delta)
    regions = engine.root.partition(g, g)
    return regions, g


def _grid_block(engine: MeshEngine, g: int, index: int) -> Region:
    """Block ``index`` (row-major) of the ``g x g`` grid, and nothing else.

    The fast path uses this in place of :func:`_delta_grid`: the procedure
    only ever touches block 0 (for the common submesh side) and the
    heaviest block (for the capacity spot-check), so materializing all
    ``g^2`` region objects per call is pure overhead.  ``block_spec``
    guarantees the same cuts as ``partition``.
    """
    spec = block_spec(engine.root.spec, g, g, index // g, index % g)
    return Region(engine, spec)


def constrained_multisearch(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    splitting: Splitting,
    rounds: int | None = None,
    stats: ConstrainedStats | None = None,
) -> ConstrainedStats:
    """Run Procedure Constrained-Multisearch(Psi, delta) on the engine.

    Mutates ``qs`` in place (query pointers, states, step counts) and
    charges the engine clock.  ``rounds`` defaults to ``ceil(log2 n)``
    where ``n = structure.size`` — the paper's ``x = log2 n``.
    """
    with traced(engine.clock, "cm"):
        paranoid_boundary(
            engine, "cm:entry", structure=structure, qs=qs, splitting=splitting
        )
        result = _constrained_multisearch(
            engine, structure, qs, splitting, rounds, stats
        )
        paranoid_boundary(engine, "cm:exit", structure=structure, qs=qs)
        return result


def _constrained_multisearch(
    engine: MeshEngine,
    structure: SearchStructure,
    qs: QuerySet,
    splitting: Splitting,
    rounds: int | None,
    stats: ConstrainedStats | None,
) -> ConstrainedStats:
    n = structure.size
    delta = splitting.delta
    root = engine.root
    if stats is None:
        stats = ConstrainedStats()
    if rounds is None:
        rounds = max(1, math.ceil(math.log2(max(n, 2))))
    stats.rounds = rounds

    fast = engine.fast_path

    # Step 1: mark queries whose current vertex is in some G_i.  The comp
    # label rides with the vertex record (Section 4 storage convention), so
    # this is one RAR of the label by current-vertex id.
    with traced(engine.clock, "cm:mark"):
        comp_table = splitting.comp
        cur = qs.current
        (comp_of_cur,) = root.rar(
            np.where(cur >= 0, cur, -1), comp_table, fill=-1, label="cm:mark"
        )
        marked = (cur != STOP) & (comp_of_cur >= 0)
        stats.marked = int(marked.sum())

        # Step 2: Gamma_i for every G_i (one combining RAW = sort + scan).
        k = splitting.n_components
        counts = root.raw(
            np.where(marked, comp_of_cur, -1),
            np.ones(qs.m, dtype=np.int64),
            size=max(k, 1),
            combine="add",
            label="cm:gamma",
        )
        cap = max(1, int(math.ceil(float(n) ** delta)))
        if fast:  # -(-c // cap) is ceil_div, applied to the whole count vector
            gamma = -(-counts.astype(np.int64) // cap)
        else:
            gamma = np.array([ceil_div(int(c), cap) for c in counts], dtype=np.int64)

    # Step 3: nothing to do?
    total_copies = int(gamma.sum())
    if total_copies == 0:
        return stats

    # Step 4: create the copies.  Virtual submesh c holds copy
    # (component_of_copy[c], replica index); copies are assigned to
    # physical submeshes round-robin.  Creating and distributing all
    # copies is a constant number of global sort/route operations
    # (total copied data = sum Gamma_i * |G_i| = O(n)).
    with traced(engine.clock, "cm:distribute"):
        if fast:
            # geometry only — the procedure touches block 0 (common submesh
            # side) and the heaviest block (capacity check); skip the other
            # g^2 - 2 region objects.
            g = _grid_g(engine, n, delta)
            n_phys = g * g
            first_block = _grid_block(engine, g, 0)
        else:
            regions, g = _delta_grid(engine, n, delta)
            n_phys = len(regions)
            first_block = regions[0]
        component_of_copy = np.repeat(np.arange(k), gamma)
        copy_base = np.concatenate([[0], np.cumsum(gamma)])  # component -> first copy id
        phys_of_copy = np.arange(total_copies) % n_phys
        stats.copies_created = total_copies
        copies_per_phys = np.bincount(phys_of_copy, minlength=n_phys)
        stats.max_copies_per_submesh = int(copies_per_phys.max())
        # the copy broadcast: executed as one root sort + route (records of
        # every G_i annotated with replica ids), charged as such.
        root.charge_local(1, label="cm:copy-plan")
        engine.charge_phase(root.side, engine.clock.cost.sort, "cm:copy-sort")
        engine.charge_phase(root.side, engine.clock.cost.route, "cm:copy-route")
        # capacity honesty: the heaviest physical submesh must hold its share
        # of copied records within O(1) words per processor.
        heavy = int(np.argmax(copies_per_phys))
        heavy_records = int(
            splitting.sizes[component_of_copy[phys_of_copy == heavy]].sum()
        ) if total_copies else 0
        heavy_region = _grid_block(engine, g, heavy) if fast else regions[heavy]
        heavy_region.check_capacity(
            heavy_records, per_proc=engine.capacity, what="copied subgraph records"
        )

        # Step 5: route marked queries to copies of their subgraphs.
        # rank within component -> replica = rank // cap  (so <= cap per copy).
        sort_key = np.where(marked, comp_of_cur, k)  # unmarked sort to the back
        order = root.argsort(sort_key, label="cm:query-sort")
        sorted_comp = sort_key[order]
        rank_sorted = root.segmented_scan(
            np.ones(qs.m, dtype=np.int64),
            sorted_comp,
            inclusive=False,
            label="cm:rank-scan",
        )
        ranked = np.empty(qs.m, dtype=np.int64)
        ranked[order] = rank_sorted
        copy_of_query = np.full(qs.m, -1, dtype=np.int64)
        mk = marked
        copy_of_query[mk] = copy_base[comp_of_cur[mk]] + ranked[mk] // cap
        engine.charge_phase(root.side, engine.clock.cost.route, "cm:query-route")
        if mk.any():
            per_copy = np.bincount(copy_of_query[mk], minlength=total_copies)
            stats.max_queries_per_copy = int(per_copy.max())
            if stats.max_queries_per_copy > cap:
                raise AssertionError("copy overloaded: Lemma 3 packing violated")

    # Step 6: log2 n rounds inside the delta-submeshes (parallel max).
    # Data movement is executed as one vectorized batch per round; the
    # cost is that of the most-loaded physical submesh: its virtual copies
    # run sequentially, each round costing one RAR + one local step on a
    # submesh of side regions[0].side.
    sub_side = first_block.side
    mc = stats.max_copies_per_submesh
    round_constant = engine.clock.cost.route * mc
    round_extra = engine.clock.cost.local * mc
    steps_in_cm = np.zeros(qs.m, dtype=np.int64)
    with traced(engine.clock, "cm:rounds"):
        if fast and not qs.record_trace and should_fuse(structure):
            # Index-based round loop over a fused vertex-record view: the live
            # set shrinks monotonically, so the loop owns compact per-live
            # arrays (current/key/state/step-count) and touches the full-width
            # query set only when a query drops out — per-round work is one
            # packed-row fancy-index plus compressions of the shrinking live
            # arrays, with successor inputs as column views of the rows.
            fv = fused_view(structure)
            vblk, pc, pw, pdt = fv.span("payload")
            _, ac, aw, _ = fv.span("adjacency")
            _, lc, _, _ = fv.span("level")
            li = np.flatnonzero(mk)
            comp_li = comp_of_cur[li]
            cur_li = qs.current[li]
            key_li = qs.key[li]
            state_li = qs.state[li]
            steps_li = np.zeros(li.size, dtype=np.int64)
            for _ in range(rounds):
                if not li.size:
                    break
                engine.charge_phase(sub_side, round_constant, "cm:round", extra=round_extra)
                vrow = vblk[cur_li]
                nxt, new_state = structure.successor(
                    cur_li,
                    vrow[:, pc : pc + pw].view(pdt),
                    vrow[:, ac : ac + aw],
                    vrow[:, lc],
                    key_li,
                    state_li,
                )
                # next vertex stays in the same subgraph copy?
                # np.maximum == np.clip(nxt, 0, None) without the iinfo lookup
                stays = (nxt != STOP) & (comp_table[np.maximum(nxt, 0)] == comp_li)
                stats.advanced_total += int(stays.sum())
                if stays.all():
                    cur_li = nxt
                    state_li = new_state
                    steps_li += 1
                    continue
                # queries that would leave stay at their last vertex and drop
                # out: flush their pre-round position/state and step counts
                out = ~stays
                drop = li[out]
                qs.current[drop] = cur_li[out]
                qs.state[drop] = state_li[out]
                stepped = steps_li[out]
                qs.steps[drop] += stepped
                steps_in_cm[drop] = stepped
                li = li[stays]
                comp_li = comp_li[stays]
                key_li = key_li[stays]
                cur_li = nxt[stays]
                state_li = np.ascontiguousarray(new_state[stays])
                steps_li = steps_li[stays] + 1
            if li.size:  # still-live queries flush once at round exhaustion
                qs.current[li] = cur_li
                qs.state[li] = state_li
                qs.steps[li] += steps_li
                steps_in_cm[li] = steps_li
        else:
            live = mk.copy()
            for _ in range(rounds):
                if not live.any():
                    break
                engine.charge_phase(sub_side, round_constant, "cm:round", extra=round_extra)
                cur_live = qs.current[live]
                nxt, new_state = structure.successor(
                    cur_live,
                    structure.payload[cur_live],
                    structure.adjacency[cur_live],
                    structure.level[cur_live],
                    qs.key[live],
                    qs.state[live],
                )
                # next vertex stays in the same subgraph copy?
                stays = (nxt != STOP) & (comp_table[np.clip(nxt, 0, None)] == comp_of_cur[live])
                li = np.flatnonzero(live)
                adv = li[stays]
                qs.current[adv] = nxt[stays]
                qs.state[adv] = new_state[stays]
                qs.steps[adv] += 1
                steps_in_cm[adv] += 1
                stats.advanced_total += int(stays.sum())
                # unmark queries that would leave (they stay at their last vertex)
                live[li[~stays]] = False
                qs.log_visit()

    # Step 7: discard copies; route the queries back to their home slots.
    with traced(engine.clock, "cm:return"):
        engine.charge_phase(root.side, engine.clock.cost.route, "cm:return-route")
        if fast:
            # histogram of small non-negative ints: bincount + nonzero yields
            # the same {value: count} dict (ascending) as np.unique, in O(n).
            counts_hist = np.bincount(steps_in_cm[mk]) if mk.any() else np.array([], dtype=np.int64)
            nz = np.flatnonzero(counts_hist)
            stats.steps_histogram = {int(v): int(counts_hist[v]) for v in nz}
        else:
            vals, cnts = np.unique(steps_in_cm[mk], return_counts=True) if mk.any() else ([], [])
            stats.steps_histogram = {int(v): int(c) for v, c in zip(vals, cnts)}
    return stats
