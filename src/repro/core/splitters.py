"""delta-splitters and splittings (paper Sections 4.1–4.3).

A splitting is represented *by labels*: ``comp[v]`` is the index of the
subgraph ``G_i`` containing vertex ``v`` (``-1`` when ``v`` is in none —
Section 4.4 explicitly allows the union of ``Psi`` to miss vertices).
This matches the paper's storage convention: "every processor stores ...
an index indicating to which ``G_i`` the vertex belongs, if any".

:func:`normalize_splitting` implements the normalization step of
Section 4.5: group subgraphs so that each resulting group has size
``Theta(n^delta)``, giving ``k = O(n^(1-delta))`` groups.  For
alpha-partitionable graphs the grouping must keep H-side and T-side
subgraphs apart (a group mixing them could receive a cut edge on both
ends), which the ``sides`` argument enforces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["Splitting", "normalize_splitting", "splitting_from_labels"]


@dataclass
class Splitting:
    """A set ``Psi = {G_1, ..., G_k}`` of disjoint subgraphs, by labels.

    Attributes
    ----------
    comp:
        ``(V,)`` int64; ``comp[v]`` is the subgraph index of vertex ``v``
        or ``-1``.
    n_components:
        ``k`` (component indices are dense ``0..k-1``).
    delta:
        The size exponent: every ``|G_i| = O(n^delta)``.
    sizes:
        ``(k,)`` vertex+internal-edge size of each subgraph.
    """

    comp: np.ndarray
    n_components: int
    delta: float
    sizes: np.ndarray

    def __post_init__(self) -> None:
        if self.n_components and int(self.comp.max(initial=-1)) >= self.n_components:
            raise ValueError("component label out of range")


def splitting_from_labels(
    comp: np.ndarray, adjacency: np.ndarray, delta: float
) -> Splitting:
    """Build a :class:`Splitting` from per-vertex labels, computing sizes."""
    comp = np.asarray(comp, dtype=np.int64)
    k = int(comp.max(initial=-1)) + 1
    sizes = np.bincount(comp[comp >= 0], minlength=k).astype(np.int64)
    src = np.repeat(np.arange(adjacency.shape[0]), adjacency.shape[1])
    dst = adjacency.ravel()
    live = (dst >= 0) & (comp[src] >= 0)
    same = live & (comp[src] == comp[dst.clip(min=0)])
    sizes += np.bincount(comp[src[same]], minlength=k)
    return Splitting(comp, k, float(delta), sizes)


def normalize_splitting(
    splitting: Splitting,
    n: int,
    sides: np.ndarray | None = None,
) -> Splitting:
    """Group subgraphs into ``Theta(n^delta)``-sized groups (Section 4.5).

    First-fit-decreasing within each side: components are sorted by size
    and packed greedily into groups of total size at most ``2 * n^delta``
    (any component alone is allowed to exceed that by its O(1) constant).
    ``sides[i]`` (optional, per component) partitions components into
    classes that must not share a group — used with H/T sides of an
    alpha-splitting.

    Returns a new :class:`Splitting` with relabelled ``comp``.
    """
    target = max(1.0, float(n) ** splitting.delta)
    k = splitting.n_components
    if sides is None:
        sides = np.zeros(k, dtype=np.int64)
    sides = np.asarray(sides)
    group_of = np.full(k, -1, dtype=np.int64)
    next_group = 0
    for side in np.unique(sides):
        members = np.flatnonzero(sides == side)
        order = members[np.argsort(-splitting.sizes[members], kind="stable")]
        open_group = -1
        open_load = 0.0
        for comp_idx in order:
            size = float(splitting.sizes[comp_idx])
            if open_group >= 0 and open_load + size <= 2.0 * target:
                group_of[comp_idx] = open_group
                open_load += size
            else:
                group_of[comp_idx] = next_group
                open_group = next_group
                open_load = size
                next_group += 1
    new_comp = np.where(splitting.comp >= 0, group_of[splitting.comp], -1)
    new_sizes = np.zeros(next_group, dtype=np.int64)
    np.add.at(new_sizes, group_of, splitting.sizes)
    return Splitting(new_comp, next_group, splitting.delta, new_sizes)
