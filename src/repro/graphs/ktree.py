"""Balanced k-ary search trees with the paper's splitters (Figures 2 and 3).

A complete k-ary tree of height ``h`` stored in level order (vertex ``v``'s
children are ``k*v + 1 .. k*v + k``), with sorted keys at the leaves and
``k-1`` separator keys at every internal vertex, plus each vertex's subtree
key range (needed by range/traversal queries).

Splitters:

* Directed case (Figure 2): cutting the edges that enter depth ``t`` yields
  one top component ``H`` and the depth-``t`` subtrees ``T_j``; every cut
  edge is directed from ``H`` into some ``T_j``, which is precisely the
  alpha-partitionable condition.  With ``t ~ h/2``, all components have
  size ``O(sqrt(n))`` (``alpha = 1/2``).

* Undirected case (Figure 3): ``S_1`` cuts at depth ``~h/2``
  (``alpha = 1/2``); ``S_2`` cuts at depths ``~h/3`` and ``~2h/3``
  (``beta = 1/3`` — every component spans a third of the height).  The
  border levels of ``S_1`` and ``S_2`` are ``~h/6`` apart, and in a tree
  the distance between two full levels is exactly the difference of their
  depths, giving the required ``Omega(log n)`` separation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import make_rng

__all__ = [
    "BalancedKTree",
    "SplitterLabeling",
    "build_balanced_search_tree",
    "tree_from_keys",
]


@dataclass
class SplitterLabeling:
    """A delta-splitting ``G(S) = {G_1, ..., G_k}`` in label form.

    Attributes
    ----------
    comp:
        ``(V,)`` component index of every vertex (0-based, dense).
    kind:
        ``(V,)`` int8: for alpha-partitionable splittings, 0 marks vertices
        in an ``H_i`` (cut edges leave from here) and 1 marks ``T_j``
        vertices (cut edges arrive here); all zeros otherwise.
    border:
        ``(V,)`` bool: vertices incident to a cut edge.
    n_components:
        Number of components.
    cut_edges:
        ``(S, 2)`` array of the removed edges ``(u, v)`` (directed u -> v
        for directed graphs).
    """

    comp: np.ndarray
    kind: np.ndarray
    border: np.ndarray
    n_components: int
    cut_edges: np.ndarray

    def component_sizes(self, children: np.ndarray) -> np.ndarray:
        """``|G_i| = |V_i| + |E_i|`` per component (edges internal to it)."""
        sizes = np.bincount(self.comp, minlength=self.n_components).astype(np.int64)
        src = np.repeat(np.arange(children.shape[0]), children.shape[1])
        dst = children.ravel()
        live = dst >= 0
        src, dst = src[live], dst[live]
        internal = self.comp[src] == self.comp[dst]
        sizes += np.bincount(self.comp[src[internal]], minlength=self.n_components)
        return sizes


@dataclass
class BalancedKTree:
    """A complete balanced k-ary search tree."""

    k: int
    height: int
    children: np.ndarray  # (V, k), -1 at leaves
    parent: np.ndarray  # (V,), -1 at root
    depth: np.ndarray  # (V,)
    separators: np.ndarray  # (V, k-1), NaN at leaves
    subtree_lo: np.ndarray  # (V,) smallest leaf key in subtree
    subtree_hi: np.ndarray  # (V,) largest leaf key in subtree
    leaf_keys: np.ndarray  # (k**height,) sorted

    @property
    def n_vertices(self) -> int:
        return int(self.children.shape[0])

    @property
    def n_edges(self) -> int:
        return self.n_vertices - 1

    @property
    def size(self) -> int:
        """Paper's ``n = |V| + |E|``."""
        return self.n_vertices + self.n_edges

    @property
    def n_leaves(self) -> int:
        return int(self.leaf_keys.size)

    def first_leaf(self) -> int:
        """Vertex id of the leftmost leaf."""
        return (self.k**self.height - 1) // (self.k - 1)

    def leaf_vertex_of_rank(self, rank: np.ndarray) -> np.ndarray:
        """Vertex id of the leaf holding the rank-th smallest key."""
        return self.first_leaf() + np.asarray(rank, dtype=np.int64)

    # -- splitters ----------------------------------------------------------

    def splitter_at_depths(self, depths: list[int]) -> SplitterLabeling:
        """Remove the edges entering each depth in ``depths``.

        Components are the maximal subtrees between consecutive cut levels;
        a vertex's component is identified by the highest ancestor reachable
        without crossing a cut.  Components are then renumbered densely in
        order of their root vertex id.
        """
        depths = sorted(set(int(d) for d in depths))
        for d in depths:
            if not (1 <= d <= self.height):
                raise ValueError(f"cut depth {d} out of range 1..{self.height}")
        V = self.n_vertices
        cut_level = np.zeros(self.height + 2, dtype=bool)
        for d in depths:
            cut_level[d] = True
        # root of each vertex's component: walk ancestry level by level
        comp_root = np.arange(V, dtype=np.int64)
        # a vertex whose depth is not a cut level inherits its parent's root
        for d in range(1, self.height + 1):
            vids = self._level_ids(d)
            if not cut_level[d]:
                comp_root[vids] = comp_root[self.parent[vids]]
        roots, comp = np.unique(comp_root, return_inverse=True)
        # cut edges: (parent(v), v) for every v at a cut depth
        cut_children = np.concatenate([self._level_ids(d) for d in depths])
        cut_edges = np.stack([self.parent[cut_children], cut_children], axis=1)
        border = np.zeros(V, dtype=bool)
        border[cut_edges.ravel()] = True
        kind = np.zeros(V, dtype=np.int8)
        return SplitterLabeling(comp, kind, border, int(roots.size), cut_edges)

    def alpha_splitter(self, cut_depth: int | None = None) -> SplitterLabeling:
        """The Figure 2 splitter: one cut, H = top tree, T_j = subtrees.

        For the directed (root-to-leaves) tree every cut edge runs from the
        single ``H`` into some ``T_j``; ``kind`` is 0 on H and 1 on the T's.
        """
        if cut_depth is None:
            cut_depth = max(1, (self.height + 1) // 2)
        lab = self.splitter_at_depths([cut_depth])
        lab.kind[self.depth >= cut_depth] = 1
        return lab

    def alpha_beta_splitters(self) -> tuple[SplitterLabeling, SplitterLabeling, int]:
        """The Figure 3 pair: S1 at ``~h/2``; S2 at ``~h/3`` and ``~2h/3``.

        Returns ``(S1 labeling, S2 labeling, analytic border distance)``.
        Requires ``height >= 6`` so the three cut levels are distinct and
        the distance is positive.
        """
        h = self.height
        if h < 6:
            raise ValueError(f"alpha-beta splitters need height >= 6, got {h}")
        d1 = h // 2
        d2a, d2b = h // 3, (2 * h) // 3
        s1 = self.splitter_at_depths([d1])
        s2 = self.splitter_at_depths([d2a, d2b])
        # borders are the full levels {d1-1, d1} and {d2a-1, d2a, d2b-1, d2b};
        # tree distance between full levels a and b is |a - b|
        s1_levels = [d1 - 1, d1]
        s2_levels = [d2a - 1, d2a, d2b - 1, d2b]
        dist = min(abs(a - b) for a in s1_levels for b in s2_levels)
        return s1, s2, dist

    def _level_ids(self, d: int) -> np.ndarray:
        start = (self.k**d - 1) // (self.k - 1)
        return np.arange(start, start + self.k**d, dtype=np.int64)


def build_balanced_search_tree(k: int, height: int, seed=0) -> BalancedKTree:
    """Build a complete k-ary search tree with random strictly-increasing keys."""
    if height < 1:
        raise ValueError(f"height must be >= 1, got {height}")
    rng = make_rng(seed)
    n_leaves = k**height
    leaf_keys = np.cumsum(rng.uniform(0.5, 1.5, n_leaves))
    return tree_from_keys(k, leaf_keys, height=height)


def tree_from_keys(
    k: int, keys: np.ndarray, height: int | None = None
) -> BalancedKTree:
    """Build a complete k-ary search tree over given sorted keys.

    ``keys`` must be non-decreasing; they are padded with ``+inf`` up to
    the next power of ``k`` (padded leaves never match finite query keys,
    so rank and range queries over the original keys are unaffected).
    """
    if k < 2:
        raise ValueError(f"k must be >= 2, got {k}")
    keys = np.asarray(keys, dtype=np.float64)
    if keys.ndim != 1 or keys.size < 1:
        raise ValueError("keys must be a non-empty 1-d array")
    if (np.diff(keys) < 0).any():
        raise ValueError("keys must be sorted")
    if height is None:
        height = 1
        while k**height < keys.size:
            height += 1
    n_leaves = k**height
    if n_leaves < keys.size:
        raise ValueError(f"height {height} too small for {keys.size} keys")
    leaf_keys = np.full(n_leaves, np.inf)
    leaf_keys[: keys.size] = keys

    V = (k ** (height + 1) - 1) // (k - 1)
    children = np.full((V, k), -1, dtype=np.int64)
    parent = np.full(V, -1, dtype=np.int64)
    depth = np.zeros(V, dtype=np.int64)
    first_leaf = (k**height - 1) // (k - 1)
    internal = np.arange(first_leaf)
    child_ids = internal[:, None] * k + 1 + np.arange(k)[None, :]
    children[internal] = child_ids
    parent[child_ids.ravel()] = np.repeat(internal, k)
    for d in range(1, height + 1):
        start = (k**d - 1) // (k - 1)
        depth[start : start + k**d] = d

    # subtree ranges, bottom-up
    subtree_lo = np.full(V, np.nan)
    subtree_hi = np.full(V, np.nan)
    leaf_ids = np.arange(first_leaf, V)
    subtree_lo[leaf_ids] = leaf_keys
    subtree_hi[leaf_ids] = leaf_keys
    for d in range(height - 1, -1, -1):
        start = (k**d - 1) // (k - 1)
        vids = np.arange(start, start + k**d)
        subtree_lo[vids] = subtree_lo[children[vids, 0]]
        subtree_hi[vids] = subtree_hi[children[vids, k - 1]]

    separators = np.full((V, k - 1), np.nan)
    separators[internal] = subtree_hi[children[internal, : k - 1]]
    return BalancedKTree(
        k=k,
        height=height,
        children=children,
        parent=parent,
        depth=depth,
        separators=separators,
        subtree_lo=subtree_lo,
        subtree_hi=subtree_hi,
        leaf_keys=leaf_keys,
    )
