"""A dynamic 2-3 tree, and its multisearch flattening.

The paper's introduction cites Paul–Vishkin–Wagener's EREW-PRAM parallel
dictionaries on 2-3 trees [PVS83] as the shared-memory ancestor of
multisearch.  This module provides the data structure itself — a real
insert/delete 2-3 tree with keys at the leaves (all leaves at equal
depth, internal nodes with 2 or 3 children and router keys) — plus the
flattening that turns a snapshot of it into a
:class:`~repro.core.model.SearchStructure`, so a batch of dictionary
lookups runs as an alpha-partitionable multisearch (Theorem 5) exactly
like the complete k-ary trees of Figure 2, but on an *irregular* tree:
node ids are allocation-ordered, arities mix 2 and 3, and subtree sizes
vary, which exercises the generality of the splitter machinery.

Implementation: classic top-down-free recursive insert with node splits
propagating up, and delete with borrow/merge propagating up.  Routers
store the *maximum* key of each child's subtree.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.model import STOP, SearchStructure
from repro.core.splitters import Splitting, splitting_from_labels

__all__ = ["TwoThreeTree", "flatten_two_three"]


@dataclass
class _Node:
    """Internal node (children + their subtree-max routers) or leaf (key)."""

    keys: list[float] = field(default_factory=list)  # router: max of child i
    children: list["_Node"] = field(default_factory=list)
    key: float | None = None  # set iff leaf

    @property
    def is_leaf(self) -> bool:
        return self.key is not None

    @property
    def max_key(self) -> float:
        return self.key if self.is_leaf else self.keys[-1]


class TwoThreeTree:
    """A 2-3 tree over distinct float keys (set semantics)."""

    def __init__(self) -> None:
        self.root: _Node | None = None
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __contains__(self, key: float) -> bool:
        node = self.root
        if node is None:
            return False
        while not node.is_leaf:
            idx = self._child_index(node, key)
            node = node.children[idx]
        return node.key == key

    @staticmethod
    def _child_index(node: _Node, key: float) -> int:
        for i, router in enumerate(node.keys[:-1]):
            if key <= router:
                return i
        return len(node.children) - 1

    # -- insert --------------------------------------------------------------

    def insert(self, key: float) -> bool:
        """Insert ``key``; returns False if already present."""
        key = float(key)
        if self.root is None:
            self.root = _Node(key=key)
            self._size = 1
            return True
        result = self._insert(self.root, key)
        if result is False:
            return False
        if result is not None:  # root split
            left, right = result
            self.root = _Node(
                keys=[left.max_key, right.max_key], children=[left, right]
            )
        self._size += 1
        return True

    def _insert(self, node: _Node, key: float):
        """Returns None (done), False (duplicate), or (left, right) split."""
        if node.is_leaf:
            if node.key == key:
                return False
            a, b = sorted([node.key, key])
            # the current node becomes the left leaf in place; return a split
            left = _Node(key=a)
            right = _Node(key=b)
            return (left, right)
        idx = self._child_index(node, key)
        result = self._insert(node.children[idx], key)
        if result is False:
            return False
        if result is not None:
            left, right = result
            node.children[idx : idx + 1] = [left, right]
            node.keys[idx : idx + 1] = [left.max_key, right.max_key]
            if len(node.children) > 3:
                mid = 2
                left_node = _Node(keys=node.keys[:mid], children=node.children[:mid])
                right_node = _Node(keys=node.keys[mid:], children=node.children[mid:])
                return (left_node, right_node)
        # refresh the router for the descended child (its max may have grown)
        node.keys[min(idx, len(node.children) - 1)] = node.children[
            min(idx, len(node.children) - 1)
        ].max_key
        self._refresh(node)
        return None

    @staticmethod
    def _refresh(node: _Node) -> None:
        node.keys = [c.max_key for c in node.children]

    # -- delete --------------------------------------------------------------

    def delete(self, key: float) -> bool:
        """Delete ``key``; returns False if absent."""
        key = float(key)
        if self.root is None:
            return False
        if self.root.is_leaf:
            if self.root.key == key:
                self.root = None
                self._size = 0
                return True
            return False
        ok = self._delete(self.root, key)
        if not ok:
            return False
        if not self.root.is_leaf and len(self.root.children) == 1:
            self.root = self.root.children[0]
        self._size -= 1
        return True

    def _delete(self, node: _Node, key: float) -> bool:
        """Delete from an internal node's subtree; may leave ``node`` with
        one child (the caller rebalances)."""
        idx = self._child_index(node, key)
        child = node.children[idx]
        if child.is_leaf:
            if child.key != key:
                return False
            del node.children[idx]
            del node.keys[idx]
        else:
            if not self._delete(child, key):
                return False
            if len(child.children) < 2:
                self._rebalance(node, idx)
        self._refresh(node)
        return True

    def _rebalance(self, parent: _Node, idx: int) -> None:
        """Child ``idx`` has one child: borrow from or merge with a sibling."""
        child = parent.children[idx]
        if idx > 0 and len(parent.children[idx - 1].children) == 3:
            sib = parent.children[idx - 1]
            child.children.insert(0, sib.children.pop())
            self._refresh(sib)
            self._refresh(child)
        elif idx + 1 < len(parent.children) and len(
            parent.children[idx + 1].children
        ) == 3:
            sib = parent.children[idx + 1]
            child.children.append(sib.children.pop(0))
            self._refresh(sib)
            self._refresh(child)
        elif idx > 0:
            sib = parent.children[idx - 1]
            sib.children.extend(child.children)
            self._refresh(sib)
            del parent.children[idx]
        else:
            sib = parent.children[idx + 1]
            sib.children[0:0] = child.children
            self._refresh(sib)
            del parent.children[idx]
        self._refresh(parent)

    # -- inspection -----------------------------------------------------------

    def keys(self) -> list[float]:
        """All keys in sorted order."""
        out: list[float] = []

        def walk(node: _Node | None) -> None:
            if node is None:
                return
            if node.is_leaf:
                out.append(node.key)
            else:
                for c in node.children:
                    walk(c)

        walk(self.root)
        return out

    def height(self) -> int:
        h = 0
        node = self.root
        while node is not None and not node.is_leaf:
            node = node.children[0]
            h += 1
        return h

    def check_invariants(self) -> None:
        """Assert 2-3 arity, uniform leaf depth, router correctness, order."""
        if self.root is None:
            return

        def walk(node: _Node, depth: int) -> tuple[int, float, float]:
            if node.is_leaf:
                return depth, node.key, node.key
            assert 2 <= len(node.children) <= 3 or node is self.root and len(
                node.children
            ) >= 2, f"arity {len(node.children)}"
            assert len(node.keys) == len(node.children)
            depths = []
            lo = np.inf
            hi = -np.inf
            prev_hi = -np.inf
            for c, router in zip(node.children, node.keys):
                d, clo, chi = walk(c, depth + 1)
                assert router == chi, "stale router"
                assert clo > prev_hi, "order violation"
                prev_hi = chi
                depths.append(d)
                lo = min(lo, clo)
                hi = max(hi, chi)
            assert len(set(depths)) == 1, "leaves at unequal depths"
            return depths[0], lo, hi

        if not self.root.is_leaf:
            walk(self.root, 0)


def flatten_two_three(
    tree: TwoThreeTree, cut_depth: int | None = None
) -> tuple[SearchStructure, Splitting, np.ndarray]:
    """Snapshot a 2-3 tree into a SearchStructure + alpha-splitting.

    Returns ``(structure, splitting, leaf_key_of_vertex)`` where
    ``leaf_key_of_vertex[v]`` is the key at leaf vertex ``v`` (NaN for
    internal vertices).  Vertex 0 is the root; payload layout is
    ``[router_0, router_1, router_2]`` (NaN-padded; a leaf's slot 0 holds
    its key); adjacency lists the children.

    The alpha-splitting cuts the edges entering ``cut_depth`` (default
    ``height // 2 + height % 2``): one ``H`` top component, one ``T`` per
    depth-``cut_depth`` subtree — Figure 2 on an irregular tree.
    """
    if tree.root is None:
        raise ValueError("cannot flatten an empty tree")
    nodes: list[_Node] = []
    ids: dict[int, int] = {}

    def number(node: _Node) -> int:
        vid = len(nodes)
        ids[id(node)] = vid
        nodes.append(node)
        if not node.is_leaf:
            for c in node.children:
                number(c)
        return vid

    number(tree.root)
    V = len(nodes)
    adjacency = np.full((V, 3), -1, dtype=np.int64)
    payload = np.full((V, 3), np.nan)
    level = np.zeros(V, dtype=np.int64)
    leaf_key = np.full(V, np.nan)

    def fill(node: _Node, depth: int) -> None:
        vid = ids[id(node)]
        level[vid] = depth
        if node.is_leaf:
            payload[vid, 0] = node.key
            leaf_key[vid] = node.key
            return
        for j, (c, router) in enumerate(zip(node.children, node.keys)):
            adjacency[vid, j] = ids[id(c)]
            payload[vid, j] = router
            fill(c, depth + 1)

    fill(tree.root, 0)
    h = tree.height()

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        nxt = np.full(m, STOP, dtype=np.int64)
        internal = vlevel < h
        if internal.any():
            routers = vpayload[internal]  # NaN-padded subtree maxima
            keys = np.asarray(qkey)[internal]
            arity = (vadjacency[internal] >= 0).sum(axis=1)
            # first child whose router >= key, else the last child
            with np.errstate(invalid="ignore"):
                below = np.where(np.isnan(routers), False, routers < keys[:, None])
            idx = np.minimum(below.sum(axis=1), arity - 1)
            nxt[internal] = vadjacency[internal, :][np.arange(idx.size), idx]
        return nxt, qstate

    structure = SearchStructure(
        adjacency=adjacency,
        payload=payload,
        level=level,
        successor=successor,
        directed=True,
    )
    if cut_depth is None:
        cut_depth = max(1, (h + 1) // 2)
    cut_depth = min(cut_depth, max(h, 1))
    # component labels: 0 for the top tree, 1 + j for the j-th depth-cut
    # subtree; labels propagate down the parent links in level order
    comp = np.full(V, -1, dtype=np.int64)
    comp[level < cut_depth] = 0
    roots = np.flatnonzero(level == cut_depth)
    comp[roots] = 1 + np.arange(roots.size)
    parent = np.full(V, -1, dtype=np.int64)
    src = np.repeat(np.arange(V), 3)
    dst = adjacency.ravel()
    ok = dst >= 0
    parent[dst[ok]] = src[ok]
    for v in np.argsort(level, kind="stable"):
        if level[v] > cut_depth:
            comp[v] = comp[parent[v]]
    if h == 0:
        comp[:] = 0
    delta = 0.5
    splitting = splitting_from_labels(comp, adjacency, delta)
    return structure, splitting, leaf_key
