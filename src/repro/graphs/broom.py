"""The "broom": the r-sweep workload for Theorem 5 (experiment E3).

A complete k-ary search tree over ``P`` leaves, where each leaf is the
head of a directed *handle path* of ``L`` further vertices.  A query
descends the tree by key (``log_k P`` steps) and then walks its handle to
the end (``L`` steps), so the longest search path is ``r = log_k P + L +
1`` — tunable from ``Theta(log n)`` up to ``Theta(sqrt(n))`` while the
graph stays alpha-partitionable:

* ``H`` = the whole tree (one component, size ``O(P)``),
* ``T_j`` = handle ``j`` (size ``L``),
* ``S`` = the leaf -> handle-head edges — every one directed from ``H``
  into some ``T_j``, as Section 4.2 requires.

This is the regime where multisearch genuinely beats the synchronous
baseline by ``Theta(log n)``: the baseline pays a full-mesh step per
handle vertex, Algorithm 2 advances ``log n`` handle steps per
``O(sqrt(n))`` log-phase.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.model import STOP, SearchStructure
from repro.core.splitters import Splitting, splitting_from_labels
from repro.graphs.ktree import BalancedKTree, build_balanced_search_tree

__all__ = ["Broom", "build_broom", "broom_structure"]

_INTERNAL, _CHAIN = 0.0, 1.0


@dataclass
class Broom:
    """A broom graph: tree + handle paths, in flat-array form."""

    tree: BalancedKTree
    handle_length: int
    adjacency: np.ndarray  # (V, k)
    payload: np.ndarray  # (V, k): [flag, sep_0..sep_{k-2}]
    level: np.ndarray  # (V,) distance from root
    comp: np.ndarray  # (V,) alpha-splitting labels: 0 = tree, 1+j = handle j
    kind: np.ndarray  # (V,) 0 = H (tree), 1 = T (handles)

    @property
    def n_vertices(self) -> int:
        return int(self.adjacency.shape[0])

    @property
    def size(self) -> int:
        return self.n_vertices + int((self.adjacency >= 0).sum())

    @property
    def longest_path(self) -> int:
        """Number of vertices on the longest search path (root to handle end)."""
        return self.tree.height + 1 + self.handle_length

    def splitting(self) -> Splitting:
        """The alpha-splitting {tree} + {handles} with measured delta."""
        n = self.size
        sizes_max = max(
            self.tree.size,
            2 * self.handle_length if self.handle_length else 1,
        )
        delta = float(np.log(max(sizes_max, 2)) / np.log(max(n, 2)))
        return splitting_from_labels(self.comp, self.adjacency, min(0.9, max(0.1, delta)))


def build_broom(k: int, tree_height: int, handle_length: int, seed=0) -> Broom:
    """Build a broom with ``k**tree_height`` handles of ``handle_length`` vertices."""
    if handle_length < 0:
        raise ValueError(f"handle_length must be >= 0, got {handle_length}")
    tree = build_balanced_search_tree(k, tree_height, seed=seed)
    Vt = tree.n_vertices
    P = tree.n_leaves
    L = handle_length
    V = Vt + P * L

    adjacency = np.full((V, k), -1, dtype=np.int64)
    adjacency[:Vt] = tree.children
    payload = np.zeros((V, max(k, 2)))
    payload[:Vt, 0] = np.where(tree.children[:, 0] >= 0, _INTERNAL, _CHAIN)
    payload[:Vt, 1:k] = tree.separators
    payload[Vt:, 0] = _CHAIN
    level = np.zeros(V, dtype=np.int64)
    level[:Vt] = tree.depth

    comp = np.zeros(V, dtype=np.int64)
    kind = np.zeros(V, dtype=np.int8)
    first_leaf = tree.first_leaf()
    leaf_ids = np.arange(first_leaf, Vt)
    if L > 0:
        # handle j occupies vertices Vt + j*L .. Vt + (j+1)*L - 1
        handle_ids = Vt + np.arange(P * L).reshape(P, L)
        adjacency[leaf_ids, 0] = handle_ids[:, 0]
        adjacency[handle_ids[:, :-1].ravel(), 0] = handle_ids[:, 1:].ravel()
        comp[handle_ids.ravel()] = 1 + np.repeat(np.arange(P), L)
        kind[handle_ids.ravel()] = 1
        level[handle_ids.ravel()] = (
            tree_height + 1 + np.tile(np.arange(L), P)
        )
    return Broom(tree, L, adjacency, payload, level, comp, kind)


def broom_structure(broom: Broom) -> SearchStructure:
    """SearchStructure for key descent + handle walk on a broom."""
    k = broom.tree.k
    h = broom.tree.height

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        nxt = np.full(m, STOP, dtype=np.int64)
        internal = vpayload[:, 0] == _INTERNAL
        if internal.any():
            seps = vpayload[internal, 1:k]
            keys = np.asarray(qkey)[internal]
            idx = (seps < keys[:, None]).sum(axis=1)
            nxt[internal] = vadjacency[internal, :][np.arange(idx.size), idx]
        chain = ~internal
        if chain.any():
            nxt[chain] = vadjacency[chain, 0]  # -1 at handle end == STOP
        return nxt, qstate

    return SearchStructure(
        adjacency=broom.adjacency,
        payload=broom.payload,
        level=broom.level,
        successor=successor,
        directed=True,
        labels={"comp": broom.comp, "kind": broom.kind.astype(np.int64)},
    )
