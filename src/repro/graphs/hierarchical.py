"""Hierarchical DAGs (paper Section 1, Figure 1).

A hierarchical DAG has vertex levels ``L_0, ..., L_h`` with ``|L_0| = 1``
and ``|L_{i+1}| = mu * |L_i|`` for some ``mu > 1`` (the paper also allows
``c1 * mu^i <= |L_i| <= c2 * mu^i``); every edge goes from some ``L_i`` to
``L_{i+1}``, and out-degrees are O(1).  Search paths run downward through
consecutive levels, so ``r <= h + 1 = O(log n)``.

Two builders:

* :func:`build_mu_ary_search_dag` — a complete ``mu``-ary search tree seen
  as a hierarchical DAG, with router keys so that key queries have a
  natural on-line successor function.  This is the workload for E1.
* :func:`build_random_hierarchical_dag` — random level-respecting DAGs with
  the sandwiched level-size law, used by property tests and F1/F4/F5.

Vertices are numbered level by level (level-order), which makes
``level_of`` and per-level slicing cheap and keeps the "level index" the
paper assumes precomputed (it shows it costs ``O(sqrt(n))`` to compute).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.rng import make_rng

__all__ = [
    "HierarchicalDAG",
    "build_mu_ary_search_dag",
    "build_random_hierarchical_dag",
]


@dataclass
class HierarchicalDAG:
    """A hierarchical DAG in flat-array form.

    Attributes
    ----------
    mu:
        Level growth factor (> 1).
    level_sizes:
        ``level_sizes[i] = |L_i|``, ``i = 0..h``.
    children:
        ``(V, d)`` int64; row ``v`` lists the out-neighbours of vertex ``v``
        (``-1`` padding).  All children of a level-``i`` vertex are in
        level ``i+1``.
    payload:
        ``(V, p)`` float64; per-vertex search information (router keys for
        search-tree DAGs; application data otherwise).
    """

    mu: float
    level_sizes: np.ndarray
    children: np.ndarray
    payload: np.ndarray
    level_of: np.ndarray = field(init=False)
    level_start: np.ndarray = field(init=False)

    def __post_init__(self) -> None:
        self.level_sizes = np.asarray(self.level_sizes, dtype=np.int64)
        self.level_start = np.concatenate([[0], np.cumsum(self.level_sizes)])
        V = int(self.level_start[-1])
        if self.children.shape[0] != V:
            raise ValueError(
                f"children rows {self.children.shape[0]} != vertex count {V}"
            )
        if self.payload.shape[0] != V:
            raise ValueError(f"payload rows {self.payload.shape[0]} != vertex count {V}")
        self.level_of = np.repeat(
            np.arange(self.level_sizes.size, dtype=np.int64), self.level_sizes
        )

    @property
    def n_vertices(self) -> int:
        return int(self.level_start[-1])

    @property
    def n_edges(self) -> int:
        # memoized: a full scan of children per access adds up inside the
        # simulators' hot loops, and children is identity-guarded below.
        cached = self.__dict__.get("_repro_edges")
        if cached is not None and cached[0] is self.children:
            return cached[1]
        m = int((self.children >= 0).sum())
        self.__dict__["_repro_edges"] = (self.children, m)
        return m

    @property
    def size(self) -> int:
        """Paper's ``n = |V| + |E|``."""
        return self.n_vertices + self.n_edges

    @property
    def height(self) -> int:
        return int(self.level_sizes.size - 1)

    @property
    def max_out_degree(self) -> int:
        return int(self.children.shape[1])

    def level_slice(self, i: int) -> slice:
        """Vertex-id slice of level ``i``."""
        return slice(int(self.level_start[i]), int(self.level_start[i + 1]))

    def vertices_between(self, lo_level: int, hi_level: int) -> np.ndarray:
        """Vertex ids of levels ``lo_level .. hi_level`` inclusive (clamped)."""
        lo_level = max(0, lo_level)
        hi_level = min(self.height, hi_level)
        if lo_level > hi_level:
            return np.empty(0, dtype=np.int64)
        return np.arange(
            int(self.level_start[lo_level]),
            int(self.level_start[hi_level + 1]),
            dtype=np.int64,
        )


def build_mu_ary_search_dag(mu: int, height: int, seed=0) -> tuple[HierarchicalDAG, np.ndarray]:
    """A complete ``mu``-ary search tree as a hierarchical DAG.

    Leaves (level ``h``) hold ``mu**h`` sorted keys drawn from a random
    strictly-increasing sequence; each internal vertex stores ``mu - 1``
    separator keys so a search key can pick its child on-line.  Returns
    ``(dag, leaf_keys)``.

    ``payload[v] = [separators..., first_child_id]`` — storing the first
    child id in the payload reflects that a processor holds its vertex's
    adjacency (children are ``first_child_id + j`` by construction, but the
    generic ``children`` table is also populated for algorithms that do not
    exploit the regularity).
    """
    if mu < 2:
        raise ValueError(f"mu must be >= 2, got {mu}")
    if height < 0:
        raise ValueError(f"height must be >= 0, got {height}")
    rng = make_rng(seed)
    level_sizes = np.array([mu**i for i in range(height + 1)], dtype=np.int64)
    V = int(level_sizes.sum())
    n_leaves = int(mu**height)
    gaps = rng.uniform(0.5, 1.5, n_leaves)
    leaf_keys = np.cumsum(gaps)

    children = np.full((V, mu), -1, dtype=np.int64)
    payload = np.full((V, mu), np.nan)  # mu-1 separators + first-child id
    level_start = np.concatenate([[0], np.cumsum(level_sizes)])

    # subtree leaf ranges: vertex j (0-based) of level i covers leaves
    # [j * mu**(h-i), (j+1) * mu**(h-i))
    for i in range(height):
        span = mu ** (height - i)
        child_span = mu ** (height - i - 1)
        count = int(level_sizes[i])
        ids = np.arange(count)
        vids = level_start[i] + ids
        first_child = level_start[i + 1] + ids * mu
        children[vids] = first_child[:, None] + np.arange(mu)[None, :]
        # separators: the largest key of each of the first mu-1 child blocks
        sep_leaf = (
            ids[:, None] * span + (np.arange(1, mu)[None, :]) * child_span - 1
        )
        payload[vids, : mu - 1] = leaf_keys[sep_leaf]
        payload[vids, mu - 1] = first_child
    # leaves: payload = own key in slot 0
    leaf_ids = np.arange(level_start[height], level_start[height + 1])
    payload[leaf_ids, 0] = leaf_keys
    dag = HierarchicalDAG(float(mu), level_sizes, children, payload)
    return dag, leaf_keys


def build_random_hierarchical_dag(
    mu: float,
    height: int,
    seed=0,
    c1: float = 1.0,
    c2: float = 1.0,
    max_out_degree: int | None = None,
) -> HierarchicalDAG:
    """A random hierarchical DAG with ``c1*mu^i <= |L_i| <= c2*mu^i``.

    Every vertex of level ``i < h`` gets between 1 and ``max_out_degree``
    children in level ``i+1``; every vertex of level ``i+1 > 0`` gets at
    least one in-edge, so all root-to-bottom search paths exist.  Payload
    slot 0 holds a random routing weight so tests can build arbitrary
    successor functions.
    """
    if mu <= 1:
        raise ValueError(f"mu must be > 1, got {mu}")
    if not (0 < c1 <= c2):
        raise ValueError("need 0 < c1 <= c2")
    rng = make_rng(seed)
    sizes = []
    for i in range(height + 1):
        lo = max(1, int(np.ceil(c1 * mu**i)))
        hi = max(lo, int(np.floor(c2 * mu**i)))
        sizes.append(int(rng.integers(lo, hi + 1)))
    sizes[0] = 1
    level_sizes = np.array(sizes, dtype=np.int64)
    level_start = np.concatenate([[0], np.cumsum(level_sizes)])
    V = int(level_start[-1])
    d = max_out_degree if max_out_degree is not None else max(2, int(np.ceil(mu)) + 1)

    children = np.full((V, d), -1, dtype=np.int64)
    for i in range(height):
        cnt, nxt = int(level_sizes[i]), int(level_sizes[i + 1])
        vids = np.arange(level_start[i], level_start[i + 1])
        # guarantee coverage: distribute next-level vertices round-robin
        targets = level_start[i + 1] + np.arange(nxt)
        owners = vids[np.arange(nxt) % cnt]
        slot_used = np.zeros(V, dtype=np.int64)
        for owner, target in zip(owners, targets):
            s = slot_used[owner]
            if s < d:
                children[owner, s] = target
                slot_used[owner] = s + 1
        # add random extra edges up to degree d
        for v in vids:
            s = int(slot_used[v])
            extra = int(rng.integers(0, d - s + 1))
            if extra:
                picks = rng.integers(0, nxt, extra) + level_start[i + 1]
                children[v, s : s + extra] = picks
    payload = rng.uniform(0.0, 1.0, (V, 1))
    return HierarchicalDAG(float(mu), level_sizes, children, payload)
