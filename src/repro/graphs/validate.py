"""Validators for the paper's graph-class definitions.

These back the figure reproductions F1–F3: each checks a definitional law
and raises :class:`ValidationError` with a precise message when violated,
so tests and benches can assert the constructions are the paper's.
"""

from __future__ import annotations

import numpy as np

from repro.graphs.hierarchical import HierarchicalDAG
from repro.graphs.ktree import BalancedKTree, SplitterLabeling

__all__ = [
    "ValidationError",
    "check_hierarchical_dag",
    "check_splitter",
    "check_alpha_partition",
    "check_splitter_distance",
    "check_search_structure",
    "check_query_state",
    "check_splitting_labels",
]


class ValidationError(AssertionError):
    """A definitional law of the paper is violated."""


def check_hierarchical_dag(
    dag: HierarchicalDAG, c1: float = 1.0, c2: float | None = None
) -> None:
    """Check Figure 1's laws: |L_0|=1, c1*mu^i <= |L_i| <= c2*mu^i, edges i->i+1."""
    if c2 is None:
        c2 = max(2.0, float(dag.mu))
    if int(dag.level_sizes[0]) != 1:
        raise ValidationError(f"|L_0| = {dag.level_sizes[0]} != 1")
    for i, s in enumerate(dag.level_sizes):
        lo, hi = c1 * dag.mu**i, c2 * dag.mu**i
        if not (lo - 1e-9 <= s <= hi + 1e-9):
            raise ValidationError(
                f"|L_{i}| = {s} outside [{lo:.2f}, {hi:.2f}] = [c1,c2]*mu^{i}"
            )
    src = np.repeat(np.arange(dag.n_vertices), dag.children.shape[1])
    dst = dag.children.ravel()
    live = dst >= 0
    src, dst = src[live], dst[live]
    if dst.size:
        if int(dst.min()) < 0 or int(dst.max()) >= dag.n_vertices:
            raise ValidationError("edge endpoint out of range")
        bad = dag.level_of[dst] != dag.level_of[src] + 1
        if bad.any():
            u, v = int(src[bad][0]), int(dst[bad][0])
            raise ValidationError(
                f"edge ({u},{v}) spans levels {dag.level_of[u]}->{dag.level_of[v]}"
            )


def check_splitter(
    labeling: SplitterLabeling,
    children: np.ndarray,
    n: int,
    delta: float,
    constant: float = 4.0,
) -> None:
    """Check the delta-splitter law: every component has size <= constant * n**delta."""
    sizes = labeling.component_sizes(children)
    bound = constant * n**delta
    if sizes.size and sizes.max() > bound:
        raise ValidationError(
            f"component of size {sizes.max()} exceeds {constant} * n^{delta} = {bound:.1f}"
        )


def check_normalized(labeling: SplitterLabeling, n: int, delta: float, constant: float = 4.0) -> None:
    """Check the normalization law: k = O(n^(1-delta)) components."""
    bound = constant * n ** (1.0 - delta)
    if labeling.n_components > bound:
        raise ValidationError(
            f"{labeling.n_components} components exceed {constant} * n^(1-{delta}) = {bound:.1f}"
        )


def check_alpha_partition(labeling: SplitterLabeling, cut_edges_endpoints: bool = True) -> None:
    """Check the alpha-partitionable condition (Figure 2).

    Every cut edge ``(u, v)`` must run from an H-side vertex (kind 0) to a
    T-side vertex (kind 1), and H/T membership must be constant on each
    component.
    """
    comp, kind, cuts = labeling.comp, labeling.kind, labeling.cut_edges
    for u, v in cuts:
        if kind[u] != 0 or kind[v] != 1:
            raise ValidationError(
                f"cut edge ({u},{v}) has kinds ({kind[u]},{kind[v]}), want (0,1) = (H,T)"
            )
    for c in range(labeling.n_components):
        kinds = np.unique(kind[comp == c])
        if kinds.size > 1:
            raise ValidationError(f"component {c} mixes H and T vertices")


def check_search_structure(structure) -> None:
    """Well-formedness of a :class:`repro.core.model.SearchStructure`.

    Checks the storage laws every mesh algorithm silently assumes:
    adjacency targets in ``[-1, V)`` and level values in ``[0, V]``
    (levels index the DAG/tree depth, so a value past ``V`` — or a
    negative one — can only come from corruption).  Paranoid mode re-runs
    this at every algorithm phase boundary.
    """
    V = structure.n_vertices
    adj = structure.adjacency
    if adj.size:
        lo, hi = int(adj.min()), int(adj.max())
        if lo < -1 or hi >= V:
            flat = adj.ravel()
            bad = int(np.argmax((flat < -1) | (flat >= V)))
            v, slot = divmod(bad, adj.shape[1])
            raise ValidationError(
                f"adjacency[{v}][{slot}] = {int(flat[bad])} outside [-1, {V})"
            )
    lvl = structure.level
    if lvl.size:
        lo, hi = int(lvl.min()), int(lvl.max())
        if lo < 0 or hi > V:
            bad = int(np.argmax((lvl < 0) | (lvl > V)))
            raise ValidationError(
                f"level[{bad}] = {int(lvl[bad])} outside [0, {V}]"
            )


def check_query_state(qs, structure=None) -> None:
    """Well-formedness of a :class:`repro.core.model.QuerySet`.

    Current pointers must be ``STOP`` (-1) or a real vertex id, step
    counts nonnegative, and keys finite — the O(1)-information contract
    of the Section 2 query records.
    """
    cur = qs.current
    lo = -1 if not cur.size else int(cur.min())
    if lo < -1:
        bad = int(np.argmax(cur < -1))
        raise ValidationError(f"query {bad} current pointer {int(cur[bad])} < STOP")
    if structure is not None and cur.size:
        V = structure.n_vertices
        if int(cur.max()) >= V:
            bad = int(np.argmax(cur >= V))
            raise ValidationError(
                f"query {bad} points at vertex {int(cur[bad])} >= V = {V}"
            )
    if qs.steps.size and int(qs.steps.min()) < 0:
        bad = int(np.argmax(qs.steps < 0))
        raise ValidationError(f"query {bad} has negative step count")
    key = np.asarray(qs.key)
    if key.size and not np.isfinite(key).all():
        bad = int(np.argmax(~np.isfinite(key).reshape(key.shape[0], -1).all(axis=1)))
        raise ValidationError(f"query {bad} has a non-finite key")


def check_splitting_labels(splitting) -> None:
    """Label sanity of a :class:`repro.core.splitters.Splitting`.

    Component labels must be ``-1`` or in ``[0, k)`` and the recorded
    sizes nonnegative — the storage convention Constrained-Multisearch
    reads on every call.
    """
    comp = splitting.comp
    k = splitting.n_components
    if comp.size:
        lo, hi = int(comp.min()), int(comp.max())
        if lo < -1 or hi >= k:
            bad = int(np.argmax((comp < -1) | (comp >= k)))
            raise ValidationError(
                f"comp[{bad}] = {int(comp[bad])} outside [-1, {k})"
            )
    if splitting.sizes.size and int(splitting.sizes.min()) < 0:
        raise ValidationError("splitting has a negative component size")


def check_splitter_distance(
    tree: BalancedKTree,
    s1: SplitterLabeling,
    s2: SplitterLabeling,
    claimed: int,
) -> int:
    """BFS-verify the graph distance between the borders of two splitters.

    Returns the true distance; raises if it differs from ``claimed``.
    O(V * distance) multi-source BFS using the tree's parent/children arrays.
    """
    V = tree.n_vertices
    dist = np.full(V, -1, dtype=np.int64)
    frontier = np.flatnonzero(s1.border)
    dist[frontier] = 0
    d = 0
    targets = s2.border
    while frontier.size:
        if targets[frontier].any():
            break
        d += 1
        nxt: list[np.ndarray] = []
        pars = tree.parent[frontier]
        nxt.append(pars[pars >= 0])
        kids = tree.children[frontier].ravel()
        nxt.append(kids[kids >= 0])
        cand = np.unique(np.concatenate(nxt))
        cand = cand[dist[cand] < 0]
        dist[cand] = d
        frontier = cand
    else:
        raise ValidationError("splitter borders are not connected")
    if d != claimed:
        raise ValidationError(f"border distance is {d}, claimed {claimed}")
    return d
