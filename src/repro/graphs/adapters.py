"""Adapters: graph classes -> :class:`~repro.core.model.SearchStructure`.

Each adapter packages a graph's flat arrays together with a *vectorized
on-line successor function* obeying the O(1)-information contract of
Section 2: element *i* of every batch is computed only from vertex *i*'s
record (payload + adjacency + level) and query *i*'s record (key + state).

Successor functions here:

* :func:`hierdag_search_structure` — key descent in a ``mu``-ary search
  DAG (hierarchical DAG workload, E1).
* :func:`ktree_directed_structure` — key descent root-to-leaf in a
  balanced k-ary search tree (alpha-partitionable workload, E3).
* :func:`ktree_range_structure` — the undirected *range walk*: descend to
  the first leaf with key >= lo, then traverse leaves in key order (up and
  down tree edges) until the key exceeds hi (alpha-beta workload, E4, and
  the Section 6 interval-style traversal).
"""

from __future__ import annotations

import numpy as np

from repro.core.model import STOP, SearchStructure
from repro.graphs.hierarchical import HierarchicalDAG
from repro.graphs.ktree import BalancedKTree

__all__ = [
    "hierdag_search_structure",
    "ktree_directed_structure",
    "ktree_range_structure",
    "ktree_rank_structure",
    "ktree_rank_successor",
]


def hierdag_search_structure(dag: HierarchicalDAG) -> SearchStructure:
    """Key-search structure over a :func:`build_mu_ary_search_dag` DAG.

    Query key: the search key.  Successor: at an internal vertex compare
    against the ``mu - 1`` separators in the payload and step to the
    matching child; at a bottom-level vertex STOP.
    """
    mu = int(round(dag.mu))
    h = dag.height

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        internal = vlevel < h
        if internal.all():
            # whole batch at internal vertices (the common case in a
            # level-synchronous descent): index directly, no re-masking
            keys = np.asarray(qkey)
            idx = (vpayload[:, : mu - 1] < keys[:, None]).sum(axis=1)
            nxt = vadjacency[np.arange(m), idx]
            return nxt, qstate
        nxt = np.full(m, STOP, dtype=np.int64)
        if internal.any():
            seps = vpayload[internal, : mu - 1]
            keys = np.asarray(qkey)[internal]
            # child index: number of separators strictly below the key
            idx = (seps < keys[:, None]).sum(axis=1)
            nxt[internal] = vadjacency[internal, :][np.arange(idx.size), idx]
        return nxt, qstate

    return SearchStructure(
        adjacency=dag.children,
        payload=dag.payload,
        level=dag.level_of,
        successor=successor,
        directed=True,
    )


def ktree_directed_structure(tree: BalancedKTree) -> SearchStructure:
    """Root-to-leaf key search in a balanced k-ary tree (Figure 2 setting).

    Payload layout: ``[sep_0 .. sep_{k-2}, subtree_lo, subtree_hi]``.
    """
    k = tree.k
    h = tree.height
    payload = np.concatenate(
        [tree.separators, tree.subtree_lo[:, None], tree.subtree_hi[:, None]], axis=1
    )

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        internal = vlevel < h
        if internal.all():
            keys = np.asarray(qkey)
            idx = (vpayload[:, : k - 1] < keys[:, None]).sum(axis=1)
            nxt = vadjacency[np.arange(m), idx]
            return nxt, qstate
        nxt = np.full(m, STOP, dtype=np.int64)
        if internal.any():
            seps = vpayload[internal, : k - 1]
            keys = np.asarray(qkey)[internal]
            idx = (seps < keys[:, None]).sum(axis=1)
            nxt[internal] = vadjacency[internal, :][np.arange(idx.size), idx]
        return nxt, qstate

    return SearchStructure(
        adjacency=tree.children,
        payload=payload,
        level=tree.depth,
        successor=successor,
        directed=True,
    )


def ktree_rank_structure(tree: BalancedKTree, strict: bool = False) -> SearchStructure:
    """Rank queries (``#{keys <= x}``, or ``< x`` when ``strict``) as a
    root-to-leaf descent with a counting state.

    At an internal vertex the query steps to the child containing ``x``
    and adds the leaf counts of the skipped-over left siblings (a complete
    tree's child subtree size is determined by the vertex's depth, so this
    is O(1) local work); at the leaf it adds the final comparison.  State
    ``[count]`` ends as the rank.  This is the augmentation behind the
    Section 6 intersection *counting* identity.
    """
    payload = np.concatenate(
        [tree.separators, tree.subtree_lo[:, None], tree.subtree_hi[:, None]], axis=1
    )
    return SearchStructure(
        adjacency=tree.children,
        payload=payload,
        level=tree.depth,
        successor=ktree_rank_successor(tree.k, tree.height, strict),
        directed=True,
    )


def ktree_rank_successor(k: int, h: int, strict: bool):
    """The counting rank descent for a complete ``k``-ary tree of height
    ``h``.  A factory (rather than a closure inside
    :func:`ktree_rank_structure`) so a snapshot-restored structure can be
    rewired from its flat arrays without rebuilding the tree."""

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        nxt = np.full(m, STOP, dtype=np.int64)
        new_state = np.array(qstate, copy=True)
        keys = np.asarray(qkey).reshape(m)
        internal = vlevel < h
        if internal.any():
            seps = vpayload[internal, : k - 1]
            x = keys[internal]
            if strict:
                idx = (seps < x[:, None]).sum(axis=1)
            else:
                idx = (seps <= x[:, None]).sum(axis=1)
            nxt[internal] = vadjacency[internal, :][np.arange(idx.size), idx]
            leaves_per_child = k ** (h - vlevel[internal] - 1).astype(np.float64)
            new_state[internal, 0] += idx * leaves_per_child
        leaf = ~internal
        if leaf.any():
            key_here = vpayload[leaf, k - 1]  # a leaf's subtree_lo is its key
            if strict:
                new_state[leaf, 0] += (key_here < keys[leaf]).astype(np.float64)
            else:
                new_state[leaf, 0] += (key_here <= keys[leaf]).astype(np.float64)
        return nxt, new_state

    return successor


#: range-walk modes (stored in state[:, 0])
_DESCEND, _ASCEND = 0.0, 1.0


def ktree_range_structure(tree: BalancedKTree) -> SearchStructure:
    """The undirected range walk over a balanced k-ary tree (Figure 3 setting).

    Query key: ``(lo, hi)`` (a 2-wide key).  State: ``[mode, target]``
    where ``target`` is the exclusive lower bound for the next leaf to
    visit (initially ``-inf``; the walk starts at the root and visits
    every leaf with key in ``[lo, hi]`` in key order, then stops).

    Adjacency layout: column 0 = parent (``-1`` at the root), columns
    ``1..k`` = children (``-1`` at leaves).  Payload layout:
    ``[sep_0 .. sep_{k-2}, subtree_lo, subtree_hi]``.

    The walk moves only along tree edges (one step per visit) and each
    move is decided from the current vertex's record alone, so it is a
    legal undirected multisearch per Section 2.
    """
    k = tree.k
    payload = np.concatenate(
        [tree.separators, tree.subtree_lo[:, None], tree.subtree_hi[:, None]], axis=1
    )
    adjacency = np.concatenate([tree.parent[:, None], tree.children], axis=1)
    is_leaf = tree.children[:, 0] < 0

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        m = vid.shape[0]
        nxt = np.full(m, STOP, dtype=np.int64)
        new_state = np.array(qstate, copy=True)
        lo = np.asarray(qkey)[:, 0]
        hi = np.asarray(qkey)[:, 1]
        mode = qstate[:, 0]
        target = np.maximum(qstate[:, 1], lo)  # next leaf must have key > target - or >= lo
        leaf = is_leaf[vid]
        seps = vpayload[:, : k - 1]
        sub_lo = vpayload[:, k - 1]
        sub_hi = vpayload[:, k]
        parent = vadjacency[:, 0]

        # -- at a leaf: the visit "reports" the leaf; plan the next move
        at_leaf = leaf
        if at_leaf.any():
            key_here = sub_lo  # a leaf's subtree range is its own key
            done = at_leaf & (key_here >= hi)
            cont = at_leaf & ~done
            nxt[cont] = parent[cont]
            new_state[cont, 0] = _ASCEND
            new_state[cont, 1] = key_here[cont]  # visited up to here (exclusive)
            # done leaves keep STOP

        # -- internal, descending: step into the child that contains the
        #    smallest leaf key > target
        desc = ~leaf & (mode == _DESCEND)
        if desc.any():
            t = target[desc]
            idx = (seps[desc] <= t[:, None]).sum(axis=1)  # first child with hi > t
            nxt[desc] = vadjacency[desc, :][np.arange(idx.size), 1 + idx]

        # -- internal, ascending: if this subtree still contains unvisited
        #    in-range leaves, turn around and descend; else keep ascending
        asc = ~leaf & (mode == _ASCEND)
        if asc.any():
            has_more = sub_hi > target
            turn = asc & has_more
            if turn.any():
                t = target[turn]
                idx = (seps[turn] <= t[:, None]).sum(axis=1)
                nxt[turn] = vadjacency[turn, :][np.arange(idx.size), 1 + idx]
                new_state[turn, 0] = _DESCEND
            keep = asc & ~has_more
            if keep.any():
                up = parent[keep]
                nxt[keep] = up  # STOP at the root (parent == -1 == STOP)
        return nxt, new_state

    return SearchStructure(
        adjacency=adjacency,
        payload=payload,
        level=tree.depth,
        successor=successor,
        directed=False,
    )
