"""Search-structure graph classes from the paper.

* :mod:`repro.graphs.hierarchical` — hierarchical DAGs (Section 1/3,
  Figure 1): levels ``L_0..L_h`` with ``|L_i| = mu^i`` (or sandwiched by
  ``c1*mu^i <= |L_i| <= c2*mu^i``), edges only between consecutive levels.
* :mod:`repro.graphs.ktree` — balanced k-ary search trees, the canonical
  alpha-partitionable (directed, Figure 2) and alpha-beta-partitionable
  (undirected, Figure 3) graphs.
* :mod:`repro.graphs.validate` — checkers for the definitional laws; these
  back the F1–F3 figure reproductions.
"""

from repro.graphs.hierarchical import HierarchicalDAG, build_mu_ary_search_dag, build_random_hierarchical_dag
from repro.graphs.ktree import BalancedKTree, build_balanced_search_tree

__all__ = [
    "HierarchicalDAG",
    "build_mu_ary_search_dag",
    "build_random_hierarchical_dag",
    "BalancedKTree",
    "build_balanced_search_tree",
]
