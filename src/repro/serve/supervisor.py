"""Supervised serving front-end: the batcher, backed by a worker pool.

:class:`SupervisedServer` keeps :class:`~repro.serve.batcher.BatchingServer`'s
accumulate-and-flush contract — per-query futures, cache short-circuit,
single-flight dedup, typed shutdown — but hands each flushed batch to a
:class:`~repro.serve.pool.WorkerPool` instead of running it in-process.
The mesh work therefore executes in worker *processes* that can crash,
hang, stall, or corrupt their replies without taking the event loop (or
any other query) down: the pool retries on healthy workers, restarts the
dead ones from the snapshot, and sheds load when the ingress bound is
hit.  Whatever happens, every accepted query's future resolves exactly
once — with the same bytes a direct in-process batch would produce, or
with a typed :class:`~repro.serve.errors.ServingError`.

Caching stays in the supervisor process, keyed on the pool's pinned
snapshot id.  Only *verified* replies (checksum-valid, from a clean
worker run) ever reach :meth:`ResultCache.put` — a corrupt or faulted
batch resolves exceptionally and leaves the cache untouched, exactly
like the in-process batcher's faulted-flush path.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.serve.cache import ResultCache, note_coalesced, query_cache_key
from repro.serve.errors import ServerClosed, ServingError
from repro.serve.pool import WorkerPool

__all__ = ["SupervisedServer"]


class SupervisedServer:
    """Accumulate single queries into batches answered by a worker pool.

    Parameters
    ----------
    pool:
        The :class:`WorkerPool` that answers flushed batches.  The
        server restores a lightweight local copy of the pool's service
        (construction-free, from the same pinned snapshot) purely for
        query canonicalization and cache keys — no engine ever runs in
        the supervisor process.
    batch_size / deadline_s:
        The flush state machine, identical to the in-process batcher.
    cache:
        Optional :class:`ResultCache`; hits bypass the pool entirely,
        and identical in-flight misses coalesce (single-flight).
    """

    def __init__(
        self,
        pool: WorkerPool,
        batch_size: int = 64,
        deadline_s: float = 0.01,
        cache: ResultCache | None = None,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        from repro.serve.service import restore_service
        from repro.serve.snapshot import read_snapshot

        self.pool = pool
        self.service = restore_service(
            read_snapshot(pool.snapshot_path, expected_id=pool.snapshot_id),
            **pool.service_kwargs,
        )
        self.batch_size = int(batch_size)
        self.deadline_s = float(deadline_s)
        self.cache = cache
        self._pending: list[tuple[np.ndarray, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self._inflight: dict[tuple[str, bytes], asyncio.Future] = {}
        self._batch_futures: set[asyncio.Future] = set()
        self._loop: asyncio.AbstractEventLoop | None = None
        self._closed = False
        self.stats = {
            "queries": 0,
            "batches": 0,
            "flush_size": 0,
            "flush_deadline": 0,
            "flush_drain": 0,
            "faulted_batches": 0,
            "mesh_steps": 0.0,
            "cache_hits": 0,
            "coalesced": 0,
        }

    # -- submission ----------------------------------------------------------

    async def submit(self, query):
        """Answer one query; resolves when its batch is served (or cached).

        Raises :class:`ServerClosed` synchronously once closed.  Pool
        rejections (:class:`Overloaded`, :class:`WorkerUnavailable`) and
        retry exhaustion (:class:`BatchFailed`) surface as typed
        exceptions on the returned future.
        """
        if self._closed:
            raise ServerClosed("SupervisedServer is closed; submit rejected")
        row = self.service.canonical_queries(query)
        if row.shape[0] != 1:
            raise ValueError("submit() takes a single query; use submit_many()")
        row = row[0]
        self.stats["queries"] += 1
        key = None
        if self.cache is not None:
            key = query_cache_key(self.pool.snapshot_id, row)
            found, value = self.cache.get(key)
            if found:
                self.stats["cache_hits"] += 1
                return value
            leader = self._inflight.get(key)
            if leader is not None and not leader.done():
                self.stats["coalesced"] += 1
                note_coalesced()
                return await asyncio.shield(leader)
        loop = asyncio.get_running_loop()
        self._loop = loop
        future: asyncio.Future = loop.create_future()
        if key is not None:
            self._inflight[key] = future
            future.add_done_callback(self._uninflight(key))
        self._pending.append((row, future))
        if len(self._pending) >= self.batch_size:
            self._flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(self.deadline_s, self._flush, "deadline")
        return await future

    def _uninflight(self, key):
        def _done(future, _key=key):
            if self._inflight.get(_key) is future:
                self._inflight.pop(_key, None)

        return _done

    async def submit_many(self, queries) -> list:
        """Submit a batch of rows concurrently; exceptions propagate per query."""
        rows = self.service.canonical_queries(queries)
        return await asyncio.gather(
            *(self.submit(row) for row in rows), return_exceptions=False
        )

    async def drain(self):
        """Flush pending queries and wait for their pool batches to land."""
        if self._pending:
            self._flush("drain")
        while self._batch_futures:
            await asyncio.gather(*list(self._batch_futures), return_exceptions=True)
        await asyncio.sleep(0)

    async def close(self, close_pool: bool = False):
        """Drain accepted work, then reject all further submits (typed).

        Idempotent.  With ``close_pool`` the underlying worker pool shuts
        down too (its own close resolves any stragglers with
        :class:`ServerClosed` — nothing is ever silently dropped).
        """
        self._closed = True
        await self.drain()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if close_pool:
            await asyncio.get_running_loop().run_in_executor(None, self.pool.close)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- the flush -----------------------------------------------------------

    def _flush(self, reason: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.stats["batches"] += 1
        self.stats[f"flush_{reason}"] += 1
        rows = np.stack([row for row, _ in batch])
        try:
            pool_future = self.pool.submit_batch(rows)
        except ServingError as exc:
            # admission control / breaker rejection: typed, synchronous,
            # before any work — every future in the batch learns why
            self.stats["faulted_batches"] += 1
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        afut = asyncio.wrap_future(pool_future, loop=self._loop)
        self._batch_futures.add(afut)
        afut.add_done_callback(lambda f, b=batch: self._on_batch_done(b, f))

    def _on_batch_done(self, batch, afut: asyncio.Future) -> None:
        self._batch_futures.discard(afut)
        exc = afut.exception() if not afut.cancelled() else None
        if afut.cancelled() or exc is not None:
            # retries exhausted / pool closed / all workers quarantined:
            # typed exception out, cache untouched
            self.stats["faulted_batches"] += 1
            err = exc if exc is not None else ServerClosed("batch cancelled")
            for _, future in batch:
                if not future.done():
                    future.set_exception(err)
            return
        results, steps = afut.result()
        self.stats["mesh_steps"] += float(steps)
        for (row, future), result in zip(batch, results):
            if self.cache is not None:
                self.cache.put(query_cache_key(self.pool.snapshot_id, row), result)
            if not future.done():
                future.set_result(result)
