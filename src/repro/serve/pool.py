"""Self-healing worker pool: N processes serving batches under a supervisor.

One hung flush or one crashed interpreter must not take the service
down.  This module splits serving across OS-process failure domains:

* **Workers** (:func:`_worker_main`): each process restores a
  :class:`~repro.serve.service.MultisearchService` from the
  content-addressed snapshot (construction-free, hash-validated with the
  supervisor's expected id) and answers batches one at a time.  A
  background thread heartbeats on the reply pipe, so the supervisor can
  tell *frozen* from *busy*.  Replies travel checksummed
  (:mod:`repro.serve.ipc`), so corruption in transit is detectable
  end-to-end.
* **Supervisor** (:class:`WorkerPool`): a dispatcher thread owns all
  pipe I/O and the failure policy —

  - **crash** detection via pipe EOF / process sentinel (immediate);
  - **hang** detection via missed heartbeats and per-batch deadlines
    (the hung process is killed, the batch retried elsewhere);
  - **slow** mitigation via optional hedged re-dispatch: after
    ``hedge_s`` the batch is duplicated onto an idle worker and the
    first *valid* reply wins (the loser's late reply is dropped — every
    future resolves exactly once);
  - **retry** with exponential backoff, bounded by ``max_retries``;
    exhaustion resolves the batch with a typed
    :class:`~repro.serve.errors.BatchFailed`;
  - **restart** of dead workers from the snapshot, behind a per-slot
    circuit breaker: ``breaker_threshold`` consecutive deaths without a
    clean reply quarantines the slot, and the service degrades to the
    surviving pool instead of crash-looping (all slots quarantined →
    typed :class:`~repro.serve.errors.WorkerUnavailable`);
  - **admission control**: a bounded ingress queue; excess load is shed
    with a typed :class:`~repro.serve.errors.Overloaded` *before* any
    work or memory is committed.

Supervision is pure host-side bookkeeping: no engine exists in the
supervisor process, so zero mesh steps are charged unless a worker runs
a batch — and a fault-free supervised batch charges exactly the steps
the same batch charges in-process.  Retry/timeout/shed/restart decisions
are announced as zero-step trace events (``supervisor:*``) on the
ambient span.

Process-level chaos rides the same :class:`~repro.mesh.faults.FaultPlan`
machinery as the engine and VM layers: ``fault_plans`` with
``worker_crash`` / ``worker_hang`` / ``worker_slow`` /
``worker_corrupt_reply`` kinds are shipped to the workers (per-slot,
per-generation derived seeds) and fire inside the worker loop.
"""

from __future__ import annotations

import os
import pathlib
import signal
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from multiprocessing import get_context
from multiprocessing.connection import wait as _conn_wait

import numpy as np

from repro.mesh.faults import PROCESS_FAULT_KINDS, FaultInjector, FaultPlan
from repro.mesh.trace import emit_event
from repro.serve.errors import BatchFailed, Overloaded, ServerClosed, WorkerUnavailable
from repro.serve.ipc import ReplyCorrupt, decode_rows, encode_rows, pack_reply, unpack_reply

__all__ = ["WorkerPool", "POOL_STAT_KEYS"]

#: every counter a pool's ``stats`` dict carries (fixed set: dashboards
#: and tests can rely on the keys existing at zero)
POOL_STAT_KEYS = (
    "batches", "mesh_steps", "retries", "timeouts", "hedges", "late_replies",
    "corrupt_replies", "crashes", "hangs", "shed", "restarts", "quarantined",
    "heartbeats", "worker_errors",
)

_SLOW_SEED_STRIDE = 1009     # per-slot fault-seed derivation stride
_GENERATION_STRIDE = 9173    # per-restart-generation stride


def _ensure_child_path() -> None:
    """Make ``repro`` importable in spawned workers (mirrors the bench runner)."""
    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    parts = [src]
    for part in os.environ.get("PYTHONPATH", "").split(os.pathsep):
        if part and part not in parts:
            parts.append(part)
    os.environ["PYTHONPATH"] = os.pathsep.join(parts)


# -- worker side -------------------------------------------------------------


def _worker_main(
    conn,
    worker_id: int,
    snapshot_path: str,
    expected_snapshot_id: str | None,
    service_kwargs: dict,
    plan_dicts: list[dict],
    heartbeat_s: float,
    slow_s: float,
) -> None:
    """Worker process entry: restore, heartbeat, answer batches forever.

    The restore is hash-validated against the supervisor's expected
    snapshot id — a torn or swapped file fails closed with a ``fatal``
    message naming the id, which feeds the supervisor's circuit breaker
    instead of serving wrong answers.
    """
    send_lock = threading.Lock()

    def send(msg) -> bool:
        try:
            with send_lock:
                conn.send(msg)
            return True
        except (BrokenPipeError, OSError):
            return False

    try:
        from repro.serve.service import restore_service
        from repro.serve.snapshot import read_snapshot

        snapshot = read_snapshot(snapshot_path, expected_id=expected_snapshot_id)
        service = restore_service(snapshot, **service_kwargs)
    except BaseException as exc:  # noqa: BLE001 - report then die, never serve
        send(("fatal", worker_id, f"{type(exc).__name__}: {exc}"))
        conn.close()
        os._exit(70)

    site = f"worker:{worker_id}"
    injector = (
        FaultInjector(*[FaultPlan.from_dict(d) for d in plan_dicts])
        if plan_dicts
        else None
    )
    send(("ready", worker_id, service.snapshot_id))

    stop_hb = threading.Event()

    def heartbeat() -> None:
        seq = 0
        while not stop_hb.wait(heartbeat_s):
            seq += 1
            if not send(("hb", worker_id, seq)):
                return

    threading.Thread(target=heartbeat, daemon=True, name="hb").start()

    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        if msg[0] == "stop":
            break
        _, batch_id, shape, data = msg
        rows = decode_rows(shape, data)
        fired = injector.on_worker_batch(site) if injector is not None else []
        if "worker_crash" in fired:
            os._exit(139)  # die without unwinding: no reply, EOF at the parent
        if "worker_hang" in fired:
            # freeze the whole process, heartbeat thread included — the
            # supervisor must notice via deadline/heartbeat, not be told
            os.kill(os.getpid(), signal.SIGSTOP)
        if "worker_slow" in fired:
            time.sleep(slow_s)
        try:
            results, steps = service.run_batch(rows)
        except Exception as exc:  # noqa: BLE001 - report, stay alive
            send(("reply_err", worker_id, batch_id, f"{type(exc).__name__}: {exc}"))
            continue
        payload, digest = pack_reply(results, steps)
        if injector is not None:
            payload = injector.on_reply_bytes(payload, site)
        send(("reply", worker_id, batch_id, payload, digest))
    stop_hb.set()
    conn.close()


# -- supervisor side ---------------------------------------------------------


@dataclass
class _Worker:
    """One pool slot's supervision state."""

    slot: int
    process: object = None
    conn: object = None
    state: str = "starting"  # starting | idle | busy | dead | quarantined
    generation: int = 0
    busy_batch: int | None = None
    last_hb: float = 0.0
    started_at: float = 0.0
    consecutive_failures: int = 0
    restart_at: float | None = None

    @property
    def alive_ish(self) -> bool:
        return self.state in ("starting", "idle", "busy")


@dataclass
class _Batch:
    """One accepted batch's scheduling state."""

    batch_id: int
    shape: tuple
    data: bytes
    future: Future = field(default_factory=Future)
    failed_attempts: int = 0
    reasons: list[str] = field(default_factory=list)
    #: slot -> dispatch time of every live assignment (hedges add a second)
    assignments: dict[int, float] = field(default_factory=dict)
    first_dispatch: float | None = None
    not_before: float = 0.0
    hedged: bool = False


class WorkerPool:
    """A supervised pool of snapshot-restored serving workers.

    Parameters
    ----------
    snapshot_path:
        The ``.npz`` snapshot every worker restores from.  Read once in
        the supervisor (hash-validated) to learn the expected snapshot
        id; workers re-validate against that id on every (re)start.
    service_kwargs:
        Extra keyword arguments for :func:`repro.serve.restore_service`.
    workers:
        Pool size (failure domains).
    batch_deadline_s:
        Per-dispatch reply deadline; exceeded → the worker is presumed
        hung, killed, and the batch retried elsewhere.
    heartbeat_s / heartbeat_timeout_s:
        Worker heartbeat period, and the silence window after which a
        non-replying worker is declared frozen.
    max_retries:
        Failed dispatches a batch may accumulate before it resolves with
        :class:`BatchFailed`.
    backoff_s:
        Base retry delay, doubled per failed attempt.
    hedge_s:
        Optional: duplicate a still-pending batch onto an idle worker
        after this long; first valid reply wins.  ``None`` disables.
    max_pending:
        Bound on queued + in-flight batches; beyond it ``submit_batch``
        sheds with :class:`Overloaded`.
    breaker_threshold:
        Consecutive worker deaths (without one clean reply) that
        quarantine the slot.
    restart_backoff_s:
        Base delay before restarting a dead worker, doubled per
        consecutive failure.
    fault_plans:
        Process-level :class:`FaultPlan`\\ s (``worker_*`` kinds only)
        shipped to workers — the chaos hook.  Per-slot, per-generation
        seeds are derived so restarted workers draw fresh schedules.
    slow_s:
        Stall length an injected ``worker_slow`` sleeps for.
    mp_context:
        ``multiprocessing`` start method (default ``spawn``, matching
        the bench runner's crash isolation).
    shards:
        Split every submitted batch's rows into up to this many
        contiguous chunks dispatched as independent sub-batches (so
        they land on distinct workers when workers are idle — the
        shard-per-worker serving mode the sharded mesh unlocks).  The
        returned future resolves with the per-query results
        concatenated back in submission order and the per-shard mesh
        steps summed; queries are answered independently, so the
        results are byte-identical to an unsharded submit.  Each chunk
        retries/hedges/fails independently; the first chunk failure
        fails the whole submit.  ``1`` (default) preserves the
        one-batch-one-worker behavior.
    """

    def __init__(
        self,
        snapshot_path,
        service_kwargs: dict | None = None,
        workers: int = 2,
        *,
        batch_deadline_s: float = 10.0,
        heartbeat_s: float = 0.25,
        heartbeat_timeout_s: float = 5.0,
        max_retries: int = 3,
        backoff_s: float = 0.05,
        hedge_s: float | None = None,
        max_pending: int = 64,
        breaker_threshold: int = 3,
        restart_backoff_s: float = 0.1,
        ready_timeout_s: float = 60.0,
        fault_plans=(),
        slow_s: float = 1.0,
        mp_context: str = "spawn",
        shards: int = 1,
    ):
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if max_pending < 1:
            raise ValueError("max_pending must be >= 1")
        if shards < 1:
            raise ValueError("shards must be >= 1")
        plans = tuple(fault_plans)
        bad = [p.kind for p in plans if p.kind not in PROCESS_FAULT_KINDS]
        if bad:
            raise ValueError(
                f"WorkerPool fault plans must use process kinds "
                f"{PROCESS_FAULT_KINDS}; got {bad}"
            )
        from repro.serve.snapshot import read_snapshot

        self.snapshot_path = str(snapshot_path)
        # one validating read up front: a bad file fails fast here, and the
        # id pins every worker restore (and the result cache) to these bytes
        self.snapshot_id = read_snapshot(self.snapshot_path).snapshot_id
        self.service_kwargs = dict(service_kwargs or {})
        self.n_workers = int(workers)
        self.batch_deadline_s = float(batch_deadline_s)
        self.heartbeat_s = float(heartbeat_s)
        self.heartbeat_timeout_s = float(heartbeat_timeout_s)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self.hedge_s = None if hedge_s is None else float(hedge_s)
        self.max_pending = int(max_pending)
        self.breaker_threshold = int(breaker_threshold)
        self.restart_backoff_s = float(restart_backoff_s)
        self.ready_timeout_s = float(ready_timeout_s)
        self.fault_plans = plans
        self.slow_s = float(slow_s)
        self.shards = int(shards)
        self._ctx = get_context(mp_context)

        self.stats: dict[str, float] = {key: 0 for key in POOL_STAT_KEYS}
        self._lock = threading.RLock()
        self._queue: deque[_Batch] = deque()
        self._inflight: dict[int, _Batch] = {}
        self._workers: dict[int, _Worker] = {}
        self._next_batch_id = 0
        self._closed = False
        self._stopping = threading.Event()
        self._wakeup_r, self._wakeup_w = os.pipe()

        _ensure_child_path()
        for slot in range(self.n_workers):
            self._workers[slot] = _Worker(slot=slot)
            self._spawn(self._workers[slot])
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, daemon=True, name="pool-dispatcher"
        )
        self._dispatcher.start()

    # -- public API ----------------------------------------------------------

    def submit_batch(self, rows: np.ndarray) -> Future:
        """Submit one batch of canonical query rows; thread-safe.

        Returns a :class:`concurrent.futures.Future` resolving to
        ``(results, mesh_steps)``.  Raises :class:`ServerClosed` /
        :class:`WorkerUnavailable` / :class:`Overloaded` synchronously —
        a rejected submit never creates a future.

        With ``shards > 1`` the rows are cut into contiguous chunks
        enqueued atomically (admission control sees all of them or
        none); the future resolves with results re-concatenated in
        submission order and the per-shard mesh steps summed.
        """
        rows = np.asarray(rows)
        n_shards = min(self.shards, max(1, int(rows.shape[0])))
        if n_shards <= 1:
            encoded = [encode_rows(rows)]
        else:
            bounds = np.linspace(0, rows.shape[0], n_shards + 1).astype(int)
            encoded = [
                encode_rows(rows[bounds[i]:bounds[i + 1]]) for i in range(n_shards)
            ]
        with self._lock:
            if self._closed:
                raise ServerClosed("pool is closed; no new batches accepted")
            if all(w.state == "quarantined" for w in self._workers.values()):
                raise WorkerUnavailable(
                    "every worker slot is quarantined (circuit breaker open); "
                    f"snapshot {self.snapshot_id[:12]}… cannot be served"
                )
            if len(self._queue) + len(self._inflight) + len(encoded) > self.max_pending:
                self.stats["shed"] += 1
                emit_event("supervisor:shed")
                raise Overloaded(
                    f"ingress queue full ({self.max_pending} batches pending); "
                    "load shed"
                )
            batches = []
            for shape, data in encoded:
                self._next_batch_id += 1
                batches.append(
                    _Batch(batch_id=self._next_batch_id, shape=shape, data=data)
                )
                self._queue.append(batches[-1])
                self.stats["batches"] += 1
        self._wake()
        if len(batches) == 1:
            return batches[0].future
        return self._aggregate([b.future for b in batches])

    @staticmethod
    def _aggregate(parts: list[Future]) -> Future:
        """One future over per-shard futures: ordered concat + summed steps.

        The first shard failure (typed ``BatchFailed`` etc.) fails the
        aggregate; late sibling results are discarded exactly like a
        hedge loser's reply.
        """
        agg: Future = Future()
        lock = threading.Lock()
        slots: list = [None] * len(parts)
        remaining = [len(parts)]

        def _on_done(i: int):
            def callback(fut: Future) -> None:
                with lock:
                    if agg.done():
                        return
                    exc = fut.exception()
                    if exc is not None:
                        agg.set_exception(exc)
                        return
                    slots[i] = fut.result()
                    remaining[0] -= 1
                    if remaining[0]:
                        return
                results: list = []
                steps = 0.0
                for part_results, part_steps in slots:
                    results.extend(part_results)
                    steps += float(part_steps)
                agg.set_result((results, steps))

            return callback

        for i, part in enumerate(parts):
            part.add_done_callback(_on_done(i))
        return agg

    @property
    def pending(self) -> int:
        with self._lock:
            return len(self._queue) + len(self._inflight)

    def worker_states(self) -> dict[int, str]:
        with self._lock:
            return {slot: w.state for slot, w in self._workers.items()}

    def healthy_workers(self) -> int:
        with self._lock:
            return sum(1 for w in self._workers.values() if w.alive_ish)

    def close(self, timeout: float | None = 10.0) -> None:
        """Stop accepting, drain in-flight work, shut every worker down.

        Batches still unresolved when the drain window expires resolve
        with :class:`ServerClosed` — never silently dropped.  Idempotent.
        """
        with self._lock:
            if self._closed and self._stopping.is_set():
                return
            self._closed = True
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                if not self._queue and not self._inflight:
                    break
            if deadline is not None and time.monotonic() >= deadline:
                break
            time.sleep(0.01)
        self._stopping.set()
        self._wake()
        self._dispatcher.join(timeout=5.0)
        with self._lock:
            leftovers = list(self._queue) + list(self._inflight.values())
            self._queue.clear()
            self._inflight.clear()
            for batch in leftovers:
                self._resolve_error(
                    batch, ServerClosed("pool closed while the batch was pending")
                )
            for worker in self._workers.values():
                self._shutdown_worker(worker)
        for fd in (self._wakeup_r, self._wakeup_w):
            try:
                os.close(fd)
            except OSError:
                pass

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- spawning / teardown -------------------------------------------------

    def _spawn(self, worker: _Worker) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        plan_dicts = [
            dict(
                p.to_dict(),
                seed=p.seed
                + _SLOW_SEED_STRIDE * worker.slot
                + _GENERATION_STRIDE * worker.generation,
            )
            for p in self.fault_plans
        ]
        proc = self._ctx.Process(
            target=_worker_main,
            args=(
                child_conn,
                worker.slot,
                self.snapshot_path,
                self.snapshot_id,
                self.service_kwargs,
                plan_dicts,
                self.heartbeat_s,
                self.slow_s,
            ),
            daemon=True,
            name=f"serve-worker-{worker.slot}",
        )
        proc.start()
        child_conn.close()
        now = time.monotonic()
        worker.process = proc
        worker.conn = parent_conn
        worker.state = "starting"
        worker.busy_batch = None
        worker.started_at = now
        worker.last_hb = now
        worker.restart_at = None

    def _shutdown_worker(self, worker: _Worker, grace: float = 1.0) -> None:
        proc, conn = worker.process, worker.conn
        if conn is not None:
            try:
                conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        if proc is not None and proc.is_alive():
            proc.join(grace)
            if proc.is_alive():
                proc.kill()
                proc.join()
        if conn is not None:
            conn.close()
        worker.process = worker.conn = None

    def _wake(self) -> None:
        try:
            os.write(self._wakeup_w, b"x")
        except OSError:
            pass

    # -- dispatcher loop -----------------------------------------------------

    def _dispatch_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                self._dispatch_once()
            except Exception as exc:  # noqa: BLE001 - supervision must survive
                self.stats["worker_errors"] += 1
                self._note_dispatcher_error(exc)

    def _note_dispatcher_error(self, exc: Exception) -> None:
        # a supervisor bug must not strand futures silently; keep the last
        # few for post-mortems (tests assert this stays empty)
        errors = self.stats.setdefault("dispatcher_errors", [])  # type: ignore[arg-type]
        if isinstance(errors, list) and len(errors) < 8:
            errors.append(f"{type(exc).__name__}: {exc}")

    def _dispatch_once(self) -> None:
        with self._lock:
            self._assign_locked()
            waitables = [self._wakeup_r]
            by_conn = {}
            by_sentinel = {}
            for worker in self._workers.values():
                if worker.conn is not None and worker.state != "quarantined":
                    waitables.append(worker.conn)
                    by_conn[worker.conn] = worker
                if (
                    worker.process is not None
                    and worker.state in ("starting", "idle", "busy")
                ):
                    waitables.append(worker.process.sentinel)
                    by_sentinel[worker.process.sentinel] = worker
            poll = self._next_timer_locked()
        try:
            ready = _conn_wait(waitables, timeout=poll)
        except OSError:
            ready = []
        for item in ready:
            if item == self._wakeup_r:
                try:
                    os.read(self._wakeup_r, 4096)
                except OSError:
                    pass
                continue
            with self._lock:
                worker = by_conn.get(item)
                if worker is not None:
                    self._drain_conn_locked(worker)
                    continue
                worker = by_sentinel.get(item)
                if worker is not None and worker.state in ("starting", "idle", "busy"):
                    self._mark_dead_locked(worker, reason="crash")
        with self._lock:
            self._check_deadlines_locked()
            self._check_heartbeats_locked()
            self._restart_due_locked()
            self._fail_unservable_locked()

    def _next_timer_locked(self) -> float:
        now = time.monotonic()
        horizon = now + 0.25
        for batch in self._inflight.values():
            for t0 in batch.assignments.values():
                horizon = min(horizon, t0 + self.batch_deadline_s)
            if (
                self.hedge_s is not None
                and not batch.hedged
                and batch.first_dispatch is not None
            ):
                horizon = min(horizon, batch.first_dispatch + self.hedge_s)
        for batch in self._queue:
            if batch.not_before > now:
                horizon = min(horizon, batch.not_before)
        for worker in self._workers.values():
            if worker.restart_at is not None:
                horizon = min(horizon, worker.restart_at)
            if worker.alive_ish:
                horizon = min(horizon, worker.last_hb + self.heartbeat_timeout_s)
        return max(0.005, horizon - now)

    # -- assignment ----------------------------------------------------------

    def _assign_locked(self) -> None:
        now = time.monotonic()
        idle = deque(
            w for w in self._workers.values() if w.state == "idle"
        )
        # first: queued batches (retries keep their backoff holds)
        still_held: list[_Batch] = []
        while self._queue and idle:
            batch = self._queue.popleft()
            if batch.future.done():
                continue  # e.g. already failed typed
            if batch.not_before > now:
                still_held.append(batch)
                continue
            worker = idle.popleft()
            self._dispatch_to_locked(batch, worker)
        for batch in still_held:
            self._queue.appendleft(batch)
        # then: hedges for slow in-flight batches
        if self.hedge_s is None or not idle:
            return
        for batch in list(self._inflight.values()):
            if not idle:
                break
            if (
                batch.hedged
                or batch.future.done()
                or batch.first_dispatch is None
                or now - batch.first_dispatch < self.hedge_s
                or not batch.assignments
            ):
                continue
            worker = idle.popleft()
            batch.hedged = True
            self.stats["hedges"] += 1
            emit_event("supervisor:hedge")
            self._dispatch_to_locked(batch, worker, hedge=True)

    def _dispatch_to_locked(
        self, batch: _Batch, worker: _Worker, hedge: bool = False
    ) -> None:
        now = time.monotonic()
        try:
            worker.conn.send(("batch", batch.batch_id, batch.shape, batch.data))
        except (BrokenPipeError, OSError):
            self._mark_dead_locked(worker, reason="crash")
            if not hedge:
                self._queue.appendleft(batch)
            return
        worker.state = "busy"
        worker.busy_batch = batch.batch_id
        batch.assignments[worker.slot] = now
        if batch.first_dispatch is None:
            batch.first_dispatch = now
        self._inflight[batch.batch_id] = batch

    # -- message handling ----------------------------------------------------

    def _drain_conn_locked(self, worker: _Worker) -> None:
        while worker.conn is not None:
            try:
                if not worker.conn.poll():
                    return
                msg = worker.conn.recv()
            except (EOFError, OSError):
                if worker.state in ("starting", "idle", "busy"):
                    self._mark_dead_locked(worker, reason="crash")
                return
            tag = msg[0]
            if tag == "hb":
                worker.last_hb = time.monotonic()
                self.stats["heartbeats"] += 1
            elif tag == "ready":
                worker.last_hb = time.monotonic()
                if worker.state == "starting":
                    worker.state = "idle"
            elif tag == "reply":
                self._on_reply_locked(worker, msg[2], msg[3], msg[4])
            elif tag == "reply_err":
                self._on_reply_err_locked(worker, msg[2], msg[3])
            elif tag == "fatal":
                self.stats["worker_errors"] += 1
                self._mark_dead_locked(worker, reason=f"fatal:{msg[2]}")

    def _on_reply_locked(
        self, worker: _Worker, batch_id: int, payload: bytes, digest: str
    ) -> None:
        worker.last_hb = time.monotonic()
        worker.state = "idle"
        worker.busy_batch = None
        batch = self._inflight.get(batch_id)
        if batch is None or batch.future.done():
            self.stats["late_replies"] += 1
            return
        try:
            results, steps = unpack_reply(payload, digest)
        except ReplyCorrupt as exc:
            # the end-to-end check fired: discard, never resolve, retry
            self.stats["corrupt_replies"] += 1
            emit_event("supervisor:corrupt-reply")
            batch.assignments.pop(worker.slot, None)
            self._attempt_failed_locked(batch, f"corrupt_reply ({exc})")
            return
        worker.consecutive_failures = 0  # one clean reply closes the breaker
        batch.assignments.pop(worker.slot, None)
        self._inflight.pop(batch_id, None)
        self.stats["mesh_steps"] += float(steps)
        batch.future.set_result((results, float(steps)))

    def _on_reply_err_locked(self, worker: _Worker, batch_id: int, error: str) -> None:
        worker.last_hb = time.monotonic()
        worker.state = "idle"
        worker.busy_batch = None
        self.stats["worker_errors"] += 1
        batch = self._inflight.get(batch_id)
        if batch is None or batch.future.done():
            self.stats["late_replies"] += 1
            return
        batch.assignments.pop(worker.slot, None)
        self._attempt_failed_locked(batch, f"error:{error}")

    # -- failure policy ------------------------------------------------------

    def _attempt_failed_locked(self, batch: _Batch, reason: str) -> None:
        """One dispatch of ``batch`` failed; retry, wait on a hedge, or give up."""
        batch.reasons.append(reason)
        batch.failed_attempts += 1
        if batch.assignments:
            return  # a hedge twin is still out — let it race
        self._inflight.pop(batch.batch_id, None)
        if batch.failed_attempts > self.max_retries:
            self._resolve_error(
                batch,
                BatchFailed(
                    f"batch {batch.batch_id} failed after "
                    f"{batch.failed_attempts} attempt(s)",
                    reasons=tuple(batch.reasons),
                ),
            )
            return
        self.stats["retries"] += 1
        emit_event("supervisor:retry")
        hold = self.backoff_s * (2 ** (batch.failed_attempts - 1))
        batch.not_before = time.monotonic() + hold
        batch.hedged = False
        batch.first_dispatch = None
        self._queue.append(batch)

    def _resolve_error(self, batch: _Batch, exc: Exception) -> None:
        if not batch.future.done():
            batch.future.set_exception(exc)

    def _mark_dead_locked(self, worker: _Worker, reason: str) -> None:
        """A worker died (crash, kill after hang, fatal restore failure)."""
        if worker.state in ("dead", "quarantined"):
            return
        was_starting = worker.state == "starting"
        busy = worker.busy_batch
        worker.state = "dead"
        worker.busy_batch = None
        worker.consecutive_failures += 1
        self.stats["crashes"] += 1 if reason == "crash" else 0
        self._shutdown_worker(worker, grace=0.1)
        if busy is not None:
            batch = self._inflight.get(busy)
            if batch is not None:
                batch.assignments.pop(worker.slot, None)
                self._attempt_failed_locked(batch, reason)
        if worker.consecutive_failures >= self.breaker_threshold:
            worker.state = "quarantined"
            self.stats["quarantined"] += 1
            emit_event("supervisor:quarantine")
            return
        hold = self.restart_backoff_s * (2 ** (worker.consecutive_failures - 1))
        worker.restart_at = time.monotonic() + hold
        if was_starting and reason.startswith("fatal"):
            # restore failures are deterministic more often than not; the
            # breaker escalates quickly but we still give it its chances
            pass

    def _check_deadlines_locked(self) -> None:
        now = time.monotonic()
        for batch in list(self._inflight.values()):
            for slot, t0 in list(batch.assignments.items()):
                if now - t0 < self.batch_deadline_s:
                    continue
                worker = self._workers.get(slot)
                batch.assignments.pop(slot, None)
                self.stats["timeouts"] += 1
                emit_event("supervisor:timeout")
                if worker is not None and worker.busy_batch == batch.batch_id:
                    # presumed hung: kill it; the sentinel fires but the
                    # batch failure is charged here, exactly once
                    self.stats["hangs"] += 1
                    worker.busy_batch = None
                    worker.state = "dead"
                    worker.consecutive_failures += 1
                    proc = worker.process
                    if proc is not None and proc.is_alive():
                        proc.kill()
                    self._shutdown_worker(worker, grace=0.5)
                    if worker.consecutive_failures >= self.breaker_threshold:
                        worker.state = "quarantined"
                        self.stats["quarantined"] += 1
                        emit_event("supervisor:quarantine")
                    else:
                        worker.restart_at = now + self.restart_backoff_s * (
                            2 ** (worker.consecutive_failures - 1)
                        )
                self._attempt_failed_locked(batch, "timeout")

    def _check_heartbeats_locked(self) -> None:
        now = time.monotonic()
        for worker in self._workers.values():
            if not worker.alive_ish:
                continue
            window = self.heartbeat_timeout_s
            if worker.state == "starting":
                window = max(window, self.ready_timeout_s)
            if now - worker.last_hb < window:
                continue
            # frozen: no heartbeat inside the window — kill and recover
            self.stats["hangs"] += 1
            proc = worker.process
            if proc is not None and proc.is_alive():
                proc.kill()
            self._mark_dead_locked(worker, reason="hang")

    def _restart_due_locked(self) -> None:
        now = time.monotonic()
        for worker in self._workers.values():
            if worker.state == "dead" and worker.restart_at is not None:
                if now >= worker.restart_at and not self._closed:
                    worker.generation += 1
                    self.stats["restarts"] += 1
                    emit_event("supervisor:restart")
                    self._spawn(worker)

    def _fail_unservable_locked(self) -> None:
        """With every slot quarantined, pending batches must still resolve."""
        if not all(w.state == "quarantined" for w in self._workers.values()):
            return
        doomed = list(self._queue) + list(self._inflight.values())
        self._queue.clear()
        self._inflight.clear()
        for batch in doomed:
            self._resolve_error(
                batch,
                WorkerUnavailable(
                    "every worker slot is quarantined (circuit breaker open)"
                ),
            )
