"""Bounded LRU result cache for the serving layer.

Keyed on ``(snapshot_id, query bytes)`` — the snapshot id pins the exact
structure arrays the answer was computed against, so a cache can safely
outlive a restart as long as it is re-keyed against the same snapshot.

Hit/miss counters follow the argsort-memo idiom
(:mod:`repro.mesh.records`): per-instance counts plus process-wide
class-level totals drained per bench point by
:func:`drain_cache_counters`, and zero-step trace events
(``result-cache:hit`` / ``result-cache:miss``) on the ambient span so
profiles can attribute a fast batch to caching rather than the kernel
backend.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from repro.mesh.trace import emit_event

__all__ = [
    "ResultCache",
    "query_cache_key",
    "cache_counters",
    "drain_cache_counters",
    "note_coalesced",
]


def query_cache_key(snapshot_id: str, query: np.ndarray) -> tuple[str, bytes] | None:
    """The canonical cache key for one query against one snapshot.

    The query is canonicalized to a contiguous float64 buffer so that the
    same point submitted as a list, a float32 array, or a strided slice
    maps to the same entry.

    Returns ``None`` for rows containing non-finite values: NaN compares
    unequal to itself, so a NaN-bearing row is either malformed input or
    a corruption artifact (the chaos ``nan_query_key`` corruptor's
    signature), and must never populate or serve from the cache.
    :class:`ResultCache` treats a ``None`` key as uncacheable.
    """
    q = np.ascontiguousarray(np.asarray(query, dtype=np.float64))
    if not np.isfinite(q).all():
        return None
    return (snapshot_id, q.tobytes())


class ResultCache:
    """Bounded LRU mapping ``(snapshot_id, query bytes) -> result``.

    Results are stored as read-only scalars/arrays; ``get`` returns the
    stored object (callers must not mutate it — the serving layer hands
    out numpy scalars and per-query copies).
    """

    #: process-wide totals across every cache instance, for bench/profile
    #: attribution (drained per point by ``drain_cache_counters``)
    total_hits = 0
    total_misses = 0
    #: misses that were coalesced behind an identical in-flight computation
    #: (single-flight dedup in the batching front-ends) rather than
    #: re-submitted to the mesh
    total_coalesced = 0

    def __init__(self, capacity: int = 4096):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = int(capacity)
        self._data: OrderedDict[tuple[str, bytes], object] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def get(self, key: tuple[str, bytes] | None):
        """Return ``(found, value)``; refreshes LRU order on a hit.

        A ``None`` key (an uncacheable non-finite row, see
        :func:`query_cache_key`) always misses.
        """
        if key is None:
            self.misses += 1
            ResultCache.total_misses += 1
            emit_event("result-cache:miss")
            return False, None
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            ResultCache.total_misses += 1
            emit_event("result-cache:miss")
            return False, None
        self._data.move_to_end(key)
        self.hits += 1
        ResultCache.total_hits += 1
        emit_event("result-cache:hit")
        return True, value

    def put(self, key: tuple[str, bytes] | None, value) -> None:
        """Store ``value``; a ``None`` key (uncacheable row) is dropped."""
        if key is None:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._data.clear()

    def keys(self) -> list[tuple[str, bytes]]:
        """Snapshot of the stored keys, LRU order (tests audit cleanliness)."""
        return list(self._data.keys())

    def counters(self) -> dict[str, int]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "entries": len(self._data),
        }


def note_coalesced() -> None:
    """Record one coalesced miss: an identical query was already in flight.

    Called by the batching front-ends when single-flight dedup piggybacks
    a cache miss on an identical pending computation instead of running
    it again.  Emits the zero-step ``result-cache:coalesced`` trace event
    so profiles can see dedup working alongside hits and misses.
    """
    ResultCache.total_coalesced += 1
    emit_event("result-cache:coalesced")


def cache_counters() -> dict[str, int]:
    """Process-wide result-cache totals (across all cache instances)."""
    return {
        "hits": ResultCache.total_hits,
        "misses": ResultCache.total_misses,
        "coalesced": ResultCache.total_coalesced,
    }


def drain_cache_counters() -> dict[str, int]:
    """Read and reset the process-wide cache totals (bench-worker scoping)."""
    out = cache_counters()
    ResultCache.total_hits = 0
    ResultCache.total_misses = 0
    ResultCache.total_coalesced = 0
    return out
