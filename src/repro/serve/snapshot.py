"""Structure snapshots: build once, serve forever.

A snapshot is a single ``.npz`` file holding a structure's flat arrays
plus a versioned JSON header (stored as a uint8 array under
``__repro_header__``, so the whole file stays one ``np.savez`` archive
loadable with ``allow_pickle=False``).  The header records:

* ``magic`` / ``version`` — format identity, checked on read;
* ``kind`` — which restore path applies (``pointloc`` / ``linepoly`` /
  ``interval``);
* ``meta`` — the scalar parameters the structure's successor function
  needs (tree height, DAG levels, ``mu``, ...), so restore is a factory
  call over the arrays with **no construction re-run**;
* ``provenance`` — the environment that built the structure (backend,
  library versions, CPU), mirroring the bench documents;
* ``snapshot_id`` — a sha256 over ``kind`` plus every array's name,
  dtype, shape and bytes.  The id is content-derived, so it doubles as
  the cache-key component that pins answers to the exact arrays they
  were computed against, and ``read_snapshot`` recomputes it to detect
  corruption.
"""

from __future__ import annotations

import hashlib
import io
import json
from dataclasses import dataclass
from pathlib import Path

import numpy as np

__all__ = [
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "Snapshot",
    "SnapshotError",
    "compute_snapshot_id",
    "write_snapshot",
    "read_snapshot",
    "snapshot_pointloc",
    "snapshot_linepoly",
    "snapshot_intervals",
]

SNAPSHOT_MAGIC = "repro-snapshot"
SNAPSHOT_VERSION = 1
_HEADER_KEY = "__repro_header__"
_KINDS = ("pointloc", "linepoly", "interval")


class SnapshotError(ValueError):
    """A snapshot file failed validation (magic, version, kind, or id)."""


@dataclass
class Snapshot:
    """An in-memory snapshot: header fields plus the array payload."""

    kind: str
    arrays: dict[str, np.ndarray]
    meta: dict
    snapshot_id: str
    version: int = SNAPSHOT_VERSION
    provenance: dict | None = None


def compute_snapshot_id(kind: str, arrays: dict[str, np.ndarray]) -> str:
    """Content hash over ``kind`` and the arrays, order-independent."""
    digest = hashlib.sha256()
    digest.update(kind.encode())
    for name in sorted(arrays):
        arr = np.ascontiguousarray(arrays[name])
        digest.update(name.encode())
        digest.update(str(arr.dtype).encode())
        digest.update(repr(arr.shape).encode())
        digest.update(arr.tobytes())
    return digest.hexdigest()


def write_snapshot(
    path, kind: str, arrays: dict[str, np.ndarray], meta: dict
) -> Snapshot:
    """Serialize a built structure to ``path``; returns the Snapshot."""
    if kind not in _KINDS:
        raise SnapshotError(f"unknown snapshot kind {kind!r} (expected one of {_KINDS})")
    if _HEADER_KEY in arrays:
        raise SnapshotError(f"array name {_HEADER_KEY!r} is reserved")
    from repro.bench.runner import provenance

    arrays = {name: np.ascontiguousarray(arr) for name, arr in arrays.items()}
    snapshot_id = compute_snapshot_id(kind, arrays)
    header = {
        "magic": SNAPSHOT_MAGIC,
        "version": SNAPSHOT_VERSION,
        "kind": kind,
        "meta": meta,
        "snapshot_id": snapshot_id,
        "provenance": provenance(),
    }
    header_bytes = np.frombuffer(
        json.dumps(header, sort_keys=True).encode(), dtype=np.uint8
    )
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    # write via an in-memory buffer then one atomic-ish rename-free dump;
    # np.savez appends ".npz" to names without a suffix, so keep control
    buf = io.BytesIO()
    np.savez(buf, **{_HEADER_KEY: header_bytes}, **arrays)
    path.write_bytes(buf.getvalue())
    return Snapshot(
        kind=kind,
        arrays=arrays,
        meta=dict(meta),
        snapshot_id=snapshot_id,
        version=SNAPSHOT_VERSION,
        provenance=header["provenance"],
    )


def read_snapshot(path, expected_id: str | None = None) -> Snapshot:
    """Load and validate a snapshot written by :func:`write_snapshot`.

    Raises :class:`SnapshotError` on a bad magic, an unsupported version,
    an unknown kind, or a content hash that no longer matches the header
    (bit rot / truncation / hand-editing).  ``path`` may also be an open
    binary file object.

    A truncated or partially-written file (a torn write: the ``.npz``
    zip directory lives at the end, so any prefix is unreadable) fails
    *closed*: the low-level load error is wrapped in
    :class:`SnapshotError` instead of leaking ``zipfile``/``numpy``
    internals.  Pass ``expected_id`` (e.g. the id a supervisor restored
    at startup) to pin the restore to one exact snapshot — the error
    then names the snapshot id the caller wanted, even when the file is
    too damaged to say what it holds.
    """
    source = path if hasattr(path, "read") else Path(path)
    want = f" (expected snapshot {expected_id})" if expected_id else ""
    try:
        npz_ctx = np.load(source, allow_pickle=False)
    except SnapshotError:
        raise
    except Exception as exc:  # zipfile.BadZipFile, OSError, ValueError, ...
        raise SnapshotError(
            f"{path}: unreadable snapshot — truncated, torn write, or not "
            f"an archive ({type(exc).__name__}: {exc}){want}"
        ) from exc
    with npz_ctx as npz:
        if _HEADER_KEY not in npz.files:
            raise SnapshotError(
                f"{path}: not a repro snapshot (missing header){want}"
            )
        try:
            header = json.loads(bytes(npz[_HEADER_KEY].tobytes()).decode())
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SnapshotError(f"{path}: unreadable snapshot header: {exc}") from exc
        if header.get("magic") != SNAPSHOT_MAGIC:
            raise SnapshotError(f"{path}: bad magic {header.get('magic')!r}")
        if header.get("version") != SNAPSHOT_VERSION:
            raise SnapshotError(
                f"{path}: snapshot version {header.get('version')!r} "
                f"not supported (expected {SNAPSHOT_VERSION})"
            )
        kind = header.get("kind")
        if kind not in _KINDS:
            raise SnapshotError(f"{path}: unknown snapshot kind {kind!r}")
        try:
            arrays = {name: npz[name] for name in npz.files if name != _HEADER_KEY}
        except Exception as exc:  # a torn member decompresses short / CRC-fails
            raise SnapshotError(
                f"{path}: snapshot arrays unreadable — torn write or "
                f"corruption ({type(exc).__name__}: {exc}){want}"
            ) from exc
    recomputed = compute_snapshot_id(kind, arrays)
    if recomputed != header.get("snapshot_id"):
        raise SnapshotError(
            f"{path}: content hash mismatch (header {header.get('snapshot_id')!r}, "
            f"recomputed {recomputed!r}) — file corrupt or modified{want}"
        )
    if expected_id is not None and recomputed != expected_id:
        raise SnapshotError(
            f"{path}: snapshot id {recomputed!r} is not the expected "
            f"{expected_id!r} — file replaced or restored from the wrong build"
        )
    return Snapshot(
        kind=kind,
        arrays=arrays,
        meta=header.get("meta", {}),
        snapshot_id=recomputed,
        version=int(header["version"]),
        provenance=header.get("provenance"),
    )


# -- per-application snapshot builders ---------------------------------------
# Construction runs exactly once, here; everything a service needs at query
# time is flattened into arrays + scalar meta via the builders' own hooks.


def snapshot_pointloc(path, sites: np.ndarray, seed=0) -> Snapshot:
    """Build the Kirkpatrick DAG over ``sites`` and snapshot it."""
    from repro.geometry.kirkpatrick import (
        build_kirkpatrick,
        kirkpatrick_snapshot_arrays,
        kirkpatrick_structure,
    )

    hier = build_kirkpatrick(np.asarray(sites, dtype=np.float64), seed=seed)
    structure, mu = kirkpatrick_structure(hier)
    arrays, meta = kirkpatrick_snapshot_arrays(structure, mu)
    return write_snapshot(path, "pointloc", arrays, meta)


def snapshot_linepoly(
    path, points: np.ndarray, seed=0, max_candidates: int = 32
) -> Snapshot:
    """Build the Dobkin-Kirkpatrick tangent DAG over ``points``' hull."""
    from repro.geometry.dk3d import build_dk_hierarchy, dk_tangent_snapshot_arrays

    hier = build_dk_hierarchy(np.asarray(points, dtype=np.float64), seed=seed)
    arrays, meta = dk_tangent_snapshot_arrays(hier, max_candidates=max_candidates)
    return write_snapshot(path, "linepoly", arrays, meta)


def snapshot_intervals(
    path, lefts: np.ndarray, rights: np.ndarray, k: int = 2
) -> Snapshot:
    """Build the interval-counting rank trees and snapshot them."""
    from repro.apps.interval_search import (
        interval_count_snapshot_arrays,
        setup_interval_search,
    )

    setup = setup_interval_search(lefts, rights, k=k)
    arrays, meta = interval_count_snapshot_arrays(setup)
    return write_snapshot(path, "interval", arrays, meta)
