"""Typed serving errors: every rejected or failed query says *why*.

The supervised serving layer promises that every accepted query's future
resolves exactly once — with a result, or with one of these types.  A
caller can branch on the type (shed load → back off and retry later;
closed → stop submitting; pool exhausted → page someone) instead of
parsing strings, and the chaos/property suites can assert that *only*
typed errors ever surface from a fault.
"""

from __future__ import annotations

__all__ = [
    "ServingError",
    "Overloaded",
    "ServerClosed",
    "WorkerUnavailable",
    "BatchFailed",
]


class ServingError(RuntimeError):
    """Base class for every typed serving-layer failure."""


class Overloaded(ServingError):
    """Admission control shed this query: the bounded ingress queue is full.

    The request was *rejected before any work happened* — retry later.
    Raised instead of queueing without bound, so a traffic spike degrades
    to fast typed rejections rather than unbounded memory growth.
    """


class ServerClosed(ServingError):
    """The server has been closed; post-shutdown submits fail fast.

    Raised synchronously by ``submit``/``submit_many`` after ``close()``,
    so a submit racing a drain can never strand an unresolved future.
    """


class WorkerUnavailable(ServingError):
    """No healthy worker remains (all dead or quarantined).

    The circuit breaker stopped restarting workers that keep dying (a
    poisoned snapshot, a broken environment); queries fail typed instead
    of the pool crash-looping.
    """


class BatchFailed(ServingError):
    """A batch exhausted its retry budget without one clean reply.

    ``reasons`` lists the per-attempt failure kinds (``crash`` / ``hang``
    / ``timeout`` / ``corrupt_reply`` / ``error:<type>``), newest last.
    """

    def __init__(self, detail: str, reasons: tuple[str, ...] = ()) -> None:
        self.reasons = tuple(reasons)
        suffix = f" (attempts: {', '.join(self.reasons)})" if self.reasons else ""
        super().__init__(f"{detail}{suffix}")
