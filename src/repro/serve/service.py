"""Query services over snapshot-restored structures.

A service wraps one restored structure and answers batches through the
same construction-free entry points the applications use
(:func:`repro.apps.pointloc.locate_on_structure`,
:func:`repro.apps.linepoly.line_queries_on_structure`,
:func:`repro.apps.interval_search.count_on_structures`), so a batch
served from a snapshot is byte-identical to running the same queries
directly after a fresh build.

Each service canonicalizes queries to a fixed-width float64 row (the
form hashed by the result cache) and returns **per-query results as
numpy arrays/scalars**, so the batcher can resolve individual futures
and the cache can store individual answers.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.engine import MeshEngine
from repro.mesh.topology import MeshShape
from repro.serve.snapshot import Snapshot, SnapshotError, read_snapshot

__all__ = [
    "MultisearchService",
    "PointLocationService",
    "LinePolyService",
    "IntervalCountService",
    "restore_service",
]


class MultisearchService:
    """Base: a restored structure plus batch execution.

    Subclasses define ``kind``, ``query_width`` (row width of a
    canonicalized query), ``mesh_size(m)`` (processor count for an
    ``m``-query batch) and ``_run(queries, engine)`` returning
    ``(list_of_per_query_results, mesh_steps)``.
    """

    kind: str = ""
    query_width: int = 0

    def __init__(self, snapshot: Snapshot):
        if snapshot.kind != self.kind:
            raise SnapshotError(
                f"snapshot kind {snapshot.kind!r} cannot back a {self.kind!r} service"
            )
        self.snapshot_id = snapshot.snapshot_id

    def canonical_queries(self, queries) -> np.ndarray:
        """Validate and canonicalize a batch to ``(m, query_width)`` float64.

        The 1-D contract is pinned: a 1-D array is **one query row** of
        length ``query_width`` — except for single-column services
        (``query_width == 1``), where a length-``m`` 1-D array can only
        mean ``m`` scalar queries and is read as ``(m, 1)``.  The result
        is idempotent: feeding a returned batch (or one of its rows, for
        multi-column services) back through yields the same rows, which
        is what lets the batching front-end canonicalize exactly once.
        """
        q = np.asarray(queries, dtype=np.float64)
        if q.ndim == 0:
            q = q.reshape(1, 1)
        elif q.ndim == 1:
            q = q.reshape(-1, 1) if self.query_width == 1 else q.reshape(1, -1)
        q = np.ascontiguousarray(q)
        if q.ndim != 2 or q.shape[1] != self.query_width:
            raise ValueError(
                f"{self.kind} queries must be (m, {self.query_width}); got {q.shape}"
            )
        return q

    def mesh_size(self, m: int) -> int:
        raise NotImplementedError

    def make_engine(self, m: int, **engine_kwargs) -> MeshEngine:
        """A fresh engine sized exactly as the direct application call."""
        return MeshEngine(MeshShape.for_size(self.mesh_size(m)).side, **engine_kwargs)

    def run_batch(self, queries, engine: MeshEngine | None = None):
        """Answer a batch; returns ``(results, mesh_steps)``.

        ``results[i]`` is query ``i``'s answer as an immutable-by-
        convention numpy scalar/array.  A fresh engine is created when
        none is passed, so independent batches never share host caches.

        When the engine carries a :class:`~repro.mesh.faults.FaultInjector`
        the canonical rows pass through its adversarial-input hook first:
        the serving boundary's fault surface is the query batch itself
        (plus whatever engine primitives the underlying multisearch
        exercises — the hierdag path has none, see ``repro.bench.chaos``).
        """
        q = self.canonical_queries(queries)
        if engine is None:
            engine = self.make_engine(q.shape[0])
        if engine.faults is not None:
            q = engine.faults.on_query_rows(q, f"serve:{self.kind}")
        return self._run(q, engine)

    def _run(self, queries: np.ndarray, engine: MeshEngine):
        raise NotImplementedError


class PointLocationService(MultisearchService):
    """Planar point location on a restored Kirkpatrick DAG (E5 path).

    Query row: ``[x, y]``.  Result: int64 base-triangulation triangle
    index (``-1`` = outside).
    """

    kind = "pointloc"
    query_width = 2

    def __init__(self, snapshot: Snapshot, c: int | None = 2):
        super().__init__(snapshot)
        from repro.geometry.kirkpatrick import kirkpatrick_from_snapshot

        self.structure, self.mu = kirkpatrick_from_snapshot(
            snapshot.arrays, snapshot.meta
        )
        self.c = c

    def mesh_size(self, m: int) -> int:
        return max(self.structure.size, m)

    def _run(self, queries, engine):
        from repro.apps.pointloc import locate_on_structure

        triangle, steps = locate_on_structure(
            self.structure, self.mu, queries, engine=engine, c=self.c
        )
        return [np.int64(t) for t in triangle], steps


class LinePolyService(MultisearchService):
    """Line-polyhedron queries on a restored tangent DAG (Theorem 8.1).

    Query row: ``[p0x, p0y, p0z, dx, dy, dz]``.  Result: an ``(11,)``
    float64 row ``[intersects, tangent_left, tangent_right, plane_left(4),
    plane_right(4)]`` (planes NaN when the line intersects).
    """

    kind = "linepoly"
    query_width = 6

    def __init__(self, snapshot: Snapshot, c: int | None = 2, max_walk: int = 64):
        super().__init__(snapshot)
        from repro.geometry.dk3d import dk_tangent_from_snapshot

        (self.structure, self.original, self.points, self.adj, self.mu) = (
            dk_tangent_from_snapshot(snapshot.arrays, snapshot.meta)
        )
        self.c = c
        self.max_walk = max_walk

    def mesh_size(self, m: int) -> int:
        return max(self.structure.size, 2 * m)

    def _run(self, queries, engine):
        from repro.apps.linepoly import line_queries_on_structure

        run = line_queries_on_structure(
            self.structure,
            self.original,
            self.adj,
            self.points,
            self.mu,
            queries[:, 0:3],
            queries[:, 3:6],
            engine=engine,
            c=self.c,
            max_walk=self.max_walk,
        )
        m = queries.shape[0]
        results = []
        for i in range(m):
            row = np.empty(11, dtype=np.float64)
            row[0] = float(run.intersects[i])
            row[1] = float(run.tangent_left[i])
            row[2] = float(run.tangent_right[i])
            row[3:11] = run.planes[i].ravel()
            results.append(row)
        return results, run.mesh_steps


class IntervalCountService(MultisearchService):
    """Interval intersection counting on restored rank trees (Section 6).

    Query row: ``[a, b]``.  Result: int64 count of stored intervals
    intersecting ``[a, b]``.
    """

    kind = "interval"
    query_width = 2

    def __init__(self, snapshot: Snapshot):
        super().__init__(snapshot)
        from repro.apps.interval_search import interval_count_from_snapshot

        (self.st_l, self.st_r, self.sp_l, self.sp_r) = interval_count_from_snapshot(
            snapshot.arrays, snapshot.meta
        )

    def mesh_size(self, m: int) -> int:
        return max(self.st_l.size, self.st_r.size, m)

    def _run(self, queries, engine):
        from repro.apps.interval_search import count_on_structures

        counts, steps = count_on_structures(
            self.st_l,
            self.st_r,
            self.sp_l,
            self.sp_r,
            queries[:, 0],
            queries[:, 1],
            engine=engine,
        )
        return [np.int64(cnt) for cnt in counts], steps


_SERVICES = {
    "pointloc": PointLocationService,
    "linepoly": LinePolyService,
    "interval": IntervalCountService,
}


def restore_service(source, **kwargs) -> MultisearchService:
    """Restore the right service for a snapshot (path or object).

    Dispatches on the snapshot's ``kind``; keyword arguments are passed
    to the service constructor (e.g. ``c=``, ``max_walk=``).
    """
    snapshot = source if isinstance(source, Snapshot) else read_snapshot(source)
    try:
        cls = _SERVICES[snapshot.kind]
    except KeyError:
        raise SnapshotError(f"no service for snapshot kind {snapshot.kind!r}") from None
    return cls(snapshot, **kwargs)
