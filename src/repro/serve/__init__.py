"""Multisearch-as-a-service: snapshots, services, batching, caching.

The construction pipelines (Kirkpatrick, Dobkin-Kirkpatrick, rank trees)
are expensive; the per-batch multisearch is cheap.  This package splits
the two across process lifetimes:

* :mod:`repro.serve.snapshot` — build once, serialize the flat structure
  arrays + scalar meta to a versioned ``.npz``, restore without
  re-running construction;
* :mod:`repro.serve.service` — per-application query services over
  restored structures, batch-in / per-query-results-out;
* :mod:`repro.serve.batcher` — asyncio front-end turning individual
  queries into mesh-sized batches (flush on size or deadline), with
  single-flight dedup and typed shutdown;
* :mod:`repro.serve.cache` — bounded LRU over
  ``(snapshot_id, query bytes)`` with profile-visible hit/miss counters;
* :mod:`repro.serve.pool` / :mod:`repro.serve.supervisor` — self-healing
  multi-process serving: snapshot-restored workers under a supervisor
  with heartbeats, deadlines, retry/hedging, circuit breakers, and load
  shedding;
* :mod:`repro.serve.errors` — the typed serving failures
  (``Overloaded`` / ``ServerClosed`` / ``WorkerUnavailable`` /
  ``BatchFailed``);
* :mod:`repro.serve.ipc` — the checksummed supervisor↔worker wire
  protocol.

See DESIGN.md ("The serving layer", "Supervision & failure domains")
and EXPERIMENTS.md E13/E14.
"""

from repro.serve.batcher import BatchingServer
from repro.serve.cache import (
    ResultCache,
    cache_counters,
    drain_cache_counters,
    note_coalesced,
    query_cache_key,
)
from repro.serve.errors import (
    BatchFailed,
    Overloaded,
    ServerClosed,
    ServingError,
    WorkerUnavailable,
)
from repro.serve.pool import WorkerPool
from repro.serve.supervisor import SupervisedServer
from repro.serve.service import (
    IntervalCountService,
    LinePolyService,
    MultisearchService,
    PointLocationService,
    restore_service,
)
from repro.serve.snapshot import (
    SNAPSHOT_MAGIC,
    SNAPSHOT_VERSION,
    Snapshot,
    SnapshotError,
    compute_snapshot_id,
    read_snapshot,
    snapshot_intervals,
    snapshot_linepoly,
    snapshot_pointloc,
    write_snapshot,
)

__all__ = [
    "BatchingServer",
    "SupervisedServer",
    "WorkerPool",
    "ServingError",
    "Overloaded",
    "ServerClosed",
    "WorkerUnavailable",
    "BatchFailed",
    "ResultCache",
    "cache_counters",
    "drain_cache_counters",
    "note_coalesced",
    "query_cache_key",
    "MultisearchService",
    "PointLocationService",
    "LinePolyService",
    "IntervalCountService",
    "restore_service",
    "Snapshot",
    "SnapshotError",
    "SNAPSHOT_MAGIC",
    "SNAPSHOT_VERSION",
    "compute_snapshot_id",
    "read_snapshot",
    "write_snapshot",
    "snapshot_pointloc",
    "snapshot_linepoly",
    "snapshot_intervals",
]
