"""Wire protocol between the supervisor and its worker processes.

Everything crossing a worker pipe is a small picklable tuple whose first
element is the message tag:

========= ============================================ ==================
tag       payload                                      direction
========= ============================================ ==================
batch     ``(batch_id, shape, rows_bytes)``            supervisor → worker
stop      ``()``                                       supervisor → worker
ready     ``(worker_id, snapshot_id)``                 worker → supervisor
hb        ``(worker_id, seq)``                         worker → supervisor
reply     ``(worker_id, batch_id, payload, digest)``   worker → supervisor
fatal     ``(worker_id, message)``                     worker → supervisor
========= ============================================ ==================

Query rows travel as raw float64 bytes plus a shape (cheap, no pickle of
array objects).  Replies travel as an *opaque checksummed payload*: the
worker serializes ``(results, mesh_steps)``, hashes the bytes, and sends
both.  The supervisor verifies the digest **before** deserializing, so a
reply corrupted in transit (the ``worker_corrupt_reply`` fault, a torn
pipe, bit rot) is detected end-to-end and discarded — a corrupt reply
can never resolve a future, however it was damaged.
"""

from __future__ import annotations

import hashlib
import pickle

import numpy as np

__all__ = [
    "ReplyCorrupt",
    "encode_rows",
    "decode_rows",
    "pack_reply",
    "unpack_reply",
]


class ReplyCorrupt(ValueError):
    """A reply payload failed its checksum (or could not deserialize)."""


def encode_rows(rows: np.ndarray) -> tuple[tuple[int, ...], bytes]:
    """Canonical float64 row-batch encoding for a ``batch`` message."""
    q = np.ascontiguousarray(np.asarray(rows, dtype=np.float64))
    return q.shape, q.tobytes()


def decode_rows(shape: tuple[int, ...], data: bytes) -> np.ndarray:
    """Inverse of :func:`encode_rows` (a fresh writable array)."""
    return np.frombuffer(data, dtype=np.float64).reshape(shape).copy()


def pack_reply(results, mesh_steps: float) -> tuple[bytes, str]:
    """Serialize a batch's answer; returns ``(payload, sha256 digest)``.

    The digest is computed over the exact bytes shipped, so any later
    mutation of the payload — injected or real — breaks verification.
    """
    payload = pickle.dumps(
        (list(results), float(mesh_steps)), protocol=pickle.HIGHEST_PROTOCOL
    )
    return payload, hashlib.sha256(payload).hexdigest()


def unpack_reply(payload: bytes, digest: str) -> tuple[list, float]:
    """Verify and deserialize a reply; raises :class:`ReplyCorrupt`.

    Verification happens before ``pickle.loads`` ever sees the bytes:
    corrupt data is rejected without being interpreted.
    """
    actual = hashlib.sha256(payload).hexdigest()
    if actual != digest:
        raise ReplyCorrupt(
            f"reply checksum mismatch (sent {digest[:12]}…, got {actual[:12]}…)"
        )
    try:
        results, mesh_steps = pickle.loads(payload)
    except Exception as exc:  # noqa: BLE001 - any failure here is corruption
        raise ReplyCorrupt(f"reply payload undecodable: {exc}") from exc
    return results, float(mesh_steps)
