"""Asyncio batching front-end: individual queries -> mesh-sized batches.

The mesh answers *batches* in ``O(sqrt(n))`` steps; a service endpoint
receives *individual* queries.  :class:`BatchingServer` bridges the two
with the classic accumulate-and-flush state machine:

* **idle** — no pending queries, no timer;
* **accumulating** — pending queries below ``batch_size``, a deadline
  timer armed at the first enqueue;
* **flush** — triggered by reaching ``batch_size``, by the deadline
  expiring, or by an explicit :meth:`drain`; runs one multisearch batch
  on a **fresh engine** and resolves every pending future.

Results are delivered through per-query futures, so callers just
``await server.submit(q)``.  A result cache (optional) short-circuits
known queries without touching the mesh; answers from a *faulted* batch
(fault injection or any other execution error) are delivered as
exceptions and are **never** written to the cache, so a fault cannot
poison later requests.

Two service-hygiene behaviors ride on the same state machine:

* **single-flight dedup** — when a cache is configured and an identical
  query is already pending, a new submit *coalesces* onto the in-flight
  future instead of occupying a second batch slot (counted in
  ``stats["coalesced"]`` and as ``result-cache:coalesced`` trace
  events).  A faulted leader propagates its typed exception to every
  coalesced follower — never a stale or partial result.
* **shutdown fail-fast** — after :meth:`close` the server drains what it
  accepted, then rejects new submits synchronously with a typed
  :class:`~repro.serve.errors.ServerClosed`, so a submit racing a
  shutdown can never strand an unresolved future.
"""

from __future__ import annotations

import asyncio

import numpy as np

from repro.mesh.faults import FaultInjector
from repro.serve.cache import ResultCache, note_coalesced, query_cache_key
from repro.serve.errors import ServerClosed
from repro.serve.service import MultisearchService

__all__ = ["BatchingServer"]


class BatchingServer:
    """Accumulate single queries into batches for a :class:`MultisearchService`.

    Parameters
    ----------
    service:
        The restored service answering the batches.
    batch_size:
        Flush as soon as this many queries are pending.
    deadline_s:
        Flush at most this long after the first pending query arrived,
        even if the batch is not full (latency bound for a trickle).
    cache:
        Optional :class:`ResultCache`; hits bypass the mesh entirely.
    fault_plans:
        Optional iterable of :class:`repro.mesh.faults.FaultPlan`; a
        fresh :class:`FaultInjector` is installed on every flush engine
        (chaos-testing hook).
    engine_kwargs:
        Extra keyword arguments for every flush engine (e.g.
        ``{"paranoid": True}`` so injected faults raise at the boundary
        they corrupt).
    vm_witness:
        Run a cycle-accurate pre-flight on every flush: the batch's
        query-rank permutation is shearsorted on a **paranoid**
        :class:`~repro.mesh.machine.MeshVM` sharing the flush's fault
        injector, so a ``vm_*`` fault in the step-level data movement
        the engine's charges stand on faults the whole batch *before*
        any answer is produced — every future resolves exceptionally
        and the cache is never touched (chaos-testing hook).
    """

    def __init__(
        self,
        service: MultisearchService,
        batch_size: int = 64,
        deadline_s: float = 0.01,
        cache: ResultCache | None = None,
        fault_plans=None,
        engine_kwargs: dict | None = None,
        vm_witness: bool = False,
    ):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if deadline_s <= 0:
            raise ValueError("deadline_s must be positive")
        self.service = service
        self.batch_size = int(batch_size)
        self.deadline_s = float(deadline_s)
        self.cache = cache
        self.fault_plans = tuple(fault_plans) if fault_plans else ()
        self.engine_kwargs = dict(engine_kwargs or {})
        self.vm_witness = bool(vm_witness)
        self._pending: list[tuple[np.ndarray, asyncio.Future]] = []
        self._timer: asyncio.TimerHandle | None = None
        self._inflight: dict[tuple[str, bytes], asyncio.Future] = {}
        self._closed = False
        self.stats = {
            "queries": 0,
            "batches": 0,
            "flush_size": 0,
            "flush_deadline": 0,
            "flush_drain": 0,
            "faulted_batches": 0,
            "mesh_steps": 0.0,
            "cache_hits": 0,
            "coalesced": 0,
            "vm_witness_steps": 0,
        }

    # -- submission ----------------------------------------------------------

    async def submit(self, query):
        """Answer one query; resolves when its batch is served (or cached).

        Raises :class:`ServerClosed` synchronously once the server has
        been closed — a post-shutdown submit fails fast instead of
        queueing onto a batch that will never flush.
        """
        if self._closed:
            raise ServerClosed("BatchingServer is closed; submit rejected")
        row = self.service.canonical_queries(query)
        if row.shape[0] != 1:
            raise ValueError("submit() takes a single query; use submit_many()")
        return await self._submit_row(row[0])

    async def _submit_row(self, row: np.ndarray):
        """Enqueue one already-canonical ``(query_width,)`` row.

        The shared tail of :meth:`submit` and :meth:`submit_many`: rows
        arriving here have passed through ``canonical_queries`` exactly
        once, so the shape-ambiguous re-canonicalization of a bare row
        (a length-``d`` 1-D row reads as ``d`` scalar queries on a
        single-column service) can never happen.
        """
        if self._closed:
            raise ServerClosed("BatchingServer is closed; submit rejected")
        self.stats["queries"] += 1
        key = None
        if self.cache is not None:
            key = query_cache_key(self.service.snapshot_id, row)
            found, value = self.cache.get(key)
            if found:
                self.stats["cache_hits"] += 1
                return value
            leader = self._inflight.get(key) if key is not None else None
            if leader is not None and not leader.done():
                # single-flight: identical query already pending — ride
                # its future instead of burning a second batch slot
                self.stats["coalesced"] += 1
                note_coalesced()
                return await asyncio.shield(leader)
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        if key is not None:
            self._inflight[key] = future
            future.add_done_callback(self._uninflight(key))
        self._pending.append((row, future))
        if len(self._pending) >= self.batch_size:
            self._flush("size")
        elif self._timer is None:
            self._timer = loop.call_later(self.deadline_s, self._flush, "deadline")
        return await future

    def _uninflight(self, key):
        def _done(future, _key=key):
            if self._inflight.get(_key) is future:
                self._inflight.pop(_key, None)

        return _done

    async def submit_many(self, queries) -> list:
        """Submit a batch of rows concurrently; exceptions propagate per query.

        The batch is canonicalized **exactly once**; rows then take the
        pre-canonical path (:meth:`_submit_row`) instead of being pushed
        back through ``canonical_queries`` one by one.
        """
        if self._closed:
            raise ServerClosed("BatchingServer is closed; submit rejected")
        rows = self.service.canonical_queries(queries)
        return list(
            await asyncio.gather(*(self._submit_row(row) for row in rows))
        )

    async def drain(self):
        """Flush any pending queries immediately (shutdown / test barrier)."""
        if self._pending:
            self._flush("drain")
        await asyncio.sleep(0)

    async def close(self):
        """Drain what was accepted, then reject all further submits.

        Idempotent.  Everything pending at the call resolves normally
        (or exceptionally, if its flush faults); everything submitted
        after raises :class:`ServerClosed` without creating a future.
        """
        self._closed = True
        await self.drain()
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending(self) -> int:
        return len(self._pending)

    # -- the flush -----------------------------------------------------------

    def _flush(self, reason: str) -> None:
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        if not self._pending:
            return
        batch, self._pending = self._pending, []
        self.stats["batches"] += 1
        self.stats[f"flush_{reason}"] += 1
        rows = np.stack([row for row, _ in batch])
        engine = self.service.make_engine(rows.shape[0], **self.engine_kwargs)
        injector = None
        if self.fault_plans:
            injector = FaultInjector(*self.fault_plans).install(engine)
        try:
            if self.vm_witness:
                self._run_vm_witness(rows, injector)
            results, steps = self.service.run_batch(rows, engine=engine)
        except Exception as exc:
            # a faulted batch resolves every future exceptionally and
            # leaves the cache untouched — no corrupt answer escapes
            self.stats["faulted_batches"] += 1
            for _, future in batch:
                if not future.done():
                    future.set_exception(exc)
            return
        self.stats["mesh_steps"] += float(steps)
        for (row, future), result in zip(batch, results):
            if self.cache is not None:
                self.cache.put(
                    query_cache_key(self.service.snapshot_id, row), result
                )
            if not future.done():
                future.set_result(result)

    def _run_vm_witness(self, rows: np.ndarray, injector) -> None:
        """Shearsort the batch's query ranks on a paranoid cycle-accurate VM.

        The witness is the E10 substitution audit scaled down to one
        flush: the data movement underlying the sort the engine *charges*
        must actually execute, step by step, on this batch.  Installed
        ``vm_*`` fault plans fire here (the engine hooks never open a
        VM); the paranoid step-integrity check raises
        :class:`~repro.mesh.faults.InvariantViolation` at the corrupted
        step, so the flush's except-path resolves every future
        exceptionally before a corrupt answer can exist.  Ranks (not raw
        keys) are sorted so non-finite query values cannot fake a
        violation.
        """
        from repro.mesh.machine import MeshVM
        from repro.mesh.sorting import shearsort
        from repro.mesh.topology import MeshShape

        m = rows.shape[0]
        order = np.argsort(rows[:, 0], kind="stable")
        ranks = np.empty(m, dtype=np.int64)
        ranks[order] = np.arange(m, dtype=np.int64)
        vm = MeshVM(MeshShape.for_size(m).side, paranoid=True)
        if injector is not None:
            injector.install_vm(vm)
        vm.load_rowmajor("_witness_key", ranks, fill=m)
        shearsort(vm, "_witness_key", check=True)
        self.stats["vm_witness_steps"] += vm.steps
