"""Multiple line-polyhedron queries (paper Theorem 8.1).

Given a convex polyhedron ``P`` with n vertices and n query lines,
determine for each line whether it intersects ``P`` and, if not, the two
planes through the line tangent to ``P``.

Reduction: project ``P`` and the line ``l`` along ``l``'s direction onto
a perpendicular plane; ``l`` becomes a point ``q`` and ``P`` a convex
polygon (the projection of the hull).  ``l`` misses ``P`` iff ``q`` is
outside the polygon, in which case the two tangent lines from ``q`` lift
to the two tangent planes through ``l``.  Both tangent searches are
angular-extreme descents on the Dobkin-Kirkpatrick hierarchy — a
hierarchical-DAG multisearch (two queries per line), Theorem 2.

The tangency of each returned vertex is verified locally against its full
hull neighbourhood (polygon neighbours of a projected hull vertex are
projections of 3-d silhouette edges, hence 3-d hull neighbours, so the
local test is sound *and* complete); a failed verification after a
bounded improving walk means ``q`` is inside the polygon, i.e. the line
intersects ``P``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hierdag import hierdag_multisearch
from repro.core.model import QuerySet
from repro.geometry.dk3d import DKHierarchy, dk_query_mu, dk_tangent_structure
from repro.mesh.engine import MeshEngine
from repro.mesh.topology import MeshShape
from repro.mesh.trace import traced

__all__ = [
    "LinePolyRun",
    "line_polyhedron_queries",
    "line_queries_on_structure",
    "line_keys",
    "brute_force_line_test",
]

_EPS = 1e-9


def line_keys(lines_p0: np.ndarray, lines_dir: np.ndarray) -> np.ndarray:
    """Pack lines into tangent-query keys ``[e1, e2, qx, qy]`` (m, 8)."""
    u = np.asarray(lines_dir, dtype=np.float64)
    u = u / np.linalg.norm(u, axis=1, keepdims=True)
    # a stable perpendicular basis
    helper = np.where(
        np.abs(u[:, [0]]) < 0.9, np.array([[1.0, 0.0, 0.0]]), np.array([[0.0, 1.0, 0.0]])
    )
    e1 = np.cross(u, helper)
    e1 = e1 / np.linalg.norm(e1, axis=1, keepdims=True)
    e2 = np.cross(u, e1)
    p0 = np.asarray(lines_p0, dtype=np.float64)
    q = np.stack([np.einsum("ij,ij->i", p0, e1), np.einsum("ij,ij->i", p0, e2)], axis=1)
    return np.concatenate([e1, e2, q], axis=1)


@dataclass
class LinePolyRun:
    """Per-line answers from a mesh line-polyhedron batch."""

    intersects: np.ndarray  # (m,) bool
    #: tangent vertex ids (point indices) for non-intersecting lines; -1 else
    tangent_left: np.ndarray
    tangent_right: np.ndarray
    #: tangent planes as (m, 2, 4) [normal, offset]; NaN for intersecting
    planes: np.ndarray
    mesh_steps: float
    #: queries whose descent needed a local improving walk (robustness net)
    improved: int


def _project(points: np.ndarray, key: np.ndarray) -> np.ndarray:
    e1, e2, q = key[0:3], key[3:6], key[6:8]
    return np.stack([points @ e1 - q[0], points @ e2 - q[1]], axis=1)


def _is_tangent(proj_nbrs: np.ndarray, proj_t: np.ndarray, eps: float = _EPS) -> bool:
    """All neighbours strictly on one side of the ray through proj_t from q=origin."""
    cross = proj_t[0] * proj_nbrs[:, 1] - proj_t[1] * proj_nbrs[:, 0]
    return bool((cross > eps).all() or (cross < -eps).all())


def line_polyhedron_queries(
    hier: DKHierarchy,
    lines_p0: np.ndarray,
    lines_dir: np.ndarray,
    engine: MeshEngine | None = None,
    c: int | None = 2,
    max_walk: int = 64,
) -> LinePolyRun:
    """Answer a batch of line queries against ``hier``'s polyhedron.

    Traced phases: host span ``linepoly:structure`` (DAG construction),
    engine spans ``linepoly:search`` (the Theorem 2 multisearch) and
    ``linepoly:verify`` (tangency verification + plane assembly).
    """
    with traced(None, "linepoly:structure"):
        structure, original = dk_tangent_structure(hier)
    return line_queries_on_structure(
        structure,
        original,
        hier.adjacency[0],
        hier.points,
        dk_query_mu(hier),
        lines_p0,
        lines_dir,
        engine=engine,
        c=c,
        max_walk=max_walk,
    )


def line_queries_on_structure(
    structure,
    original: np.ndarray,
    adj,
    pts: np.ndarray,
    mu: float,
    lines_p0: np.ndarray,
    lines_dir: np.ndarray,
    engine: MeshEngine | None = None,
    c: int | None = 2,
    max_walk: int = 64,
) -> LinePolyRun:
    """Answer line queries against an already-built tangent-search DAG.

    The construction-free core of :func:`line_polyhedron_queries`, shared
    with the serving layer, which restores ``structure`` / ``original`` /
    the finest-hull adjacency ``adj`` / ``pts`` / ``mu`` from a snapshot.
    """
    keys = line_keys(lines_p0, lines_dir)
    m = keys.shape[0]
    # two tangent searches per line: side +1 (left) and -1 (right)
    all_keys = np.concatenate([keys, keys], axis=0)
    sides = np.concatenate([np.ones(m), -np.ones(m)])
    if engine is None:
        engine = MeshEngine(MeshShape.for_size(max(structure.size, 2 * m)).side)
    qs = QuerySet.start(all_keys, 0, state_width=1, record_trace=True)
    qs.state[:, 0] = sides
    t0 = engine.clock.current
    with traced(engine.clock, "linepoly:search"):
        hierdag_multisearch(engine, structure, qs, mu=mu, c=c)
    mesh_steps = engine.clock.current - t0

    finals = np.array([p[-1] for p in qs.paths()], dtype=np.int64)
    cand = original[finals]  # point ids of candidate tangent vertices

    intersects = np.zeros(m, dtype=bool)
    t_left = np.full(m, -1, dtype=np.int64)
    t_right = np.full(m, -1, dtype=np.int64)
    planes = np.full((m, 2, 4), np.nan)

    with traced(engine.clock, "linepoly:verify"):
        improved = _verify_tangents(
            keys, lines_p0, lines_dir, cand, adj, pts, m, max_walk,
            intersects, t_left, t_right, planes,
        )
    return LinePolyRun(
        intersects=intersects,
        tangent_left=t_left,
        tangent_right=t_right,
        planes=planes,
        mesh_steps=mesh_steps,
        improved=improved,
    )


def _verify_tangents(
    keys, lines_p0, lines_dir, cand, adj, pts, m, max_walk,
    intersects, t_left, t_right, planes,
) -> int:
    """Local tangency verification + plane assembly; returns walk count."""
    improved = 0
    for i in range(m):
        key = keys[i]
        verdicts = []
        for j, side in ((i, 1.0), (i + m, -1.0)):
            t = int(cand[j])
            walked = 0
            while walked <= max_walk:
                nbrs = adj[t]
                proj_n = _project(pts[nbrs], key)
                proj_t = _project(pts[t][None, :], key)[0]
                if _is_tangent(proj_n, proj_t):
                    break
                # improving walk: move to the angularly more extreme neighbour
                cross = proj_t[0] * proj_n[:, 1] - proj_t[1] * proj_n[:, 0]
                gain = cross * side
                if gain.max() <= _EPS:
                    break  # local max but not tangent -> q inside
                t = int(nbrs[int(np.argmax(gain))])
                walked += 1
            if walked:
                improved += 1
            nbrs = adj[t]
            proj_n = _project(pts[nbrs], key)
            proj_t = _project(pts[t][None, :], key)[0]
            verdicts.append((t, _is_tangent(proj_n, proj_t)))
        (tl, okl), (tr, okr) = verdicts
        if okl and okr:
            t_left[i], t_right[i] = tl, tr
            u = np.asarray(lines_dir[i], dtype=np.float64)
            p0 = np.asarray(lines_p0[i], dtype=np.float64)
            for s, t in enumerate((tl, tr)):
                nrm = np.cross(u, pts[t] - p0)
                nn = np.linalg.norm(nrm)
                if nn > 1e-30:
                    nrm = nrm / nn
                    planes[i, s, :3] = nrm
                    planes[i, s, 3] = nrm @ p0
        else:
            intersects[i] = True
    return improved


def brute_force_line_test(
    hull_points: np.ndarray,
    hull_vertices: np.ndarray,
    lines_p0: np.ndarray,
    lines_dir: np.ndarray,
) -> np.ndarray:
    """Oracle: does each line hit the hull?  (q inside the projected polygon.)

    A point is inside a convex polygon iff it is inside the hull of the
    projected vertices; tested via scipy's 2-d hull equations.
    """
    from scipy.spatial import ConvexHull

    keys = line_keys(lines_p0, lines_dir)
    out = np.zeros(keys.shape[0], dtype=bool)
    pv = np.asarray(hull_points)[np.asarray(hull_vertices)]
    for i, key in enumerate(keys):
        proj = _project(pv, key)  # q at origin
        hull2 = ConvexHull(proj)
        eq = hull2.equations  # a.x + b <= 0 inside
        out[i] = bool((eq[:, 2] <= 1e-9).all())
    return out
