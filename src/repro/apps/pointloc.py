"""Multiple planar point location on the mesh (paper Section 5).

Builds the Kirkpatrick subdivision hierarchy over a point set's Delaunay
triangulation, loads the hierarchical DAG onto the mesh, and answers m
point-location queries as one Theorem 2 multisearch in ``O(sqrt(n))``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.baseline import synchronous_multisearch
from repro.core.hierdag import hierdag_multisearch
from repro.core.model import QuerySet
from repro.geometry.kirkpatrick import (
    KirkpatrickHierarchy,
    build_kirkpatrick,
    kirkpatrick_structure,
)
from repro.mesh.engine import MeshEngine
from repro.mesh.topology import MeshShape
from repro.mesh.trace import traced

__all__ = [
    "PointLocationRun",
    "locate_points_mesh",
    "locate_faces_mesh",
    "locate_on_structure",
]


@dataclass
class PointLocationRun:
    """Outcome of a mesh point-location batch."""

    hierarchy: KirkpatrickHierarchy
    #: base-triangulation triangle index per query (-1 = outside all)
    triangle: np.ndarray
    mesh_steps: float
    dag_size: int
    method: str


def _final_triangles(qs: QuerySet, structure) -> np.ndarray:
    """Map final DAG vertices back to base-triangulation triangle indices.

    The DAG lays its nodes out contiguously per level (coarsest first),
    so the bottom level's start offset — and hence the triangle index of
    a final vertex — is recoverable from ``structure.level`` alone.  This
    keeps the finalize step hierarchy-free, which is what lets a
    snapshot-restored structure serve queries without the hierarchy.
    """
    level = np.asarray(structure.level)
    h = int(level.max(initial=0))
    start_h = int(np.searchsorted(level, h))
    finals = np.array([p[-1] if p else -1 for p in qs.paths()], dtype=np.int64)
    ok = (finals >= 0) & (level[np.clip(finals, 0, None)] == h)
    return np.where(ok, finals - start_h, -1)


def locate_on_structure(
    structure,
    mu: float,
    queries: np.ndarray,
    engine: MeshEngine | None = None,
    method: str = "hierdag",
    c: int | None = 2,
) -> tuple[np.ndarray, float]:
    """Locate queries against an already-built Kirkpatrick DAG.

    The construction-free core of :func:`locate_points_mesh`, shared with
    the serving layer (:mod:`repro.serve`), which restores ``structure``
    and ``mu`` from a snapshot.  Returns ``(triangle, mesh_steps)``.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if engine is None:
        engine = MeshEngine(
            MeshShape.for_size(max(structure.size, queries.shape[0])).side
        )
    qs = QuerySet.start(queries, 0, record_trace=True)
    t0 = engine.clock.current
    with traced(engine.clock, "pointloc:search"):
        if method == "hierdag":
            hierdag_multisearch(engine, structure, qs, mu=mu, c=c)
        elif method == "baseline":
            synchronous_multisearch(engine, structure, qs)
        else:
            raise ValueError(f"unknown method {method!r}")
    with traced(engine.clock, "pointloc:finalize"):
        triangle = _final_triangles(qs, structure)
    return triangle, engine.clock.current - t0


def locate_points_mesh(
    sites: np.ndarray,
    queries: np.ndarray,
    seed=0,
    engine: MeshEngine | None = None,
    method: str = "hierdag",
    c: int | None = 2,
) -> PointLocationRun:
    """Locate ``queries`` in the Delaunay subdivision of ``sites``.

    ``method`` is ``"hierdag"`` (Algorithm 1) or ``"baseline"``
    (synchronous level-by-level).  ``c = 2`` is the engineering value of
    the band constant (DESIGN.md) — pass ``None`` for the paper's.

    Traced phases: host spans ``pointloc:build`` / ``pointloc:structure``
    (construction, before the engine may exist), then engine spans
    ``pointloc:search`` and ``pointloc:finalize``.
    """
    with traced(None, "pointloc:build"):
        hier = build_kirkpatrick(np.asarray(sites, dtype=np.float64), seed=seed)
    with traced(None, "pointloc:structure"):
        structure, mu = kirkpatrick_structure(hier)
    triangle, mesh_steps = locate_on_structure(
        structure, mu, queries, engine=engine, method=method, c=c
    )
    return PointLocationRun(
        hierarchy=hier,
        triangle=triangle,
        mesh_steps=mesh_steps,
        dag_size=structure.size,
        method=method,
    )


@dataclass
class FaceLocationRun:
    """Outcome of a mesh face-location batch on a polygonal subdivision."""

    subdivision: "PlanarSubdivision"
    hierarchy: KirkpatrickHierarchy
    #: polygonal face index per query (-1 = outside the bounding triangle)
    face: np.ndarray
    triangle: np.ndarray
    mesh_steps: float


def locate_faces_mesh(
    sites: np.ndarray,
    queries: np.ndarray,
    merge_fraction: float = 0.6,
    seed=0,
    engine: MeshEngine | None = None,
    c: int | None = 2,
) -> FaceLocationRun:
    """Point location in a *polygonal* planar subdivision ([Kir83] proper).

    Builds the hierarchy over the base triangulation, derives a random
    polygonal subdivision over the same triangulation
    (:func:`repro.geometry.subdivision.merged_face_subdivision`), runs the
    Theorem 2 triangle multisearch, and maps each located triangle to its
    face — one local step per query, charged as such.
    """
    from repro.geometry.subdivision import PlanarSubdivision, merged_face_subdivision

    with traced(None, "pointloc:build"):
        hier = build_kirkpatrick(np.asarray(sites, dtype=np.float64), seed=seed)
    with traced(None, "pointloc:subdivision"):
        sub = merged_face_subdivision(hier, merge_fraction=merge_fraction, seed=seed)
    with traced(None, "pointloc:structure"):
        structure, mu = kirkpatrick_structure(hier)
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    if engine is None:
        engine = MeshEngine(
            MeshShape.for_size(max(structure.size, queries.shape[0])).side
        )
    qs = QuerySet.start(queries, 0, record_trace=True)
    t0 = engine.clock.current
    with traced(engine.clock, "pointloc:search"):
        hierdag_multisearch(engine, structure, qs, mu=mu, c=c)
    with traced(engine.clock, "pointloc:finalize"):
        triangle = _final_triangles(qs, structure)
        # triangle -> face: O(1) local work per query (the map rides with
        # the triangle record on a real mesh)
        engine.root.charge_local(1, label="pointloc:face-map")
        face = np.where(
            triangle >= 0, sub.face_of_triangle[np.clip(triangle, 0, None)], -1
        )
    return FaceLocationRun(
        subdivision=sub,
        hierarchy=hier,
        face=face,
        triangle=triangle,
        mesh_steps=engine.clock.current - t0,
    )
