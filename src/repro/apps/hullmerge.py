"""Merging 3-d convex hulls and full 3-d hull construction
(paper Theorems 8.3 and 8.4).

``merge_hulls`` combines two hulls by (1) discarding each side's vertices
that lie inside the other hull — the exact inclusion filter, which on the
mesh is a batch of point queries — and (2) running the incremental hull
on the survivors.  ``convex_hull_divide_conquer`` builds a full hull by
splitting on x and merging recursively, the shape of the paper's
Theorem 8.4 reduction to merging (the footnoted direct approaches
[LPJC90, HI90] notwithstanding, the multisearch paper's route to the 3-d
hull is precisely merge-based).
"""

from __future__ import annotations

import numpy as np

from repro.geometry.hull3d import Hull3D, convex_hull_3d
from repro.mesh.trace import traced

__all__ = ["merge_hulls", "convex_hull_divide_conquer"]


def merge_hulls(h1: Hull3D, h2: Hull3D, seed=0) -> Hull3D:
    """Hull of the union of two hulls' vertex sets.

    Returns a hull over the concatenated point array (h1's points first),
    so face indices refer to that combined array.

    Traced phases (host spans): ``hullmerge:merge`` wrapping
    ``hullmerge:filter`` (mutual inclusion filter) and ``hullmerge:hull``
    (incremental hull over the survivors).
    """
    with traced(None, "hullmerge:merge"):
        with traced(None, "hullmerge:filter"):
            p1 = h1.points[h1.vertices]
            p2 = h2.points[h2.vertices]
            keep1 = ~h2.contains(p1)
            keep2 = ~h1.contains(p2)
            # keep at least a simplex worth of points from the union
            pts = np.concatenate([p1[keep1], p2[keep2]])
            if pts.shape[0] < 4:
                pts = np.concatenate([p1, p2])
        with traced(None, "hullmerge:hull"):
            return convex_hull_3d(pts, seed=seed)


def convex_hull_divide_conquer(
    points: np.ndarray, leaf_size: int = 32, seed=0
) -> Hull3D:
    """3-d convex hull by divide-and-conquer merging (Theorem 8.4 shape).

    Splits on the x-median; leaves use the incremental construction;
    internal nodes merge with :func:`merge_hulls`.  The returned hull's
    ``points`` array is a subset of the input (hull candidates only), so
    use geometric assertions (volume, containment) rather than index
    equality when comparing to other constructions.

    Each internal node is traced as a host span ``hullmerge:divide``
    (nested per recursion level, with ``hullmerge:merge`` children).
    """
    points = np.asarray(points, dtype=np.float64)
    if points.shape[0] <= max(leaf_size, 4):
        return convex_hull_3d(points, seed=seed)
    with traced(None, "hullmerge:divide"):
        order = np.argsort(points[:, 0], kind="stable")
        half = points.shape[0] // 2
        left = convex_hull_divide_conquer(points[order[:half]], leaf_size, seed)
        right = convex_hull_divide_conquer(points[order[half:]], leaf_size, seed)
        return merge_hulls(left, right, seed=seed)
