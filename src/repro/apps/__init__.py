"""End-to-end applications of multisearch (paper Sections 5 and 6).

Each module builds the data structure (sequentially, per the DESIGN.md
substitution), loads it onto the mesh engine, runs the query batch as a
multisearch, and exposes a brute-force oracle for verification.

==================================  =========================
Theorem 8 / Section 5               module
==================================  =========================
multiple planar point location      :mod:`repro.apps.pointloc`
line-polyhedron + tangent planes    :mod:`repro.apps.linepoly`
tangent planes from query points    :mod:`repro.apps.tangent`
polyhedra separation                :mod:`repro.apps.separation`
3-d hull merging / construction     :mod:`repro.apps.hullmerge`
Section 6 interval intersection     :mod:`repro.apps.interval_search`
==================================  =========================
"""
