"""3-d convex polyhedron separation (paper Theorem 8.2).

Decide whether two convex polyhedra ``P`` and ``Q`` admit a separating
plane, and produce one if so.

Method (documented substitution — the preliminary paper gives no
algorithmic detail for this theorem): Frank-Wolfe iteration on
``min ||p - q||  (p in P, q in Q)``, where every step's direction
optimization is a *support query* answered by the Dobkin-Kirkpatrick
descent — the same extremal primitive as Theorem 8.1, so a batch of
separation instances turns each FW round into one multisearch.  The
certificates are one-sided and exact:

* **separated**: if for the current direction ``n = (p - q)/|p - q|``
  the supports satisfy ``min_P <n, x>  >  max_Q <n, y>``, the plane
  perpendicular to ``n`` between those support values separates —
  verified by construction, no epsilon gymnastics;
* **intersecting**: if the Frank-Wolfe duality gap vanishes while the
  distance estimate is (numerically) zero, the minimum distance is zero.

Near-touching pairs may exhaust the iteration budget; the result then
reports ``decided=False`` and tests fall back to the exact LP oracle
(:func:`separation_oracle`).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.dk3d import DKHierarchy
from repro.mesh.trace import traced

__all__ = ["SeparationResult", "separate_polyhedra", "separation_oracle"]


@dataclass
class SeparationResult:
    decided: bool
    separated: bool
    #: plane [normal (3), offset]: ``normal . x = offset``; P on the > side
    plane: np.ndarray | None
    iterations: int
    support_queries: int


def separate_polyhedra(
    hier_p: DKHierarchy,
    hier_q: DKHierarchy,
    max_iter: int = 512,
    eps: float = 1e-9,
) -> SeparationResult:
    """Frank-Wolfe separation using hierarchy support queries.

    Traced as one host span ``separation:frank-wolfe`` per pair.
    """
    vp = hier_p.points[hier_p.hulls[0].vertices]
    vq = hier_q.points[hier_q.hulls[0].vertices]
    with traced(None, "separation:frank-wolfe"):
        return _frank_wolfe(hier_p, hier_q, vp, vq, max_iter, eps)


def _frank_wolfe(hier_p, hier_q, vp, vq, max_iter: int, eps: float) -> SeparationResult:
    p = vp.mean(axis=0)
    q = vq.mean(axis=0)
    support_queries = 0
    scale = max(1.0, float(np.abs(vp).max()), float(np.abs(vq).max()))
    for it in range(1, max_iter + 1):
        d = p - q
        dist = float(np.linalg.norm(d))
        if dist < eps * scale:
            return SeparationResult(True, False, None, it, support_queries)
        n = d / dist
        sp = hier_p.support(-n)  # minimizes <n, .> over P
        sq = hier_q.support(n)  # maximizes <n, .> over Q
        support_queries += 2
        lo_p = float(hier_p.points[sp] @ n)
        hi_q = float(hier_q.points[sq] @ n)
        if lo_p > hi_q:  # exact separation certificate
            plane = np.concatenate([n, [(lo_p + hi_q) / 2.0]])
            return SeparationResult(True, True, plane, it, support_queries)
        # Frank-Wolfe step towards the support vertices
        dp = hier_p.points[sp] - p
        dq = hier_q.points[sq] - q
        gap = float(-(d @ dp) + (d @ dq))  # = <grad, x - s> / 2 >= 0
        if gap <= eps * scale * max(dist, 1.0):
            # optimal: distance is dist but no separating certificate was
            # produced; at an exact optimum with dist > 0 the certificate
            # fires, so this means dist ~ 0 within tolerance
            return SeparationResult(True, False, None, it, support_queries)
        delta = dp - dq
        denom = float(delta @ delta)
        step = 1.0 if denom < 1e-30 else min(1.0, max(0.0, float(-(d @ delta)) / denom))
        p = p + step * dp
        q = q + step * dq
    return SeparationResult(False, False, None, max_iter, support_queries)


def separation_oracle(points_p: np.ndarray, points_q: np.ndarray) -> bool:
    """Exact LP separability test (margin-scaled strict separation)."""
    from scipy.optimize import linprog

    vp = np.asarray(points_p, dtype=np.float64)
    vq = np.asarray(points_q, dtype=np.float64)
    # variables: a (3), b (1); constraints a.x - b <= -1 for Q, b - a.y <= -1 for P
    A_ub = np.concatenate(
        [
            np.concatenate([vq, -np.ones((vq.shape[0], 1))], axis=1),
            np.concatenate([-vp, np.ones((vp.shape[0], 1))], axis=1),
        ]
    )
    b_ub = -np.ones(A_ub.shape[0])
    res = linprog(
        c=np.zeros(4),
        A_ub=A_ub,
        b_ub=b_ub,
        bounds=[(None, None)] * 4,
        method="highs",
    )
    return bool(res.status == 0)
