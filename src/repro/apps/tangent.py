"""Multiple tangent plane determination (paper abstract / Theorem 8.1).

For each query point ``q`` outside a convex polyhedron ``P``, produce the
*tangent cone*: the planes through ``q`` that support ``P``, touching it
along the horizon of ``q``.  These are exactly the faces of
``conv(P U {q})`` incident to ``q`` — each such face's plane contains
``q``, contains a hull edge of ``P`` (the contact), and has all of ``P``
on its inner side.

The per-query work is the beneath-beyond step of the incremental hull
(vectorized visible-face scan + horizon extraction), i.e. the same
primitive the 3-d hull substrate uses; a batch of m queries is m
independent such steps, which is the data-parallel shape multisearch
exploits on the mesh.  Points inside ``P`` (exact test) have an empty
cone.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.geometry.hull3d import Hull3D
from repro.mesh.trace import traced

__all__ = ["TangentCone", "tangent_cones"]

_EPS = 1e-9


@dataclass
class TangentCone:
    """The tangent cone of one query point."""

    inside: bool
    #: (K, 4) plane rows [normal, offset], outward (query side >= P side)
    planes: np.ndarray
    #: (K, 2) hull-vertex index pairs: the contact (horizon) edges
    contacts: np.ndarray


def tangent_cones(hull: Hull3D, queries: np.ndarray) -> list[TangentCone]:
    """Tangent cones of a batch of query points against ``hull``.

    Traced as one host span ``tangent:cones`` per batch.
    """
    queries = np.atleast_2d(np.asarray(queries, dtype=np.float64))
    with traced(None, "tangent:cones"):
        return _tangent_cones(hull, queries)


def _tangent_cones(hull: Hull3D, queries: np.ndarray) -> list[TangentCone]:
    pts = hull.points
    out: list[TangentCone] = []

    # face adjacency over edges, once
    edge_faces: dict[tuple[int, int], list[int]] = {}
    for fid, (a, b, c) in enumerate(hull.faces):
        for u, v in ((a, b), (b, c), (c, a)):
            edge_faces.setdefault((min(u, v), max(u, v)), []).append(fid)

    for q in queries:
        dists = hull.normals @ q - hull.offsets
        visible = dists > _EPS
        if not visible.any():
            out.append(
                TangentCone(
                    inside=True,
                    planes=np.empty((0, 4)),
                    contacts=np.empty((0, 2), dtype=np.int64),
                )
            )
            continue
        horizon: list[tuple[int, int]] = []
        vis_ids = set(np.flatnonzero(visible).tolist())
        for f in vis_ids:
            a, b, c = hull.faces[f]
            for u, v in ((a, b), (b, c), (c, a)):
                adj = edge_faces[(min(u, v), max(u, v))]
                if any(g not in vis_ids for g in adj):
                    horizon.append((int(u), int(v)))
        planes = np.empty((len(horizon), 4))
        contacts = np.empty((len(horizon), 2), dtype=np.int64)
        interior = pts[hull.faces[:, 0]].mean(axis=0)
        for j, (u, v) in enumerate(horizon):
            nrm = np.cross(pts[u] - q, pts[v] - q)
            norm = np.linalg.norm(nrm)
            if norm < 1e-30:
                nrm = hull.normals[next(iter(vis_ids))]
            else:
                nrm = nrm / norm
            off = float(nrm @ q)
            if nrm @ interior > off:  # orient with P on the <= side
                nrm, off = -nrm, -off
            planes[j] = np.concatenate([nrm, [off]])
            contacts[j] = (u, v)
        out.append(TangentCone(inside=False, planes=planes, contacts=contacts))
    return out
