"""Multiple interval intersection search on the mesh (paper Section 6).

Given ``n`` stored intervals and ``m`` query intervals, answer for each
query ``[a, b]``:

* **count** — ``#{i : [l_i, r_i] intersects [a, b]}``, by the rank
  identity ``#{l_i <= b} - #{r_i < a}``: two root-to-leaf rank descents
  on balanced search trees over the left and right endpoints, run as
  alpha-partitionable multisearches (Algorithm 2 / Theorem 5);
* **report** — the intersecting intervals themselves, as the disjoint
  union ``{l_i in [a, b]}  +  {l_i < a <= r_i}``: a range walk on the
  left-endpoint tree (alpha-beta multisearch, Algorithm 3 / Theorem 7)
  plus a stabbing query at ``a`` on the flattened interval tree
  (:mod:`repro.intervals.structure`), also an alpha-beta multisearch.

Every mesh result is verified against
:func:`repro.intervals.interval_tree.brute_force_intersections` in tests.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.alpha import alpha_multisearch
from repro.core.alphabeta import alphabeta_multisearch
from repro.core.model import QuerySet
from repro.core.splitters import Splitting, normalize_splitting, splitting_from_labels
from repro.core.model import SearchStructure
from repro.graphs.adapters import (
    ktree_range_structure,
    ktree_rank_structure,
    ktree_rank_successor,
)
from repro.graphs.ktree import BalancedKTree, tree_from_keys
from repro.intervals.interval_tree import IntervalTree
from repro.intervals.structure import IntervalStructure, build_interval_structure
from repro.mesh.engine import MeshEngine
from repro.mesh.topology import MeshShape
from repro.mesh.trace import traced

__all__ = [
    "IntervalSearchSetup",
    "setup_interval_search",
    "count_intersections_mesh",
    "count_on_structures",
    "report_intersections_mesh",
    "interval_count_snapshot_arrays",
    "interval_count_from_snapshot",
]


def _tree_splitting(tree: BalancedKTree, delta: float = 0.5) -> Splitting:
    lab = tree.alpha_splitter()
    sp = splitting_from_labels(lab.comp, tree.children, delta)
    return normalize_splitting(sp, tree.size)


def _tree_splittings_ab(tree: BalancedKTree) -> tuple[Splitting, Splitting]:
    if tree.height >= 6:
        s1, s2, _ = tree.alpha_beta_splitters()
    else:
        s1 = tree.alpha_splitter()
        s2 = tree.splitter_at_depths([max(1, tree.height - 1)])
    sp1 = splitting_from_labels(s1.comp, tree.children, 0.5)
    sp2 = splitting_from_labels(s2.comp, tree.children, 1.0 / 3.0)
    return sp1, sp2


@dataclass
class IntervalSearchSetup:
    """Prebuilt structures shared by counting and reporting runs."""

    lefts: np.ndarray
    rights: np.ndarray
    tree_lefts: BalancedKTree
    tree_rights: BalancedKTree
    #: permutation: left-sorted leaf rank -> interval id
    left_order: np.ndarray
    itree: IntervalTree
    istruct: IntervalStructure
    k: int


def setup_interval_search(lefts: np.ndarray, rights: np.ndarray, k: int = 2) -> IntervalSearchSetup:
    """Build the trees and the flattened interval tree for a dataset.

    Traced as one host span ``intervals:setup``.
    """
    lefts = np.asarray(lefts, dtype=np.float64)
    rights = np.asarray(rights, dtype=np.float64)
    with traced(None, "intervals:setup"):
        return _setup_interval_search(lefts, rights, k)


def _setup_interval_search(lefts, rights, k: int) -> IntervalSearchSetup:
    left_order = np.argsort(lefts, kind="stable")
    tree_lefts = tree_from_keys(k, lefts[left_order])
    tree_rights = tree_from_keys(k, np.sort(rights))
    itree = IntervalTree(lefts, rights)
    istruct = build_interval_structure(itree)
    return IntervalSearchSetup(
        lefts=lefts,
        rights=rights,
        tree_lefts=tree_lefts,
        tree_rights=tree_rights,
        left_order=left_order,
        itree=itree,
        istruct=istruct,
        k=k,
    )


def count_intersections_mesh(
    setup: IntervalSearchSetup,
    a: np.ndarray,
    b: np.ndarray,
    engine: MeshEngine | None = None,
) -> tuple[np.ndarray, float]:
    """Counts per query; returns ``(counts, mesh_steps)``.

    Traced phases: engine span ``intervals:count`` wrapping the two rank
    descents ``intervals:count:rank-le-b`` and ``intervals:count:rank-lt-a``.
    """
    st_l = ktree_rank_structure(setup.tree_lefts, strict=False)
    st_r = ktree_rank_structure(setup.tree_rights, strict=True)
    return count_on_structures(
        st_l,
        st_r,
        _tree_splitting(setup.tree_lefts),
        _tree_splitting(setup.tree_rights),
        a,
        b,
        engine=engine,
    )


def count_on_structures(
    st_l: SearchStructure,
    st_r: SearchStructure,
    sp_l: Splitting,
    sp_r: Splitting,
    a: np.ndarray,
    b: np.ndarray,
    engine: MeshEngine | None = None,
) -> tuple[np.ndarray, float]:
    """Counting on prebuilt rank structures and their alpha splittings.

    The construction-free core of :func:`count_intersections_mesh`,
    shared with the serving layer, which restores both structures and
    splittings from a snapshot.
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m = a.shape[0]
    size = max(st_l.size, st_r.size, m)
    if engine is None:
        engine = MeshEngine(MeshShape.for_size(size).side)
    t0 = engine.clock.current

    with traced(engine.clock, "intervals:count"):
        with traced(engine.clock, "intervals:count:rank-le-b"):
            qs1 = QuerySet.start(b, 0, state_width=1)
            alpha_multisearch(engine, st_l, qs1, sp_l)
            rank_le_b = qs1.state[:, 0]

        with traced(engine.clock, "intervals:count:rank-lt-a"):
            qs2 = QuerySet.start(a, 0, state_width=1)
            alpha_multisearch(engine, st_r, qs2, sp_r)
            rank_lt_a = qs2.state[:, 0]

    counts = (rank_le_b - rank_lt_a).astype(np.int64)
    return counts, engine.clock.current - t0


def interval_count_snapshot_arrays(setup: IntervalSearchSetup):
    """Flat arrays + scalar meta capturing the counting path of ``setup``.

    Both rank structures (left endpoints, non-strict; right endpoints,
    strict) and their alpha splittings.  Successor functions are not
    stored — they are rebuilt by :func:`ktree_rank_successor` from the
    scalar meta at restore time.
    """
    st_l = ktree_rank_structure(setup.tree_lefts, strict=False)
    st_r = ktree_rank_structure(setup.tree_rights, strict=True)
    sp_l = _tree_splitting(setup.tree_lefts)
    sp_r = _tree_splitting(setup.tree_rights)
    arrays = {
        "l_adjacency": st_l.adjacency,
        "l_payload": st_l.payload,
        "l_level": st_l.level,
        "l_comp": sp_l.comp,
        "l_sizes": sp_l.sizes,
        "r_adjacency": st_r.adjacency,
        "r_payload": st_r.payload,
        "r_level": st_r.level,
        "r_comp": sp_r.comp,
        "r_sizes": sp_r.sizes,
    }
    meta = {
        "k": int(setup.k),
        "h_l": int(setup.tree_lefts.height),
        "h_r": int(setup.tree_rights.height),
        "delta_l": float(sp_l.delta),
        "delta_r": float(sp_r.delta),
    }
    return arrays, meta


def interval_count_from_snapshot(arrays, meta):
    """Inverse of :func:`interval_count_snapshot_arrays`.

    Returns ``(st_l, st_r, sp_l, sp_r)`` ready for
    :func:`count_on_structures`.
    """
    k = int(meta["k"])

    def _structure(prefix: str, h: int, strict: bool) -> SearchStructure:
        return SearchStructure(
            adjacency=np.asarray(arrays[f"{prefix}_adjacency"], dtype=np.int64),
            payload=np.asarray(arrays[f"{prefix}_payload"], dtype=np.float64),
            level=np.asarray(arrays[f"{prefix}_level"], dtype=np.int64),
            successor=ktree_rank_successor(k, h, strict),
            directed=True,
        )

    def _splitting(prefix: str, delta: float) -> Splitting:
        comp = np.asarray(arrays[f"{prefix}_comp"], dtype=np.int64)
        sizes = np.asarray(arrays[f"{prefix}_sizes"], dtype=np.int64)
        return Splitting(comp, int(sizes.shape[0]), float(delta), sizes)

    st_l = _structure("l", int(meta["h_l"]), strict=False)
    st_r = _structure("r", int(meta["h_r"]), strict=True)
    sp_l = _splitting("l", float(meta["delta_l"]))
    sp_r = _splitting("r", float(meta["delta_r"]))
    return st_l, st_r, sp_l, sp_r


def report_intersections_mesh(
    setup: IntervalSearchSetup,
    a: np.ndarray,
    b: np.ndarray,
    engine: MeshEngine | None = None,
) -> tuple[list[np.ndarray], float]:
    """Intersecting interval ids per query; returns ``(reports, mesh_steps)``.

    Output-sensitive: each query's mesh search path has length
    ``O(log n + k_query)``.

    Traced phases: engine span ``intervals:report`` wrapping
    ``intervals:report:range-walk`` (alpha-beta walk + id collection),
    ``intervals:report:stab`` (interval-tree stabbing + id collection)
    and ``intervals:report:collect`` (the final per-query union).
    """
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    m = a.shape[0]
    tree = setup.tree_lefts
    st_range = ktree_range_structure(tree)
    istruct = setup.istruct
    size = max(tree.size, istruct.size, m)
    if engine is None:
        engine = MeshEngine(MeshShape.for_size(size).side)
    t0 = engine.clock.current

    with traced(engine.clock, "intervals:report"):
        # leg 1: range walk over left endpoints for l in [a, b].  The walker
        # visits leaves with key strictly above its lower bound, so nudge the
        # bound just below ``a`` to make the range closed at ``a``.
        with traced(engine.clock, "intervals:report:range-walk"):
            keys = np.stack([np.nextafter(a, -np.inf), b], axis=1)
            qs1 = QuerySet.start(keys, 0, state_width=2, record_trace=True)
            sp1, sp2 = _tree_splittings_ab(tree)
            alphabeta_multisearch(engine, st_range, qs1, sp1, sp2)

            first_leaf = tree.first_leaf()
            n = setup.lefts.size
            leg1: list[np.ndarray] = []
            for i, path in enumerate(qs1.paths()):
                visited = np.array([v for v in path if v >= first_leaf], dtype=np.int64)
                ranks = visited - first_leaf
                ranks = ranks[ranks < n]
                ids = setup.left_order[ranks]
                sel = (setup.lefts[ids] >= a[i]) & (setup.lefts[ids] <= b[i])
                leg1.append(np.unique(ids[sel]))

        # leg 2: stabbing at a on the flattened interval tree
        with traced(engine.clock, "intervals:report:stab"):
            qs2 = QuerySet.start(a, istruct.root_vertex, state_width=1, record_trace=True)
            alphabeta_multisearch(
                engine, istruct.structure, qs2, istruct.splitting1, istruct.splitting2
            )
            leg2: list[np.ndarray] = []
            for path in qs2.paths():
                ivs = istruct.vertex_interval[np.array(path, dtype=np.int64)]
                leg2.append(np.unique(ivs[ivs >= 0]))

        with traced(engine.clock, "intervals:report:collect"):
            reports = [
                np.unique(np.concatenate([l1, l2])).astype(np.int64)
                for l1, l2 in zip(leg1, leg2)
            ]
    return reports, engine.clock.current - t0
