"""Step accounting for the counted-primitive engine.

The paper measures algorithms in *mesh time steps*: in one step every
processor does O(1) local work and exchanges O(1) words with its four
neighbours.  :class:`StepClock` is the global clock; engine primitives
charge it ``constant * side`` steps, with the constants collected in
:class:`CostModel` (taken from the standard mesh-algorithmics literature,
e.g. Schnorr–Shamir 3n sorting).

The subtle part is *parallelism*: when the mesh is partitioned into disjoint
submeshes that work independently (the heart of Algorithms 1–3), the time
spent is the maximum over the submeshes, not the sum.  The clock exposes a
``parallel()`` context for exactly this::

    with clock.parallel() as par:
        for region in blocks:
            with par.branch():
                ...  # charges inside accrue to this branch
    # on exit the clock advances by max(branch totals)

Branches of one ``parallel()`` frame must operate on disjoint regions; the
engine enforces this.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["CostModel", "StepClock", "ParallelFrame", "drain_profiled_clocks"]

#: clocks created while ``REPRO_PROFILE`` was set — the bench runner's
#: hook for profiling code that builds its engines internally.  Worker
#: processes drain this after each profiled run.
_PROFILED_CLOCKS: list["StepClock"] = []


def drain_profiled_clocks() -> list["StepClock"]:
    """Return and clear the clocks captured under ``REPRO_PROFILE``."""
    out = list(_PROFILED_CLOCKS)
    _PROFILED_CLOCKS.clear()
    return out


@dataclass(frozen=True)
class CostModel:
    """Per-primitive step constants; each primitive costs ``constant * side``.

    ``sort`` uses the optimal-sort constant (Schnorr–Shamir sorts an n-mesh
    in ~3*sqrt(n) steps).  ``route`` covers sort-based random-access
    read/write (a constant number of sorts plus scans, per the standard
    concurrent-read simulation).  ``local`` is the flat per-invocation cost
    of one SIMD local step (independent of side).
    """

    sort: float = 3.0
    route: float = 8.0
    scan: float = 2.0
    broadcast: float = 2.0
    compress: float = 3.0
    transfer: float = 1.0
    local: float = 1.0


@dataclass
class ParallelFrame:
    """Bookkeeping for one ``parallel()`` section."""

    start: float
    max_branch: float = 0.0
    open_branches: int = 0
    branches: list[float] = field(default_factory=list)


class StepClock:
    """Global mesh-step clock with nested-parallel charging."""

    def __init__(self, cost_model: CostModel | None = None) -> None:
        self.cost = cost_model if cost_model is not None else CostModel()
        self._accumulators: list[float] = [0.0]
        self._frames: list[ParallelFrame] = []
        self.history: list[tuple[str, float]] = []
        self.record_history: bool = False
        #: attached :class:`repro.mesh.trace.Tracer` (None = tracing off);
        #: every charge is forwarded to its innermost open span.
        self.tracer = None
        if os.environ.get("REPRO_PROFILE"):
            self.record_history = True
            _PROFILED_CLOCKS.append(self)
        if os.environ.get("REPRO_TRACE"):
            from repro.mesh.trace import Tracer, register_traced_tracer

            register_traced_tracer(Tracer(clock=self))

    @property
    def time(self) -> float:
        """Total mesh steps charged so far (at the outermost level)."""
        if self._frames:
            raise RuntimeError("clock.time read inside an open parallel() frame")
        return self._accumulators[0]

    @property
    def current(self) -> float:
        """Steps charged to the innermost open accumulator (for diagnostics)."""
        return self._accumulators[-1]

    def charge(self, steps: float, label: str = "", volume: int = 0) -> None:
        """Charge ``steps`` mesh steps to the innermost accumulator.

        ``volume`` is the number of records the charged operation moved
        (engine primitives report it); it is metadata for the attached
        tracer only and never affects the step count.
        """
        if steps < 0:
            raise ValueError(f"cannot charge negative steps: {steps}")
        self._accumulators[-1] += steps
        if self.record_history:
            self.history.append((label, steps))
        if self.tracer is not None:
            self.tracer.on_charge(label, steps, volume)

    @contextmanager
    def parallel(self) -> Iterator["ParallelSection"]:
        """Open a parallel section: branch charges combine by max."""
        frame = ParallelFrame(start=self._accumulators[-1])
        self._frames.append(frame)
        section = ParallelSection(self, frame)
        try:
            yield section
        finally:
            popped = self._frames.pop()
            if popped.open_branches != 0:  # pragma: no cover - misuse guard
                raise RuntimeError("parallel() closed with an open branch")
            self._accumulators[-1] += popped.max_branch
            if self.tracer is not None:
                # report the fold (max vs sum of branch totals) so span
                # charges keep summing to clock.time exactly
                self.tracer.on_parallel_fold(popped.branches, popped.max_branch)

    def _open_branch(self, frame: ParallelFrame) -> None:
        if not self._frames or self._frames[-1] is not frame:
            raise RuntimeError("branch() used outside its parallel() frame")
        if frame.open_branches:
            raise RuntimeError("branches of one parallel() frame cannot nest")
        frame.open_branches += 1
        self._accumulators.append(0.0)

    def _close_branch(self, frame: ParallelFrame) -> None:
        elapsed = self._accumulators.pop()
        frame.branches.append(elapsed)
        frame.max_branch = max(frame.max_branch, elapsed)
        frame.open_branches -= 1

    def reset(self) -> None:
        """Zero the clock (only legal outside any parallel section)."""
        if self._frames:
            raise RuntimeError("cannot reset inside a parallel() frame")
        self._accumulators = [0.0]
        self.history.clear()


class ParallelSection:
    """Handle yielded by :meth:`StepClock.parallel`."""

    def __init__(self, clock: StepClock, frame: ParallelFrame) -> None:
        self._clock = clock
        self._frame = frame

    @contextmanager
    def branch(self) -> Iterator[None]:
        """One concurrent branch; its charges contribute via max()."""
        self._clock._open_branch(self._frame)
        try:
            yield
        finally:
            self._clock._close_branch(self._frame)

    @property
    def branch_times(self) -> list[float]:
        return list(self._frame.branches)
