"""Hierarchical span tracing + metrics over the :class:`StepClock`.

The paper's whole evaluation is cost accounting — every theorem is a claim
about *where* mesh steps go.  :mod:`repro.mesh.profile` answers the flat
per-label question ("how much did ``sort`` cost"); this module adds the
*hierarchical* one ("how much did ``sort`` cost inside band 2's Phase 1").

A :class:`Tracer` attaches to a clock (``tracer.attach(clock)`` or
``Tracer(clock=clock)``); from then on every :meth:`StepClock.charge`
is attributed to the innermost open span:

    tracer = Tracer(clock=engine.clock)
    with tracer.span("hierdag:phase2"):
        region.rar(...)            # counted under hierdag:phase2

Each :class:`Span` records host wall time plus, per charge label, the
invocation count, charged mesh steps, and moved element volume (record
counts reported by the engine primitives).  Algorithm code opens spans
through :func:`traced`, which is a zero-cost no-op when the clock has no
tracer attached — instrumented code paths cost one attribute check when
tracing is off.

Exporters:

* :meth:`Tracer.to_chrome` — Chrome ``trace_event`` JSON (open the blob
  in ``chrome://tracing`` / Perfetto; span steps and counters ride in the
  event ``args``);
* :meth:`Tracer.render` — a plain-text tree for terminals and review
  artifacts.

Parallel-fold caveat (same as :mod:`repro.mesh.profile`): span step
totals are *raw charges*.  Inside a ``clock.parallel()`` section the
clock folds branch totals by max, but the fold itself is not a charge, so
``tracer.total_steps`` equals ``clock.time`` only for runs without
parallel sections (true of Algorithm 1/2/3 as implemented — their
parallelism is charged analytically) and otherwise bounds it from above.
The tracer answers "what work happened where", not "what was the critical
path".

The bench runner's ``--trace`` flag uses the ``REPRO_TRACE`` environment
variable the same way ``--profile`` uses ``REPRO_PROFILE``: clocks
created while it is set auto-attach a fresh tracer and register it in a
module-level list drained by :func:`drain_traced_tracers`.
"""

from __future__ import annotations

import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "PrimCounter",
    "Span",
    "Tracer",
    "traced",
    "chrome_doc",
    "register_traced_tracer",
    "drain_traced_tracers",
]

#: tracers auto-attached to clocks created under ``REPRO_TRACE`` (see
#: :class:`repro.mesh.clock.StepClock`); the bench runner's worker
#: processes drain this after each traced run.
_TRACED_TRACERS: list["Tracer"] = []


def register_traced_tracer(tracer: "Tracer") -> None:
    _TRACED_TRACERS.append(tracer)


def drain_traced_tracers() -> list["Tracer"]:
    """Return and clear the tracers captured under ``REPRO_TRACE``."""
    out = list(_TRACED_TRACERS)
    _TRACED_TRACERS.clear()
    return out


@dataclass
class PrimCounter:
    """Per-label accumulator within one span."""

    calls: int = 0
    steps: float = 0.0
    volume: int = 0


@dataclass
class Span:
    """One node of the span tree."""

    name: str
    t0: float
    t1: float | None = None
    #: mesh steps charged while this span was innermost (self, not children)
    steps: float = 0.0
    counters: dict[str, PrimCounter] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        """Host wall time of the span (0 while still open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def steps_total(self) -> float:
        """Self charges plus all descendants' (raw, no parallel fold)."""
        return self.steps + sum(c.steps_total for c in self.children)

    @property
    def calls_total(self) -> int:
        return sum(c.calls for c in self.counters.values()) + sum(
            ch.calls_total for ch in self.children
        )

    @property
    def volume_total(self) -> int:
        return sum(c.volume for c in self.counters.values()) + sum(
            ch.volume_total for ch in self.children
        )

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "steps": self.steps,
            "counters": {
                label: {"calls": c.calls, "steps": c.steps, "volume": c.volume}
                for label, c in self.counters.items()
            },
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            name=str(data["name"]),
            t0=0.0,
            t1=float(data.get("wall_s", 0.0)),
            steps=float(data.get("steps", 0.0)),
        )
        for label, c in data.get("counters", {}).items():
            span.counters[str(label)] = PrimCounter(
                calls=int(c.get("calls", 0)),
                steps=float(c.get("steps", 0.0)),
                volume=int(c.get("volume", 0)),
            )
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span


class Tracer:
    """Span tree builder fed by :meth:`StepClock.charge`."""

    def __init__(self, name: str = "run", clock=None) -> None:
        self.root = Span(name, t0=time.perf_counter())
        self._stack: list[Span] = [self.root]
        if clock is not None:
            self.attach(clock)

    # -- clock wiring ------------------------------------------------------

    def attach(self, clock) -> None:
        """Route the clock's charges into this tracer's open span."""
        clock.tracer = self

    def detach(self, clock) -> None:
        if getattr(clock, "tracer", None) is self:
            clock.tracer = None

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a nested span; charges inside attribute to it."""
        node = Span(name, t0=time.perf_counter())
        self._stack[-1].children.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.t1 = time.perf_counter()
            self._stack.pop()

    def on_charge(self, label: str, steps: float, volume: int = 0) -> None:
        """Called by the clock for every charge while attached."""
        node = self._stack[-1]
        node.steps += steps
        counter = node.counters.get(label)
        if counter is None:
            counter = node.counters[label] = PrimCounter()
        counter.calls += 1
        counter.steps += steps
        counter.volume += volume

    def finish(self) -> "Tracer":
        """Close the root span's wall time (idempotent)."""
        if self.root.t1 is None:
            self.root.t1 = time.perf_counter()
        return self

    @property
    def total_steps(self) -> float:
        """Summed raw span charges (== ``clock.time`` absent parallel folds)."""
        return self.root.steps_total

    # -- exporters ---------------------------------------------------------

    def chrome_events(self, pid: int = 1, tid: int = 1) -> list[dict]:
        """Chrome ``trace_event`` complete ("X") events, one per span."""
        self.finish()
        base = self.root.t0
        events: list[dict] = []

        def emit(span: Span) -> None:
            end = span.t1 if span.t1 is not None else span.t0
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.t0 - base) * 1e6,
                    "dur": max(0.0, (end - span.t0) * 1e6),
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "steps": span.steps_total,
                        "steps_self": span.steps,
                        "calls": span.calls_total,
                        "volume": span.volume_total,
                        "counters": {
                            label: {
                                "calls": c.calls,
                                "steps": c.steps,
                                "volume": c.volume,
                            }
                            for label, c in span.counters.items()
                        },
                    },
                }
            )
            for child in span.children:
                emit(child)

        emit(self.root)
        return events

    def to_chrome(self) -> dict:
        """A complete Chrome trace document for this tracer alone."""
        return chrome_doc([self])

    def render(self) -> str:
        """Plain-text tree: per-span steps, wall time, and top labels."""
        self.finish()
        lines = ["span tree (steps are raw charges; parallel fold not applied)"]

        def walk(span: Span, depth: int) -> None:
            top = sorted(
                span.counters.items(), key=lambda kv: -kv[1].steps
            )[:3]
            top_txt = (
                "  [" + ", ".join(
                    f"{label}:{c.calls}x/{c.steps:.0f}" for label, c in top
                ) + "]"
                if top
                else ""
            )
            lines.append(
                f"{'  ' * depth}{span.name:<{max(1, 28 - 2 * depth)}} "
                f"steps={span.steps_total:>10.0f} (self={span.steps:.0f})  "
                f"wall={span.wall_s * 1e3:.2f}ms{top_txt}"
            )
            for child in span.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def to_dict(self) -> dict:
        self.finish()
        return {"schema": 1, "root": self.root.to_dict()}


def traced(clock, name: str):
    """Span context for instrumented code: no-op when nothing is attached.

    Algorithm phases wrap themselves in ``with traced(engine.clock,
    "hierdag:phase2"):`` — when no tracer is attached (the default) this
    is one ``getattr`` plus a shared ``nullcontext``, preserving the
    zero-mesh-step / negligible-wall guarantee of untraced runs.
    """
    tracer = getattr(clock, "tracer", None)
    if tracer is None:
        return nullcontext()
    return tracer.span(name)


def chrome_doc(tracers: list["Tracer"]) -> dict:
    """Merge tracers into one Chrome ``trace_event`` JSON document.

    Each tracer becomes its own ``pid`` so a bench point that builds
    several engines (e.g. method sweeps) shows one track per engine.
    """
    events: list[dict] = []
    for i, tracer in enumerate(tracers, start=1):
        events.extend(tracer.chrome_events(pid=i))
    return {"traceEvents": events, "displayTimeUnit": "ms"}
