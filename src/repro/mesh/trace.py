"""Hierarchical span tracing + metrics over the :class:`StepClock`.

The paper's whole evaluation is cost accounting — every theorem is a claim
about *where* mesh steps go.  :mod:`repro.mesh.profile` answers the flat
per-label question ("how much did ``sort`` cost"); this module adds the
*hierarchical* one ("how much did ``sort`` cost inside band 2's Phase 1").

A :class:`Tracer` attaches to a clock (``tracer.attach(clock)`` or
``Tracer(clock=clock)``); from then on every :meth:`StepClock.charge`
is attributed to the innermost open span:

    tracer = Tracer(clock=engine.clock)
    with tracer.span("hierdag:phase2"):
        region.rar(...)            # counted under hierdag:phase2

Each :class:`Span` records host wall time plus, per charge label, the
invocation count, charged mesh steps, and moved element volume (record
counts reported by the engine primitives).  Algorithm code opens spans
through :func:`traced`, which is a zero-cost no-op when the clock has no
tracer attached — instrumented code paths cost one attribute check when
tracing is off.

Exporters:

* :meth:`Tracer.to_chrome` — Chrome ``trace_event`` JSON (open the blob
  in ``chrome://tracing`` / Perfetto; span steps and counters ride in the
  event ``args``; the document also carries the structured span trees
  under a ``spanTrees`` key, which viewers ignore but
  ``repro.bench.report --diff`` consumes);
* :meth:`Tracer.render` — a plain-text tree for terminals and review
  artifacts;
* :meth:`Tracer.collapsed` — flamegraph-compatible collapsed stacks, one
  ``root;child;grandchild <steps>`` line per span (inverse:
  :func:`parse_collapsed`).

Parallel folding: inside a ``clock.parallel()`` section the clock folds
branch totals by max.  The clock reports each section's fold to the
tracer (:meth:`Tracer.on_parallel_fold`), which records the difference
``max(branches) - sum(branches)`` on the innermost open span's ``fold``
field.  ``Span.steps_total`` includes folds, so ``tracer.total_steps``
equals ``clock.time`` *exactly*, parallel sections included — the tracer
answers both "what work happened where" (raw ``steps``) and "what did
the critical path cost" (``steps_total``).

Host-side (clock-less) code — the geometry builders that run before any
engine exists — opens spans through the same :func:`traced` helper with
``clock=None``: the span lands on the *ambient* tracer, either one
installed with :func:`ambient` or, under ``REPRO_TRACE``, a lazily
created per-process host tracer drained alongside the clock tracers.

The bench runner's ``--trace`` flag uses the ``REPRO_TRACE`` environment
variable the same way ``--profile`` uses ``REPRO_PROFILE``: clocks
created while it is set auto-attach a fresh tracer and register it in a
module-level list drained by :func:`drain_traced_tracers`.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager, nullcontext
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "PrimCounter",
    "Span",
    "Tracer",
    "traced",
    "ambient",
    "ambient_tracer",
    "emit_event",
    "chrome_doc",
    "parse_collapsed",
    "register_traced_tracer",
    "drain_traced_tracers",
]

#: tracers auto-attached to clocks created under ``REPRO_TRACE`` (see
#: :class:`repro.mesh.clock.StepClock`); the bench runner's worker
#: processes drain this after each traced run.
_TRACED_TRACERS: list["Tracer"] = []

#: explicitly installed ambient tracers (innermost last) — the fallback
#: for ``traced(None, ...)`` spans opened by clock-less host code.
_AMBIENT: list["Tracer"] = []

#: lazily created host tracer for ``REPRO_TRACE`` runs (one per process
#: per drain); collects construction-phase spans that happen before any
#: engine/clock exists.
_ENV_HOST_TRACER: "Tracer | None" = None


def register_traced_tracer(tracer: "Tracer") -> None:
    _TRACED_TRACERS.append(tracer)


def drain_traced_tracers() -> list["Tracer"]:
    """Return and clear the tracers captured under ``REPRO_TRACE``."""
    global _ENV_HOST_TRACER
    out = list(_TRACED_TRACERS)
    _TRACED_TRACERS.clear()
    _ENV_HOST_TRACER = None
    return out


@dataclass
class PrimCounter:
    """Per-label accumulator within one span."""

    calls: int = 0
    steps: float = 0.0
    volume: int = 0


@dataclass
class Span:
    """One node of the span tree."""

    name: str
    t0: float
    t1: float | None = None
    #: mesh steps charged while this span was innermost (self, not children)
    steps: float = 0.0
    #: parallel-fold adjustment: for every ``clock.parallel()`` section
    #: that closed while this span was innermost, the clock advanced by
    #: ``max(branches)`` while the raw charges sum to ``sum(branches)``;
    #: this accumulates ``max - sum`` (<= 0) so totals match the clock.
    fold: float = 0.0
    counters: dict[str, PrimCounter] = field(default_factory=dict)
    #: zero-step host-side annotations (e.g. ``argsort-memo:hit``) — event
    #: name -> occurrence count while this span was innermost
    events: dict[str, int] = field(default_factory=dict)
    children: list["Span"] = field(default_factory=list)

    @property
    def wall_s(self) -> float:
        """Host wall time of the span (0 while still open)."""
        return (self.t1 - self.t0) if self.t1 is not None else 0.0

    @property
    def steps_self(self) -> float:
        """Net self charges: raw charges plus this span's parallel folds."""
        return self.steps + self.fold

    @property
    def steps_total(self) -> float:
        """Net charges of this span and all descendants (folds applied).

        Equals the clock's advance across the span, parallel sections
        included.
        """
        return self.steps + self.fold + sum(c.steps_total for c in self.children)

    @property
    def calls_total(self) -> int:
        return sum(c.calls for c in self.counters.values()) + sum(
            ch.calls_total for ch in self.children
        )

    @property
    def volume_total(self) -> int:
        return sum(c.volume for c in self.counters.values()) + sum(
            ch.volume_total for ch in self.children
        )

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        return {
            "name": self.name,
            "wall_s": self.wall_s,
            "steps": self.steps,
            "fold": self.fold,
            "counters": {
                label: {"calls": c.calls, "steps": c.steps, "volume": c.volume}
                for label, c in self.counters.items()
            },
            "events": dict(self.events),
            "children": [c.to_dict() for c in self.children],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls(
            name=str(data["name"]),
            t0=0.0,
            t1=float(data.get("wall_s", 0.0)),
            steps=float(data.get("steps", 0.0)),
            fold=float(data.get("fold", 0.0)),
        )
        for label, c in data.get("counters", {}).items():
            span.counters[str(label)] = PrimCounter(
                calls=int(c.get("calls", 0)),
                steps=float(c.get("steps", 0.0)),
                volume=int(c.get("volume", 0)),
            )
        span.events = {str(k): int(v) for k, v in data.get("events", {}).items()}
        span.children = [cls.from_dict(c) for c in data.get("children", [])]
        return span


class Tracer:
    """Span tree builder fed by :meth:`StepClock.charge`."""

    def __init__(self, name: str = "run", clock=None) -> None:
        self.root = Span(name, t0=time.perf_counter())
        self._stack: list[Span] = [self.root]
        if clock is not None:
            self.attach(clock)

    # -- clock wiring ------------------------------------------------------

    def attach(self, clock) -> None:
        """Route the clock's charges into this tracer's open span."""
        clock.tracer = self

    def detach(self, clock) -> None:
        if getattr(clock, "tracer", None) is self:
            clock.tracer = None

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str) -> Iterator[Span]:
        """Open a nested span; charges inside attribute to it."""
        node = Span(name, t0=time.perf_counter())
        self._stack[-1].children.append(node)
        self._stack.append(node)
        try:
            yield node
        finally:
            node.t1 = time.perf_counter()
            self._stack.pop()

    def on_charge(self, label: str, steps: float, volume: int = 0) -> None:
        """Called by the clock for every charge while attached."""
        node = self._stack[-1]
        node.steps += steps
        counter = node.counters.get(label)
        if counter is None:
            counter = node.counters[label] = PrimCounter()
        counter.calls += 1
        counter.steps += steps
        counter.volume += volume

    def on_event(self, name: str, count: int = 1) -> None:
        """Record a zero-step host-side event on the innermost open span.

        Engine internals use this for annotations that explain wall time
        without touching the step accounting — e.g. ``argsort-memo:hit``
        vs ``argsort-memo:miss``, which attribute a fast sort to
        memoization rather than the kernel backend.
        """
        node = self._stack[-1]
        node.events[name] = node.events.get(name, 0) + count

    def on_parallel_fold(self, branches: list[float], max_branch: float) -> None:
        """Called by the clock when a ``parallel()`` section closes.

        ``branches`` are the clock-measured branch totals (inner folds
        already applied, because inner sections reported here first), so
        charging ``max - sum`` to the innermost open span makes this
        tracer's totals track the clock exactly through arbitrary
        nesting.
        """
        self._stack[-1].fold += max_branch - sum(branches)

    def finish(self) -> "Tracer":
        """Close the root span's wall time (idempotent)."""
        if self.root.t1 is None:
            self.root.t1 = time.perf_counter()
        return self

    @property
    def current_path(self) -> tuple[str, ...]:
        """Names of the open spans, outermost first (root included).

        Consumed by :class:`repro.mesh.faults.InvariantViolation` so a
        paranoid-mode failure names the phase it fired in.
        """
        return tuple(span.name for span in self._stack)

    @property
    def total_steps(self) -> float:
        """Summed net span charges (== ``clock.time``, folds included)."""
        return self.root.steps_total

    # -- exporters ---------------------------------------------------------

    def chrome_events(self, pid: int = 1, tid: int = 1) -> list[dict]:
        """Chrome ``trace_event`` complete ("X") events, one per span."""
        self.finish()
        base = self.root.t0
        events: list[dict] = []

        def emit(span: Span) -> None:
            end = span.t1 if span.t1 is not None else span.t0
            events.append(
                {
                    "name": span.name,
                    "ph": "X",
                    "ts": (span.t0 - base) * 1e6,
                    "dur": max(0.0, (end - span.t0) * 1e6),
                    "pid": pid,
                    "tid": tid,
                    "args": {
                        "steps": span.steps_total,
                        "steps_self": span.steps,
                        "fold": span.fold,
                        "calls": span.calls_total,
                        "volume": span.volume_total,
                        "counters": {
                            label: {
                                "calls": c.calls,
                                "steps": c.steps,
                                "volume": c.volume,
                            }
                            for label, c in span.counters.items()
                        },
                        "events": dict(span.events),
                    },
                }
            )
            for child in span.children:
                emit(child)

        emit(self.root)
        return events

    def to_chrome(self) -> dict:
        """A complete Chrome trace document for this tracer alone."""
        return chrome_doc([self])

    def render(self) -> str:
        """Plain-text tree: per-span steps, wall time, and top labels."""
        self.finish()
        lines = ["span tree (steps are net charges; parallel folds applied)"]

        def walk(span: Span, depth: int) -> None:
            top = sorted(
                span.counters.items(), key=lambda kv: -kv[1].steps
            )[:3]
            top_txt = (
                "  [" + ", ".join(
                    f"{label}:{c.calls}x/{c.steps:.0f}" for label, c in top
                ) + "]"
                if top
                else ""
            )
            fold_txt = f" fold={span.fold:.0f}" if span.fold else ""
            lines.append(
                f"{'  ' * depth}{span.name:<{max(1, 28 - 2 * depth)}} "
                f"steps={span.steps_total:>10.0f} (self={span.steps:.0f}{fold_txt})  "
                f"wall={span.wall_s * 1e3:.2f}ms{top_txt}"
            )
            for child in span.children:
                walk(child, depth + 1)

        walk(self.root, 0)
        return "\n".join(lines)

    def collapsed(self) -> str:
        """Flamegraph collapsed-stack export: ``root;child <steps>`` lines.

        One line per span (pre-order), value = the span's *net self*
        steps (raw charges plus its parallel folds), so the values sum to
        ``total_steps`` == ``clock.time``.  Span names are sanitized
        (``;`` and whitespace replaced) to keep the format parseable;
        every span is emitted, zero-valued ones included, so the tree
        shape survives the round trip (:func:`parse_collapsed`).
        """
        self.finish()
        lines: list[str] = []

        def walk(span: Span, prefix: str) -> None:
            path = f"{prefix};{_collapsed_name(span.name)}" if prefix else _collapsed_name(span.name)
            lines.append(f"{path} {_collapsed_value(span.steps_self)}")
            for child in span.children:
                walk(child, path)

        walk(self.root, "")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        self.finish()
        return {"schema": 1, "root": self.root.to_dict()}


def traced(clock, name: str):
    """Span context for instrumented code: no-op when nothing is attached.

    Algorithm phases wrap themselves in ``with traced(engine.clock,
    "hierdag:phase2"):`` — when no tracer is attached (the default) this
    is one ``getattr`` plus a shared ``nullcontext``, preserving the
    zero-mesh-step / negligible-wall guarantee of untraced runs.

    ``clock`` may be ``None`` for host-side phases that run before any
    engine exists (geometry construction): the span then falls back to
    the innermost :func:`ambient` tracer, or — under ``REPRO_TRACE`` — to
    a lazily created per-process host tracer.  With no clock tracer, no
    ambient tracer, and no ``REPRO_TRACE``, this stays a cheap no-op.
    """
    tracer = getattr(clock, "tracer", None) if clock is not None else None
    if tracer is None:
        tracer = ambient_tracer()
        if tracer is None:
            return nullcontext()
    return tracer.span(name)


@contextmanager
def ambient(tracer: "Tracer") -> Iterator["Tracer"]:
    """Install ``tracer`` as the fallback for clock-less ``traced`` spans."""
    _AMBIENT.append(tracer)
    try:
        yield tracer
    finally:
        _AMBIENT.pop()


def ambient_tracer() -> "Tracer | None":
    """The tracer clock-less spans attach to, or ``None`` (tracing off).

    Resolution order: the innermost :func:`ambient` tracer, then — when
    ``REPRO_TRACE`` is set — a per-process host tracer created on first
    use and registered for :func:`drain_traced_tracers` like the clock
    tracers.
    """
    global _ENV_HOST_TRACER
    if _AMBIENT:
        return _AMBIENT[-1]
    if os.environ.get("REPRO_TRACE"):
        if _ENV_HOST_TRACER is None:
            _ENV_HOST_TRACER = Tracer(name="host")
            register_traced_tracer(_ENV_HOST_TRACER)
        return _ENV_HOST_TRACER
    return None


def emit_event(name: str, count: int = 1, clock=None) -> None:
    """Record a zero-step event on the innermost open span, if any.

    Resolution mirrors :func:`traced`: the clock's attached tracer first,
    then the ambient tracer.  A no-op when tracing is off, so host-side
    caches (the serving layer's result cache, like the engine's argsort
    memo) can annotate hits and misses unconditionally.
    """
    tracer = getattr(clock, "tracer", None) if clock is not None else None
    if tracer is None:
        tracer = ambient_tracer()
    if tracer is not None:
        tracer.on_event(name, count)


def _collapsed_name(name: str) -> str:
    """Span name made safe for the collapsed format (no ``;``/whitespace)."""
    return "".join(":" if ch == ";" else "_" if ch.isspace() else ch for ch in name)


def _collapsed_value(value: float) -> str:
    """Exact text form of a step value: int when integral, repr otherwise."""
    if value == int(value):
        return str(int(value))
    return repr(value)


def parse_collapsed(text: str) -> dict[tuple[str, ...], float]:
    """Parse collapsed-stack lines back into ``{path: summed steps}``.

    The inverse of :meth:`Tracer.collapsed` up to aggregation: sibling
    spans with the same name collapse onto one path, their values summed
    (the flamegraph convention).  Blank lines are skipped; a malformed
    line raises ``ValueError``.
    """
    out: dict[tuple[str, ...], float] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        path_txt, _, value_txt = line.rpartition(" ")
        if not path_txt:
            raise ValueError(f"collapsed line {lineno} has no value: {line!r}")
        try:
            value = float(value_txt)
        except ValueError as exc:
            raise ValueError(
                f"collapsed line {lineno} has a non-numeric value: {line!r}"
            ) from exc
        path = tuple(path_txt.split(";"))
        out[path] = out.get(path, 0.0) + value
    return out


def chrome_doc(tracers: list["Tracer"]) -> dict:
    """Merge tracers into one Chrome ``trace_event`` JSON document.

    Each tracer becomes its own ``pid`` so a bench point that builds
    several engines (e.g. method sweeps) shows one track per engine.
    The extra top-level ``spanTrees`` key (ignored by trace viewers)
    carries the structured span trees so TRACE sidecars stay
    self-contained inputs for ``repro.bench.report --diff``.
    """
    events: list[dict] = []
    for i, tracer in enumerate(tracers, start=1):
        events.extend(tracer.chrome_events(pid=i))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "spanTrees": [tracer.to_dict() for tracer in tracers],
    }
