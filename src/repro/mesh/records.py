"""Fused record containers for the engine's host-side fast path.

The counted primitives (:meth:`Region.sort_by`, ``route``, ``rar``, ``raw``,
``compress``) are defined over *records* — tuples of per-processor fields.
The straightforward implementation loops over the fields in Python and
allocates a fresh output array per field per call; for the simulator's hot
loops (Algorithms 1–3 run thousands of primitive calls on small arrays)
that per-field interpreter overhead dominates wall time.

This module is the structure-of-arrays answer:

* :class:`RecordSet` stacks same-dtype fields into one 2-D block, so a
  permutation / gather / scatter over all fields of a dtype is a *single*
  numpy fancy-index instead of one per field.  Mixed dtypes cost one index
  per distinct dtype (typically two: int64 bookkeeping + float64 payload).
* :class:`ArgsortMemo` remembers the most recent stable argsorts keyed on
  key-array identity (plus an equality guard), eliminating the redundant
  ``np.argsort`` when code argsorts a key array and then immediately
  ``sort_by``-s records with the same keys.
* :class:`BufferPool` hands out preallocated, refilled output buffers for
  ``route``/``rar``-style fill arrays, so steady-state loops (e.g. one
  gather per Constrained-Multisearch round) stop allocating.

None of this changes what the primitives compute or charge: fused
operations produce byte-identical arrays and identical step-clock charges;
they only change how the host executes the simulation.
"""

from __future__ import annotations

import weakref

import numpy as np

__all__ = [
    "RecordSet",
    "ArgsortMemo",
    "BufferPool",
    "fused_view",
    "should_fuse",
    "clear_host_caches",
    "memo_counters",
    "drain_memo_counters",
]

#: every live memo/pool, weakly held — so a host (the bench runner between
#: sweep points) can drop all cached buffers and stashed sort orders at
#: once without threading engine references around.
_LIVE_MEMOS: "weakref.WeakSet[ArgsortMemo]" = weakref.WeakSet()
_LIVE_POOLS: "weakref.WeakSet[BufferPool]" = weakref.WeakSet()


def clear_host_caches() -> int:
    """Clear every live :class:`ArgsortMemo` and :class:`BufferPool`.

    Returns the number of caches cleared.  This is a host-memory measure
    only — the caches repopulate on demand and outputs never change; the
    bench runner calls it between sweep points so one point's pooled
    buffers can't inflate the next point's ``peak_rss_kb``.
    """
    cleared = 0
    for cache in (*_LIVE_MEMOS, *_LIVE_POOLS):
        cache.clear()
        cleared += 1
    return cleared


def memo_counters() -> dict[str, int]:
    """Process-wide argsort-memo totals (across all live and dead memos)."""
    return {"hits": ArgsortMemo.total_hits, "misses": ArgsortMemo.total_misses}


def drain_memo_counters() -> dict[str, int]:
    """Read and reset the process-wide memo totals (bench-worker scoping)."""
    out = memo_counters()
    ArgsortMemo.total_hits = 0
    ArgsortMemo.total_misses = 0
    return out


def should_fuse(structure) -> bool:
    """Whether a search structure's fused fast path should engage.

    Packing a structure's vertex records (:func:`fused_view`) and proving
    layout properties over them cost O(E) up front; that only amortizes
    when the structure is searched more than once.  The first sighting
    marks the structure and returns False — a one-shot search keeps the
    plain per-field execution (identical outputs and charges) instead of
    paying setup it can never earn back.  From the second sighting on
    (or once a fused view already exists), returns True.
    """
    if getattr(structure, "_repro_fused", None) is not None:
        return True
    if getattr(structure, "_repro_warm", False):
        return True
    try:
        structure._repro_warm = True
    except (AttributeError, TypeError):
        pass  # unmarkable (frozen/slotted): stay on the per-field path
    return False


class RecordSet:
    """An ordered set of named, equal-length record fields, fused by dtype.

    Fields of the same dtype live as columns of one C-contiguous 2-D block
    ``(n_records, n_fields)`` — record *i* is row *i*, so a permutation /
    gather / scatter over all fields of a dtype is a single row
    fancy-index (numpy's fastest gather: one contiguous memcpy per
    record).  :meth:`field` returns a column *view* (zero copy).

    2-D fields (e.g. ``(n, k)`` adjacency rows) are supported: they occupy
    ``k`` consecutive block columns and view back as an ``(n, k)`` slice.

    A monotone :attr:`version` counter is bumped by every mutating call;
    the per-set argsort memo uses it, so reading fields is free while
    mutating through :meth:`set_field` (or calling :meth:`touch` after
    writing through a view) keeps cached sort orders honest.
    """

    def __init__(
        self,
        fields: dict[str, np.ndarray] | None = None,
        pack: bool = False,
        **kw: np.ndarray,
    ):
        named: dict[str, np.ndarray] = dict(fields or {})
        named.update(kw)
        if not named:
            raise ValueError("RecordSet needs at least one field")
        self._order: list[str] = list(named)
        self._blocks: dict[np.dtype, np.ndarray] = {}
        #: field name -> (block key, first block column, width, shape tail,
        #:               the field's own dtype)
        self._where: dict[str, tuple[np.dtype, int, int, tuple[int, ...], np.dtype]] = {}
        self._packed = bool(pack)
        self.version = 0
        n = -1
        word = np.dtype(np.int64)
        staged: dict[np.dtype, list[tuple[str, np.ndarray, np.dtype]]] = {}
        for name, arr in named.items():
            a = np.asarray(arr)
            if a.ndim == 0 or a.ndim > 2:
                raise ValueError(f"field {name!r} must be 1-D or 2-D, got {a.ndim}-D")
            if n < 0:
                n = a.shape[0]
            elif a.shape[0] != n:
                raise ValueError(
                    f"field {name!r} has length {a.shape[0]}, expected {n}"
                )
            # pack=True: every 8-byte field shares ONE int64 block (floats
            # bit-cast; a same-itemsize .view is lossless), so a whole-set
            # gather touches one cache-line-aligned row per record instead
            # of one row per dtype block.
            if pack and a.dtype.itemsize == word.itemsize:
                staged.setdefault(word, []).append((name, a, a.dtype))
            else:
                staged.setdefault(a.dtype, []).append((name, a, a.dtype))
        self.n = n
        for dtype, cols in staged.items():
            parts: list[np.ndarray] = []
            c = 0
            for name, a, vdt in cols:
                width = 1 if a.ndim == 1 else a.shape[1]
                self._where[name] = (dtype, c, width, a.shape[1:], vdt)
                parts.append(a.reshape(n, -1).view(dtype))
                c += width
            self._blocks[dtype] = (
                np.ascontiguousarray(parts[0])
                if len(parts) == 1
                else np.concatenate(parts, axis=1)
            )

    # -- introspection -----------------------------------------------------

    @property
    def names(self) -> list[str]:
        return list(self._order)

    @property
    def dtypes(self) -> list[np.dtype]:
        return list(self._blocks)

    def block(self, dtype) -> np.ndarray:
        """The fused ``(n, fields)`` block holding every field of ``dtype``."""
        return self._blocks[np.dtype(dtype)]

    def span(self, name: str) -> tuple[np.ndarray, int, int, np.dtype]:
        """``(block, first column, width, view dtype)`` for one field.

        For callers that gather whole block rows themselves (hot loops
        that bypass :class:`RecordSet` construction): slice columns
        ``c : c + width`` out of the gathered rows and ``.view(dtype)``
        them back.
        """
        dtype, c, width, tail, vdt = self._where[name]
        return self._blocks[dtype], c, width, vdt

    def field(self, name: str) -> np.ndarray:
        """A zero-copy view of one field (1-D or ``(n, k)``)."""
        dtype, c, width, tail, vdt = self._where[name]
        block = self._blocks[dtype]
        cols = block[:, c] if not tail else block[:, c : c + width]
        # packed fields: reinterpret the column back as its own dtype —
        # same itemsize, so the view is legal on any strides and lossless.
        return cols if vdt == dtype else cols.view(vdt)

    def __getitem__(self, name: str) -> np.ndarray:
        return self.field(name)

    def __contains__(self, name: str) -> bool:
        return name in self._where

    def arrays(self) -> tuple[np.ndarray, ...]:
        """All fields, in declaration order (views)."""
        return tuple(self.field(name) for name in self._order)

    # -- mutation ----------------------------------------------------------

    def touch(self) -> None:
        """Declare that field contents changed (invalidates cached sorts)."""
        self.version += 1

    def set_field(self, name: str, values: np.ndarray) -> None:
        """Overwrite one field in place (bumps :attr:`version`)."""
        view = self.field(name)
        view[...] = values
        self.touch()

    # -- fused whole-set operations ---------------------------------------

    def _like(self, blocks: dict[np.dtype, np.ndarray], n: int) -> "RecordSet":
        out = object.__new__(RecordSet)
        out._order = self._order
        out._where = self._where
        out._packed = self._packed
        out._blocks = blocks
        out.n = n
        out.version = 0
        return out

    def _check_fill(self, fill) -> None:
        if self._packed and fill != 0:
            raise ValueError(
                "packed RecordSet supports only fill=0 (fill is applied as "
                "a raw word shared by int and bit-cast float fields)"
            )

    def permute(self, order: np.ndarray, backend=None) -> "RecordSet":
        """Records reordered by ``order`` — one fancy-index per dtype block."""
        order = np.asarray(order)
        if backend is None:
            blocks = {dt: blk[order] for dt, blk in self._blocks.items()}
        else:
            blocks = {
                dt: backend.take_live(blk, order) for dt, blk in self._blocks.items()
            }
        return self._like(blocks, int(order.shape[0]))

    def select(self, mask: np.ndarray, backend=None) -> "RecordSet":
        """Records where ``mask`` is true, packed (the ``compress`` body)."""
        mask = np.asarray(mask, dtype=bool)
        if backend is None:
            blocks = {dt: blk[mask] for dt, blk in self._blocks.items()}
            n = int(mask.sum())
        else:
            blocks = {
                dt: backend.compress(mask, blk) for dt, blk in self._blocks.items()
            }
            n = next(iter(blocks.values())).shape[0] if blocks else int(mask.sum())
        return self._like(blocks, n)

    def take(self, idx: np.ndarray, fill=0, backend=None) -> "RecordSet":
        """Gather ``result[i] = records[idx[i]]``; ``idx == -1`` yields fill.

        This is the ``rar`` body: one fancy-index per dtype block, with the
        fill applied once per block instead of once per field.
        """
        idx = np.asarray(idx, dtype=np.int64)
        live = idx >= 0
        if live.all():
            return self.take_live(idx, backend=backend)
        self._check_fill(fill)
        blocks: dict[np.dtype, np.ndarray] = {}
        if backend is None:
            safe = np.where(live, idx, 0)
            dead = ~live
            for dt, blk in self._blocks.items():
                out = blk[safe]
                out[dead] = fill
                blocks[dt] = out
        else:
            for dt, blk in self._blocks.items():
                blocks[dt] = backend.take(blk, idx, fill=fill)
        return self._like(blocks, int(idx.shape[0]))

    def take_live(self, idx: np.ndarray, backend=None) -> "RecordSet":
        """:meth:`take` for callers that guarantee every index is in range.

        Skips the liveness mask and fill pass — just the row gathers.
        """
        if backend is None:
            blocks = {dt: blk[idx] for dt, blk in self._blocks.items()}
        else:
            blocks = {
                dt: backend.take_live(blk, idx) for dt, blk in self._blocks.items()
            }
        return self._like(blocks, int(np.asarray(idx).shape[0]))

    def scatter(self, dest: np.ndarray, size: int, fill=0, backend=None) -> "RecordSet":
        """Route record *i* to slot ``dest[i]``; ``-1`` discards (``route`` body)."""
        self._check_fill(fill)
        dest = np.asarray(dest, dtype=np.int64)
        blocks: dict[np.dtype, np.ndarray] = {}
        if backend is None:
            live = dest >= 0
            targets = dest[live]
            for dt, blk in self._blocks.items():
                out = np.full((size, blk.shape[1]), fill, dtype=dt)
                out[targets] = blk[live]
                blocks[dt] = out
        else:
            for dt, blk in self._blocks.items():
                blocks[dt] = backend.scatter(blk, dest, size, fill=fill)
        return self._like(blocks, size)

    def argsort(
        self, name: str, memo: "ArgsortMemo | None" = None, backend=None
    ) -> np.ndarray:
        """Stable argsort by one field, memoized on (field, version).

        The stable permutation is unique, so the memo key need not name
        the backend that computed it.
        """
        key = ("recordset", id(self), name, self.version)
        if memo is not None:
            hit = memo.lookup(key)
            if hit is not None:
                return hit
        if backend is None:
            order = np.argsort(self.field(name), kind="stable")
        else:
            order = backend.stable_argsort(self.field(name))
        if memo is not None:
            order.setflags(write=False)  # shared on later hits — keep it honest
            memo.store(key, order)
        return order


class ArgsortMemo:
    """A tiny LRU of recent stable argsorts.

    Raw-array entries are keyed on the key array's identity and guarded by
    an equality check against a stashed copy, so an in-place mutation of
    the keys can never replay a stale permutation — a miss merely costs
    the argsort that would have run anyway.  :class:`RecordSet` entries
    are keyed on ``(id, field, version)`` and need no copy.
    """

    #: process-wide totals across every memo instance, for bench/profile
    #: attribution (drained per point by ``drain_memo_counters``)
    total_hits = 0
    total_misses = 0

    def __init__(self, capacity: int = 4) -> None:
        self.capacity = capacity
        self._slots: dict[tuple, tuple[np.ndarray | None, np.ndarray]] = {}
        self.hits = 0
        self.misses = 0
        _LIVE_MEMOS.add(self)

    def _hit(self) -> None:
        self.hits += 1
        ArgsortMemo.total_hits += 1

    def _miss(self) -> None:
        self.misses += 1
        ArgsortMemo.total_misses += 1

    def order_for(self, keys: np.ndarray, compute=None) -> np.ndarray:
        """Stable argsort of ``keys``, served from the memo when possible.

        ``compute`` is the argsort kernel to run on a miss (a backend's
        ``stable_argsort``); the stable permutation is unique, so hits
        are valid whichever backend stored them.
        """
        keys = np.asarray(keys)
        key = ("array", id(keys), keys.dtype.str, keys.shape)
        slot = self._slots.get(key)
        if slot is not None:
            guard, order = slot
            if guard is not None and np.array_equal(guard, keys):
                self._hit()
                self._slots[key] = self._slots.pop(key)  # refresh LRU position
                return order
        self._miss()
        if compute is None:
            order = np.argsort(keys, kind="stable")
        else:
            order = compute(keys)
        order.setflags(write=False)  # shared on later hits — keep it honest
        self.store(key, order, guard=keys.copy())
        return order

    def lookup(self, key: tuple) -> np.ndarray | None:
        slot = self._slots.get(key)
        if slot is None:
            self._miss()
            return None
        self._hit()
        self._slots[key] = self._slots.pop(key)
        return slot[1]

    def store(self, key: tuple, order: np.ndarray, guard: np.ndarray | None = None) -> None:
        self._slots[key] = (guard, order)
        while len(self._slots) > self.capacity:
            self._slots.pop(next(iter(self._slots)))

    def clear(self) -> None:
        self._slots.clear()


class BufferPool:
    """Reusable output buffers for fill-then-scatter/gather primitives.

    ``route``/``rar`` build their results as ``np.full(shape, fill)`` and
    then overwrite the live slots; in steady-state loops the allocation is
    pure overhead.  ``pool.full(shape, dtype, fill)`` returns the same
    buffer (refilled) on every call with matching shape/dtype.

    Safety contract: a pooled buffer is only valid until the *next*
    ``full`` call with the same shape and dtype.  It is for loop-local
    scratch whose contents are consumed (or copied out) within the
    iteration — exactly the per-round gathers of the fast paths.  Anything
    returned to callers must be a fresh array; use :meth:`persistent` to
    copy out.
    """

    def __init__(self) -> None:
        self._buffers: dict[tuple, np.ndarray] = {}
        _LIVE_POOLS.add(self)

    def full(self, shape, dtype, fill=0) -> np.ndarray:
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        key = (shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        buf[...] = fill
        return buf

    def empty(self, shape, dtype) -> np.ndarray:
        shape = (shape,) if isinstance(shape, int) else tuple(shape)
        key = (shape, np.dtype(dtype).str)
        buf = self._buffers.get(key)
        if buf is None:
            buf = np.empty(shape, dtype=dtype)
            self._buffers[key] = buf
        return buf

    @staticmethod
    def persistent(buf: np.ndarray) -> np.ndarray:
        """Copy a pooled buffer into an ordinary array safe to hand out."""
        return buf.copy()

    def clear(self) -> None:
        self._buffers.clear()


def fused_view(structure) -> RecordSet:
    """A cached :class:`RecordSet` over a search structure's vertex records.

    Packs ``adjacency`` (``(V, d)`` int64), ``level`` (``(V,)`` int64) and
    ``payload`` (``(V, p)`` float64, bit-cast) into ONE block, so a vertex
    gather is a single fancy-index touching one aligned row per vertex —
    the gathers are memory-latency-bound, and one row costs one cache-line
    stream instead of one per dtype block.  The view is cached on the
    structure object and rebuilt if the structure's arrays are replaced;
    in-place mutation of a structure's arrays after first use requires
    dropping the ``_repro_fused`` attribute.
    """
    cached = getattr(structure, "_repro_fused", None)
    if cached is not None:
        view, src = cached
        if (
            src[0] is structure.adjacency
            and src[1] is structure.level
            and src[2] is structure.payload
        ):
            return view
    view = RecordSet(
        adjacency=structure.adjacency,
        level=structure.level,
        payload=structure.payload,
        pack=True,
    )
    try:
        structure._repro_fused = (
            view,
            (structure.adjacency, structure.level, structure.payload),
        )
    except (AttributeError, TypeError):  # frozen/slotted structures: no cache
        pass
    return view
