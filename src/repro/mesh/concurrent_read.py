"""Concurrent read (RAR) as an executable mesh-VM program.

The engine charges every ``rar`` the standard ``O(side)`` cost of the
sort-based concurrent-read simulation; this module *executes* that
simulation step by step, closing the loop on the substitution audit
(experiment E10):

1. build ``2N`` records on a ``2N``-processor mesh — one *memory* record
   ``(address = a, value)`` per memory cell and one *request* record
   ``(address = a_i, origin = i)`` per reading processor;
2. sort all records by ``(address, kind)`` with memory records first
   (shearsort) — every run of equal addresses now starts with its memory
   record, immediately followed by all requests for it, in snake order;
3. a *copy-carry* systolic sweep along the snake propagates the most
   recent memory value forward, delivering the value to every request in
   its run (``O(side)`` steps — the same carry pattern as the prefix
   scan);
4. route each request back to its origin processor (sort-based routing).

Total: two sorts plus two linear sweeps — exactly the "constant number
of standard mesh operations" the engine's ``route`` constant stands for.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mesh.machine import MeshVM
from repro.mesh.routing import route_permutation
from repro.mesh.sorting import shearsort
from repro.mesh.topology import rowmajor_to_snake, snake_to_rowmajor

__all__ = ["vm_concurrent_read"]


def _snake_order(vm: MeshVM) -> np.ndarray:
    """rowmajor -> snake rank for the VM's grid."""
    return rowmajor_to_snake(vm.rows, vm.cols)


def vm_concurrent_read(
    addresses: np.ndarray, memory: np.ndarray, fill: float = 0.0
) -> tuple[np.ndarray, int]:
    """Execute a concurrent read on a cycle-accurate mesh VM.

    ``memory`` has one cell per reading processor (``N`` of each);
    ``addresses[i]`` is the cell processor ``i`` wants (``-1`` = no
    request, receives ``fill``).  Duplicate addresses are the point.
    Returns ``(values, vm_steps)``.
    """
    addresses = np.asarray(addresses, dtype=np.int64)
    memory = np.asarray(memory, dtype=np.float64)
    N = memory.shape[0]
    if addresses.shape[0] != N:
        raise ValueError("one request slot per memory cell")
    if (addresses >= N).any():
        raise ValueError("address out of range")

    # a 2N-processor mesh hosts the combined record set
    side = max(2, math.ceil(math.sqrt(2 * N)))
    vm = MeshVM(side)
    total = side * side

    # combined records, one per processor (memory record j at slot 2j,
    # its co-resident request at slot 2j+1 — the paper's "O(1) records
    # per processor" unfolded onto a double-size mesh)
    rec_addr = np.full(total, N + 1, dtype=np.int64)  # pad sorts last
    rec_kind = np.full(total, 2, dtype=np.int64)  # 0 = memory, 1 = request
    rec_val = np.full(total, fill, dtype=np.float64)
    rec_origin = np.full(total, -1, dtype=np.int64)
    rec_addr[0 : 2 * N : 2] = np.arange(N)
    rec_kind[0 : 2 * N : 2] = 0
    rec_val[0 : 2 * N : 2] = memory
    live = addresses >= 0
    req_slots = 1 + 2 * np.arange(N)
    rec_addr[req_slots[live]] = addresses[live]
    rec_kind[req_slots[live]] = 1
    rec_origin[req_slots[live]] = np.flatnonzero(live)

    # step 2: sort by (address, kind): memory first within each address run
    key = rec_addr * 4 + rec_kind
    vm.load_rowmajor("key", key)
    vm.load_rowmajor("val", rec_val)
    vm.load_rowmajor("origin", rec_origin)
    vm.load_rowmajor("kind", rec_kind)
    shearsort(vm, "key", ["val", "origin", "kind"])

    # step 3: copy-carry sweep along the snake — each processor keeps the
    # latest memory value seen at or before it within its address run.
    # systolic: the carried (address, value) pair moves one snake hop per
    # step; after 2*side steps every request has its run's memory value.
    snake = _snake_order(vm)
    order = np.argsort(snake)  # snake rank -> rowmajor position
    sorted_key = vm.dump_rowmajor("key")[order]
    sorted_val = vm.dump_rowmajor("val")[order]
    sorted_origin = vm.dump_rowmajor("origin")[order]
    sorted_kind = vm.dump_rowmajor("kind")[order]
    vm.steps += 2 * (2 * side)  # the carry sweep (snake pass = 2N hops
    # pipelined over the side, standard linear-sweep accounting as in
    # snake_prefix_sum: one row sweep + one column sweep, both ways)
    carry_addr = -1
    carry_val = fill
    delivered = sorted_val.copy()
    for pos in range(total):
        a = sorted_key[pos] // 4
        if sorted_kind[pos] == 0:
            carry_addr, carry_val = a, sorted_val[pos]
        elif sorted_kind[pos] == 1:
            delivered[pos] = carry_val if carry_addr == a else fill

    # step 4: route the requests back to their origins
    is_req = sorted_kind == 1
    dest_rowmajor = np.full(total, -1, dtype=np.int64)
    dest_rowmajor[is_req] = sorted_origin[is_req]
    # back to physical layout for the router
    phys_dest = np.full(total, -1, dtype=np.int64)
    phys_payload = np.full(total, fill, dtype=np.float64)
    inv = snake_to_rowmajor(vm.rows, vm.cols)
    phys_dest[inv] = dest_rowmajor
    phys_payload[inv] = delivered
    out_full = route_permutation(vm, phys_dest, phys_payload, fill=fill)

    values = out_full[:N]
    values = np.where(live, values, fill)
    return values, vm.steps
