"""Cycle-accurate SIMD mesh VM.

A ``rows x cols`` grid of processors, each holding named registers (one
word per register).  The only way data moves is :meth:`MeshVM.shift`: every
processor simultaneously receives a register value from the neighbour in a
given direction (mesh boundary supplies a fill value).  Each ``shift`` call
is one *communication step* and increments :attr:`MeshVM.steps`; local
arithmetic between shifts is free, matching the standard convention that a
mesh step is one communication round plus O(1) local work.

The VM exists to *validate* the counted-primitive engine: the programs in
:mod:`repro.mesh.sorting`, :mod:`repro.mesh.routing` and
:mod:`repro.mesh.scan` implement sorting, permutation routing, prefix scan
and broadcast purely out of ``shift`` steps, and the tests check both that
they compute the same answers as the engine primitives and that their step
counts have the advertised growth (see experiment E10).

Chaos support mirrors the engine's: a
:class:`~repro.mesh.faults.FaultInjector` installed via
:meth:`~repro.mesh.faults.FaultInjector.install_vm` is consulted after
every ``shift``'s data movement (``vm_*`` fault kinds: flipped words,
dropped/stuck links, corrupted boundary fill, double-pumped steps), and a
**paranoid** VM re-verifies each step's received words against the link
transfer — the step-level analogue of the engine's primitive-boundary
checks, raising :class:`~repro.mesh.faults.InvariantViolation` at the
earliest possible point.  With no injector installed the hook costs one
attribute check and the VM is byte-identical to a plain run.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.faults import _words_equal, invariant, paranoid_default

__all__ = ["MeshVM", "DIRECTIONS"]

#: direction name -> (row delta, col delta) of the neighbour data arrives FROM
DIRECTIONS = {
    "left": (0, -1),
    "right": (0, 1),
    "up": (-1, 0),
    "down": (1, 0),
}


class MeshVM:
    """A stepwise-simulated mesh of processors."""

    def __init__(
        self, rows: int, cols: int | None = None, *, paranoid: bool | None = None
    ) -> None:
        if cols is None:
            cols = rows
        if rows < 1 or cols < 1:
            raise ValueError(f"VM shape must be positive, got {rows}x{cols}")
        self.rows = rows
        self.cols = cols
        self.registers: dict[str, np.ndarray] = {}
        #: communication steps executed so far
        self.steps = 0
        #: optional FaultInjector (see faults.FaultInjector.install_vm)
        self.faults = None
        #: verify every step's received words against the link transfer and
        #: run the VM programs' phase-boundary checks (REPRO_PARANOID)
        self.paranoid = paranoid_default() if paranoid is None else bool(paranoid)

    # -- register file ------------------------------------------------------

    def alloc(self, name: str, values=0.0, dtype=None) -> np.ndarray:
        """Create (or overwrite) a register grid, one word per processor."""
        arr = np.asarray(values)
        if arr.ndim == 0:
            grid = np.full((self.rows, self.cols), arr, dtype=dtype or arr.dtype)
        else:
            if arr.size != self.rows * self.cols:
                raise ValueError(
                    f"register {name!r}: {arr.size} values cannot fill the "
                    f"{self.rows}x{self.cols} grid "
                    f"({self.rows * self.cols} processors)"
                )
            grid = np.array(arr, dtype=dtype or arr.dtype).reshape(self.rows, self.cols)
        self.registers[name] = grid
        return grid

    def load_rowmajor(self, name: str, flat: np.ndarray, fill=0) -> np.ndarray:
        """Load a flat record array into a register, row-major, padding with fill."""
        flat = np.asarray(flat)
        if flat.shape[0] > self.rows * self.cols:
            raise ValueError("too many records for the VM grid")
        grid = np.full(self.rows * self.cols, fill, dtype=flat.dtype)
        grid[: flat.shape[0]] = flat
        return self.alloc(name, grid.reshape(self.rows, self.cols))

    def __getitem__(self, name: str) -> np.ndarray:
        return self.registers[name]

    def __setitem__(self, name: str, grid: np.ndarray) -> None:
        grid = np.asarray(grid)
        if grid.shape != (self.rows, self.cols):
            raise ValueError(f"register shape {grid.shape} != grid {(self.rows, self.cols)}")
        self.registers[name] = grid

    def dump_rowmajor(self, name: str, count: int | None = None) -> np.ndarray:
        flat = self.registers[name].ravel().copy()
        return flat if count is None else flat[:count]

    # -- the one communication primitive -------------------------------------

    def _shifted(self, grid: np.ndarray, direction: str, fill=0) -> np.ndarray:
        """Data movement of one shift, with no step charge."""
        out = np.full_like(grid, fill)
        if direction == "left":
            out[:, 1:] = grid[:, :-1]
        elif direction == "right":
            out[:, :-1] = grid[:, 1:]
        elif direction == "up":
            out[1:, :] = grid[:-1, :]
        else:  # down
            out[:-1, :] = grid[1:, :]
        return out

    def shift(self, name: str, direction: str, fill=0) -> np.ndarray:
        """One communication step: receive ``name`` from the ``direction`` neighbour.

        Returns the received grid (does not overwrite the register).  E.g.
        ``shift('x', 'left')`` gives each processor its left neighbour's
        ``x``; column 0 receives ``fill``.
        """
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}")
        grid = self.registers[name]
        self.steps += 1
        out = self._shifted(grid, direction, fill)
        if self.faults is not None:
            (out,) = self._faulted([out], [grid], [name], direction, fill)
        return out

    def shift_many(self, names: list[str], direction: str, fill=0) -> list[np.ndarray]:
        """Shift several registers in one communication step.

        A mesh step moves O(1) words per link; we allow a small record
        (key + a few payload words) to ride together, as the cost-model
        constants assume.  The shared step is charged exactly once, up
        front, so an observer reading :attr:`steps` mid-call (fault
        hooks, tracing) never sees a transient count.
        """
        if len(names) > 8:
            raise ValueError("a record of more than 8 words cannot move in one step")
        if not names:
            return []
        if direction not in DIRECTIONS:
            raise ValueError(f"unknown direction {direction!r}")
        grids = [self.registers[name] for name in names]
        self.steps += 1
        outs = [self._shifted(grid, direction, fill) for grid in grids]
        if self.faults is not None:
            outs = self._faulted(outs, grids, names, direction, fill)
        return outs

    def _faulted(self, outs, grids, names, direction, fill) -> list[np.ndarray]:
        """Run the fault hook on one step's received grids; paranoid VMs
        then re-verify the delivery against the link transfer.

        The check is the VM's step-level integrity boundary: injection
        happens first, verification second, so a paranoid VM detects an
        injected fault at the very step it corrupts (cf. the engine's
        inject-then-check primitive boundaries).  It is a host-side read:
        zero extra steps, no output changes on a clean delivery — and it
        only runs when an injector is installed, because recomputing the
        same pure ``_shifted`` with no fault layer in between can never
        disagree with itself.
        """
        moved = outs
        outs = self.faults.on_vm_shift(self, outs, grids, names, direction, fill)
        if self.paranoid:
            for name, clean, received in zip(names, moved, outs):
                if not _words_equal(clean, received):
                    raise invariant(
                        "vm:shift:integrity",
                        f"register {name!r} received words differing from "
                        f"the {direction!r} link transfer at step {self.steps}",
                    )
        return outs
