"""Mesh geometry: shapes, rectangular regions, block partitions, indexings.

The paper stores a size-``n`` problem on a ``sqrt(n) x sqrt(n)`` mesh and
repeatedly partitions it into grids of square submeshes (``B_i``-submeshes,
``delta``-submeshes).  This module is the pure-geometry layer: no data, no
costs, just coordinates.

Two linearizations are used throughout:

* **row-major** order — the default order in which a region's records are
  held in numpy arrays;
* **snake** (boustrophedon) order — the order in which mesh sorting
  algorithms rank elements (row 0 left-to-right, row 1 right-to-left, ...).
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

__all__ = [
    "MeshShape",
    "RegionSpec",
    "block_partition",
    "block_spec",
    "snake_index",
    "snake_to_rowmajor",
    "rowmajor_to_snake",
]


@dataclass(frozen=True)
class MeshShape:
    """Dimensions of a (sub)mesh."""

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"mesh shape must be positive, got {self.rows}x{self.cols}")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    @property
    def side(self) -> int:
        """Cost side: the dominant dimension (route/sort distances scale with it)."""
        return max(self.rows, self.cols)

    @classmethod
    def square(cls, side: int) -> "MeshShape":
        return cls(side, side)

    @classmethod
    def for_size(cls, n: int) -> "MeshShape":
        """Smallest square mesh with at least ``n`` processors."""
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        side = math.isqrt(n - 1) + 1  # ceil(sqrt(n)), exactly
        return cls(side, side)


@dataclass(frozen=True)
class RegionSpec:
    """A rectangular region ``[row0, row0+rows) x [col0, col0+cols)`` of a mesh."""

    row0: int
    col0: int
    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError(f"region must be non-empty, got {self}")
        if self.row0 < 0 or self.col0 < 0:
            raise ValueError(f"region origin must be non-negative, got {self}")

    @property
    def size(self) -> int:
        return self.rows * self.cols

    @property
    def side(self) -> int:
        return max(self.rows, self.cols)

    @property
    def row_end(self) -> int:
        return self.row0 + self.rows

    @property
    def col_end(self) -> int:
        return self.col0 + self.cols

    def contains(self, other: "RegionSpec") -> bool:
        return (
            self.row0 <= other.row0
            and self.col0 <= other.col0
            and other.row_end <= self.row_end
            and other.col_end <= self.col_end
        )

    def overlaps(self, other: "RegionSpec") -> bool:
        return not (
            other.row0 >= self.row_end
            or other.row_end <= self.row0
            or other.col0 >= self.col_end
            or other.col_end <= self.col0
        )

    def subregion(self, row0: int, col0: int, rows: int, cols: int) -> "RegionSpec":
        """A sub-rectangle given in coordinates relative to this region."""
        sub = RegionSpec(self.row0 + row0, self.col0 + col0, rows, cols)
        if not self.contains(sub):
            raise ValueError(f"subregion {sub} escapes parent {self}")
        return sub

    def distance_to(self, other: "RegionSpec") -> int:
        """Manhattan span of the bounding box of the two regions.

        This is the mesh distance a record may have to travel when moved
        from anywhere in ``self`` to anywhere in ``other``; inter-region
        transfers are charged proportionally to it.
        """
        row_lo = min(self.row0, other.row0)
        row_hi = max(self.row_end, other.row_end)
        col_lo = min(self.col0, other.col0)
        col_hi = max(self.col_end, other.col_end)
        return (row_hi - row_lo) + (col_hi - col_lo)


_CUTS_CAPACITY = 256
_CUTS_LOCK = threading.Lock()
_CUTS_CACHE: OrderedDict[tuple[int, int], np.ndarray] = OrderedDict()


def _cuts(length: int, parts: int) -> np.ndarray:
    """``np.linspace(0, length, parts + 1).astype(int)``, memoized.

    Grid geometry repeats endlessly in the simulators' inner loops (the
    same region cut into the same grid every call); the cut positions are
    pure functions of ``(length, parts)``.  Cached arrays are read-only.

    The cache is a lock-guarded bounded LRU: sharded dispatcher threads
    hit it concurrently, and eviction drops only the least-recently-used
    entry instead of wholesale-clearing the hot keys.  The linspace for a
    racing miss may be computed twice (outside the lock, to keep the
    critical section tiny) — both computations produce identical
    read-only arrays, so last-write-wins is harmless.
    """
    key = (length, parts)
    with _CUTS_LOCK:
        cuts = _CUTS_CACHE.get(key)
        if cuts is not None:
            _CUTS_CACHE.move_to_end(key)
            return cuts
    cuts = np.linspace(0, length, parts + 1).astype(int)
    cuts.setflags(write=False)
    with _CUTS_LOCK:
        _CUTS_CACHE[key] = cuts
        _CUTS_CACHE.move_to_end(key)
        while len(_CUTS_CACHE) > _CUTS_CAPACITY:
            _CUTS_CACHE.popitem(last=False)
    return cuts


def block_partition(region: RegionSpec, grid_rows: int, grid_cols: int) -> list[RegionSpec]:
    """Partition ``region`` into a ``grid_rows x grid_cols`` grid of blocks.

    Blocks are as equal as possible (remainders spread over the leading
    blocks) and returned in row-major grid order.  This is the paper's
    ``B_i``-partitioning when the divisibility assumption holds, and its
    natural generalization when it does not.
    """
    if grid_rows < 1 or grid_cols < 1:
        raise ValueError("grid dimensions must be positive")
    if grid_rows > region.rows or grid_cols > region.cols:
        raise ValueError(
            f"cannot cut {region.rows}x{region.cols} region into "
            f"{grid_rows}x{grid_cols} non-empty blocks"
        )
    row_cuts = _cuts(region.rows, grid_rows)
    col_cuts = _cuts(region.cols, grid_cols)
    blocks: list[RegionSpec] = []
    for i in range(grid_rows):
        for j in range(grid_cols):
            blocks.append(
                region.subregion(
                    int(row_cuts[i]),
                    int(col_cuts[j]),
                    int(row_cuts[i + 1] - row_cuts[i]),
                    int(col_cuts[j + 1] - col_cuts[j]),
                )
            )
    return blocks


def block_spec(
    region: RegionSpec, grid_rows: int, grid_cols: int, i: int, j: int
) -> RegionSpec:
    """Block ``(i, j)`` of :func:`block_partition`, without materializing
    the whole grid.

    Uses the same linspace cuts, so ``block_spec(r, gr, gc, i, j) ==
    block_partition(r, gr, gc)[i * gc + j]`` exactly; grids of thousands of
    blocks where only one or two are needed (capacity spot-checks on the
    heaviest submesh) cost O(grid side) instead of O(grid size).
    """
    if grid_rows < 1 or grid_cols < 1:
        raise ValueError("grid dimensions must be positive")
    if grid_rows > region.rows or grid_cols > region.cols:
        raise ValueError(
            f"cannot cut {region.rows}x{region.cols} region into "
            f"{grid_rows}x{grid_cols} non-empty blocks"
        )
    if not (0 <= i < grid_rows and 0 <= j < grid_cols):
        raise ValueError(f"block ({i}, {j}) outside {grid_rows}x{grid_cols} grid")
    row_cuts = _cuts(region.rows, grid_rows)
    col_cuts = _cuts(region.cols, grid_cols)
    return region.subregion(
        int(row_cuts[i]),
        int(col_cuts[j]),
        int(row_cuts[i + 1] - row_cuts[i]),
        int(col_cuts[j + 1] - col_cuts[j]),
    )


def snake_index(rows: int, cols: int) -> np.ndarray:
    """Snake rank of each cell, as a ``(rows, cols)`` int array.

    Row 0 runs left-to-right, row 1 right-to-left, and so on.
    """
    idx = np.arange(rows * cols, dtype=np.int64).reshape(rows, cols)
    idx[1::2] = idx[1::2, ::-1]
    return idx


def snake_to_rowmajor(rows: int, cols: int) -> np.ndarray:
    """Permutation ``p`` with ``p[snake_rank] = rowmajor_index``."""
    snake = snake_index(rows, cols).ravel()  # rowmajor -> snake rank
    inv = np.empty_like(snake)
    inv[snake] = np.arange(rows * cols, dtype=np.int64)
    return inv


def rowmajor_to_snake(rows: int, cols: int) -> np.ndarray:
    """Permutation ``q`` with ``q[rowmajor_index] = snake_rank``."""
    return snake_index(rows, cols).ravel()
