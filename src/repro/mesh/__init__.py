"""Mesh-connected computer substrate.

Two levels of fidelity (see DESIGN.md, substitution table):

* :mod:`repro.mesh.engine` — the *counted-primitive engine*: every standard
  mesh operation (sort, route, scan, broadcast, random-access read/write,
  compress) moves real data with numpy and charges its textbook mesh step
  cost, proportional to the side of the submesh it runs on.  All multisearch
  algorithms in :mod:`repro.core` are written against this engine, and the
  engine's global clock is the paper's cost measure.

* :mod:`repro.mesh.machine` — a cycle-accurate SIMD mesh VM on which the
  primitives are implemented step by step (odd-even transposition,
  shearsort, snake prefix-scan, sort-based permutation routing) and
  validated against the engine's charged costs.
"""

from repro.mesh.clock import CostModel, StepClock
from repro.mesh.construct import Construction
from repro.mesh.engine import MeshEngine, Region
from repro.mesh.machine import MeshVM
from repro.mesh.topology import MeshShape, RegionSpec, block_partition, snake_index
from repro.mesh.trace import Tracer, traced

__all__ = [
    "Construction",
    "CostModel",
    "StepClock",
    "MeshEngine",
    "Region",
    "MeshVM",
    "MeshShape",
    "RegionSpec",
    "block_partition",
    "snake_index",
    "Tracer",
    "traced",
]
