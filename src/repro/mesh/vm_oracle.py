"""Differential oracle: cycle-accurate VM programs vs engine primitives.

The VM programs (:mod:`repro.mesh.sorting`, :mod:`repro.mesh.routing`,
:mod:`repro.mesh.scan`) are the executable witnesses behind the engine's
charged costs (E10).  This module closes the loop under *faults*: each
program runs against the corresponding counted-primitive engine answer on
the same inputs, and the outcome is classified the way the chaos harness
classifies engine-level injections:

* ``clean_match`` — no fault injected, VM output equals the engine's;
* ``detected`` — a check raised :class:`~repro.mesh.faults.InvariantViolation`
  (the VM's paranoid step-integrity boundary or a program's phase check);
* ``no_effect`` — a fault was injected but the VM still matched the engine;
* ``silent_corruption`` — the VM completed with output differing from the
  engine's (the blind spot the VM chaos layer exists to surface);
* ``crash`` — the corruption surfaced as an ordinary exception.

Sorting is compared up to tie order: shearsort is not stable, so tied
keys may carry their payloads in any order — key sequences must match
exactly and the (key, payload) pair multisets must be identical.

``python -m repro.bench.chaos`` wires these programs in as the ``vm_*``
scenarios; :func:`run_differential` is the standalone entry point.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.mesh.engine import MeshEngine
from repro.mesh.faults import FaultInjector, FaultPlan, InvariantViolation
from repro.mesh.machine import MeshVM
from repro.mesh.routing import route_permutation
from repro.mesh.scan import broadcast_from_origin, snake_prefix_sum
from repro.mesh.sorting import shearsort
from repro.mesh.topology import rowmajor_to_snake, snake_to_rowmajor

__all__ = [
    "PROGRAMS",
    "DifferentialOutcome",
    "make_inputs",
    "engine_reference",
    "vm_run",
    "compare",
    "run_differential",
]

#: VM programs with an engine-primitive oracle
PROGRAMS = ("sort", "route", "scan", "broadcast")

_ROUTE_FILL = -7  # distinctive fill so dropped deliveries are visible


def make_inputs(program: str, rows: int, cols: int, seed: int) -> dict:
    """Deterministic adversarial-friendly inputs for one program.

    Sort keys are drawn from a small range so ties are common (the
    adversarial case for permutation faults); routing uses a partial
    permutation with dead slots unless the grid is too small to spare any.
    """
    if program not in PROGRAMS:
        raise ValueError(f"unknown VM oracle program {program!r} (know {PROGRAMS})")
    rng = np.random.default_rng(seed)
    n = rows * cols
    inputs: dict = {"program": program, "rows": rows, "cols": cols, "n": n}
    if program == "sort":
        inputs["keys"] = rng.integers(0, max(2, n // 2), n).astype(np.int64)
        inputs["payload"] = rng.integers(0, 1000, n).astype(np.int64)
    elif program == "route":
        dest = rng.permutation(n).astype(np.int64)
        dead = min(n // 3, n - 1)
        if dead:
            dest[rng.choice(n, size=dead, replace=False)] = -1
        inputs["dest"] = dest
        inputs["payload"] = (np.arange(n) + 100).astype(np.int64)
    elif program == "scan":
        inputs["values"] = rng.integers(0, 9, n).astype(np.int64)
    else:  # broadcast
        grid = rng.integers(0, 1000, n).astype(np.int64)
        inputs["grid"] = grid
        inputs["value"] = int(grid[0])
    return inputs


def engine_reference(inputs: dict) -> tuple[np.ndarray, ...]:
    """The counted engine's answer on the same inputs (always clean)."""
    program, n = inputs["program"], inputs["n"]
    region = MeshEngine.for_problem(n).root
    if program == "sort":
        keys, payload = region.sort_by(
            inputs["keys"], inputs["payload"], label="oracle:sort"
        )
        return (keys, payload)
    if program == "route":
        (out,) = region.route(
            inputs["dest"],
            inputs["payload"],
            size=n,
            fill=_ROUTE_FILL,
            label="oracle:route",
        )
        return (out,)
    if program == "scan":
        return (region.scan(inputs["values"], label="oracle:scan"),)
    return (np.int64(region.broadcast(inputs["value"], label="oracle:broadcast")),)


def vm_run(
    inputs: dict,
    injector: FaultInjector | None = None,
    check: bool = False,
) -> tuple[tuple[np.ndarray, ...], int]:
    """Run the VM program; returns ``(outputs, vm_steps)``.

    ``check`` turns on the VM's paranoid step-integrity boundary *and*
    the program's phase checks, so injected faults raise
    :class:`~repro.mesh.faults.InvariantViolation` instead of completing.
    """
    program = inputs["program"]
    rows, cols = inputs["rows"], inputs["cols"]
    vm = MeshVM(rows, cols, paranoid=check)
    if injector is not None:
        injector.install_vm(vm)
    to_snake = rowmajor_to_snake(rows, cols)
    if program == "sort":
        vm.load_rowmajor("key", inputs["keys"])
        vm.load_rowmajor("payload", inputs["payload"])
        shearsort(vm, "key", ["payload"], check=check)
        # read the sorted sequences back in snake order
        keys = np.empty(inputs["n"], dtype=np.int64)
        payload = np.empty(inputs["n"], dtype=np.int64)
        keys[to_snake] = vm.dump_rowmajor("key")
        payload[to_snake] = vm.dump_rowmajor("payload")
        return (keys, payload), vm.steps
    if program == "route":
        out = route_permutation(
            vm, inputs["dest"], inputs["payload"], fill=_ROUTE_FILL, check=check
        )
        return (out,), vm.steps
    if program == "scan":
        # processor j holds logical element #snake_rank(j), so the VM's
        # snake-order scan matches the engine's processor-order scan
        vm.load_rowmajor("v", inputs["values"][to_snake])
        snake_prefix_sum(vm, "v", "p", check=check)
        out = np.empty(inputs["n"], dtype=np.int64)
        out[to_snake] = vm.dump_rowmajor("p")
        return (out,), vm.steps
    # broadcast
    vm.load_rowmajor("s", inputs["grid"])
    broadcast_from_origin(vm, "s", "d", check=check)
    return (vm.dump_rowmajor("d"),), vm.steps


def compare(program: str, vm_out: tuple, ref: tuple) -> bool:
    """Does the VM's answer agree with the engine oracle's?"""
    if program == "sort":
        keys, payload = vm_out
        ref_keys, ref_payload = ref
        if not np.array_equal(keys, ref_keys):
            return False
        pairs = np.lexsort((payload, keys))
        ref_pairs = np.lexsort((ref_payload, ref_keys))
        return bool(
            np.array_equal(payload[pairs], ref_payload[ref_pairs])
        )
    if program == "broadcast":
        (grid,) = vm_out
        (value,) = ref
        return bool((grid == value).all())
    return all(np.array_equal(a, b) for a, b in zip(vm_out, ref))


@dataclass(frozen=True)
class DifferentialOutcome:
    """One differential run's classification (JSON-able via ``to_dict``)."""

    program: str
    rows: int
    cols: int
    seed: int
    outcome: str
    vm_steps: int | None
    injected: list = field(default_factory=list)
    error: dict | None = None

    def to_dict(self) -> dict:
        doc = {
            "program": self.program,
            "rows": self.rows,
            "cols": self.cols,
            "seed": self.seed,
            "outcome": self.outcome,
            "vm_steps": self.vm_steps,
            "injected": list(self.injected),
        }
        if self.error is not None:
            doc["error"] = dict(self.error)
        return doc


def run_differential(
    program: str,
    rows: int = 8,
    cols: int | None = None,
    seed: int = 1,
    plans: tuple[FaultPlan, ...] = (),
    check: bool = True,
) -> DifferentialOutcome:
    """Run one VM program against its engine oracle, optionally under faults."""
    if cols is None:
        cols = rows
    inputs = make_inputs(program, rows, cols, seed)
    ref = engine_reference(inputs)
    injector = FaultInjector(*plans) if plans else None
    try:
        out, steps = vm_run(inputs, injector=injector, check=check)
    except InvariantViolation as exc:
        return DifferentialOutcome(
            program, rows, cols, seed, "detected", None,
            injected=injector.log() if injector else [],
            error=exc.to_dict(),
        )
    except Exception as exc:  # noqa: BLE001 - classification, not handling
        return DifferentialOutcome(
            program, rows, cols, seed, "crash", None,
            injected=injector.log() if injector else [],
            error={"type": type(exc).__name__, "detail": str(exc)},
        )
    injected = injector.log() if injector else []
    if compare(program, out, ref):
        outcome = "no_effect" if injected else "clean_match"
    else:
        outcome = "silent_corruption"
    return DifferentialOutcome(
        program, rows, cols, seed, outcome, steps, injected=injected
    )
