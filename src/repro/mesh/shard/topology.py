"""Multi-chip mesh geometry: a chip grid of node meshes with off-chip links.

The paper charges one ``sqrt(n) x sqrt(n)`` mesh; real large meshes are
built as a ``k_chip x k_chip`` grid of *chiplets*, each a ``k_node x
k_node`` node mesh, with off-chip links between adjacent chiplets that
are slower and narrower than the on-chip grid (chiplet-network-sim's
``MultiChipMesh`` topology).  :class:`MultiChipMesh` models exactly
that, as pure geometry plus an off-chip cost rule:

* the **global mesh** is the ``(chip_rows * k_node) x (chip_cols *
  k_node)`` node grid — every existing :class:`~repro.mesh.topology.
  RegionSpec` addresses it unchanged;
* each **chiplet** is an aligned ``k_node x k_node`` region of the
  global mesh, so any region decomposes exactly into per-chip
  intersections (:meth:`chips_covering`);
* an **off-chip exchange** costs ``hop * (chip-grid hops)`` for latency
  plus ``volume / (k_node * bandwidth)`` for serialization: a chip
  boundary exposes ``k_node`` link lanes, each moving ``bandwidth``
  records per step (:meth:`exchange_steps`).

The single-chip degenerate case ``chip_rows == chip_cols == 1`` is the
paper's flat mesh: every region is covered by the one chip and no
exchange is ever charged, which is what makes the sharded engine
byte-identical to :class:`~repro.mesh.engine.MeshEngine` there.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.mesh.topology import MeshShape, RegionSpec

__all__ = ["XChipCost", "MultiChipMesh"]


@dataclass(frozen=True)
class XChipCost:
    """Cost constants of one off-chip link.

    ``hop`` is the per-chip-grid-hop latency of an exchange (off-chip
    SerDes crossings are much slower than the on-chip grid's unit step);
    ``bandwidth`` is the number of records one boundary lane moves per
    step (< 1 models a link narrower than the on-chip channel).
    """

    hop: float = 4.0
    bandwidth: float = 1.0

    def __post_init__(self) -> None:
        if self.hop < 0:
            raise ValueError(f"off-chip hop cost must be >= 0, got {self.hop}")
        if self.bandwidth <= 0:
            raise ValueError(
                f"off-chip bandwidth must be positive, got {self.bandwidth}"
            )


@dataclass(frozen=True)
class MultiChipMesh:
    """A ``chip_rows x chip_cols`` grid of ``k_node x k_node`` chiplets."""

    chip_rows: int
    chip_cols: int
    k_node: int
    xchip: XChipCost = XChipCost()

    def __post_init__(self) -> None:
        if self.chip_rows < 1 or self.chip_cols < 1:
            raise ValueError(
                f"chip grid must be positive, got {self.chip_rows}x{self.chip_cols}"
            )
        if self.k_node < 1:
            raise ValueError(f"k_node must be >= 1, got {self.k_node}")

    @classmethod
    def square(cls, k_chip: int, k_node: int, xchip: XChipCost | None = None) -> "MultiChipMesh":
        return cls(k_chip, k_chip, k_node, xchip or XChipCost())

    @classmethod
    def for_problem(
        cls,
        n: int,
        chip_rows: int = 1,
        chip_cols: int | None = None,
        xchip: XChipCost | None = None,
    ) -> "MultiChipMesh":
        """Smallest multi-chip mesh of the given chip grid holding ``n`` records.

        The *global* side matches :meth:`MeshShape.for_size` rounded up
        to a multiple of the chip grid, so the chip partition stays
        exact.
        """
        if chip_cols is None:
            chip_cols = chip_rows
        side = MeshShape.for_size(max(1, n)).side
        grid = max(chip_rows, chip_cols)
        k_node = max(1, math.ceil(side / grid))
        return cls(chip_rows, chip_cols, k_node, xchip or XChipCost())

    # -- global geometry ---------------------------------------------------

    @property
    def shape(self) -> MeshShape:
        """The global node mesh every ``RegionSpec`` addresses."""
        return MeshShape(self.chip_rows * self.k_node, self.chip_cols * self.k_node)

    @property
    def k_chip(self) -> int:
        """Chip-grid side (cost-dominant dimension of the chip grid)."""
        return max(self.chip_rows, self.chip_cols)

    @property
    def num_chips(self) -> int:
        return self.chip_rows * self.chip_cols

    def chip_spec(self, ci: int, cj: int) -> RegionSpec:
        """Chiplet ``(ci, cj)``'s aligned region of the global mesh."""
        if not (0 <= ci < self.chip_rows and 0 <= cj < self.chip_cols):
            raise ValueError(
                f"chip ({ci}, {cj}) outside {self.chip_rows}x{self.chip_cols} grid"
            )
        k = self.k_node
        return RegionSpec(ci * k, cj * k, k, k)

    def chip_specs(self) -> list[RegionSpec]:
        """All chiplet regions, row-major chip-grid order."""
        return [
            self.chip_spec(ci, cj)
            for ci in range((self.chip_rows))
            for cj in range(self.chip_cols)
        ]

    # -- region decomposition ----------------------------------------------

    def chip_bbox(self, spec: RegionSpec) -> tuple[int, int, int, int]:
        """Inclusive chip-grid bounding box ``(ci_lo, ci_hi, cj_lo, cj_hi)``."""
        k = self.k_node
        if spec.row_end > self.chip_rows * k or spec.col_end > self.chip_cols * k:
            raise ValueError(f"region {spec} escapes global mesh {self.shape}")
        return (
            spec.row0 // k,
            (spec.row_end - 1) // k,
            spec.col0 // k,
            (spec.col_end - 1) // k,
        )

    def chips_covering(
        self, spec: RegionSpec
    ) -> list[tuple[int, int, RegionSpec]]:
        """Chiplets ``spec`` touches, with the exact per-chip intersections.

        The intersections partition ``spec`` (chip regions tile the
        global mesh), row-major chip order.
        """
        ci_lo, ci_hi, cj_lo, cj_hi = self.chip_bbox(spec)
        out: list[tuple[int, int, RegionSpec]] = []
        k = self.k_node
        for ci in range(ci_lo, ci_hi + 1):
            for cj in range(cj_lo, cj_hi + 1):
                row0 = max(spec.row0, ci * k)
                col0 = max(spec.col0, cj * k)
                row_end = min(spec.row_end, (ci + 1) * k)
                col_end = min(spec.col_end, (cj + 1) * k)
                out.append(
                    (ci, cj, RegionSpec(row0, col0, row_end - row0, col_end - col0))
                )
        return out

    def chip_span(self, *specs: RegionSpec) -> int:
        """Chip-grid Manhattan span of the union bounding box of ``specs``.

        The off-chip analogue of :meth:`RegionSpec.distance_to`: the
        number of chip-grid hops an exchange over these regions crosses.
        Zero when every region lives on one chiplet — no off-chip link
        is touched.
        """
        if not specs:
            raise ValueError("need at least one region")
        boxes = [self.chip_bbox(s) for s in specs]
        ci_lo = min(b[0] for b in boxes)
        ci_hi = max(b[1] for b in boxes)
        cj_lo = min(b[2] for b in boxes)
        cj_hi = max(b[3] for b in boxes)
        return (ci_hi - ci_lo) + (cj_hi - cj_lo)

    # -- off-chip cost rule --------------------------------------------------

    def exchange_steps(self, hops: int, volume: int) -> float:
        """Steps one off-chip exchange costs: latency + serialization.

        ``hop * hops`` latency for crossing ``hops`` chip boundaries,
        plus ``volume / (k_node * bandwidth)`` to serialize ``volume``
        records through a boundary's ``k_node`` lanes.  Zero when
        ``hops`` is zero: an exchange inside one chiplet is on-chip and
        already charged by the intra-chip phase.
        """
        if hops <= 0:
            return 0.0
        return self.xchip.hop * hops + volume / (self.k_node * self.xchip.bandwidth)
