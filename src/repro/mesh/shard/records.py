"""Sharded record storage: one store per chiplet, primitives decomposed.

A :class:`ShardedRecordSet` partitions ``n`` records (named column
arrays) across one :class:`ShardStore` per chiplet of a
:class:`~repro.mesh.shard.topology.MultiChipMesh`, in contiguous
row-index slices (chip ``0``'s shard holds the first cut, row-major chip
order) — the sharded analogue of the flat engine's "record *i* lives on
processor *i*" convention.

Two store implementations sit behind the same interface:

* :class:`InProcessShard` — plain per-shard numpy arrays (the default);
* :class:`ProcessShard` — the same operations executed in a
  spawn-context child process over a duplex pipe, so a sweep's record
  storage can exceed one process's address space.  Dillabaugh's
  external-memory path-traversal layouts (PAPERS.md) motivate keeping
  each shard's columns blocked behind a narrow interface: the host only
  ever sees whole-shard gets and per-shard orders, never random rows.

Primitives decompose into **intra-chip phases** (every shard works
concurrently — charged per chiplet under a ``clock.parallel()``
section) plus **inter-chip exchanges** (charged under ``xchip:*``
labels via :meth:`MultiChipMesh.exchange_steps`):

* :meth:`sort_by` — per-shard stable local sort, then a merge exchange:
  because shards are contiguous index slices and the local sorts are
  stable, a stable argsort over the concatenated per-shard runs *is*
  the global stable order, so the sharded sort is byte-identical to
  sorting the flat arrays;
* :meth:`scan` — per-shard local scan plus an exchange of one partial
  per shard (exact for integer operands; float scans re-associate
  across shard boundaries, which IEEE addition does not forgive);
* :meth:`route` — per-shard scatter through a global destination
  permutation, exchanging exactly the records that cross a chip
  boundary;
* :meth:`gather` — materialize columns on the host (the exchange
  network drains every shard).

Every inter-chip exchange passes through the installed
:class:`~repro.mesh.faults.FaultInjector`'s off-chip hook
(``xchip_drop`` / ``xchip_corrupt``) *before* the merge-point paranoid
checks, which assert record-count conservation, key multiset
conservation, and merged sortedness — so a lossy or noisy off-chip link
is caught at the earliest boundary, exactly like the flat engine's
primitive faults.
"""

from __future__ import annotations

import os
import pathlib
from multiprocessing import get_context
from typing import Sequence

import numpy as np

from repro.mesh.faults import invariant
from repro.mesh.shard.engine import ShardedMeshEngine
from repro.mesh.shard.topology import MultiChipMesh
from repro.mesh.topology import _cuts
from repro.mesh.trace import traced

__all__ = ["ShardStore", "InProcessShard", "ProcessShard", "ShardedRecordSet"]

_SCAN_OPS = {"add": np.add, "max": np.maximum, "min": np.minimum}


class ShardStore:
    """One shard's column storage: the narrow per-chiplet interface."""

    def put(self, columns: dict[str, np.ndarray]) -> None:
        raise NotImplementedError

    def get(self, names: Sequence[str] | None = None) -> dict[str, np.ndarray]:
        raise NotImplementedError

    def count(self) -> int:
        raise NotImplementedError

    def names(self) -> tuple[str, ...]:
        raise NotImplementedError

    def stable_order(self, key: str) -> np.ndarray:
        """Stable argsort of the shard's ``key`` column."""
        raise NotImplementedError

    def take(self, order: np.ndarray) -> None:
        """Apply one permutation/selection to every column in place."""
        raise NotImplementedError

    def local_scan(self, key: str, op: str = "add") -> np.ndarray:
        """Inclusive scan of the shard's ``key`` column."""
        raise NotImplementedError

    def close(self) -> None:
        pass


def _check_columns(columns: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
    cols = {str(k): np.asarray(v) for k, v in columns.items()}
    if not cols:
        raise ValueError("need at least one column")
    lengths = {k: int(v.shape[0]) for k, v in cols.items()}
    if len(set(lengths.values())) > 1:
        raise ValueError(f"columns must have equal length, got {lengths}")
    return cols


class InProcessShard(ShardStore):
    """A shard held as plain numpy arrays in the host process."""

    def __init__(self) -> None:
        self._columns: dict[str, np.ndarray] = {}
        self._count = 0

    def put(self, columns: dict[str, np.ndarray]) -> None:
        cols = _check_columns(columns)
        self._columns = {k: np.array(v) for k, v in cols.items()}
        self._count = int(next(iter(cols.values())).shape[0])

    def get(self, names: Sequence[str] | None = None) -> dict[str, np.ndarray]:
        picked = self._columns if names is None else {n: self._columns[n] for n in names}
        return {k: np.array(v) for k, v in picked.items()}

    def count(self) -> int:
        return self._count

    def names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def stable_order(self, key: str) -> np.ndarray:
        return np.argsort(self._columns[key], kind="stable")

    def take(self, order: np.ndarray) -> None:
        order = np.asarray(order)
        self._columns = {k: v[order] for k, v in self._columns.items()}
        self._count = int(order.shape[0])

    def local_scan(self, key: str, op: str = "add") -> np.ndarray:
        return _SCAN_OPS[op].accumulate(self._columns[key])


# -- process-backed shard ----------------------------------------------------


def _ensure_child_path() -> None:
    """Make ``repro`` importable in spawned shard processes."""
    import repro

    src = str(pathlib.Path(repro.__file__).resolve().parents[1])
    parts = [src]
    for part in os.environ.get("PYTHONPATH", "").split(os.pathsep):
        if part and part not in parts:
            parts.append(part)
    os.environ["PYTHONPATH"] = os.pathsep.join(parts)


def _shard_worker_main(conn) -> None:
    """Child entry: an :class:`InProcessShard` driven over the pipe."""
    store = InProcessShard()
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        op, args = msg[0], msg[1:]
        if op == "close":
            break
        try:
            result = getattr(store, op)(*args)
        except Exception as exc:  # noqa: BLE001 - report, stay alive
            conn.send(("err", f"{type(exc).__name__}: {exc}"))
            continue
        conn.send(("ok", result))
    conn.close()


class ProcessShard(ShardStore):
    """A shard living in its own spawn-context process.

    Same interface and byte-identical results as
    :class:`InProcessShard` (the child *runs* one); columns travel
    pickled over a duplex pipe, so the shard's memory belongs to the
    child's address space, not the host's.
    """

    def __init__(self, mp_context: str = "spawn") -> None:
        _ensure_child_path()
        ctx = get_context(mp_context)
        self._conn, child_conn = ctx.Pipe(duplex=True)
        self._proc = ctx.Process(
            target=_shard_worker_main, args=(child_conn,), daemon=True,
            name="shard-store",
        )
        self._proc.start()
        child_conn.close()

    def _call(self, op: str, *args):
        if self._proc is None:
            raise RuntimeError("ProcessShard is closed")
        self._conn.send((op, *args))
        tag, payload = self._conn.recv()
        if tag == "err":
            raise RuntimeError(f"shard process failed on {op}: {payload}")
        return payload

    def put(self, columns: dict[str, np.ndarray]) -> None:
        self._call("put", {k: np.asarray(v) for k, v in columns.items()})

    def get(self, names: Sequence[str] | None = None) -> dict[str, np.ndarray]:
        return self._call("get", None if names is None else tuple(names))

    def count(self) -> int:
        return self._call("count")

    def names(self) -> tuple[str, ...]:
        return self._call("names")

    def stable_order(self, key: str) -> np.ndarray:
        return self._call("stable_order", key)

    def take(self, order: np.ndarray) -> None:
        self._call("take", np.asarray(order))

    def local_scan(self, key: str, op: str = "add") -> np.ndarray:
        return self._call("local_scan", key, op)

    def close(self) -> None:
        if self._proc is None:
            return
        try:
            self._conn.send(("close",))
        except (BrokenPipeError, OSError):
            pass
        self._proc.join(timeout=5.0)
        if self._proc.is_alive():
            self._proc.kill()
            self._proc.join()
        self._conn.close()
        self._proc = None


# -- the sharded record set ---------------------------------------------------


class ShardedRecordSet:
    """Records partitioned across one store per chiplet.

    Parameters
    ----------
    columns:
        Named equal-length record arrays; row ``i`` is record ``i``.
    mesh:
        The multi-chip topology; one shard per chiplet, record cuts as
        equal as possible (``n < num_chips`` leaves trailing shards
        empty).
    engine:
        Optional :class:`ShardedMeshEngine` over ``mesh``; when given,
        every operation charges its clock (intra-chip phases in
        parallel sections, exchanges under ``xchip:*``), its paranoid
        flag arms the per-shard and merge-point checks, and its
        installed fault injector's off-chip hook fires on every
        exchange.  Without an engine this is a pure storage layer.
    process:
        Back each shard with a :class:`ProcessShard` child process
        instead of in-process arrays.
    """

    def __init__(
        self,
        columns: dict[str, np.ndarray],
        mesh: MultiChipMesh,
        engine: ShardedMeshEngine | None = None,
        process: bool = False,
    ) -> None:
        cols = _check_columns(columns)
        if engine is not None and engine.chips != mesh:
            raise ValueError(
                f"engine topology {engine.chips} does not match mesh {mesh}"
            )
        self.mesh = mesh
        self.engine = engine
        self.n = int(next(iter(cols.values())).shape[0])
        self.column_names = tuple(cols)
        self._chip_ids = [
            (ci, cj) for ci in range(mesh.chip_rows) for cj in range(mesh.chip_cols)
        ]
        cuts = _cuts(self.n, mesh.num_chips) if self.n >= 1 else None
        self.shards: list[ShardStore] = []
        for s in range(mesh.num_chips):
            store: ShardStore = ProcessShard() if process else InProcessShard()
            lo, hi = (int(cuts[s]), int(cuts[s + 1])) if cuts is not None else (0, 0)
            store.put({k: v[lo:hi] for k, v in cols.items()})
            self.shards.append(store)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        for store in self.shards:
            store.close()

    def __enter__(self) -> "ShardedRecordSet":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def __len__(self) -> int:
        return self.n

    @property
    def num_shards(self) -> int:
        return self.mesh.num_chips

    def shard_counts(self) -> list[int]:
        return [store.count() for store in self.shards]

    # -- charging helpers --------------------------------------------------

    def _charge_intra(self, constant: float, label: str) -> None:
        """Charge one intra-chip phase: every chiplet works concurrently."""
        eng = self.engine
        if eng is None:
            return
        if self.num_shards == 1:
            eng.clock.charge(constant * self.mesh.k_node, label, volume=self.n)
            return
        counts = self.shard_counts()
        with eng.clock.parallel() as section:
            for (ci, cj), cnt in zip(self._chip_ids, counts):
                with section.branch():
                    with traced(eng.clock, f"chip:{ci},{cj}"):
                        eng.clock.charge(
                            constant * self.mesh.k_node, label, volume=cnt
                        )

    def _charge_exchange(self, label: str, volume: int, hops: int | None = None) -> None:
        """Charge one inter-chip exchange under ``xchip:<label>``."""
        eng = self.engine
        if eng is None or self.num_shards == 1:
            return
        if hops is None:
            hops = (self.mesh.chip_rows - 1) + (self.mesh.chip_cols - 1)
        eng.clock.charge(
            self.mesh.exchange_steps(hops, volume), f"xchip:{label}", volume=volume
        )

    # -- exchange boundary (faults + merge-point paranoia) -----------------

    def _exchange(
        self,
        arrays: tuple[np.ndarray, ...],
        label: str,
        expect_n: int,
        key_index: int | None = None,
        sent_key: np.ndarray | None = None,
        sorted_key: bool = False,
        sent_arrays: tuple[np.ndarray, ...] | None = None,
        sent_multisets: tuple[np.ndarray, ...] | None = None,
    ) -> tuple[np.ndarray, ...]:
        """Pass arrays across the off-chip links: faults, then paranoia.

        The merge-point checks (zero mesh steps, host reads only):
        record-count conservation across every exchanged array, key
        multiset conservation against the pre-exchange key, and — for
        sort merges — non-decreasing arrival order.
        """
        eng = self.engine
        if eng is None or self.num_shards == 1:
            return arrays
        site = f"xchip:{label}"
        if eng.faults is not None:
            arrays = eng.faults.on_xchip_exchange(arrays, site)
        if eng.paranoid:
            for i, a in enumerate(arrays):
                if int(a.shape[0]) != expect_n:
                    raise invariant(
                        "xchip:merge",
                        f"array {i} arrived with {int(a.shape[0])} of "
                        f"{expect_n} records at {site}",
                        clock=eng.clock,
                    )
            if sent_arrays is not None:
                # host materializations hold both sides of the exchange,
                # so full content integrity is checkable (and catches
                # corruption in any column, not just a declared key)
                for i, (a, s) in enumerate(zip(arrays, sent_arrays)):
                    if a.shape != s.shape or a.tobytes() != s.tobytes():
                        raise invariant(
                            "xchip:merge",
                            f"array {i} content changed crossing off-chip "
                            f"links at {site}",
                            clock=eng.clock,
                        )
            if sent_multisets is not None:
                # per-column multiset conservation: each chip checksums
                # what it sends, so the merge point can verify values
                # survived the links in any column, order aside (exact
                # value compare — NaN payloads would false-positive here)
                for i, (a, s) in enumerate(zip(arrays, sent_multisets)):
                    if not np.array_equal(
                        np.sort(np.asarray(a).ravel(), kind="stable"),
                        np.sort(np.asarray(s).ravel(), kind="stable"),
                    ):
                        raise invariant(
                            "xchip:merge",
                            f"array {i} value multiset changed crossing "
                            f"off-chip links at {site}",
                            clock=eng.clock,
                        )
            if key_index is not None and sent_key is not None:
                arrived = arrays[key_index]
                if not np.array_equal(
                    np.sort(np.asarray(arrived), kind="stable"),
                    np.sort(np.asarray(sent_key), kind="stable"),
                ):
                    raise invariant(
                        "xchip:merge",
                        f"key multiset changed crossing off-chip links at {site}",
                        clock=eng.clock,
                    )
                if sorted_key and arrived.shape[0] > 1 and np.any(
                    arrived[1:] < arrived[:-1]
                ):
                    raise invariant(
                        "xchip:merge",
                        f"merged keys not sorted after {site}",
                        clock=eng.clock,
                    )
        return arrays

    # -- host materialization ----------------------------------------------

    def gather(self, names: Sequence[str] | None = None) -> dict[str, np.ndarray]:
        """Concatenate columns across shards (shard order = record order)."""
        names = tuple(names) if names is not None else self.column_names
        parts = [store.get(names) for store in self.shards]
        out = {
            k: np.concatenate([p[k] for p in parts])
            if self.num_shards > 1
            else parts[0][k]
            for k in names
        }
        self._charge_intra(self.engine.clock.cost.transfer if self.engine else 0.0, "shard:gather")
        sent = tuple(out[k] for k in names)
        arrays = self._exchange(
            sent, "gather", expect_n=self.n, sent_arrays=sent
        )
        self._charge_exchange("gather", volume=self.n)
        return dict(zip(names, arrays))

    # -- decomposed primitives ---------------------------------------------

    def sort_by(self, key: str, label: str = "sort") -> None:
        """Stable global sort by ``key``; byte-identical to a flat sort.

        Phase 1 (intra): each shard stable-sorts locally, concurrently.
        Phase 2 (exchange): per-shard sorted runs merge across the
        off-chip links — a stable argsort over the concatenated runs
        reproduces the global stable order exactly, because shards are
        contiguous index slices and the local sorts were stable.
        """
        eng = self.engine
        cost_sort = eng.clock.cost.sort if eng is not None else 0.0
        for store in self.shards:
            store.take(store.stable_order(key))
        self._charge_intra(cost_sort, f"shard:{label}")
        if eng is not None and eng.paranoid:
            for s, store in enumerate(self.shards):
                k = store.get((key,))[key]
                if k.shape[0] > 1 and np.any(k[1:] < k[:-1]):
                    raise invariant(
                        "shard:sorted",
                        f"shard {s} keys not sorted after local {label}",
                        clock=eng.clock,
                    )
        if self.num_shards == 1:
            return
        # merge exchange: keys + every other column travel off-chip
        parts = [store.get() for store in self.shards]
        merged = {
            name: np.concatenate([p[name] for p in parts])
            for name in self.column_names
        }
        order = np.argsort(merged[key], kind="stable")
        sent_key = merged[key][order]
        redistributed = tuple(merged[name][order] for name in self.column_names)
        key_index = self.column_names.index(key)
        redistributed = self._exchange(
            redistributed,
            label,
            expect_n=self.n,
            key_index=key_index,
            sent_key=sent_key,
            sorted_key=True,
            sent_multisets=redistributed,
        )
        self._charge_exchange(label, volume=self.n)
        self._scatter(dict(zip(self.column_names, redistributed)))

    def scan(self, key: str, op: str = "add") -> np.ndarray:
        """Global inclusive scan of ``key`` (exact for integer operands).

        Per-shard local scans run concurrently; one partial per shard
        crosses the off-chip links; each shard then folds the exclusive
        prefix of partials into its local scan.  Float ``add`` scans
        re-associate across shard boundaries — use integer columns when
        bit-exactness against a flat scan matters.
        """
        if op not in _SCAN_OPS:
            raise ValueError(f"unknown scan op {op!r} (know {tuple(_SCAN_OPS)})")
        eng = self.engine
        cost_scan = eng.clock.cost.scan if eng is not None else 0.0
        locals_ = [store.local_scan(key, op) for store in self.shards]
        self._charge_intra(cost_scan, "shard:scan")
        if self.num_shards == 1:
            return locals_[0]
        # one partial per non-empty shard crosses the off-chip links
        sent = np.array([loc[-1] for loc in locals_ if loc.shape[0]])
        (arrived,) = self._exchange(
            (sent,), "scan", expect_n=int(sent.shape[0]), key_index=0, sent_key=sent
        )
        self._charge_exchange("scan", volume=int(sent.shape[0]))
        ufunc = _SCAN_OPS[op]
        out_parts: list[np.ndarray] = []
        carry = None
        ai = 0
        for loc in locals_:
            if loc.shape[0] == 0:
                out_parts.append(loc)
                continue
            if carry is not None:
                loc = ufunc(loc, loc.dtype.type(carry))
            out_parts.append(loc)
            # the next shard folds in the partial as it *arrived* off-chip
            part = arrived[ai] if ai < arrived.shape[0] else loc[-1]
            carry = part if carry is None else ufunc(carry, part)
            ai += 1
        return np.concatenate(out_parts)

    def route(self, targets: str, label: str = "route") -> None:
        """Permute records to the global positions in column ``targets``.

        Intra-chip scatters run concurrently; exactly the records whose
        destination lies on another chiplet cross the off-chip links.
        """
        eng = self.engine
        cost_route = eng.clock.cost.route if eng is not None else 0.0
        self._charge_intra(cost_route, f"shard:{label}")
        parts = [store.get() for store in self.shards]
        merged = {
            name: np.concatenate([p[name] for p in parts])
            if self.num_shards > 1
            else parts[0][name]
            for name in self.column_names
        }
        dest = np.asarray(merged[targets], dtype=np.int64)
        if dest.shape[0] != self.n or (
            self.n and (int(dest.min()) < 0 or int(dest.max()) >= self.n)
        ):
            raise invariant(
                "xchip:route",
                f"targets must be a permutation of [0, {self.n})",
                clock=eng.clock if eng is not None else None,
            )
        out = {
            name: np.empty_like(col) for name, col in merged.items()
        }
        for name, col in merged.items():
            out[name][dest] = col
        # count the records that actually cross a chip boundary
        crossing = 0
        if self.num_shards > 1 and self.n:
            cuts = _cuts(self.n, self.num_shards)
            src_shard = np.searchsorted(cuts[1:], np.arange(self.n), side="right")
            dst_shard = np.searchsorted(cuts[1:], dest, side="right")
            crossing = int(np.count_nonzero(src_shard != dst_shard))
        sent = tuple(out[name] for name in self.column_names)
        arrays = self._exchange(
            sent,
            label,
            expect_n=self.n,
            key_index=self.column_names.index(targets),
            sent_key=out[targets],
            sent_multisets=sent,
        )
        self._charge_exchange(label, volume=crossing)
        self._scatter(dict(zip(self.column_names, arrays)))

    # -- redistribution ----------------------------------------------------

    def _scatter(self, columns: dict[str, np.ndarray]) -> None:
        """Re-partition full columns back into the shards' contiguous cuts."""
        n = int(next(iter(columns.values())).shape[0])
        self.n = n
        cuts = _cuts(n, self.num_shards) if n >= 1 else None
        for s, store in enumerate(self.shards):
            lo, hi = (int(cuts[s]), int(cuts[s + 1])) if cuts is not None else (0, 0)
            store.put({k: v[lo:hi] for k, v in columns.items()})
