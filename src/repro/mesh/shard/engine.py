"""Hierarchical charging engine over a :class:`MultiChipMesh`.

:class:`ShardedMeshEngine` is a :class:`~repro.mesh.engine.MeshEngine`
whose *cost model* knows about chip boundaries.  Data execution is
untouched — every primitive computes byte-identical outputs through the
same kernels — but the charging hooks decompose each flat
``constant * side`` charge the way the hardware would run it:

* a region inside **one chiplet** charges exactly as the flat engine
  does (same steps, same label, same volume) — at ``k_chip == 1`` every
  region is such a region, so charges, trace spans and ``clock.time``
  are byte-identical to the flat engine;
* a region **spanning chiplets** becomes a ``clock.parallel()`` section
  with one branch per covered chiplet (each charging ``constant *
  intersection.side`` inside a ``chip:i,j`` trace span — the chiplets
  run their intra-chip phases concurrently), followed by one
  ``xchip:<label>`` charge for the inter-chip exchange the primitive
  needs to act globally, costed by
  :meth:`MultiChipMesh.exchange_steps`.

Because the decomposition rides the ordinary ``clock.parallel()``
machinery, the tracer's parallel-fold bookkeeping keeps span sums equal
to ``clock.time`` exactly, and :class:`~repro.mesh.profile.CostProfile`
picks the ``xchip:*`` labels up with no changes — ``fraction("xchip:")``
is the off-chip share of a run.
"""

from __future__ import annotations

from repro.mesh.engine import MeshEngine
from repro.mesh.shard.topology import MultiChipMesh, XChipCost
from repro.mesh.topology import RegionSpec
from repro.mesh.trace import traced

__all__ = ["ShardedMeshEngine"]


class ShardedMeshEngine(MeshEngine):
    """A mesh engine charging per-chiplet phases plus off-chip exchanges."""

    def __init__(self, chips: MultiChipMesh, **kwargs) -> None:
        super().__init__(chips.shape, **kwargs)
        self.chips = chips

    @classmethod
    def for_problem(  # type: ignore[override]
        cls,
        n: int,
        chip_rows: int = 1,
        chip_cols: int | None = None,
        xchip: XChipCost | None = None,
        **kwargs,
    ) -> "ShardedMeshEngine":
        """Smallest chip grid of the given shape holding an ``n``-record problem."""
        return cls(
            MultiChipMesh.for_problem(
                n, chip_rows=chip_rows, chip_cols=chip_cols, xchip=xchip
            ),
            **kwargs,
        )

    # -- hierarchical charging ---------------------------------------------

    def charge_primitive(
        self, spec: RegionSpec, constant: float, label: str, volume: int = 0
    ) -> None:
        cover = self.chips.chips_covering(spec)
        if len(cover) == 1:
            # one chiplet covers the region: the flat charge IS the
            # hardware behavior (this is every charge at k_chip == 1)
            super().charge_primitive(spec, constant, label, volume=volume)
            return
        size = spec.size
        with self.clock.parallel() as section:
            for ci, cj, part in cover:
                with section.branch():
                    with traced(self.clock, f"chip:{ci},{cj}"):
                        self.clock.charge(
                            constant * part.side,
                            label,
                            volume=(volume * part.size) // size,
                        )
        hops = self.chips.chip_span(spec)
        self.clock.charge(
            self.chips.exchange_steps(hops, volume),
            f"xchip:{label}",
            volume=volume,
        )

    def charge_phase(
        self, side: int, constant: float, label: str, volume: int = 0,
        extra: float = 0.0,
    ) -> float:
        # phases are root-anchored for covering purposes (clamped to the
        # mesh so non-square chip grids stay in-bounds); a phase whose
        # submeshes fit one chiplet charges flat, a spanning phase
        # decomposes like a spanning primitive
        spec = RegionSpec(
            0, 0, min(side, self.shape.rows), min(side, self.shape.cols)
        )
        cover = self.chips.chips_covering(spec)
        if len(cover) == 1:
            return super().charge_phase(
                side, constant, label, volume=volume, extra=extra
            )
        size = spec.size
        with self.clock.parallel() as section:
            for ci, cj, part in cover:
                with section.branch():
                    with traced(self.clock, f"chip:{ci},{cj}"):
                        self.clock.charge(
                            constant * part.side + extra,
                            label,
                            volume=(volume * part.size) // size,
                        )
        self.clock.charge(
            self.chips.exchange_steps(self.chips.chip_span(spec), volume),
            f"xchip:{label}",
            volume=volume,
        )
        return constant * side + extra

    def charge_transfer(
        self, src: RegionSpec, dst: RegionSpec, label: str, volume: int = 0
    ) -> None:
        hops = self.chips.chip_span(src, dst)
        if hops == 0:
            # source and destination share a chiplet: on-chip transfer
            super().charge_transfer(src, dst, label, volume=volume)
            return
        # drain to the chip boundary, cross off-chip, fill from the boundary
        cost = self.clock.cost.transfer
        with self.clock.parallel() as section:
            for spec in (src, dst):
                with section.branch():
                    self.clock.charge(cost * spec.side, label, volume=volume)
        self.clock.charge(
            self.chips.exchange_steps(hops, volume),
            f"xchip:{label}",
            volume=volume,
        )
