"""Sharded multi-chip mesh: chip-grid topology, hierarchical charging,
and per-chiplet record stores (in-process or process-backed).

See DESIGN.md §9.  The single-chip degenerate case (``chip_rows ==
chip_cols == 1``) is byte-identical — outputs *and* total charged steps
— to the flat :class:`~repro.mesh.engine.MeshEngine`, which is the
property suite's anchor (``tests/shard/``).
"""

from repro.mesh.shard.engine import ShardedMeshEngine
from repro.mesh.shard.records import (
    InProcessShard,
    ProcessShard,
    ShardedRecordSet,
    ShardStore,
)
from repro.mesh.shard.topology import MultiChipMesh, XChipCost

__all__ = [
    "MultiChipMesh",
    "XChipCost",
    "ShardedMeshEngine",
    "ShardStore",
    "InProcessShard",
    "ProcessShard",
    "ShardedRecordSet",
]
