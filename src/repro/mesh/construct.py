"""Modelled mesh cost for structure *construction*.

The paper's applications (Theorem 8, Section 6) build their search
structures — Kirkpatrick subdivision hierarchies, Dobkin–Kirkpatrick hull
hierarchies, interval trees — on the mesh itself, out of the same standard
primitives the queries use: sort the input, scan to rank and pack, route
records to their level, select an independent set, recurse on the smaller
level.  Our builders compute those structures host-side (numpy/scipy), so
until now their trace spans carried wall time only.

:class:`Construction` closes that gap.  It wraps a
:class:`~repro.mesh.engine.MeshEngine` sized for the problem and exposes
*counted* construction primitives — ``sort``, ``argsort``, ``scan``,
``route``, ``broadcast``, ``reduce``, ``local`` and ``independent_set``
(which drives :func:`repro.geometry.independent.greedy_low_degree_independent_set`)
— each charged to the engine's :class:`~repro.mesh.clock.StepClock` at the
textbook cost ``constant * side``.  Per call, ``n=`` selects a square
submesh just large enough for that phase's records, so the per-round
charges of a geometrically shrinking hierarchy sum to ``O(sqrt(n))``
exactly as the paper's construction bound claims (experiment E11).

Charge labels are namespaced ``construct:*`` (``construct:sort``,
``construct:scan``, ``construct:route``, ``construct:broadcast``,
``construct:reduce``, ``construct:local``, ``construct:independent-set``)
so profiles, trace spans and the chaos harness can distinguish
construction work from query work.  Because the primitives run through the
real engine, they inherit the whole cost-discipline stack for free:
``REPRO_TRACE`` span attribution, ``REPRO_PROFILE`` label histograms,
paranoid-mode invariants (including the stable-order check on tied keys)
and fault injection at the same boundaries the queries are attacked at.

Builder contract: a builder takes ``construct=None`` and creates its own
:class:`Construction` when none is given.  All modelled charges are pure
functions of the input sizes — the builder's *outputs* are byte-identical
with or without a construction attached (gated by
``tests/geometry/test_construct.py``).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

import numpy as np

from repro.mesh.engine import MeshEngine, Region
from repro.mesh.trace import traced

__all__ = ["Construction", "CONSTRUCT_LABELS"]

#: every charge label the construction primitives emit (chaos scenarios
#: target these sites; EXPERIMENTS.md documents them)
CONSTRUCT_LABELS = (
    "construct:sort",
    "construct:scan",
    "construct:route",
    "construct:broadcast",
    "construct:reduce",
    "construct:local",
    "construct:independent-set",
)


class Construction:
    """Counted construction primitives charged to one step clock.

    ``Construction(n)`` sizes a square engine for an ``n``-record problem.
    Each primitive accepts ``n=`` to run on a submesh just large enough
    for that many records (side ``ceil(sqrt(n))``, clipped to the engine),
    matching the paper's convention that a phase touching ``m`` records
    pays ``O(sqrt(m))``, not ``O(sqrt(n))``.
    """

    def __init__(
        self,
        n: int,
        engine: MeshEngine | None = None,
        paranoid: bool | None = None,
        backend=None,
    ) -> None:
        if engine is None:
            engine = MeshEngine.for_problem(
                max(int(n), 1), paranoid=paranoid, backend=backend
            )
        self.engine = engine
        self.clock = engine.clock

    @property
    def steps(self) -> float:
        """Total modelled construction steps charged so far."""
        return self.clock.time

    # -- span / parallel plumbing -------------------------------------------

    def span(self, name: str):
        """Span context on this construction's clock (see :func:`traced`)."""
        return traced(self.clock, name)

    @contextmanager
    def parallel(self) -> Iterator:
        """Parallel section: branch charges fold by max (clock semantics).

        Builders wrap independent per-item work (e.g. retriangulating the
        holes of one independent set) in branches; the round then costs
        the *maximum* branch, as it would on a partitioned mesh.
        """
        with self.clock.parallel() as section:
            yield section

    # -- region sizing --------------------------------------------------------

    def region(self, n: int | None = None) -> Region:
        """Square submesh for an ``n``-record phase (whole mesh if None)."""
        if n is None:
            return self.engine.root
        m = max(int(n), 1)
        side = min(self.engine.side, math.isqrt(m - 1) + 1)
        return self.engine.root.subregion(0, 0, side, side)

    # -- counted primitives ---------------------------------------------------

    def sort(
        self, keys, *arrays, n: int | None = None, label: str = "construct:sort"
    ) -> tuple[np.ndarray, ...]:
        """Sort records by key (optimal-sort cost on the phase submesh)."""
        return self.region(n).sort_by(keys, *arrays, label=label)

    def argsort(
        self, keys, n: int | None = None, label: str = "construct:sort"
    ) -> np.ndarray:
        """Stable sort permutation (same cost as :meth:`sort`)."""
        return self.region(n).argsort(keys, label=label)

    def scan(
        self,
        values,
        op: str = "add",
        inclusive: bool = True,
        n: int | None = None,
        label: str = "construct:scan",
    ) -> np.ndarray:
        """Prefix combine in processor order (rank/pack phases)."""
        return self.region(n).scan(values, op=op, inclusive=inclusive, label=label)

    def route(
        self,
        dest,
        *arrays,
        size: int | None = None,
        n: int | None = None,
        label: str = "construct:route",
    ) -> tuple[np.ndarray, ...]:
        """Partial-permutation routing (placing records at their level).

        Default output size covers the largest destination (records pack
        ``capacity`` per processor, so phases with more records than the
        submesh has processors — e.g. ~2n triangles on an n-mesh — fit).
        """
        r = self.region(n)
        dest = np.asarray(dest, dtype=np.int64)
        if size is None:
            top = int(dest.max()) + 1 if dest.size else 0
            size = max(r.size, top)
        return r.route(dest, *arrays, size=size, label=label)

    def broadcast(self, value, n: int | None = None, label: str = "construct:broadcast"):
        """Deliver one word to every processor of the phase submesh."""
        return self.region(n).broadcast(value, label=label)

    def reduce(
        self, values, op: str = "add", n: int | None = None,
        label: str = "construct:reduce",
    ):
        """Global reduction visible everywhere (extreme-point selection)."""
        return self.region(n).reduce(values, op=op, label=label)

    def local(self, steps: int = 1, label: str = "construct:local") -> None:
        """Charge ``steps`` SIMD local steps (side-independent)."""
        self.engine.root.charge_local(steps, label=label)

    def independent_set(
        self,
        neighbors: dict[int, set[int]],
        candidates: set[int],
        max_degree: int = 8,
        seed=0,
        n: int | None = None,
        label: str = "construct:independent-set",
    ) -> list[int]:
        """Bounded-degree independent set, charged at its mesh cost.

        The mesh algorithm ranks candidates by degree (one sort — heavy
        with ties, which is exactly what the stable-order invariant
        guards) and resolves conflicts with a constant number of scans;
        the host-side greedy selection itself is unchanged, ``seed``
        passes straight through so the chosen set is byte-identical to an
        uncounted call.
        """
        count = len(neighbors) if n is None else n
        r = self.region(count)
        if neighbors:
            degrees = np.array(
                [len(neighbors[v]) for v in sorted(neighbors)], dtype=np.int64
            )
            r.argsort(degrees, label=label)
            r.scan(np.ones(degrees.shape[0], dtype=np.int64), label=label)
        from repro.geometry.independent import greedy_low_degree_independent_set

        return greedy_low_degree_independent_set(
            neighbors, candidates, max_degree=max_degree, seed=seed
        )
