"""Deterministic fault injection and paranoid invariant checking.

The paper's correctness story is per-phase: O(1) records per processor,
permutation routing, sortedness after every ``sort``, well-formed graph
structures (Lemmas 1-3).  This module makes those claims *testable under
attack* and *checkable at every boundary*:

* :class:`FaultPlan` / :class:`FaultInjector` — a seeded, declarative
  fault layer the engine consults at primitive boundaries.  It can
  corrupt routed record payloads, perturb sort keys, drop transfer
  batches, and hand adversarial inputs (wild query pointers, NaN keys,
  out-of-range levels) to the core algorithms.  Every injection is
  logged; identical seeds produce identical injection logs, so a chaos
  run is reproducible bit for bit.
* **Paranoid mode** (``REPRO_PARANOID=1`` or ``MeshEngine(...,
  paranoid=True)``) — invariant assertions at every primitive boundary
  (post-``sort`` sortedness, ``route`` scatter integrity, ``transfer``
  batch integrity) and at the phase boundaries of the core algorithms
  (structure/query/splitting well-formedness, re-using
  :mod:`repro.graphs.validate`).  Violations raise a structured
  :class:`InvariantViolation` naming the failing check and the innermost
  trace span path.  All checks are host-side reads: they charge **zero
  mesh steps** and never change outputs, so paranoid runs are
  byte-identical to plain runs (gated by ``tests/test_paranoid.py``).

Injection happens *before* the paranoid check at the same boundary, so a
paranoid engine detects its own injected faults at the earliest possible
point — and a non-paranoid engine shows which corruptions the always-on
validators still catch and which silently propagate
(``python -m repro.bench.chaos``).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.mesh.trace import ambient_tracer

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.mesh.engine import MeshEngine

__all__ = [
    "FAULT_KINDS",
    "ADVERSARIAL_KINDS",
    "VM_FAULT_KINDS",
    "PROCESS_FAULT_KINDS",
    "XCHIP_FAULT_KINDS",
    "FaultPlan",
    "InjectedFault",
    "FaultInjector",
    "InvariantViolation",
    "paranoid_default",
    "current_span_path",
    "invariant",
    "paranoid_boundary",
    "apply_adversarial",
]

#: fault kinds injected at engine primitive boundaries
FAULT_KINDS = (
    "perturb_sort_key",      # break post-sort ordering (sort_by/sort_records/argsort)
    "corrupt_route_payload",  # scramble one routed record's payload
    "drop_transfer",          # truncate a transfer's record batch
)

#: fault kinds applied to a core algorithm's *inputs* (see
#: :func:`apply_adversarial`)
ADVERSARIAL_KINDS = (
    "corrupt_query_pointer",   # point a query at a non-existent vertex
    "nan_query_key",           # non-finite search key
    "corrupt_structure_level",  # out-of-range level value
)

#: fault kinds injected inside the cycle-accurate VM, at the data movement
#: of a single :meth:`repro.mesh.machine.MeshVM.shift` (see
#: :meth:`FaultInjector.on_vm_shift`)
VM_FAULT_KINDS = (
    "vm_flip_word",     # one received register word is flipped after a shift
    "vm_drop_link",     # one link lane delivers stale (stuck) or fill values
    "vm_corrupt_fill",  # the mesh-boundary fill arrives corrupted
    "vm_dup_step",      # the link double-pumps: data moves two hops in one step
)

#: fault kinds applied at the *process* level, inside a serving worker of
#: :mod:`repro.serve.pool` (see :meth:`FaultInjector.on_worker_batch` /
#: :meth:`FaultInjector.on_reply_bytes`) — the failure domains the
#: supervisor exists to survive
PROCESS_FAULT_KINDS = (
    "worker_crash",          # the worker process dies mid-batch (os._exit)
    "worker_hang",           # the worker freezes (SIGSTOP): no reply, no heartbeat
    "worker_slow",           # the worker stalls past the batch deadline, then replies
    "worker_corrupt_reply",  # the reply payload is corrupted in transit
)

#: fault kinds injected on the off-chip links of the sharded multi-chip
#: mesh (:mod:`repro.mesh.shard`), at inter-shard exchange boundaries
#: (see :meth:`FaultInjector.on_xchip_exchange`)
XCHIP_FAULT_KINDS = (
    "xchip_drop",     # an off-chip link loses a suffix of the exchanged records
    "xchip_corrupt",  # one exchanged word is corrupted crossing a chip boundary
)


def paranoid_default() -> bool:
    """Process-wide default for :class:`MeshEngine`'s ``paranoid`` flag.

    Controlled by ``REPRO_PARANOID`` (unset/``0``/``false``/``off`` =
    disabled).  Unlike ``REPRO_FAST_PATH`` the default is **off**:
    paranoid mode trades host time for per-boundary invariant checks.
    """
    val = os.environ.get("REPRO_PARANOID", "0").strip().lower()
    return val not in ("0", "false", "off", "no", "")


class InvariantViolation(AssertionError):
    """A structural invariant failed at a primitive or phase boundary.

    Structured fields:

    * ``check`` — short name of the failing invariant (e.g.
      ``"sort:sorted"``, ``"route:payload"``, ``"hierdag:entry"``);
    * ``span_path`` — names of the open trace spans, outermost first
      (empty when no tracer is attached);
    * ``detail`` — the human-readable reason.
    """

    def __init__(
        self, check: str, detail: str, span_path: Sequence[str] = ()
    ) -> None:
        self.check = str(check)
        self.detail = str(detail)
        self.span_path = tuple(str(s) for s in span_path)
        where = f" [span {'>'.join(self.span_path)}]" if self.span_path else ""
        super().__init__(f"invariant {self.check}: {self.detail}{where}")

    def to_dict(self) -> dict:
        return {
            "check": self.check,
            "detail": self.detail,
            "span_path": list(self.span_path),
        }


def current_span_path(clock=None) -> tuple[str, ...]:
    """Names of the open trace spans, outermost first.

    Resolution mirrors :func:`repro.mesh.trace.traced`: the clock's
    attached tracer first, then the ambient tracer.  Returns ``()`` when
    tracing is off — violations still raise, just without a span path.
    """
    tracer = getattr(clock, "tracer", None) if clock is not None else None
    if tracer is None:
        tracer = ambient_tracer()
    if tracer is None:
        return ()
    return tracer.current_path


def invariant(check: str, detail: str, clock=None) -> InvariantViolation:
    """Build an :class:`InvariantViolation` tagged with the open span path."""
    return InvariantViolation(check, detail, span_path=current_span_path(clock))


# -- fault plans -----------------------------------------------------------


@dataclass(frozen=True)
class FaultPlan:
    """One declarative fault: where, what, how often.

    ``site`` filters by charge label prefix (``"*"`` = any site) so a
    plan can target e.g. only ``cm:``-labelled primitives.  ``rate`` is
    the per-opportunity injection probability and ``max_faults`` bounds
    the total number of injections (``None`` = unbounded).  All
    randomness flows from ``seed`` through one ``np.random.Generator``
    per plan, so the injection log is a pure function of the plan and
    the (deterministic) primitive call sequence.
    """

    seed: int
    kind: str
    site: str = "*"
    rate: float = 1.0
    max_faults: int | None = 1

    def __post_init__(self) -> None:
        known = (
            FAULT_KINDS
            + ADVERSARIAL_KINDS
            + VM_FAULT_KINDS
            + PROCESS_FAULT_KINDS
            + XCHIP_FAULT_KINDS
        )
        if self.kind not in known:
            raise ValueError(
                f"unknown fault kind {self.kind!r} (know {known})"
            )
        if not (0.0 <= self.rate <= 1.0):
            raise ValueError(f"fault rate {self.rate} outside [0, 1]")

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "kind": self.kind,
            "site": self.site,
            "rate": self.rate,
            "max_faults": self.max_faults,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        return cls(
            seed=int(data["seed"]),
            kind=str(data["kind"]),
            site=str(data.get("site", "*")),
            rate=float(data.get("rate", 1.0)),
            max_faults=data.get("max_faults", 1),
        )


@dataclass(frozen=True)
class InjectedFault:
    """One logged injection (JSON-able via :meth:`to_dict`)."""

    kind: str
    site: str
    opportunity: int
    detail: dict

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "site": self.site,
            "opportunity": self.opportunity,
            "detail": dict(self.detail),
        }


class FaultInjector:
    """Executes :class:`FaultPlan`\\ s against engine primitive outputs.

    Install with :meth:`install` (sets ``engine.faults``); the engine
    calls the ``on_*`` hooks after computing each primitive's outputs and
    before its paranoid checks.  When no injector is installed the hooks
    cost the engine one attribute check.
    """

    def __init__(self, *plans: FaultPlan) -> None:
        self.plans = tuple(plans)
        self._rngs = [np.random.default_rng(p.seed) for p in self.plans]
        self._counts = [0] * len(self.plans)
        self.injected: list[InjectedFault] = []
        #: per-kind count of injection opportunities seen (hook calls
        #: matching a plan's site filter), injected or not — lets the
        #: chaos report distinguish "not detected" from "never injected".
        self.opportunities: dict[str, int] = {}

    def install(self, engine: "MeshEngine") -> "FaultInjector":
        engine.faults = self
        return self

    def install_vm(self, vm) -> "FaultInjector":
        """Install on a :class:`repro.mesh.machine.MeshVM` (per-step hook)."""
        vm.faults = self
        return self

    def log(self) -> list[dict]:
        """The deterministic injection log (JSON-able)."""
        return [f.to_dict() for f in self.injected]

    # -- plan matching -----------------------------------------------------

    def _match(self, kind: str, site: str) -> int | None:
        """Index of the plan that fires for this opportunity, else None.

        Every matching plan's RNG is advanced exactly once per
        opportunity, injected or not, so the decision sequence depends
        only on the seed and the call sequence.
        """
        hit: int | None = None
        for i, plan in enumerate(self.plans):
            if plan.kind != kind:
                continue
            if plan.site != "*" and not site.startswith(plan.site):
                continue
            self.opportunities[kind] = self.opportunities.get(kind, 0) + 1
            if plan.max_faults is not None and self._counts[i] >= plan.max_faults:
                continue
            fire = float(self._rngs[i].random()) < plan.rate
            if fire and hit is None:
                hit = i
        return hit

    def _record(self, i: int, kind: str, site: str, detail: dict) -> None:
        self._counts[i] += 1
        self.injected.append(
            InjectedFault(kind, site, self.opportunities.get(kind, 0), detail)
        )

    # -- engine hooks ------------------------------------------------------

    def on_sort_keys(self, keys: np.ndarray, site: str) -> np.ndarray:
        """Maybe break the sorted key array's ordering (returns a copy)."""
        i = self._match("perturb_sort_key", site)
        if i is None or keys.ndim != 1 or keys.shape[0] < 2:
            return keys
        rng = self._rngs[i]
        j = int(rng.integers(0, keys.shape[0] - 1))
        out = np.array(keys)
        # force out[j] > out[j+1]: a strict ordering break whatever the keys
        out[j] = out[j + 1] + out.dtype.type(1)
        self._record(i, "perturb_sort_key", site, {"index": j})
        return out

    def on_sort_order(self, order: np.ndarray, site: str) -> np.ndarray:
        """Maybe swap two adjacent entries of a sort permutation."""
        i = self._match("perturb_sort_key", site)
        if i is None or order.shape[0] < 2:
            return order
        rng = self._rngs[i]
        j = int(rng.integers(0, order.shape[0] - 1))
        out = np.array(order)
        out[[j, j + 1]] = out[[j + 1, j]]
        self._record(i, "perturb_sort_key", site, {"index": j, "swap": True})
        return out

    def on_route_payload(self, outs: Sequence[np.ndarray], targets: np.ndarray, site: str) -> None:
        """Maybe scramble one routed record's payload in place."""
        i = self._match("corrupt_route_payload", site)
        if i is None or not len(outs) or targets.size == 0:
            return
        rng = self._rngs[i]
        a = outs[int(rng.integers(0, len(outs)))]
        slot = int(targets[int(rng.integers(0, targets.size))])
        if a.dtype.kind == "b":
            a[slot] = ~a[slot]
        else:
            a[slot] = a[slot] + a.dtype.type(1)
        self._record(i, "corrupt_route_payload", site, {"slot": slot})

    def on_transfer(self, outs: tuple[np.ndarray, ...], site: str) -> tuple[np.ndarray, ...]:
        """Maybe drop a suffix of the transferred batch."""
        i = self._match("drop_transfer", site)
        if i is None or not outs or outs[0].shape[0] == 0:
            return outs
        rng = self._rngs[i]
        n = int(outs[0].shape[0])
        keep = int(rng.integers(0, n))  # drop at least one record
        self._record(i, "drop_transfer", site, {"kept": keep, "dropped": n - keep})
        return tuple(a[:keep] for a in outs)

    def on_query_rows(self, rows: np.ndarray, site: str) -> np.ndarray:
        """Maybe inject a non-finite key into a raw query batch (a copy).

        The serving-layer equivalent of :func:`apply_adversarial`'s
        ``nan_query_key``: a service calls this on the canonical query
        rows before handing them to a core algorithm, whose paranoid
        entry boundary then re-detects the corruption.  The other
        adversarial kinds have no surface here — query pointers and
        structure levels are internals the serving boundary never sees.
        """
        i = self._match("nan_query_key", site)
        if i is None or rows.shape[0] == 0:
            return rows
        rng = self._rngs[i]
        j = int(rng.integers(0, rows.shape[0]))
        out = np.array(rows)
        out.reshape(rows.shape[0], -1)[j, 0] = np.nan
        self._record(i, "nan_query_key", site, {"query": j})
        return out

    # -- VM hook -----------------------------------------------------------

    def on_vm_shift(self, vm, outs, grids, names, direction, fill):
        """Maybe corrupt the data movement of one VM communication step.

        Called by :meth:`repro.mesh.machine.MeshVM.shift` /
        :meth:`~repro.mesh.machine.MeshVM.shift_many` after the received
        grids are computed and the step is charged; the hook never touches
        :attr:`~repro.mesh.machine.MeshVM.steps` (observer-safe).  A fault
        that would deliver the exact words the link would have delivered
        anyway (e.g. a stuck lane over equal values) is *not* a fault: the
        decision RNG still advances, but nothing is applied or logged, so
        every logged injection is guaranteed to have changed received data
        — which is what the VM's paranoid step-integrity check detects.

        Site is ``vm:<register names>``, so plans can target a specific
        program's registers with a ``site="vm:_route"``-style prefix.
        Returns the (possibly corrupted) received grids.
        """
        site = "vm:" + "+".join(names)
        outs = list(outs)
        step = vm.steps

        i = self._match("vm_flip_word", site)
        if i is not None:
            rng = self._rngs[i]
            k = int(rng.integers(0, len(outs)))
            r = int(rng.integers(0, vm.rows))
            c = int(rng.integers(0, vm.cols))
            a = np.array(outs[k])
            if a.dtype.kind == "b":
                a[r, c] = ~a[r, c]
            else:
                a[r, c] = a[r, c] + a.dtype.type(1)
            if not _words_equal(a, outs[k]):
                outs[k] = a
                self._record(
                    i, "vm_flip_word", site,
                    {"step": step, "register": names[k], "row": r, "col": c},
                )

        i = self._match("vm_drop_link", site)
        if i is not None:
            rng = self._rngs[i]
            stale = bool(rng.integers(0, 2))
            if direction in ("left", "right"):
                lane = int(rng.integers(0, vm.rows))
                sel = (lane, slice(None))
            else:
                lane = int(rng.integers(0, vm.cols))
                sel = (slice(None), lane)
            corrupted = []
            for k in range(len(outs)):
                a = np.array(outs[k])
                a[sel] = grids[k][sel] if stale else a.dtype.type(fill)
                corrupted.append(a)
            if any(
                not _words_equal(a, b) for a, b in zip(corrupted, outs)
            ):
                outs = corrupted
                self._record(
                    i, "vm_drop_link", site,
                    {
                        "step": step, "lane": lane, "direction": direction,
                        "mode": "stale" if stale else "fill",
                    },
                )

        i = self._match("vm_corrupt_fill", site)
        if i is not None:
            # the boundary cells are the ones _shifted gave the fill value
            if direction == "left":
                sel = (slice(None), 0)
            elif direction == "right":
                sel = (slice(None), -1)
            elif direction == "up":
                sel = (0, slice(None))
            else:  # down
                sel = (-1, slice(None))
            corrupted = []
            for k in range(len(outs)):
                a = np.array(outs[k])
                if a.dtype.kind == "b":
                    a[sel] = ~a[sel]
                else:
                    a[sel] = a[sel] + a.dtype.type(1)
                corrupted.append(a)
            if any(
                not _words_equal(a, b) for a, b in zip(corrupted, outs)
            ):
                outs = corrupted
                self._record(
                    i, "vm_corrupt_fill", site,
                    {"step": step, "direction": direction},
                )

        i = self._match("vm_dup_step", site)
        if i is not None:
            corrupted = [vm._shifted(a, direction, fill) for a in outs]
            if any(
                not _words_equal(a, b) for a, b in zip(corrupted, outs)
            ):
                outs = corrupted
                self._record(
                    i, "vm_dup_step", site,
                    {"step": step, "direction": direction},
                )

        return outs

    # -- off-chip link hook ------------------------------------------------

    def on_xchip_exchange(
        self, arrays: tuple[np.ndarray, ...], site: str
    ) -> tuple[np.ndarray, ...]:
        """Maybe corrupt records crossing an off-chip link (returns copies).

        Called by the sharded record set at every inter-shard exchange
        boundary (merge of per-shard sorted runs, redistribution, gather)
        with the exchanged record arrays; site is the exchange's charge
        label (``xchip:sort``, ``xchip:route``, ``xchip:gather``, ...).
        ``xchip_drop`` truncates a suffix of every exchanged array (a
        lossy link), ``xchip_corrupt`` perturbs one word of one array (a
        noisy link).  Both are detected by the sharded merge-point
        paranoid checks: record-count conservation and merged
        sortedness.
        """
        i = self._match("xchip_drop", site)
        if i is not None and arrays and arrays[0].shape[0] > 0:
            rng = self._rngs[i]
            n = int(arrays[0].shape[0])
            keep = int(rng.integers(0, n))  # drop at least one record
            self._record(i, "xchip_drop", site, {"kept": keep, "dropped": n - keep})
            arrays = tuple(a[:keep] for a in arrays)
        i = self._match("xchip_corrupt", site)
        if i is not None and arrays and arrays[0].shape[0] > 0:
            rng = self._rngs[i]
            k = int(rng.integers(0, len(arrays)))
            a = np.array(arrays[k])
            flat = a.reshape(a.shape[0], -1)
            j = int(rng.integers(0, flat.shape[0]))
            c = int(rng.integers(0, flat.shape[1]))
            if flat.dtype.kind == "b":
                flat[j, c] = ~flat[j, c]
            else:
                flat[j, c] = flat[j, c] + flat.dtype.type(1)
            self._record(i, "xchip_corrupt", site, {"array": k, "record": j})
            arrays = tuple(a if m == k else arr for m, arr in enumerate(arrays))
        return arrays

    # -- worker-process hooks ----------------------------------------------

    def on_worker_batch(self, site: str) -> list[str]:
        """Process-level fault decisions for one batch inside a serving worker.

        Called by :func:`repro.serve.pool._worker_main` once per received
        batch with site ``worker:<id>``.  Returns the subset of
        ``worker_crash`` / ``worker_hang`` / ``worker_slow`` that fires on
        this batch (the *worker* then crashes/stalls itself — the
        injector only decides and logs).  ``worker_corrupt_reply`` is
        excluded: it applies to reply *bytes*, via :meth:`on_reply_bytes`.
        Each plan's RNG advances exactly once per batch, so the
        kill/stall schedule is a pure function of the plan and the
        worker's batch sequence.
        """
        fired = []
        for kind in ("worker_crash", "worker_hang", "worker_slow"):
            i = self._match(kind, site)
            if i is not None:
                self._record(i, kind, site, {"batch_seq": self.opportunities[kind]})
                fired.append(kind)
        return fired

    def on_reply_bytes(self, payload: bytes, site: str) -> bytes:
        """Maybe flip one byte of a serialized reply payload (a copy).

        Models corruption on the supervisor-worker link *after* the
        worker computed the reply checksum — the end-to-end argument: the
        digest travels with the payload, so the supervisor detects the
        mismatch, discards the reply, and retries, and a corrupt answer
        can never resolve a future or reach the result cache.
        """
        i = self._match("worker_corrupt_reply", site)
        if i is None or not payload:
            return payload
        rng = self._rngs[i]
        j = int(rng.integers(0, len(payload)))
        out = bytearray(payload)
        out[j] ^= 0xFF
        self._record(i, "worker_corrupt_reply", site, {"byte": j})
        return bytes(out)


def _words_equal(a: np.ndarray, b: np.ndarray) -> bool:
    """Byte-level equality of two register grids (NaN == NaN)."""
    if a.dtype != b.dtype or a.shape != b.shape:
        return False
    if a.dtype.kind == "f":
        return bool(np.array_equal(a, b, equal_nan=True))
    return bool(np.array_equal(a, b))


def apply_adversarial(injector: FaultInjector, structure=None, qs=None) -> None:
    """Apply the injector's adversarial-input plans to algorithm inputs.

    Chaos drivers call this once, after building ``structure``/``qs`` and
    before handing them to a core algorithm.  Mutations are in place and
    logged like primitive-boundary injections.
    """
    if qs is not None and qs.m > 0:
        i = injector._match("corrupt_query_pointer", "input:query")
        if i is not None:
            rng = injector._rngs[i]
            j = int(rng.integers(0, qs.m))
            n_v = int(structure.n_vertices) if structure is not None else 2**31
            qs.current[j] = n_v + 17
            injector._record(
                i, "corrupt_query_pointer", "input:query",
                {"query": j, "value": int(qs.current[j])},
            )
        i = injector._match("nan_query_key", "input:query")
        if i is not None:
            rng = injector._rngs[i]
            j = int(rng.integers(0, qs.m))
            key = np.asarray(qs.key)
            key.reshape(qs.m, -1)[j, 0] = np.nan
            injector._record(i, "nan_query_key", "input:query", {"query": j})
    if structure is not None and structure.n_vertices > 0:
        i = injector._match("corrupt_structure_level", "input:structure")
        if i is not None:
            rng = injector._rngs[i]
            v = int(rng.integers(0, structure.n_vertices))
            structure.level[v] = structure.n_vertices + 23
            injector._record(
                i, "corrupt_structure_level", "input:structure",
                {"vertex": v, "value": int(structure.level[v])},
            )


# -- phase-boundary paranoia ----------------------------------------------


def paranoid_boundary(
    engine,
    where: str,
    structure=None,
    qs=None,
    splitting=None,
) -> None:
    """Re-run the structural validators at an algorithm phase boundary.

    No-op unless ``engine.paranoid``.  Wraps
    :mod:`repro.graphs.validate`-style checks over whichever inputs are
    given and raises :class:`InvariantViolation` (tagged ``where`` and
    the open span path) on the first failure.  Read-only: zero mesh
    steps, no output changes.
    """
    if engine is None or not getattr(engine, "paranoid", False):
        return
    # lazy import: mesh must stay importable without the graphs package
    from repro.graphs.validate import (
        check_query_state,
        check_search_structure,
        check_splitting_labels,
    )

    try:
        if structure is not None:
            check_search_structure(structure)
        if qs is not None:
            check_query_state(qs, structure)
        if splitting is not None:
            check_splitting_labels(splitting)
    except AssertionError as exc:  # ValidationError subclasses AssertionError
        raise invariant(where, str(exc), clock=engine.clock) from exc
