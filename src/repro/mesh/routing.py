"""Permutation routing on the mesh VM.

The classic reduction: to route a (partial) permutation, tag every packet
with its destination's snake rank and sort by that tag — after sorting, the
packet destined for snake rank *j* sits at snake position *j*.  Cost = one
mesh sort (shearsort here), i.e. ``O(side log side)`` VM steps versus the
engine's charged optimal ``O(side)``.

Empty slots (no packet) are tagged with rank ``rows*cols + own_rank`` so
they sort behind all real packets *in a stable, collision-free way*; for a
partial permutation the real packets then occupy exactly the snake
positions of their destinations only when the permutation is full, so for
partial permutations we finish with a correction pass that uses a second
sort keyed directly by destination rank with holes interleaved — see
:func:`route_permutation`.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.faults import invariant
from repro.mesh.machine import MeshVM
from repro.mesh.sorting import shearsort
from repro.mesh.topology import rowmajor_to_snake, snake_to_rowmajor

__all__ = ["route_permutation"]


def route_permutation(
    vm: MeshVM,
    dest: np.ndarray,
    payload: np.ndarray,
    fill=0,
    check: bool | None = None,
) -> np.ndarray:
    """Route ``payload[i]`` (record at row-major processor *i*) to processor ``dest[i]``.

    ``dest`` holds row-major destination indices, ``-1`` for "no packet".
    Returns the delivered row-major array; slots that receive nothing hold
    ``fill``.  Destinations must be distinct.

    ``check`` (default: the VM's ``paranoid`` setting) verifies delivery
    integrity after the routing sort — every live packet's tag is one of
    the requested destination ranks, each delivered exactly once, with
    its payload multiset intact — raising
    :class:`~repro.mesh.faults.InvariantViolation` on corruption.
    """
    n = vm.rows * vm.cols
    dest = np.asarray(dest, dtype=np.int64)
    payload = np.asarray(payload)
    if dest.shape[0] != n or payload.shape[0] != n:
        raise ValueError("dest/payload must have one entry per processor")
    live = dest >= 0
    if np.unique(dest[live]).size != live.sum():
        raise ValueError("duplicate destinations")

    to_snake = rowmajor_to_snake(vm.rows, vm.cols)  # rowmajor index -> snake rank
    # sort key: destination snake rank for live packets; dead slots get a
    # key that places them exactly at the snake ranks not used by any
    # destination, so after one sort every packet is at its destination.
    used = np.zeros(n, dtype=bool)
    used[to_snake[dest[live]]] = True
    free_ranks = np.flatnonzero(~used)
    key = np.empty(n, dtype=np.int64)
    key[live] = to_snake[dest[live]]
    key[~live] = free_ranks[: (~live).sum()]

    check = vm.paranoid if check is None else check
    vm.load_rowmajor("_route_key", key)
    is_live = live.astype(payload.dtype)
    vm.load_rowmajor("_route_payload", payload)
    vm.load_rowmajor("_route_live", is_live)
    shearsort(vm, "_route_key", ["_route_payload", "_route_live"], check=check)

    # after the sort, snake rank r holds the packet whose key is r
    from_snake = snake_to_rowmajor(vm.rows, vm.cols)  # snake rank -> rowmajor
    sorted_payload = vm.dump_rowmajor("_route_payload")
    sorted_live = vm.dump_rowmajor("_route_live").astype(bool)
    sorted_key = vm.dump_rowmajor("_route_key")
    deliver = sorted_live
    if check:
        tags = sorted_key[deliver]
        want = np.sort(to_snake[dest[live]])
        if not np.array_equal(np.sort(tags), want):
            raise invariant(
                "vm:route:ranks",
                "delivered destination tags are not exactly the requested "
                "snake ranks (lost, duplicated, or corrupted packets)",
            )
        if not np.array_equal(
            np.sort(sorted_payload[deliver], axis=None),
            np.sort(payload[live], axis=None),
        ):
            raise invariant(
                "vm:route:payload",
                "delivered payload multiset differs from the injected packets",
            )
    out = np.full(n, fill, dtype=payload.dtype)
    out_idx = from_snake[sorted_key[deliver]]
    out[out_idx] = sorted_payload[deliver]
    for reg in ("_route_key", "_route_payload", "_route_live"):
        del vm.registers[reg]
    return out
