"""Cost profiling: per-label breakdown of a clock's charge history.

The engine primitives tag every charge with a label (``"sort"``,
``"cm:round"``, ``"hierdag:phase2"``, ...).  Enabling
``engine.clock.record_history`` and summarizing with :func:`profile`
yields the cost breakdown the ablation benches report — which stage of an
algorithm pays what.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

from repro.mesh.clock import StepClock

__all__ = ["CostProfile", "profile", "profiled"]


@dataclass
class CostProfile:
    """Aggregated charges per label.

    ``memo`` carries host-cache counters (argsort-memo hits/misses) that
    ride along with the step breakdown — they cost zero mesh steps but
    explain fast-path wall time, so the bench runner attaches them here.
    """

    by_label: dict[str, float] = field(default_factory=dict)
    calls: dict[str, int] = field(default_factory=dict)
    memo: dict[str, int] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.by_label.values())

    def top(self, k: int = 10) -> list[tuple[str, float]]:
        """The k costliest labels, descending."""
        return sorted(self.by_label.items(), key=lambda kv: -kv[1])[:k]

    def fraction(self, prefix: str) -> float:
        """Fraction of total cost charged to labels starting with prefix."""
        if self.total == 0:
            return 0.0
        part = sum(v for k, v in self.by_label.items() if k.startswith(prefix))
        return part / self.total

    def render(self) -> str:
        total = self.total
        lines = [f"total mesh steps: {total:.0f}"]
        for label, cost in self.top(32):
            share = cost / total if total else 0.0  # all-zero-cost profiles
            # calls may lack a label present in by_label (partial from_dict
            # data, hand-built profiles) — render 0 charges, don't raise
            lines.append(
                f"  {label:<24} {cost:>12.0f}  ({share:6.1%},"
                f" {self.calls.get(label, 0)} charges)"
            )
        if self.memo:
            counters = ", ".join(f"{k}={v}" for k, v in sorted(self.memo.items()))
            lines.append(f"  argsort memo: {counters}")
        return "\n".join(lines)

    def merge(self, *others: "CostProfile") -> "CostProfile":
        """Combine profiles label-wise into a new profile.

        The parallel bench runner profiles each sweep point in its own
        worker process and merges the pieces into one per-bench breakdown.
        """
        out = CostProfile(
            by_label=dict(self.by_label),
            calls=dict(self.calls),
            memo=dict(self.memo),
        )
        for other in others:
            for label, cost in other.by_label.items():
                out.by_label[label] = out.by_label.get(label, 0.0) + cost
            for label, count in other.calls.items():
                out.calls[label] = out.calls.get(label, 0) + count
            for key, count in other.memo.items():
                out.memo[key] = out.memo.get(key, 0) + count
        return out

    def to_dict(self) -> dict:
        """JSON-ready form (inverse of :meth:`from_dict`)."""
        doc = {"by_label": dict(self.by_label), "calls": dict(self.calls)}
        if self.memo:
            doc["memo"] = dict(self.memo)
        return doc

    @classmethod
    def from_dict(cls, data: dict) -> "CostProfile":
        return cls(
            by_label={str(k): float(v) for k, v in data.get("by_label", {}).items()},
            calls={str(k): int(v) for k, v in data.get("calls", {}).items()},
            memo={str(k): int(v) for k, v in data.get("memo", {}).items()},
        )


def profile(history: list[tuple[str, float]]) -> CostProfile:
    """Summarize a ``StepClock.history`` list."""
    prof = CostProfile()
    for label, cost in history:
        prof.by_label[label] = prof.by_label.get(label, 0.0) + cost
        prof.calls[label] = prof.calls.get(label, 0) + 1
    return prof


@contextmanager
def profiled(clock: StepClock) -> Iterator[CostProfile]:
    """Record charges during the block; the yielded profile fills on exit.

    Note: per-label costs are raw charges and do not apply parallel-max
    folding — inside a ``parallel()`` section, branch charges all appear.
    Use the clock's own time for the folded total; the profile answers
    "what kind of work happened", not "what was the critical path".
    """
    prev_flag = clock.record_history
    start = len(clock.history)
    clock.record_history = True
    prof = CostProfile()
    try:
        yield prof
    finally:
        clock.record_history = prev_flag
        computed = profile(clock.history[start:])
        prof.by_label = computed.by_label
        prof.calls = computed.calls
