"""The counted-primitive mesh engine.

Algorithms in :mod:`repro.core` are written against :class:`Region`
operations.  Each operation

* **moves real data** — numpy arrays holding one record field per processor
  of the region, in row-major processor order; and
* **charges the global clock** the textbook mesh cost of that operation,
  ``constant * side`` where ``side = max(rows, cols)`` of the region.

The primitives are the standard ones the paper builds on ("a constant
number of standard mesh operations"):

=============  =======================================================
``sort_by``    sort records by key into row-major order (optimal sort)
``route``      send record *i* to processor ``dest[i]`` (a partial
               permutation; sort-based routing)
``rar``        random-access read: every processor reads the record at
               an arbitrary address, concurrent reads allowed (handled
               by the standard sort-and-copy simulation)
``raw``        random-access write with combining (sum/min/max/count)
``scan``       prefix sums in processor order
``reduce``     global reduction, result visible everywhere
``broadcast``  one value to all processors
``compress``   pack the records selected by a mask into a prefix
=============  =======================================================

Honest-parallelism enforcement: inside ``engine.parallel(...)`` branches,
only operations on (sub)regions of the declared branch region are legal,
and the declared regions must be pairwise disjoint.  Memory honesty:
``check_capacity`` asserts the O(1)-records-per-processor invariant at the
points where the paper's proofs claim it.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from repro.mesh.backend import KernelBackend, resolve_backend
from repro.mesh.clock import CostModel, StepClock
from repro.mesh.faults import invariant, paranoid_default
from repro.mesh.records import ArgsortMemo, BufferPool, RecordSet
from repro.mesh.topology import MeshShape, RegionSpec

__all__ = ["MeshEngine", "Region", "CapacityError", "fast_path_default"]


def fast_path_default() -> bool:
    """Process-wide default for :class:`MeshEngine`'s ``fast_path`` flag.

    Controlled by the ``REPRO_FAST_PATH`` environment variable (unset or
    ``1``/``true``/``on`` = enabled).  The fast path changes host wall
    time only — outputs and step-clock charges are byte-identical, which
    the equivalence suite asserts.
    """
    val = os.environ.get("REPRO_FAST_PATH", "1").strip().lower()
    return val not in ("0", "false", "off", "no", "")

_REDUCERS = {
    "add": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


class CapacityError(RuntimeError):
    """Raised when a step would exceed the per-processor memory bound."""


def _check_route_targets(targets: np.ndarray, out_size: int) -> None:
    """Validate route destinations: in range and pairwise distinct.

    The duplicate check is a bincount over the (already range-checked)
    targets — O(n + out_size) instead of the O(n log n) ``np.unique`` sort,
    on the hottest primitive's validation path.  Error messages name the
    first offending routed record and its destination, so a failing call
    is debuggable without re-running under a breakpoint.
    """
    if not targets.size:
        return
    if int(targets.max()) >= out_size:
        bad = int(np.argmax(targets >= out_size))
        raise ValueError(
            f"route destination out of range: record {bad} targets "
            f"{int(targets[bad])} >= output size {out_size}"
        )
    counts = np.bincount(targets, minlength=1)
    if int(counts.max()) > 1:
        dup = int(np.argmax(counts > 1))
        first, second = (int(i) for i in np.flatnonzero(targets == dup)[:2])
        raise ValueError(
            f"route with duplicate destinations: records {first} and {second} "
            f"both target {dup} (use raw for combining writes)"
        )


class MeshEngine:
    """A ``rows x cols`` mesh-connected computer with a step clock."""

    def __init__(
        self,
        shape: int | MeshShape,
        cost_model: CostModel | None = None,
        capacity: int = 16,
        fast_path: bool | None = None,
        paranoid: bool | None = None,
        backend: "str | KernelBackend | None" = None,
    ) -> None:
        if isinstance(shape, int):
            shape = MeshShape.square(shape)
        self.shape = shape
        self.clock = StepClock(cost_model)
        #: per-processor record capacity used by ``check_capacity`` — the
        #: "O(1) memory per processor" constant.  16 words is generous but
        #: finite; algorithms that would need more records per processor
        #: than this anywhere fail loudly.
        self.capacity = capacity
        #: host-side fast path: fused record blocks, argsort memoization,
        #: buffer reuse.  Byte-identical outputs and charges either way.
        self.fast_path = fast_path_default() if fast_path is None else bool(fast_path)
        #: paranoid mode: invariant assertions at every primitive boundary
        #: (post-sort sortedness, route scatter integrity, transfer batch
        #: integrity) raising :class:`repro.mesh.faults.InvariantViolation`.
        #: Host-side reads only — zero mesh steps, byte-identical outputs.
        self.paranoid = paranoid_default() if paranoid is None else bool(paranoid)
        #: installed :class:`repro.mesh.faults.FaultInjector` (None = off);
        #: consulted after each primitive computes its outputs, before the
        #: paranoid checks, so injected faults are caught at the earliest
        #: boundary a validator covers.
        self.faults = None
        #: host kernel backend under every primitive (numpy / cffi / numba /
        #: array_api; see :mod:`repro.mesh.backend`).  Selected per engine
        #: via ``backend=`` or process-wide via ``REPRO_BACKEND``; every
        #: backend is byte-identical to the numpy reference, so this is a
        #: wall-clock knob only — charges and outputs never change.
        self.backend = resolve_backend(backend)
        self.argsort_memo = ArgsortMemo()
        self.pool = BufferPool()
        self.root = Region(self, RegionSpec(0, 0, shape.rows, shape.cols))
        self._branch_region: RegionSpec | None = None

    @classmethod
    def for_problem(
        cls,
        n: int,
        capacity: int = 16,
        fast_path: bool | None = None,
        paranoid: bool | None = None,
        backend: "str | KernelBackend | None" = None,
    ) -> "MeshEngine":
        """Smallest square engine whose mesh holds an ``n``-record problem."""
        return cls(
            MeshShape.for_size(n).side,
            capacity=capacity,
            fast_path=fast_path,
            paranoid=paranoid,
            backend=backend,
        )

    @property
    def side(self) -> int:
        return self.shape.side

    @property
    def size(self) -> int:
        return self.shape.size

    # -- charging hooks ----------------------------------------------------

    def charge_primitive(
        self, spec: RegionSpec, constant: float, label: str, volume: int = 0
    ) -> None:
        """Charge one counted primitive run on region ``spec``.

        The single point where primitive constants meet the clock:
        ``constant * spec.side`` steps, exactly as the paper charges a
        submesh.  Hierarchical engines (:mod:`repro.mesh.shard`) override
        this to decompose a flat charge into per-chiplet intra-chip
        phases plus a costed off-chip exchange, without touching the
        primitives themselves.
        """
        self.clock.charge(constant * spec.side, label, volume=volume)

    def charge_transfer(
        self, src: RegionSpec, dst: RegionSpec, label: str, volume: int = 0
    ) -> None:
        """Charge an inter-region transfer (cost ~ bounding Manhattan span)."""
        self.clock.charge(
            self.clock.cost.transfer * src.distance_to(dst), label, volume=volume
        )

    def charge_phase(
        self, side: int, constant: float, label: str, volume: int = 0,
        extra: float = 0.0,
    ) -> float:
        """Charge a global algorithm phase proportional to a submesh side.

        The multisearch cores (hierdag, constrained) compute charges at
        phase granularity — ``constant * side + extra`` for a phase run
        on submeshes of the given side — rather than through a Region
        primitive.  Returns the flat-equivalent steps so callers can
        keep per-phase accounting.  Hierarchical engines override this
        to decompose phases whose submeshes span chip boundaries.
        """
        steps = constant * side + extra
        self.clock.charge(steps, label, volume=volume)
        return steps

    # -- parallel sections -------------------------------------------------

    @contextmanager
    def parallel(self, regions: Sequence["Region | RegionSpec"]) -> Iterator["_EngineParallel"]:
        """Open a parallel section over pairwise-disjoint regions.

        Branch bodies may only operate on regions contained in the branch's
        declared region; the elapsed time of the section is the max over
        branches (charged via :meth:`StepClock.parallel`).
        """
        specs = [r.spec if isinstance(r, Region) else r for r in regions]
        for i in range(len(specs)):
            for j in range(i + 1, len(specs)):
                if specs[i].overlaps(specs[j]):
                    raise ValueError(
                        f"parallel regions overlap: {specs[i]} and {specs[j]}"
                    )
        if self._branch_region is not None:
            for spec in specs:
                if not self._branch_region.contains(spec):
                    raise ValueError(
                        f"nested parallel region {spec} escapes enclosing "
                        f"branch region {self._branch_region}"
                    )
        with self.clock.parallel() as section:
            yield _EngineParallel(self, section)

    # -- inter-region data movement ----------------------------------------

    def transfer(
        self,
        src: "Region",
        dst: "Region",
        *arrays: np.ndarray,
        label: str = "transfer",
    ) -> tuple[np.ndarray, ...]:
        """Move record arrays from ``src`` to ``dst`` (cost ~ bounding span).

        The records are assumed packed (a prefix of ``src``); they arrive
        packed in ``dst``.  Capacity of the destination is checked.
        """
        self._check_scope(src.spec)
        self._check_scope(dst.spec)
        out: list[np.ndarray] = []
        for arr in arrays:
            a = np.asarray(arr)
            if a.shape[0] > dst.size * self.capacity:
                raise CapacityError(
                    f"transfer of {a.shape[0]} records exceeds capacity of {dst.spec}"
                )
            out.append(a.copy())
        volume = int(out[0].shape[0]) if out else 0
        self.charge_transfer(src.spec, dst.spec, label, volume=volume)
        result = tuple(out)
        if self.faults is not None:
            result = self.faults.on_transfer(result, label)
        if self.paranoid:
            for i, (a, arr) in enumerate(zip(result, arrays)):
                n_in = int(np.asarray(arr).shape[0])
                if int(a.shape[0]) != n_in:
                    raise invariant(
                        "transfer:batch",
                        f"array {i} arrived with {int(a.shape[0])} of "
                        f"{n_in} records ({src.spec} -> {dst.spec})",
                        clock=self.clock,
                    )
        return result

    def _check_scope(self, spec: RegionSpec) -> None:
        if self._branch_region is not None and not self._branch_region.contains(spec):
            raise RuntimeError(
                f"operation on {spec} outside active parallel branch "
                f"{self._branch_region}"
            )


class _EngineParallel:
    """Yielded by :meth:`MeshEngine.parallel`."""

    def __init__(self, engine: MeshEngine, section) -> None:
        self._engine = engine
        self._section = section

    @contextmanager
    def branch(self, region: "Region | RegionSpec") -> Iterator[None]:
        spec = region.spec if isinstance(region, Region) else region
        outer = self._engine._branch_region
        with self._section.branch():
            self._engine._branch_region = spec
            try:
                yield
            finally:
                self._engine._branch_region = outer

    @property
    def branch_times(self) -> list[float]:
        return self._section.branch_times


class Region:
    """A rectangular submesh view exposing the counted primitives.

    Record arrays passed to primitives are 1-D (or 2-D with leading record
    axis) numpy arrays of length at most ``size``; index *i* lives on the
    region's *i*-th processor in row-major order.
    """

    def __init__(self, engine: MeshEngine, spec: RegionSpec) -> None:
        self.engine = engine
        self.spec = spec

    # -- geometry ----------------------------------------------------------

    @property
    def size(self) -> int:
        return self.spec.size

    @property
    def side(self) -> int:
        return self.spec.side

    def subregion(self, row0: int, col0: int, rows: int, cols: int) -> "Region":
        return Region(self.engine, self.spec.subregion(row0, col0, rows, cols))

    def partition(self, grid_rows: int, grid_cols: int) -> list["Region"]:
        """Cut into a grid of blocks (the paper's submesh partitionings)."""
        from repro.mesh.topology import block_partition

        return [Region(self.engine, s) for s in block_partition(self.spec, grid_rows, grid_cols)]

    # -- cost helpers --------------------------------------------------------

    def _charge(self, constant: float, label: str, volume: int = 0) -> None:
        self.engine._check_scope(self.spec)
        self.engine.charge_primitive(self.spec, constant, label, volume=volume)

    def charge_local(self, steps: int = 1, label: str = "local") -> None:
        """Charge ``steps`` SIMD local steps (side-independent)."""
        self.engine._check_scope(self.spec)
        self.engine.clock.charge(self.engine.clock.cost.local * steps, label)

    def check_capacity(self, count: int, per_proc: int = 1, what: str = "records") -> None:
        """Assert the O(1)-memory-per-processor invariant."""
        limit = self.size * min(per_proc, self.engine.capacity)
        if count > limit:
            raise CapacityError(
                f"{count} {what} exceed capacity {limit} of region {self.spec} "
                f"(per_proc={per_proc})"
            )

    def _check_records(self, *arrays: np.ndarray, per_proc: int | None = None) -> int:
        if not arrays:
            raise ValueError("need at least one record array")
        length = int(np.asarray(arrays[0]).shape[0])
        for a in arrays[1:]:
            if int(np.asarray(a).shape[0]) != length:
                raise ValueError("record arrays must have equal length")
        cap = per_proc if per_proc is not None else self.engine.capacity
        if length > self.size * cap:
            raise CapacityError(
                f"{length} records exceed region {self.spec} capacity (x{cap})"
            )
        return length

    # -- paranoid checks (host-side reads: zero mesh steps, no outputs) ------

    def _paranoid_sorted(self, keys: np.ndarray, label: str) -> None:
        """Post-``sort`` sortedness: keys must arrive nondecreasing."""
        keys = np.asarray(keys)
        if keys.ndim != 1 or keys.shape[0] < 2:
            return
        bad = keys[1:] < keys[:-1]
        if bad.any():
            j = int(np.argmax(bad))
            raise invariant(
                "sort:sorted",
                f"{label!r} output not sorted at position {j}: "
                f"{keys[j]!r} > {keys[j + 1]!r} (region {self.spec})",
                clock=self.engine.clock,
            )

    def _paranoid_stable(self, keys: np.ndarray, order: np.ndarray, label: str) -> None:
        """Post-``argsort`` stability: among equal keys the permutation must
        preserve input order.  This is the payload-permutation check the
        plain sortedness invariant cannot make — swapping two *tied* keys
        leaves ``keys[order]`` nondecreasing but scrambles the records."""
        keys = np.asarray(keys)
        order = np.asarray(order)
        if keys.ndim != 1 or order.shape[0] < 2:
            return
        sk = keys[order]
        tied = sk[1:] == sk[:-1]
        if not tied.any():
            return
        bad = tied & (order[1:] < order[:-1])
        if bad.any():
            j = int(np.argmax(bad))
            raise invariant(
                "sort:stable",
                f"{label!r} permutation swaps tied keys at position {j}: "
                f"records {int(order[j])} and {int(order[j + 1])} both key "
                f"{sk[j]!r} but arrive out of input order (region {self.spec})",
                clock=self.engine.clock,
            )

    def _paranoid_routed(
        self,
        outs: Sequence[np.ndarray],
        ins: Sequence[np.ndarray],
        targets: np.ndarray,
        live: np.ndarray,
        label: str,
    ) -> None:
        """Route scatter integrity: every live record lands intact at its
        destination (targets are a partial permutation by construction)."""
        for out, arr in zip(outs, ins):
            sent = np.asarray(arr)[live]
            arrived = out[targets]
            if not (
                arrived.shape == sent.shape
                and arrived.dtype == sent.dtype
                and np.array_equal(arrived, sent)
            ):
                diff = (
                    arrived.reshape(arrived.shape[0], -1)
                    != sent.reshape(sent.shape[0], -1)
                ).any(axis=1)
                j = int(np.argmax(diff))
                raise invariant(
                    "route:payload",
                    f"{label!r} record {j} arrived corrupted at slot "
                    f"{int(targets[j])} (region {self.spec})",
                    clock=self.engine.clock,
                )

    # -- primitives ----------------------------------------------------------

    def _note_memo(self, memo: ArgsortMemo, hits_before: int) -> None:
        """Annotate the active trace span with the memo's hit/miss."""
        tracer = self.engine.clock.tracer
        if tracer is not None:
            hit = memo.hits > hits_before
            tracer.on_event("argsort-memo:hit" if hit else "argsort-memo:miss")

    def _stable_order(self, keys: np.ndarray) -> np.ndarray:
        """Stable argsort, memoized under ``fast_path``.

        The memo's guard is a value-equality check, so a hit replays the
        exact permutation the backend would recompute (the stable
        permutation is unique, hence backend-independent); memoized orders
        are returned read-only to keep later hits honest.
        """
        backend = self.engine.backend
        if self.engine.fast_path:
            memo = self.engine.argsort_memo
            before = memo.hits
            order = memo.order_for(np.asarray(keys), compute=backend.stable_argsort)
            self._note_memo(memo, before)
            return order
        return backend.stable_argsort(np.asarray(keys))

    def argsort(self, keys: np.ndarray, label: str = "sort") -> np.ndarray:
        """Stable sort permutation of the records by key (cost: optimal sort)."""
        n = self._check_records(keys)
        self._charge(self.engine.clock.cost.sort, label, volume=n)
        order = self._stable_order(keys)
        if self.engine.faults is not None:
            order = self.engine.faults.on_sort_order(order, label)
        if self.engine.paranoid and np.asarray(keys).ndim == 1:
            self._paranoid_sorted(np.asarray(keys)[order], label)
            self._paranoid_stable(keys, order, label)
        return order

    def sort_by(
        self, keys: np.ndarray, *arrays: np.ndarray, label: str = "sort"
    ) -> tuple[np.ndarray, ...]:
        """Sort records by key; returns ``(sorted_keys, *permuted_arrays)``."""
        n = self._check_records(keys, *arrays)
        self._charge(self.engine.clock.cost.sort, label, volume=n)
        order = self._stable_order(keys)
        backend = self.engine.backend
        out = [backend.take_live(np.asarray(keys), order)]
        out.extend(backend.take_live(np.asarray(a), order) for a in arrays)
        if self.engine.faults is not None:
            out[0] = self.engine.faults.on_sort_keys(out[0], label)
        if self.engine.paranoid:
            self._paranoid_sorted(out[0], label)
        return tuple(out)

    def sort_records(self, rs: RecordSet, key: str, label: str = "sort") -> RecordSet:
        """Fused :meth:`sort_by`: sort a whole :class:`RecordSet` by one of
        its fields with a single fancy-index per dtype block."""
        n = self._check_records(*rs.arrays())
        self._charge(self.engine.clock.cost.sort, label, volume=n)
        backend = self.engine.backend
        memo = self.engine.argsort_memo if self.engine.fast_path else None
        before = memo.hits if memo is not None else 0
        order = rs.argsort(key, memo=memo, backend=backend)
        if memo is not None:
            self._note_memo(memo, before)
        sorted_rs = rs.permute(order, backend=backend)
        if self.engine.faults is not None:
            keys_view = np.asarray(sorted_rs.field(key))
            perturbed = self.engine.faults.on_sort_keys(keys_view, label)
            if perturbed is not keys_view:
                sorted_rs.set_field(key, perturbed)
        if self.engine.paranoid:
            self._paranoid_sorted(np.asarray(sorted_rs.field(key)), label)
        return sorted_rs

    def route(
        self,
        dest: np.ndarray,
        *arrays: np.ndarray,
        size: int | None = None,
        fill: float = 0,
        label: str = "route",
    ) -> tuple[np.ndarray, ...]:
        """Partial-permutation routing: record *i* lands at slot ``dest[i]``.

        ``dest[i] == -1`` discards record *i*.  Duplicate destinations are a
        programming error (use :meth:`raw` for combining writes).
        """
        dest = np.asarray(dest, dtype=np.int64)
        n = self._check_records(dest, *arrays)
        out_size = self.size if size is None else size
        if out_size > self.size * self.engine.capacity:
            raise CapacityError(f"route output {out_size} exceeds region capacity")
        live = dest >= 0
        targets = dest[live]
        _check_route_targets(targets, out_size)
        self._charge(self.engine.clock.cost.route, label, volume=n)
        backend = self.engine.backend
        outs: list[np.ndarray] = [
            backend.scatter(np.asarray(a), dest, out_size, fill=fill)
            for a in arrays
        ]
        if self.engine.faults is not None:
            self.engine.faults.on_route_payload(outs, targets, label)
        if self.engine.paranoid:
            self._paranoid_routed(outs, arrays, targets, live, label)
        return tuple(outs)

    def route_records(
        self,
        dest: np.ndarray,
        rs: RecordSet,
        size: int | None = None,
        fill: float = 0,
        label: str = "route",
    ) -> RecordSet:
        """Fused :meth:`route`: one scatter per dtype block of ``rs``."""
        dest = np.asarray(dest, dtype=np.int64)
        n = self._check_records(dest, *rs.arrays())
        out_size = self.size if size is None else size
        if out_size > self.size * self.engine.capacity:
            raise CapacityError(f"route output {out_size} exceeds region capacity")
        live = dest >= 0
        targets = dest[live]
        _check_route_targets(targets, out_size)
        self._charge(self.engine.clock.cost.route, label, volume=n)
        routed = rs.scatter(dest, out_size, fill=fill, backend=self.engine.backend)
        if self.engine.faults is not None:
            self.engine.faults.on_route_payload(
                [np.asarray(routed.field(name)) for name in routed.names],
                targets,
                label,
            )
        if self.engine.paranoid:
            self._paranoid_routed(
                [np.asarray(routed.field(name)) for name in routed.names],
                [np.asarray(rs.field(name)) for name in rs.names],
                targets,
                live,
                label,
            )
        return routed

    def rar(
        self,
        addresses: np.ndarray,
        *tables: np.ndarray,
        fill: float = 0,
        label: str = "rar",
    ) -> tuple[np.ndarray, ...]:
        """Random-access read: ``result[i] = table[addresses[i]]``.

        Concurrent reads of the same address are allowed — on a real mesh
        this is the standard O(side) simulation (sort requests by address,
        segmented-copy the data, route back).  ``addresses[i] == -1`` yields
        ``fill``.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        n = self._check_records(addresses)
        for t in tables:
            self._check_records(np.asarray(t))
        self._charge(self.engine.clock.cost.route, label, volume=n)
        live = addresses >= 0
        backend = self.engine.backend
        outs: list[np.ndarray] = []
        for t in tables:
            t = np.asarray(t)
            if live.any() and int(addresses[live].max()) >= t.shape[0]:
                raise ValueError("rar address out of range")
            outs.append(backend.take(t, addresses, fill=fill))
        return tuple(outs)

    def rar_records(
        self,
        addresses: np.ndarray,
        table: RecordSet,
        fill: float = 0,
        label: str = "rar",
    ) -> RecordSet:
        """Fused :meth:`rar`: one gather per dtype block of ``table``."""
        addresses = np.asarray(addresses, dtype=np.int64)
        n = self._check_records(addresses)
        self._check_records(*table.arrays())
        self._charge(self.engine.clock.cost.route, label, volume=n)
        live = addresses >= 0
        if live.any() and int(addresses[live].max()) >= table.n:
            raise ValueError("rar address out of range")
        return table.take(addresses, fill=fill, backend=self.engine.backend)

    def raw(
        self,
        addresses: np.ndarray,
        values: np.ndarray,
        size: int,
        combine: str = "add",
        fill: float = 0,
        label: str = "raw",
    ) -> np.ndarray:
        """Random-access write with combining (``add``/``min``/``max``).

        ``addresses[i] == -1`` suppresses the write of record *i*.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        values = np.asarray(values)
        n = self._check_records(addresses, values)
        if size > self.size * self.engine.capacity:
            raise CapacityError(f"raw output {size} exceeds region capacity")
        if combine not in _REDUCERS:
            raise ValueError(f"unknown combine {combine!r}")
        self._charge(self.engine.clock.cost.route, label, volume=n)
        live = addresses >= 0
        if live.any() and int(addresses[live].max()) >= size:
            raise ValueError("raw address out of range")
        backend = self.engine.backend
        if combine == "add":
            idx = addresses[live]
            vals = values[live]
            if (
                self.engine.fast_path
                and vals.ndim == 1
                and vals.dtype.kind in "iu"
                and (
                    vals.size == 0
                    or int(np.abs(vals).max()) * vals.size < 2**53
                )
            ):
                # add.at is unbuffered and slow; a weighted bincount is
                # the same combining write.  It accumulates in float64,
                # which is exact while |sum| stays below 2**53 — guarded
                # above, so the int cast back is lossless.
                out = backend.bincount_add(idx, vals, size).astype(values.dtype)
                if fill:
                    out += values.dtype.type(fill)
            else:
                out = np.full(size, fill, dtype=values.dtype)
                backend.add_at(out, idx, vals)
        else:
            if values.dtype.kind == "f":
                init = np.inf if combine == "min" else -np.inf
            else:
                info = np.iinfo(values.dtype)
                init = info.max if combine == "min" else info.min
            out = np.full(size, init, dtype=values.dtype)
            backend.scatter_reduce_at(out, addresses[live], values[live], combine)
            if self.engine.fast_path:  # loop-local scratch: pooled, not returned
                written = self.engine.pool.full(size, bool, False)
            else:
                written = np.zeros(size, dtype=bool)
            written[addresses[live]] = True
            out[~written] = fill
        return out

    def scan(
        self,
        values: np.ndarray,
        op: str = "add",
        inclusive: bool = True,
        label: str = "scan",
    ) -> np.ndarray:
        """Prefix combine in processor order (snake-order on a real mesh)."""
        values = np.asarray(values)
        n = self._check_records(values)
        if op not in _REDUCERS:
            raise ValueError(f"unknown scan op {op!r}")
        self._charge(self.engine.clock.cost.scan, label, volume=n)
        result = self.engine.backend.accumulate(values, op)
        if inclusive:
            return result
        out = np.empty_like(result)
        out[1:] = result[:-1]
        if op == "add":
            out[0] = 0
        elif op == "min":
            out[0] = np.inf if values.dtype.kind == "f" else np.iinfo(values.dtype).max
        else:
            out[0] = -np.inf if values.dtype.kind == "f" else np.iinfo(values.dtype).min
        return out

    def segmented_scan(
        self,
        values: np.ndarray,
        segments: np.ndarray,
        op: str = "add",
        inclusive: bool = True,
        label: str = "segscan",
    ) -> np.ndarray:
        """Prefix combine restarting at every segment boundary.

        ``segments`` holds a segment id per record; a boundary is any
        position whose id differs from its predecessor (ids need not be
        sorted, only grouped).  Same mesh cost as a plain scan — the
        standard segmented-scan simulation carries the segment id with
        the running value.
        """
        values = np.asarray(values)
        segments = np.asarray(segments)
        vol = self._check_records(values, segments)
        if op not in _REDUCERS:
            raise ValueError(f"unknown segmented_scan op {op!r}")
        self._charge(self.engine.clock.cost.scan, label, volume=vol)
        # the kernel itself (cumsum-offset add; rank-trick min/max in the
        # reference, single-pass loops in compiled backends) lives behind
        # the backend interface — the mesh simulation whose cost was just
        # charged is the standard carried-id scan either way.  (NaN values
        # are not supported — the reference's ranks order them arbitrarily.)
        return self.engine.backend.segmented_scan(values, segments, op, inclusive)

    def reduce(self, values: np.ndarray, op: str = "add", label: str = "reduce"):
        """Global reduction; the scalar result is visible to all processors."""
        values = np.asarray(values)
        n = self._check_records(values)
        if op not in _REDUCERS:
            raise ValueError(f"unknown reduce op {op!r}")
        self._charge(self.engine.clock.cost.scan, label, volume=n)
        if values.size == 0:
            if op == "add":
                return values.dtype.type(0)
            raise ValueError("min/max reduce of empty array")
        return self.engine.backend.reduce(values, op)

    def broadcast(self, value, label: str = "broadcast"):
        """Deliver one word to every processor of the region."""
        self._charge(self.engine.clock.cost.broadcast, label, volume=1)
        return value

    def compress(
        self, mask: np.ndarray, *arrays: np.ndarray, label: str = "compress"
    ) -> tuple:
        """Pack the records selected by ``mask`` into a prefix.

        Returns ``(count, *packed_arrays)``; packed arrays have length
        ``count``.  (Scan + route on a real mesh.)
        """
        mask = np.asarray(mask, dtype=bool)
        n = self._check_records(mask, *arrays)
        self._charge(self.engine.clock.cost.compress, label, volume=n)
        count = int(mask.sum())
        backend = self.engine.backend
        return (count, *(backend.compress(mask, np.asarray(a)) for a in arrays))

    def compress_records(
        self, mask: np.ndarray, rs: RecordSet, label: str = "compress"
    ) -> tuple[int, RecordSet]:
        """Fused :meth:`compress`: one masked pack per dtype block."""
        mask = np.asarray(mask, dtype=bool)
        n = self._check_records(mask, *rs.arrays())
        self._charge(self.engine.clock.cost.compress, label, volume=n)
        packed = rs.select(mask, backend=self.engine.backend)
        return packed.n, packed
