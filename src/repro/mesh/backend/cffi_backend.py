"""C kernels compiled on demand and loaded through cffi (ABI mode).

The numpy reference implements the segmented scans and fill-then-gather
kernels as chains of whole-array passes (boundary mask, global cumsum,
offset subtract, rank sort...); each pass is fast but the chain walks
memory several times and pays numpy dispatch per pass.  These kernels do
each primitive in **one** C pass over the data, which is where the
backend's wall-clock win comes from — the small-array primitives the
multisearch round loops issue thousands of times.

Bit-identity with the reference is engineered, not assumed:

* float adds happen in exactly the reference's order — the segmented add
  scan keeps a *global* running sum and subtracts the value it had at
  the last boundary, because that is what ``cumsum - offsets`` computes
  (a per-segment restart would round differently);
* min/max ties replicate numpy: ``minimum(a, b)`` returns *b* when
  equal, so plain accumulates take the newer value, while the
  reference's rank-based *segmented* min keeps the earliest tie and max
  the latest (visible only for bit-distinct equal values like ``-0.0``
  vs ``0.0``);
* int64 sums wrap modulo 2**64 like numpy's (the C loops add in
  ``uint64_t``, whose wrap is defined);
* float ``sum`` reduction is **not** overridden — numpy reduces
  pairwise, and replicating that tree is all risk for a trivial kernel
  (``reduce`` and ``stable_argsort`` delegate to the reference).

Row-shaped kernels (gather / scatter / compress) are dtype-agnostic
``memcpy`` loops, so they cover every dtype and 2-D fused block the
:class:`~repro.mesh.records.RecordSet` fast path produces.  Arithmetic
kernels cover int64/float64 — every other dtype falls through to the
inherited reference kernel, per the partial-backend contract.

The shared library is compiled once per source hash with the system C
compiler and cached under ``REPRO_KERNEL_CACHE`` (default
``~/.cache/repro-kernels``); concurrent bench workers race safely (build
to a pid-suffixed temp file, atomic rename).  Any toolchain failure
raises from the constructor, which the registry factory converts into a
clean numpy fallback.
"""

from __future__ import annotations

import hashlib
import os
import subprocess

import numpy as np

from repro.mesh.backend.numpy_backend import KernelBackend, _identity

__all__ = ["CffiBackend"]

_CDEF = r"""
void repro_take_rows(const char *table, const int64_t *idx, int64_t n_out,
                     int64_t row_bytes, const char *fill_row, char *out);
void repro_take_rows_live(const char *table, const int64_t *idx, int64_t n_out,
                          int64_t row_bytes, char *out);
void repro_scatter_rows(const char *src, const int64_t *dest, int64_t n_in,
                        int64_t row_bytes, const char *fill_row,
                        char *out, int64_t n_out);
int64_t repro_compress_rows(const char *src, const uint8_t *mask, int64_t n,
                            int64_t row_bytes, char *out);
void repro_bincount_add(const int64_t *idx, const double *w, int64_t n,
                        double *out);
void repro_add_at_f64(double *out, const int64_t *idx, const double *v,
                      int64_t n);
void repro_add_at_i64(int64_t *out, const int64_t *idx, const int64_t *v,
                      int64_t n);
void repro_minmax_at_f64(double *out, const int64_t *idx, const double *v,
                         int64_t n, int is_max);
void repro_minmax_at_i64(int64_t *out, const int64_t *idx, const int64_t *v,
                         int64_t n, int is_max);
void repro_cumsum_f64(const double *v, int64_t n, double *out);
void repro_cumsum_i64(const int64_t *v, int64_t n, int64_t *out);
void repro_cumminmax_f64(const double *v, int64_t n, int is_max, double *out);
void repro_cumminmax_i64(const int64_t *v, int64_t n, int is_max, int64_t *out);
void repro_segscan_add_f64(const double *v, const uint8_t *b, int64_t n,
                           int inclusive, double *out);
void repro_segscan_add_i64(const int64_t *v, const uint8_t *b, int64_t n,
                           int inclusive, int64_t *out);
void repro_segscan_minmax_f64(const double *v, const uint8_t *b, int64_t n,
                              int inclusive, int is_max, double ident,
                              double *out);
void repro_segscan_minmax_i64(const int64_t *v, const uint8_t *b, int64_t n,
                              int inclusive, int is_max, int64_t ident,
                              int64_t *out);
"""

_SOURCE = r"""
#include <stdint.h>
#include <string.h>

void repro_take_rows(const char *table, const int64_t *idx, int64_t n_out,
                     int64_t row_bytes, const char *fill_row, char *out) {
    for (int64_t i = 0; i < n_out; i++) {
        int64_t j = idx[i];
        if (j < 0)
            memcpy(out + i * row_bytes, fill_row, (size_t)row_bytes);
        else
            memcpy(out + i * row_bytes, table + j * row_bytes, (size_t)row_bytes);
    }
}

void repro_take_rows_live(const char *table, const int64_t *idx, int64_t n_out,
                          int64_t row_bytes, char *out) {
    for (int64_t i = 0; i < n_out; i++)
        memcpy(out + i * row_bytes, table + idx[i] * row_bytes, (size_t)row_bytes);
}

void repro_scatter_rows(const char *src, const int64_t *dest, int64_t n_in,
                        int64_t row_bytes, const char *fill_row,
                        char *out, int64_t n_out) {
    for (int64_t i = 0; i < n_out; i++)
        memcpy(out + i * row_bytes, fill_row, (size_t)row_bytes);
    for (int64_t i = 0; i < n_in; i++) {
        int64_t j = dest[i];
        if (j >= 0)
            memcpy(out + j * row_bytes, src + i * row_bytes, (size_t)row_bytes);
    }
}

int64_t repro_compress_rows(const char *src, const uint8_t *mask, int64_t n,
                            int64_t row_bytes, char *out) {
    int64_t k = 0;
    for (int64_t i = 0; i < n; i++) {
        if (mask[i]) {
            memcpy(out + k * row_bytes, src + i * row_bytes, (size_t)row_bytes);
            k++;
        }
    }
    return k;
}

void repro_bincount_add(const int64_t *idx, const double *w, int64_t n,
                        double *out) {
    for (int64_t i = 0; i < n; i++)
        out[idx[i]] += w[i];
}

void repro_add_at_f64(double *out, const int64_t *idx, const double *v,
                      int64_t n) {
    for (int64_t i = 0; i < n; i++)
        out[idx[i]] += v[i];
}

/* numpy int64 addition wraps modulo 2**64; uint64_t wrap is defined */
void repro_add_at_i64(int64_t *out, const int64_t *idx, const int64_t *v,
                      int64_t n) {
    uint64_t *uo = (uint64_t *)out;
    for (int64_t i = 0; i < n; i++)
        uo[idx[i]] += (uint64_t)v[i];
}

/* numpy minimum(a, b) yields b when a == b (ditto maximum); the strict
   compare keeps that tie rule, which matters for -0.0 vs 0.0 */
void repro_minmax_at_f64(double *out, const int64_t *idx, const double *v,
                         int64_t n, int is_max) {
    if (is_max) {
        for (int64_t i = 0; i < n; i++) {
            int64_t j = idx[i];
            out[j] = (out[j] > v[i]) ? out[j] : v[i];
        }
    } else {
        for (int64_t i = 0; i < n; i++) {
            int64_t j = idx[i];
            out[j] = (out[j] < v[i]) ? out[j] : v[i];
        }
    }
}

void repro_minmax_at_i64(int64_t *out, const int64_t *idx, const int64_t *v,
                         int64_t n, int is_max) {
    if (is_max) {
        for (int64_t i = 0; i < n; i++) {
            int64_t j = idx[i];
            out[j] = (out[j] > v[i]) ? out[j] : v[i];
        }
    } else {
        for (int64_t i = 0; i < n; i++) {
            int64_t j = idx[i];
            out[j] = (out[j] < v[i]) ? out[j] : v[i];
        }
    }
}

/* np.add.accumulate is a sequential left-to-right loop (not pairwise);
   it SEEDS with v[0] rather than adding it to zero — 0.0 + -0.0 is +0.0,
   so the seed is bit-visible */
void repro_cumsum_f64(const double *v, int64_t n, double *out) {
    if (n == 0) return;
    double r = v[0];
    out[0] = r;
    for (int64_t i = 1; i < n; i++) {
        r = r + v[i];
        out[i] = r;
    }
}

void repro_cumsum_i64(const int64_t *v, int64_t n, int64_t *out) {
    uint64_t r = 0;
    for (int64_t i = 0; i < n; i++) {
        r += (uint64_t)v[i];
        out[i] = (int64_t)r;
    }
}

void repro_cumminmax_f64(const double *v, int64_t n, int is_max, double *out) {
    if (n == 0) return;
    double r = v[0];
    out[0] = r;
    if (is_max) {
        for (int64_t i = 1; i < n; i++) {
            r = (r > v[i]) ? r : v[i];  /* tie -> v[i], numpy's rule */
            out[i] = r;
        }
    } else {
        for (int64_t i = 1; i < n; i++) {
            r = (r < v[i]) ? r : v[i];
            out[i] = r;
        }
    }
}

void repro_cumminmax_i64(const int64_t *v, int64_t n, int is_max, int64_t *out) {
    if (n == 0) return;
    int64_t r = v[0];
    out[0] = r;
    if (is_max) {
        for (int64_t i = 1; i < n; i++) {
            r = (r > v[i]) ? r : v[i];
            out[i] = r;
        }
    } else {
        for (int64_t i = 1; i < n; i++) {
            r = (r < v[i]) ? r : v[i];
            out[i] = r;
        }
    }
}

/* The reference is `global_cumsum[i] - global_cumsum[last_boundary - 1]`:
   keep ONE running sum and subtract its boundary snapshot, so every float
   add/subtract happens in the reference's order (a per-segment restart
   would round differently). */
void repro_segscan_add_f64(const double *v, const uint8_t *b, int64_t n,
                           int inclusive, double *out) {
    if (n == 0) return;
    /* seed like cumsum does: running = v[0], not 0.0 + v[0] */
    double running = v[0], offset = 0.0;
    double x = running - offset;
    out[0] = inclusive ? x : x - v[0];
    for (int64_t i = 1; i < n; i++) {
        if (b[i]) offset = running;
        running = running + v[i];
        x = running - offset;
        out[i] = inclusive ? x : x - v[i];
    }
}

void repro_segscan_add_i64(const int64_t *v, const uint8_t *b, int64_t n,
                           int inclusive, int64_t *out) {
    uint64_t running = 0, offset = 0;
    for (int64_t i = 0; i < n; i++) {
        if (b[i]) offset = running;
        running += (uint64_t)v[i];
        uint64_t x = running - offset;
        out[i] = (int64_t)(inclusive ? x : x - (uint64_t)v[i]);
    }
}

/* The reference resolves segmented min/max through stable sort ranks:
   among bit-distinct equal values, min keeps the EARLIEST and max the
   LATEST — the opposite tie rule from the plain accumulates above. */
void repro_segscan_minmax_f64(const double *v, const uint8_t *b, int64_t n,
                              int inclusive, int is_max, double ident,
                              double *out) {
    double r = 0.0;
    for (int64_t i = 0; i < n; i++) {
        double prev = r;
        if (b[i]) {
            if (!inclusive) out[i] = ident;
            r = v[i];
        } else {
            if (!inclusive) out[i] = prev;
            if (is_max)
                r = (v[i] >= r) ? v[i] : r;  /* tie -> latest */
            else
                r = (v[i] < r) ? v[i] : r;   /* tie -> earliest */
        }
        if (inclusive) out[i] = r;
    }
}

void repro_segscan_minmax_i64(const int64_t *v, const uint8_t *b, int64_t n,
                              int inclusive, int is_max, int64_t ident,
                              int64_t *out) {
    int64_t r = 0;
    for (int64_t i = 0; i < n; i++) {
        int64_t prev = r;
        if (b[i]) {
            if (!inclusive) out[i] = ident;
            r = v[i];
        } else {
            if (!inclusive) out[i] = prev;
            if (is_max)
                r = (v[i] >= r) ? v[i] : r;
            else
                r = (v[i] < r) ? v[i] : r;
        }
        if (inclusive) out[i] = r;
    }
}
"""


def _cache_dir() -> str:
    path = os.environ.get("REPRO_KERNEL_CACHE", "").strip() or os.path.join(
        os.path.expanduser("~"), ".cache", "repro-kernels"
    )
    os.makedirs(path, exist_ok=True)
    return path


def _build_lib():
    """Compile (once per source hash) and dlopen the kernel library."""
    from cffi import FFI

    ffi = FFI()
    ffi.cdef(_CDEF)
    digest = hashlib.sha256(_SOURCE.encode()).hexdigest()[:16]
    cache = _cache_dir()
    so_path = os.path.join(cache, f"repro_kernels_{digest}.so")
    if not os.path.exists(so_path):
        c_path = os.path.join(cache, f"repro_kernels_{digest}.c")
        with open(c_path, "w") as fh:
            fh.write(_SOURCE)
        cc = os.environ.get("CC", "cc")
        tmp = f"{so_path}.{os.getpid()}.tmp"
        proc = subprocess.run(
            [cc, "-O3", "-shared", "-fPIC", "-o", tmp, c_path],
            capture_output=True,
            text=True,
        )
        if proc.returncode != 0:
            raise RuntimeError(
                f"{cc} failed to build kernel library: {proc.stderr.strip()}"
            )
        os.replace(tmp, so_path)  # atomic: concurrent workers race safely
    return ffi, ffi.dlopen(so_path)


class CffiBackend(KernelBackend):
    """Single-pass C kernels behind the reference interface."""

    name = "cffi"
    native = True

    #: arithmetic kernels exist for these dtypes; others inherit numpy
    _NUMERIC = (np.dtype(np.int64), np.dtype(np.float64))

    def __init__(self) -> None:
        self._ffi, self._lib = _build_lib()

    # -- pointer plumbing ----------------------------------------------------

    def _ptr(self, ctype: str, arr: np.ndarray):
        return self._ffi.cast(ctype, self._ffi.from_buffer(arr))

    @staticmethod
    def _rows(arr: np.ndarray) -> int:
        """Bytes per record row (0 for degenerate zero-width blocks)."""
        width = 1
        for d in arr.shape[1:]:
            width *= d
        return width * arr.dtype.itemsize

    @staticmethod
    def _fill_row(arr: np.ndarray, fill) -> np.ndarray:
        width = 1
        for d in arr.shape[1:]:
            width *= d
        return np.full(width, fill, dtype=arr.dtype)

    @staticmethod
    def _idx(idx: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(idx, dtype=np.int64)

    # -- gather / scatter ----------------------------------------------------

    def take_live(self, table: np.ndarray, idx: np.ndarray) -> np.ndarray:
        row = self._rows(table)
        if idx.ndim != 1 or row == 0 or idx.shape[0] == 0:
            return super().take_live(table, idx)
        table = np.ascontiguousarray(table)
        out = np.empty((idx.shape[0],) + table.shape[1:], dtype=table.dtype)
        self._lib.repro_take_rows_live(
            self._ptr("char *", table),
            self._ptr("int64_t *", self._idx(idx)),
            idx.shape[0],
            row,
            self._ptr("char *", out),
        )
        return out

    def take(self, table: np.ndarray, idx: np.ndarray, fill=0) -> np.ndarray:
        row = self._rows(table)
        if idx.ndim != 1 or row == 0 or idx.shape[0] == 0:
            return super().take(table, idx, fill)
        table = np.ascontiguousarray(table)
        out = np.empty((idx.shape[0],) + table.shape[1:], dtype=table.dtype)
        self._lib.repro_take_rows(
            self._ptr("char *", table),
            self._ptr("int64_t *", self._idx(idx)),
            idx.shape[0],
            row,
            self._ptr("char *", self._fill_row(table, fill)),
            self._ptr("char *", out),
        )
        return out

    def scatter(self, values: np.ndarray, dest: np.ndarray, size: int, fill=0) -> np.ndarray:
        row = self._rows(values)
        if dest.ndim != 1 or row == 0:
            return super().scatter(values, dest, size, fill)
        values = np.ascontiguousarray(values)
        out = np.empty((size,) + values.shape[1:], dtype=values.dtype)
        self._lib.repro_scatter_rows(
            self._ptr("char *", values),
            self._ptr("int64_t *", self._idx(dest)),
            dest.shape[0],
            row,
            self._ptr("char *", self._fill_row(values, fill)),
            self._ptr("char *", out),
            size,
        )
        return out

    def compress(self, mask: np.ndarray, values: np.ndarray) -> np.ndarray:
        row = self._rows(values)
        if mask.ndim != 1 or row == 0 or mask.shape[0] == 0:
            return super().compress(mask, values)
        values = np.ascontiguousarray(values)
        mask = np.ascontiguousarray(mask, dtype=np.uint8)
        # one pass: compress into a full-size scratch, then trim
        scratch = np.empty_like(values)
        k = self._lib.repro_compress_rows(
            self._ptr("char *", values),
            self._ptr("uint8_t *", mask),
            mask.shape[0],
            row,
            self._ptr("char *", scratch),
        )
        return scratch[:k].copy()

    # -- combining writes ----------------------------------------------------

    def bincount_add(self, idx: np.ndarray, weights: np.ndarray, size: int) -> np.ndarray:
        if weights.dtype not in self._NUMERIC or idx.shape[0] == 0:
            return super().bincount_add(idx, weights, size)
        # np.bincount accumulates float64 in input order; mirror exactly
        w = np.ascontiguousarray(weights, dtype=np.float64)
        out = np.zeros(size, dtype=np.float64)
        self._lib.repro_bincount_add(
            self._ptr("int64_t *", self._idx(idx)),
            self._ptr("double *", w),
            idx.shape[0],
            self._ptr("double *", out),
        )
        return out

    def add_at(self, out: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
        if (
            out.dtype not in self._NUMERIC
            or values.dtype != out.dtype
            or out.ndim != 1
            or not out.flags.c_contiguous
        ):
            return super().add_at(out, idx, values)
        values = np.ascontiguousarray(values)
        if out.dtype == np.float64:
            self._lib.repro_add_at_f64(
                self._ptr("double *", out),
                self._ptr("int64_t *", self._idx(idx)),
                self._ptr("double *", values),
                idx.shape[0],
            )
        else:
            self._lib.repro_add_at_i64(
                self._ptr("int64_t *", out),
                self._ptr("int64_t *", self._idx(idx)),
                self._ptr("int64_t *", values),
                idx.shape[0],
            )

    def scatter_reduce_at(
        self, out: np.ndarray, idx: np.ndarray, values: np.ndarray, op: str
    ) -> None:
        if op == "add":
            return self.add_at(out, idx, values)
        if (
            out.dtype not in self._NUMERIC
            or values.dtype != out.dtype
            or out.ndim != 1
            or not out.flags.c_contiguous
        ):
            return super().scatter_reduce_at(out, idx, values, op)
        values = np.ascontiguousarray(values)
        is_max = 1 if op == "max" else 0
        if out.dtype == np.float64:
            self._lib.repro_minmax_at_f64(
                self._ptr("double *", out),
                self._ptr("int64_t *", self._idx(idx)),
                self._ptr("double *", values),
                idx.shape[0],
                is_max,
            )
        else:
            self._lib.repro_minmax_at_i64(
                self._ptr("int64_t *", out),
                self._ptr("int64_t *", self._idx(idx)),
                self._ptr("int64_t *", values),
                idx.shape[0],
                is_max,
            )

    # -- scans ---------------------------------------------------------------

    def accumulate(self, values: np.ndarray, op: str) -> np.ndarray:
        if values.dtype not in self._NUMERIC or values.ndim != 1:
            return super().accumulate(values, op)
        values = np.ascontiguousarray(values)
        out = np.empty_like(values)
        n = values.shape[0]
        if values.dtype == np.float64:
            if op == "add":
                self._lib.repro_cumsum_f64(
                    self._ptr("double *", values), n, self._ptr("double *", out)
                )
            else:
                self._lib.repro_cumminmax_f64(
                    self._ptr("double *", values),
                    n,
                    1 if op == "max" else 0,
                    self._ptr("double *", out),
                )
        else:
            if op == "add":
                self._lib.repro_cumsum_i64(
                    self._ptr("int64_t *", values), n, self._ptr("int64_t *", out)
                )
            else:
                self._lib.repro_cumminmax_i64(
                    self._ptr("int64_t *", values),
                    n,
                    1 if op == "max" else 0,
                    self._ptr("int64_t *", out),
                )
        return out

    def segmented_scan(
        self, values: np.ndarray, segments: np.ndarray, op: str, inclusive: bool
    ) -> np.ndarray:
        n = values.shape[0]
        if values.dtype not in self._NUMERIC or values.ndim != 1 or n == 0:
            return super().segmented_scan(values, segments, op, inclusive)
        values = np.ascontiguousarray(values)
        boundary = np.ones(n, dtype=np.uint8)
        boundary[1:] = segments[1:] != segments[:-1]
        out = np.empty_like(values)
        if op == "add":
            if values.dtype == np.float64:
                self._lib.repro_segscan_add_f64(
                    self._ptr("double *", values),
                    self._ptr("uint8_t *", boundary),
                    n,
                    1 if inclusive else 0,
                    self._ptr("double *", out),
                )
            else:
                self._lib.repro_segscan_add_i64(
                    self._ptr("int64_t *", values),
                    self._ptr("uint8_t *", boundary),
                    n,
                    1 if inclusive else 0,
                    self._ptr("int64_t *", out),
                )
            return out
        ident = _identity(values.dtype, op)
        is_max = 1 if op == "max" else 0
        if values.dtype == np.float64:
            self._lib.repro_segscan_minmax_f64(
                self._ptr("double *", values),
                self._ptr("uint8_t *", boundary),
                n,
                1 if inclusive else 0,
                is_max,
                float(ident),
                self._ptr("double *", out),
            )
        else:
            self._lib.repro_segscan_minmax_i64(
                self._ptr("int64_t *", values),
                self._ptr("uint8_t *", boundary),
                n,
                1 if inclusive else 0,
                is_max,
                int(ident),
                self._ptr("int64_t *", out),
            )
        return out
