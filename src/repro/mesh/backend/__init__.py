"""Pluggable kernel backends for the engine's hot array primitives.

The step clock charges the paper's mesh costs; *wall-clock* speed is
decided by the host kernels that actually move the arrays underneath
:class:`~repro.mesh.engine.MeshEngine`'s counted primitives.  This
package makes those kernels swappable behind one narrow interface,
:class:`KernelBackend`:

=====================  ====================================================
``stable_argsort``     stable sort permutation (the ``sort`` body)
``take``               gather with ``-1 -> fill`` (the ``rar`` body)
``take_live``          gather, every index in range (sort permutation)
``scatter``            fill-then-scatter (the ``route`` body)
``bincount_add``       combining integer write (the ``raw add`` fast path)
``add_at``             unbuffered in-place ``+=`` scatter (``raw add``)
``scatter_reduce_at``  in-place min/max combining write (``raw min/max``)
``accumulate``         prefix combine (the ``scan`` body)
``segmented_scan``     prefix combine restarting at segment boundaries
``compress``           masked pack into a prefix (the ``compress`` body)
``reduce``             global reduction
=====================  ====================================================

Registered implementations:

``numpy``
    The reference — the exact host code the engine always ran, extracted.
    Every other backend is defined against it: *byte-identical outputs on
    every input* (gated by ``tests/mesh/test_backend_conformance.py``).
``cffi``
    Single-pass C kernels compiled on demand with the system C compiler
    and loaded through :mod:`cffi`'s ABI mode.  Compiled once per source
    hash, cached under ``REPRO_KERNEL_CACHE`` (default
    ``~/.cache/repro-kernels``).  Falls back to numpy (``native=False``)
    when cffi or a C compiler is missing.
``numba``
    ``@njit``-compiled kernels, lazily compiled and disk-cached by numba
    itself.  Falls back to numpy (``native=False``) when numba is not
    installed (it ships behind the optional ``kernels`` extra).
``array_api``
    Array-API-namespace dispatch: kernels are written against the
    namespace the *input arrays* advertise (``__array_namespace__``), so
    a CuPy array would route to CuPy kernels without code changes; plain
    numpy arrays resolve to numpy's namespace.

Selection: ``MeshEngine(..., backend="cffi")`` or the ``REPRO_BACKEND``
environment variable (unset = ``numpy``).  ``backend="compiled"`` is an
alias for the best available compiled backend (numba, else cffi, else
the numpy fallback).  Step charging, paranoid invariants, fault
injection and tracing all live *above* this interface and are untouched
by the backend choice.

Fallback contract: asking for a backend whose toolchain is missing never
raises — you get a working backend whose ``native`` flag is False and
whose ``fallback_reason`` says why, so benches can record what actually
ran and tests can skip cleanly.
"""

from __future__ import annotations

import os
from typing import Callable

from repro.mesh.backend.numpy_backend import KernelBackend, NumpyBackend

__all__ = [
    "KernelBackend",
    "NumpyBackend",
    "register_backend",
    "registered_backends",
    "get_backend",
    "resolve_backend",
    "backend_default",
]

_FACTORIES: dict[str, Callable[[], KernelBackend]] = {}
_INSTANCES: dict[str, KernelBackend] = {}


def register_backend(name: str, factory: Callable[[], KernelBackend]) -> None:
    """Register a backend factory under ``name`` (last registration wins).

    The factory runs at most once; :func:`get_backend` caches the
    instance.  A factory must honour the fallback contract: return a
    usable backend even when its toolchain is absent (``native=False``).
    """
    _FACTORIES[name] = factory
    _INSTANCES.pop(name, None)


def registered_backends() -> tuple[str, ...]:
    """All registered backend names, in registration order."""
    return tuple(_FACTORIES)


def get_backend(name: str) -> KernelBackend:
    """The (cached) backend instance registered under ``name``."""
    if name not in _INSTANCES:
        if name not in _FACTORIES:
            raise ValueError(
                f"unknown backend {name!r}; registered: {', '.join(_FACTORIES)}"
            )
        _INSTANCES[name] = _FACTORIES[name]()
    return _INSTANCES[name]


def backend_default() -> str:
    """Process-wide default backend name (``REPRO_BACKEND``, else numpy)."""
    return os.environ.get("REPRO_BACKEND", "").strip() or "numpy"


def resolve_backend(spec: "str | KernelBackend | None") -> KernelBackend:
    """Resolve a constructor argument to a backend instance.

    ``None`` reads :func:`backend_default`; a string is looked up in the
    registry; an instance passes through.  The ``compiled`` alias picks
    the first *native* compiled backend (numba, then cffi), falling back
    to numpy when neither toolchain is present.
    """
    if spec is None:
        spec = backend_default()
    if isinstance(spec, KernelBackend):
        return spec
    if spec == "compiled":
        for name in ("numba", "cffi"):
            candidate = get_backend(name)
            if candidate.native:
                return candidate
        return get_backend("numpy")
    return get_backend(spec)


def _numpy_fallback(name: str, reason: str) -> KernelBackend:
    """A numpy-kernelled stand-in for an unavailable backend."""
    backend = NumpyBackend()
    backend.name = name
    backend.native = False
    backend.fallback_reason = reason
    return backend


def _make_cffi() -> KernelBackend:
    try:
        from repro.mesh.backend.cffi_backend import CffiBackend

        return CffiBackend()
    except Exception as exc:  # missing cffi / cc, compile failure
        return _numpy_fallback("cffi", f"{type(exc).__name__}: {exc}")


def _make_numba() -> KernelBackend:
    try:
        from repro.mesh.backend.numba_backend import NumbaBackend

        return NumbaBackend()
    except Exception as exc:  # numba not installed (the `kernels` extra)
        return _numpy_fallback("numba", f"{type(exc).__name__}: {exc}")


def _make_array_api() -> KernelBackend:
    from repro.mesh.backend.array_api_backend import ArrayApiBackend

    return ArrayApiBackend()


register_backend("numpy", NumpyBackend)
register_backend("cffi", _make_cffi)
register_backend("numba", _make_numba)
register_backend("array_api", _make_array_api)
