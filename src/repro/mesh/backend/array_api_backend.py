"""Array-API-namespace dispatch backend.

Kernels are written against the namespace the *input arrays* advertise
through ``__array_namespace__`` (array API standard >= 2022.12), so a
CuPy or other array-API array routes to its own library's kernels with
no code changes here.  Plain numpy inputs resolve to numpy's namespace
and take the inherited reference kernels verbatim — which is what makes
this backend byte-identical on the conformance suite (the only arrays
this repo currently produces are numpy's).

For foreign namespaces, kernels the standard can express (argsort, take,
compress, prefix sums, reductions) run natively on the device; the
scatter-combine and segmented kernels the standard has no primitive for
cross over DLPack to the numpy reference and back — correct, if not
fast, which keeps the fallback contract honest until a device-native
implementation lands.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.backend.numpy_backend import KernelBackend

__all__ = ["ArrayApiBackend"]


def _foreign_namespace(*arrays):
    """The arrays' array-API namespace, or None when it is numpy's."""
    for a in arrays:
        ns = getattr(a, "__array_namespace__", None)
        if ns is None:
            continue
        xp = ns()
        if getattr(xp, "__name__", "numpy").split(".")[0] != "numpy":
            return xp
    return None


def _to_numpy(a) -> np.ndarray:
    try:
        return np.from_dlpack(a)
    except (TypeError, RuntimeError, BufferError):
        return np.asarray(a)


class ArrayApiBackend(KernelBackend):
    """Namespace-dispatching kernels; numpy inputs take the reference."""

    name = "array_api"
    native = True

    def _bridge(self, xp, call):
        """Run the numpy reference on host copies, return in ``xp``."""
        return xp.asarray(call())

    # -- sort ----------------------------------------------------------------

    def stable_argsort(self, keys):
        xp = _foreign_namespace(keys)
        if xp is None:
            return super().stable_argsort(keys)
        return xp.argsort(keys, stable=True)

    # -- gather / scatter ----------------------------------------------------

    def take_live(self, table, idx):
        xp = _foreign_namespace(table, idx)
        if xp is None:
            return super().take_live(table, idx)
        return xp.take(table, idx, axis=0)

    def take(self, table, idx, fill=0):
        xp = _foreign_namespace(table, idx)
        if xp is None:
            return super().take(table, idx, fill)
        live = idx >= 0
        gathered = xp.take(table, xp.where(live, idx, xp.zeros_like(idx)), axis=0)
        shape = (idx.shape[0],) + (1,) * (len(table.shape) - 1)
        return xp.where(
            xp.reshape(live, shape),
            gathered,
            xp.full((), fill, dtype=table.dtype),
        )

    def scatter(self, values, dest, size, fill=0):
        xp = _foreign_namespace(values, dest)
        if xp is None:
            return super().scatter(values, dest, size, fill)
        return self._bridge(
            xp, lambda: super(ArrayApiBackend, self).scatter(
                _to_numpy(values), _to_numpy(dest), size, fill
            )
        )

    def compress(self, mask, values):
        xp = _foreign_namespace(mask, values)
        if xp is None:
            return super().compress(mask, values)
        return xp.take(values, xp.nonzero(mask)[0], axis=0)

    # -- combining writes ----------------------------------------------------

    def bincount_add(self, idx, weights, size):
        xp = _foreign_namespace(idx, weights)
        if xp is None:
            return super().bincount_add(idx, weights, size)
        return self._bridge(
            xp, lambda: super(ArrayApiBackend, self).bincount_add(
                _to_numpy(idx), _to_numpy(weights), size
            )
        )

    def add_at(self, out, idx, values):
        xp = _foreign_namespace(out, idx, values)
        if xp is None:
            return super().add_at(out, idx, values)
        host = _to_numpy(out).copy()
        np.add.at(host, _to_numpy(idx), _to_numpy(values))
        out[...] = xp.asarray(host)

    def scatter_reduce_at(self, out, idx, values, op):
        xp = _foreign_namespace(out, idx, values)
        if xp is None:
            return super().scatter_reduce_at(out, idx, values, op)
        host = _to_numpy(out).copy()
        super().scatter_reduce_at(host, _to_numpy(idx), _to_numpy(values), op)
        out[...] = xp.asarray(host)

    # -- scans / reductions --------------------------------------------------

    def accumulate(self, values, op):
        xp = _foreign_namespace(values)
        if xp is None:
            return super().accumulate(values, op)
        if op == "add" and hasattr(xp, "cumulative_sum"):
            return xp.cumulative_sum(values)
        return self._bridge(
            xp, lambda: super(ArrayApiBackend, self).accumulate(
                _to_numpy(values), op
            )
        )

    def segmented_scan(self, values, segments, op, inclusive):
        xp = _foreign_namespace(values, segments)
        if xp is None:
            return super().segmented_scan(values, segments, op, inclusive)
        return self._bridge(
            xp, lambda: super(ArrayApiBackend, self).segmented_scan(
                _to_numpy(values), _to_numpy(segments), op, inclusive
            )
        )

    def reduce(self, values, op):
        xp = _foreign_namespace(values)
        if xp is None:
            return super().reduce(values, op)
        if op == "add":
            return xp.sum(values)
        return xp.min(values) if op == "min" else xp.max(values)
