"""The numpy reference backend — the kernel interface's ground truth.

Every kernel here is the exact host code the engine primitives ran before
the backend split; other backends must reproduce these outputs *bit for
bit* on every input (the conformance suite enforces it, ties, ``-0.0``
and empty arrays included).  The base class doubles as the interface
definition: a backend subclasses :class:`KernelBackend` and overrides the
kernels its toolchain accelerates — anything left alone inherits the
reference implementation, which is what makes partial backends safe.
"""

from __future__ import annotations

import numpy as np

__all__ = ["KernelBackend", "NumpyBackend"]

_REDUCERS = {
    "add": np.add,
    "min": np.minimum,
    "max": np.maximum,
}


def _identity(dtype: np.dtype, op: str):
    """The min/max identity the engine uses for exclusive scans and fills."""
    if dtype.kind == "f":
        return np.inf if op == "min" else -np.inf
    info = np.iinfo(dtype)
    return info.max if op == "min" else info.min


class KernelBackend:
    """Narrow host-kernel interface under the engine's counted primitives.

    Contract: for every kernel and every input the engine can produce,
    the output must be byte-identical (dtype, shape, and bit pattern) to
    :class:`NumpyBackend`'s.  Kernels receive C-ordered numpy arrays —
    1-D, or 2-D with a leading record axis (fused dtype blocks) — and
    must not mutate their inputs except where the name says so
    (``add_at`` / ``scatter_reduce_at`` combine into ``out`` in place).

    ``native`` is True when the backend's own kernels are live; a
    registry fallback (toolchain missing) sets it False and records
    ``fallback_reason`` so benches and tests can tell what actually ran.
    """

    name = "numpy"
    native = True
    fallback_reason: str | None = None

    # -- sort ----------------------------------------------------------------

    def stable_argsort(self, keys: np.ndarray) -> np.ndarray:
        """Stable sort permutation (unique, so backend-independent)."""
        return np.argsort(keys, kind="stable")

    # -- gather / scatter ----------------------------------------------------

    def take_live(self, table: np.ndarray, idx: np.ndarray) -> np.ndarray:
        """``out[i] = table[idx[i]]`` with every index in range."""
        return table[idx]

    def take(self, table: np.ndarray, idx: np.ndarray, fill=0) -> np.ndarray:
        """Gather rows; ``idx[i] == -1`` yields a ``fill`` row."""
        live = idx >= 0
        out = np.full((idx.shape[0],) + table.shape[1:], fill, dtype=table.dtype)
        out[live] = table[idx[live]]
        return out

    def scatter(self, values: np.ndarray, dest: np.ndarray, size: int, fill=0) -> np.ndarray:
        """Route row *i* to ``dest[i]``; ``-1`` discards; holes get ``fill``."""
        live = dest >= 0
        out = np.full((size,) + values.shape[1:], fill, dtype=values.dtype)
        out[dest[live]] = values[live]
        return out

    def compress(self, mask: np.ndarray, values: np.ndarray) -> np.ndarray:
        """Pack the rows selected by ``mask`` into a prefix."""
        return values[mask]

    # -- combining writes ----------------------------------------------------

    def bincount_add(self, idx: np.ndarray, weights: np.ndarray, size: int) -> np.ndarray:
        """Weighted bincount (float64 accumulator, input order)."""
        return np.bincount(idx, weights=weights, minlength=size)

    def add_at(self, out: np.ndarray, idx: np.ndarray, values: np.ndarray) -> None:
        """Unbuffered ``out[idx[i]] += values[i]`` in input order."""
        np.add.at(out, idx, values)

    def scatter_reduce_at(
        self, out: np.ndarray, idx: np.ndarray, values: np.ndarray, op: str
    ) -> None:
        """Unbuffered combining min/max write into ``out`` in input order."""
        _REDUCERS[op].at(out, idx, values)

    # -- scans / reductions --------------------------------------------------

    def accumulate(self, values: np.ndarray, op: str) -> np.ndarray:
        """Inclusive prefix combine in processor order."""
        return _REDUCERS[op].accumulate(values)

    def segmented_scan(
        self, values: np.ndarray, segments: np.ndarray, op: str, inclusive: bool
    ) -> np.ndarray:
        """Prefix combine restarting wherever the segment id changes.

        Ids need not be sorted, only grouped.  The reference shapes are
        load-bearing for bit-identity: ``add`` is a *global* cumsum minus
        the running total at the last boundary (NOT a per-segment restart
        — the float rounding differs), and ``min``/``max`` resolve ties
        through stable sort ranks, so among bit-distinct equal values
        (``-0.0`` vs ``0.0``) max picks the latest and min the earliest.
        """
        n = values.shape[0]
        if n == 0:
            return values.copy()
        boundary = np.ones(n, dtype=bool)
        boundary[1:] = segments[1:] != segments[:-1]
        seg_index = np.cumsum(boundary) - 1
        if op == "add":
            running = np.cumsum(values)
            offsets = np.concatenate([[0], running[:-1][boundary[1:]]])
            result = running - offsets[seg_index]
            if not inclusive:
                result = result - values
            return result
        # min/max via offset-adjusted rank accumulate (see engine history):
        # each segment's ranks live in a disjoint integer band, so one
        # global accumulate restarts exactly at every boundary.
        order = np.argsort(values, kind="stable")
        rank = np.empty(n, dtype=np.int64)
        rank[order] = np.arange(n, dtype=np.int64)
        offset = seg_index * n
        if op == "max":
            run = np.maximum.accumulate(rank + offset) - offset
        else:
            run = np.minimum.accumulate(rank - offset) + offset
        inc = values[order[run]]
        if inclusive:
            return inc
        out = np.empty_like(values)
        out[1:] = inc[:-1]
        out[np.flatnonzero(boundary)] = _identity(values.dtype, op)
        return out

    def reduce(self, values: np.ndarray, op: str):
        """Global reduction (numpy's pairwise float sum is the reference)."""
        if op == "add":
            return values.sum()
        return values.min() if op == "min" else values.max()


class NumpyBackend(KernelBackend):
    """The reference backend: :class:`KernelBackend`'s own kernels."""
