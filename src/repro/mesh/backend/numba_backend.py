"""``@njit``-compiled kernels (the optional ``kernels`` extra).

Importing this module raises :class:`ImportError` when numba is not
installed; the registry factory catches that and hands out a numpy
fallback, so ``get_backend("numba")`` never fails.

Each kernel is the same single-pass loop as the cffi backend's C, and
the same bit-identity rules apply (see :mod:`.cffi_backend` — tie rules
for min/max, global-running-sum segmented add, int64 wraparound via
uint64).  Kernels are lazily compiled on first call and disk-cached by
numba (``cache=True``), so only the first bench point in a fresh
environment pays the JIT cost.  Row-shaped kernels run on a
``(n, width)`` view of the block, so any numba-supported dtype works;
anything else (and float ``reduce``/``stable_argsort``) delegates to the
numpy reference.
"""

from __future__ import annotations

import numpy as np
from numba import njit  # noqa: F401  (ImportError here = fallback upstream)

from repro.mesh.backend.numpy_backend import KernelBackend, _identity

__all__ = ["NumbaBackend"]


@njit(cache=True)
def _take_rows(table, idx, fill_row, out):
    w = table.shape[1]
    for i in range(idx.shape[0]):
        j = idx[i]
        if j < 0:
            for k in range(w):
                out[i, k] = fill_row[k]
        else:
            for k in range(w):
                out[i, k] = table[j, k]


@njit(cache=True)
def _take_rows_live(table, idx, out):
    w = table.shape[1]
    for i in range(idx.shape[0]):
        j = idx[i]
        for k in range(w):
            out[i, k] = table[j, k]


@njit(cache=True)
def _scatter_rows(src, dest, fill_row, out):
    w = src.shape[1]
    for i in range(out.shape[0]):
        for k in range(w):
            out[i, k] = fill_row[k]
    for i in range(dest.shape[0]):
        j = dest[i]
        if j >= 0:
            for k in range(w):
                out[j, k] = src[i, k]


@njit(cache=True)
def _compress_rows(src, mask, out):
    w = src.shape[1]
    n = 0
    for i in range(mask.shape[0]):
        if mask[i]:
            for k in range(w):
                out[n, k] = src[i, k]
            n += 1
    return n


@njit(cache=True)
def _bincount_add(idx, w, out):
    for i in range(idx.shape[0]):
        out[idx[i]] += w[i]


@njit(cache=True)
def _add_at_f64(out, idx, v):
    for i in range(idx.shape[0]):
        out[idx[i]] += v[i]


@njit(cache=True)
def _add_at_i64(out, idx, v):
    # view as uint64 upstream: numba int64 add would trap-free wrap anyway,
    # but uint64 wrap is the defined behaviour numpy exhibits
    for i in range(idx.shape[0]):
        out[idx[i]] += v[i]


@njit(cache=True)
def _minmax_at(out, idx, v, is_max):
    # numpy's minimum/maximum return the SECOND operand on ties (-0.0/0.0)
    if is_max:
        for i in range(idx.shape[0]):
            j = idx[i]
            out[j] = out[j] if out[j] > v[i] else v[i]
    else:
        for i in range(idx.shape[0]):
            j = idx[i]
            out[j] = out[j] if out[j] < v[i] else v[i]


@njit(cache=True)
def _cumsum(v, out):
    # accumulate SEEDS with v[0] (0.0 + -0.0 is +0.0, so seeding is visible)
    if v.shape[0] == 0:
        return
    r = v[0]
    out[0] = r
    for i in range(1, v.shape[0]):
        r = r + v[i]
        out[i] = r


@njit(cache=True)
def _cumminmax(v, is_max, out):
    if v.shape[0] == 0:
        return
    r = v[0]
    out[0] = r
    if is_max:
        for i in range(1, v.shape[0]):
            r = r if r > v[i] else v[i]  # tie -> v[i], numpy's rule
            out[i] = r
    else:
        for i in range(1, v.shape[0]):
            r = r if r < v[i] else v[i]
            out[i] = r


@njit(cache=True)
def _segscan_add(v, boundary, inclusive, out):
    # global running sum minus its boundary snapshot == cumsum - offsets,
    # the reference's float rounding order; seeded with v[0] like cumsum
    if v.shape[0] == 0:
        return
    running = v[0]
    offset = v.dtype.type(0)
    x = running - offset
    out[0] = x if inclusive else x - v[0]
    for i in range(1, v.shape[0]):
        if boundary[i]:
            offset = running
        running = running + v[i]
        x = running - offset
        out[i] = x if inclusive else x - v[i]


@njit(cache=True)
def _segscan_minmax(v, boundary, inclusive, is_max, ident, out):
    # reference (rank-trick) ties: min keeps earliest, max keeps latest
    r = v.dtype.type(0)
    for i in range(v.shape[0]):
        prev = r
        if boundary[i]:
            if not inclusive:
                out[i] = ident
            r = v[i]
        else:
            if not inclusive:
                out[i] = prev
            if is_max:
                r = v[i] if v[i] >= r else r
            else:
                r = v[i] if v[i] < r else r
        if inclusive:
            out[i] = r


class NumbaBackend(KernelBackend):
    """njit kernels behind the reference interface (``kernels`` extra)."""

    name = "numba"
    native = True

    _NUMERIC = (np.dtype(np.int64), np.dtype(np.float64))
    _ROW_KINDS = "biuf"  # dtype kinds the row kernels specialize over

    @staticmethod
    def _as2d(arr: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(arr).reshape(arr.shape[0], -1)

    @staticmethod
    def _idx(idx: np.ndarray) -> np.ndarray:
        return np.ascontiguousarray(idx, dtype=np.int64)

    def _rows_ok(self, arr: np.ndarray, idx: np.ndarray) -> bool:
        width = 1
        for d in arr.shape[1:]:
            width *= d
        return arr.dtype.kind in self._ROW_KINDS and idx.ndim == 1 and width > 0

    # -- gather / scatter ----------------------------------------------------

    def take_live(self, table, idx):
        if not self._rows_ok(table, idx) or idx.shape[0] == 0:
            return super().take_live(table, idx)
        out = np.empty((idx.shape[0],) + table.shape[1:], dtype=table.dtype)
        _take_rows_live(self._as2d(table), self._idx(idx), self._as2d(out))
        return out

    def take(self, table, idx, fill=0):
        if not self._rows_ok(table, idx) or idx.shape[0] == 0:
            return super().take(table, idx, fill)
        out = np.empty((idx.shape[0],) + table.shape[1:], dtype=table.dtype)
        fill_row = np.full(self._as2d(out).shape[1], fill, dtype=table.dtype)
        _take_rows(self._as2d(table), self._idx(idx), fill_row, self._as2d(out))
        return out

    def scatter(self, values, dest, size, fill=0):
        if not self._rows_ok(values, dest):
            return super().scatter(values, dest, size, fill)
        out = np.empty((size,) + values.shape[1:], dtype=values.dtype)
        fill_row = np.full(self._as2d(out).shape[1], fill, dtype=values.dtype)
        _scatter_rows(self._as2d(values), self._idx(dest), fill_row, self._as2d(out))
        return out

    def compress(self, mask, values):
        if not self._rows_ok(values, mask) or mask.shape[0] == 0:
            return super().compress(mask, values)
        scratch = np.empty_like(np.ascontiguousarray(values))
        n = _compress_rows(
            self._as2d(values),
            np.ascontiguousarray(mask, dtype=np.bool_),
            self._as2d(scratch),
        )
        return scratch[:n].copy()

    # -- combining writes ----------------------------------------------------

    def bincount_add(self, idx, weights, size):
        if weights.dtype not in self._NUMERIC or idx.shape[0] == 0:
            return super().bincount_add(idx, weights, size)
        out = np.zeros(size, dtype=np.float64)
        _bincount_add(
            self._idx(idx), np.ascontiguousarray(weights, dtype=np.float64), out
        )
        return out

    def add_at(self, out, idx, values):
        if (
            out.dtype not in self._NUMERIC
            or values.dtype != out.dtype
            or out.ndim != 1
            or not out.flags.c_contiguous
        ):
            return super().add_at(out, idx, values)
        values = np.ascontiguousarray(values)
        if out.dtype == np.float64:
            _add_at_f64(out, self._idx(idx), values)
        else:
            _add_at_i64(out.view(np.uint64), self._idx(idx), values.view(np.uint64))

    def scatter_reduce_at(self, out, idx, values, op):
        if op == "add":
            return self.add_at(out, idx, values)
        if (
            out.dtype not in self._NUMERIC
            or values.dtype != out.dtype
            or out.ndim != 1
            or not out.flags.c_contiguous
        ):
            return super().scatter_reduce_at(out, idx, values, op)
        _minmax_at(
            out, self._idx(idx), np.ascontiguousarray(values), op == "max"
        )

    # -- scans ---------------------------------------------------------------

    def accumulate(self, values, op):
        if values.dtype not in self._NUMERIC or values.ndim != 1:
            return super().accumulate(values, op)
        values = np.ascontiguousarray(values)
        out = np.empty_like(values)
        if op == "add":
            if values.dtype == np.int64:
                _cumsum(values.view(np.uint64), out.view(np.uint64))
            else:
                _cumsum(values, out)
        else:
            _cumminmax(values, op == "max", out)
        return out

    def segmented_scan(self, values, segments, op, inclusive):
        n = values.shape[0]
        if values.dtype not in self._NUMERIC or values.ndim != 1 or n == 0:
            return super().segmented_scan(values, segments, op, inclusive)
        values = np.ascontiguousarray(values)
        boundary = np.ones(n, dtype=np.bool_)
        boundary[1:] = segments[1:] != segments[:-1]
        out = np.empty_like(values)
        if op == "add":
            if values.dtype == np.int64:
                _segscan_add(
                    values.view(np.uint64), boundary, inclusive, out.view(np.uint64)
                )
            else:
                _segscan_add(values, boundary, inclusive, out)
            return out
        ident = values.dtype.type(_identity(values.dtype, op))
        _segscan_minmax(values, boundary, inclusive, op == "max", ident, out)
        return out
