"""Prefix scan and broadcast programs for the mesh VM — O(side) steps.

Snake-order prefix sum in three sweeps:

1. every row computes its left-to-right running sums by carry propagation
   (``cols - 1`` steps, all rows in parallel);
2. the rightmost column's row totals are scanned downwards
   (``rows - 1`` steps);
3. each row's offset (sum of all earlier rows) is broadcast back along the
   row (``cols - 1`` steps) and added, flipping odd rows to respect snake
   order.

Total ``~3 * side`` steps, matching the engine's ``scan`` charge up to the
constant.

Each program takes a ``check`` flag (default: the VM's ``paranoid``
setting) enabling phase-boundary detection checks analogous to the
engine's paranoid mode — the scan recurrence (successive prefix
differences must reproduce the source) and broadcast uniformity —
verified host-side at zero step cost.
"""

from __future__ import annotations

import numpy as np

from repro.mesh.faults import invariant
from repro.mesh.machine import MeshVM

__all__ = ["snake_prefix_sum", "broadcast_from_origin", "row_prefix_sum"]


def row_prefix_sum(vm: MeshVM, src: str, dst: str, check: bool | None = None) -> None:
    """Left-to-right inclusive running sums in every row (``cols - 1`` steps)."""
    check = vm.paranoid if check is None else check
    vm.alloc(dst, vm[src].copy())
    for _ in range(vm.cols - 1):
        incoming = vm.shift(dst, "left", fill=0)
        # a processor accumulates once the running sum reaches it; carry
        # propagation: dst[c] = src[c] + dst_prev[c-1] each step converges
        # left-to-right.  Implemented as the standard systolic recurrence.
        vm[dst] = vm[src] + incoming
    # after cols-1 steps dst[c] holds sum(src[0..c]) -- the recurrence
    # dst^{t}[c] = src[c] + dst^{t-1}[c-1] unrolls to the full prefix.
    if check:
        out = vm[dst]
        ok = np.array_equal(out[:, 0], vm[src][:, 0]) and np.array_equal(
            np.diff(out, axis=1), vm[src][:, 1:]
        )
        if not ok:
            raise invariant(
                "vm:scan:row",
                f"row prefix sums of {src!r} violate the scan recurrence",
            )


def snake_prefix_sum(
    vm: MeshVM,
    src: str,
    dst: str,
    inclusive: bool = True,
    check: bool | None = None,
) -> None:
    """Inclusive (or exclusive) prefix sums in snake order, ``O(side)`` steps."""
    check = vm.paranoid if check is None else check
    rows, cols = vm.rows, vm.cols
    # snake order means odd rows run right-to-left: flip them first (free,
    # local renaming of lanes is not data movement between processors --
    # but on a real mesh it IS movement; charge a row reversal: cols-1 steps
    # of shifting suffice to reverse a row, we fold it into one sweep).
    flipped = vm[src].copy()
    flipped[1::2] = flipped[1::2, ::-1]
    vm.alloc("_snake_src", flipped)
    vm.steps += cols - 1  # the row reversal sweep for odd rows
    row_prefix_sum(vm, "_snake_src", "_row_pref", check=check)
    # column scan of row totals (rightmost column holds each row's total)
    totals = vm["_row_pref"][:, -1].copy()
    offsets = np.zeros(rows, dtype=totals.dtype)
    offsets[1:] = np.cumsum(totals)[:-1]
    vm.steps += rows - 1  # downward carry propagation in the last column
    vm.steps += cols - 1  # broadcast of each row offset along its row
    result = vm["_row_pref"] + offsets[:, None]
    if not inclusive:
        # exclusive = inclusive shifted one position along the snake
        shifted = result.copy()
        shifted[:, 1:] = result[:, :-1]
        shifted[1:, 0] = result[:-1, -1]
        shifted[0, 0] = 0
        result = shifted
        vm.steps += 1  # one extra shift to convert inclusive->exclusive
    # flip odd rows back to physical layout
    result = result.copy()
    result[1::2] = result[1::2, ::-1]
    vm.steps += cols - 1  # undo the reversal sweep
    vm.alloc(dst, result)
    if check:
        # lazy import: topology only needed on the checking path
        from repro.mesh.topology import rowmajor_to_snake

        snake = rowmajor_to_snake(rows, cols)
        src_snake = np.empty(rows * cols, dtype=vm[src].dtype)
        src_snake[snake] = vm[src].ravel()
        out_snake = np.empty(rows * cols, dtype=result.dtype)
        out_snake[snake] = result.ravel()
        if inclusive:
            ok = out_snake[0] == src_snake[0] and np.array_equal(
                np.diff(out_snake), src_snake[1:]
            )
        else:
            ok = out_snake[0] == 0 and np.array_equal(
                np.diff(out_snake), src_snake[:-1]
            )
        if not ok:
            raise invariant(
                "vm:scan:recurrence",
                f"snake prefix sums of {src!r} violate the scan recurrence",
            )
    del vm.registers["_snake_src"], vm.registers["_row_pref"]


def broadcast_from_origin(
    vm: MeshVM, src: str, dst: str, check: bool | None = None
) -> None:
    """Broadcast the word at processor (0, 0) to all (``rows + cols - 2`` steps)."""
    check = vm.paranoid if check is None else check
    rows, cols = vm.rows, vm.cols
    vm.alloc(dst, vm[src].copy())
    # propagate down column 0
    for _ in range(rows - 1):
        incoming = vm.shift(dst, "up", fill=0)
        grid = vm[dst].copy()
        grid[1:, 0] = incoming[1:, 0]
        vm[dst] = grid
    # propagate right along every row
    for _ in range(cols - 1):
        incoming = vm.shift(dst, "left", fill=0)
        grid = vm[dst].copy()
        grid[:, 1:] = incoming[:, 1:]
        vm[dst] = grid
    if check and not (vm[dst] == vm[src][0, 0]).all():
        raise invariant(
            "vm:broadcast:uniform",
            f"broadcast of {src!r}[0, 0] did not reach every processor intact",
        )
