"""Sorting programs for the mesh VM.

* :func:`oddeven_transposition_rows` — sort every row independently by
  odd-even transposition (``cols`` phases, one communication step each);
  rows can sort in alternating directions to produce snake order.
* :func:`oddeven_transposition_cols` — same along columns.
* :func:`shearsort` — sort the whole grid into snake order in
  ``(ceil(log2 rows) + 1)`` row/column rounds, ``O(side log side)`` steps.

Shearsort is the *executable witness* that mesh sorting with the data
movement the engine assumes exists; the engine charges the optimal-sort
cost (3 * side, Schnorr–Shamir) as discussed in DESIGN.md.

Payload registers move together with the key (one record per processor).

Each program takes a ``check`` flag (default: the VM's ``paranoid``
setting) enabling phase-boundary detection checks analogous to the
engine's paranoid mode: post-sort orderedness plus key-multiset
preservation, verified host-side at zero step cost, raising
:class:`~repro.mesh.faults.InvariantViolation` on corruption.
"""

from __future__ import annotations

import math

import numpy as np

from repro.mesh.faults import invariant
from repro.mesh.machine import MeshVM

__all__ = [
    "oddeven_transposition_rows",
    "oddeven_transposition_cols",
    "shearsort",
]


def _exchange_pairs_rows(
    vm: MeshVM, key: str, payloads: list[str], phase: int, ascending: np.ndarray
) -> None:
    """One odd-even transposition phase along rows.

    Pairs are columns ``(2i + phase, 2i + phase + 1)``.  ``ascending`` is a
    per-row boolean (True = sort that row left-to-right ascending).
    """
    cols = vm.cols
    regs = [key] + payloads
    # each processor looks at its RIGHT neighbour's record (one comm step,
    # counted once for the whole record)
    right = vm.shift_many(regs, "right", fill=0)
    left = vm.shift_many(regs, "left", fill=0)
    vm.steps -= 1  # the pairwise exchange is one bidirectional step
    col_idx = np.arange(cols)
    is_left_of_pair = (col_idx % 2) == (phase % 2)
    has_partner_right = is_left_of_pair & (col_idx < cols - 1)
    has_partner_left = (~is_left_of_pair) & (col_idx > 0)

    key_grid = vm[key]
    asc = ascending[:, None]
    # left element of a pair keeps min if ascending else max
    take_right = has_partner_right[None, :] & np.where(
        asc, key_grid > right[0], key_grid < right[0]
    )
    # right element of a pair keeps max if ascending else min
    take_left = has_partner_left[None, :] & np.where(
        asc, key_grid < left[0], key_grid > left[0]
    )
    for i, reg in enumerate(regs):
        grid = vm[reg].copy()
        grid[take_right] = right[i][take_right]
        grid[take_left] = left[i][take_left]
        vm[reg] = grid


def _exchange_pairs_cols(vm: MeshVM, key: str, payloads: list[str], phase: int) -> None:
    """One odd-even transposition phase along columns (always ascending down)."""
    rows = vm.rows
    regs = [key] + payloads
    below = vm.shift_many(regs, "down", fill=0)
    above = vm.shift_many(regs, "up", fill=0)
    vm.steps -= 1
    row_idx = np.arange(rows)
    is_top_of_pair = (row_idx % 2) == (phase % 2)
    has_partner_below = is_top_of_pair & (row_idx < rows - 1)
    has_partner_above = (~is_top_of_pair) & (row_idx > 0)

    key_grid = vm[key]
    take_below = has_partner_below[:, None] & (key_grid > below[0])
    take_above = has_partner_above[:, None] & (key_grid < above[0])
    for i, reg in enumerate(regs):
        grid = vm[reg].copy()
        grid[take_below] = below[i][take_below]
        grid[take_above] = above[i][take_above]
        vm[reg] = grid


def _check_multiset(vm: MeshVM, key: str, before: np.ndarray, where: str) -> None:
    """The sort moved records without losing/duplicating/altering any key."""
    after = vm[key]
    if not np.array_equal(np.sort(before, axis=None), np.sort(after, axis=None)):
        raise invariant(
            where, f"key register {key!r} multiset changed across the sort"
        )


def oddeven_transposition_rows(
    vm: MeshVM,
    key: str,
    payloads: list[str] | None = None,
    snake: bool = False,
    check: bool | None = None,
) -> None:
    """Sort every row in ``cols`` phases; ``snake=True`` alternates direction."""
    payloads = payloads or []
    check = vm.paranoid if check is None else check
    before = vm[key].copy() if check else None
    if snake:
        ascending = (np.arange(vm.rows) % 2) == 0
    else:
        ascending = np.ones(vm.rows, dtype=bool)
    for phase in range(vm.cols):
        _exchange_pairs_rows(vm, key, payloads, phase, ascending)
    if check:
        _check_multiset(vm, key, before, "vm:sort:rows:multiset")
        diffs = np.diff(vm[key], axis=1)
        ok = np.where(ascending[:, None], diffs >= 0, diffs <= 0)
        if not ok.all():
            raise invariant(
                "vm:sort:rows:sorted",
                f"register {key!r} rows unsorted after odd-even transposition",
            )


def oddeven_transposition_cols(
    vm: MeshVM,
    key: str,
    payloads: list[str] | None = None,
    check: bool | None = None,
) -> None:
    """Sort every column (top-to-bottom ascending) in ``rows`` phases."""
    payloads = payloads or []
    check = vm.paranoid if check is None else check
    before = vm[key].copy() if check else None
    for phase in range(vm.rows):
        _exchange_pairs_cols(vm, key, payloads, phase)
    if check:
        _check_multiset(vm, key, before, "vm:sort:cols:multiset")
        if not (np.diff(vm[key], axis=0) >= 0).all():
            raise invariant(
                "vm:sort:cols:sorted",
                f"register {key!r} columns unsorted after odd-even transposition",
            )


def shearsort(
    vm: MeshVM,
    key: str,
    payloads: list[str] | None = None,
    check: bool | None = None,
) -> None:
    """Sort the grid into snake order (ascending along the snake).

    ``ceil(log2 rows) + 1`` rounds of (snake row sort, column sort), plus a
    final row sort — the classic shearsort schedule.
    """
    payloads = payloads or []
    check = vm.paranoid if check is None else check
    before = vm[key].copy() if check else None
    rounds = max(1, math.ceil(math.log2(max(vm.rows, 2))))
    for _ in range(rounds):
        oddeven_transposition_rows(vm, key, payloads, snake=True, check=check)
        oddeven_transposition_cols(vm, key, payloads, check=check)
    oddeven_transposition_rows(vm, key, payloads, snake=True, check=check)
    if check:
        _check_multiset(vm, key, before, "vm:sort:snake:multiset")
        # lazy import: topology only needed on the checking path
        from repro.mesh.topology import rowmajor_to_snake

        flat = vm[key].ravel()
        in_snake = np.empty_like(flat)
        in_snake[rowmajor_to_snake(vm.rows, vm.cols)] = flat
        if not (np.diff(in_snake) >= 0).all():
            raise invariant(
                "vm:sort:snake:sorted",
                f"register {key!r} not in snake order after shearsort",
            )
