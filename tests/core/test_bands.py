"""Tests for the B_i band decomposition (Section 3, Figures 4-5 laws)."""

import numpy as np
import pytest

from repro.core.bands import compute_bands
from repro.util.mathx import iterated_log


def geometric_levels(mu: float, h: int) -> np.ndarray:
    return np.array([int(round(mu**i)) for i in range(h + 1)], dtype=np.int64)


class TestStructure:
    def test_bands_tile_the_levels(self):
        for h in (16, 20, 24, 40, 48):
            deco = compute_bands(geometric_levels(2, h), 2.0, c=2)
            cursor = 0
            for b in deco.bands:
                assert b.lo_level == cursor
                cursor = b.hi_level + 1
            assert deco.bstar_lo == cursor
            assert deco.h == h

    def test_band_zero_starts_at_root(self):
        deco = compute_bands(geometric_levels(2, 20), 2.0, c=2)
        assert deco.bands[0].lo_level == 0

    def test_log_star_controls_band_count(self):
        d1 = compute_bands(geometric_levels(2, 16), 2.0, c=2)
        d2 = compute_bands(geometric_levels(2, 40), 2.0, c=2)
        assert len(d2.bands) > len(d1.bands)

    def test_degenerate_small_h(self):
        deco = compute_bands(geometric_levels(2, 3), 2.0, c=4)
        assert deco.bands == ()
        assert deco.bstar_lo == 0
        assert deco.bstar_n_vertices == int(geometric_levels(2, 3).sum())

    def test_height_zero(self):
        deco = compute_bands(np.array([1]), 2.0)
        assert deco.bands == ()
        assert deco.bstar_n_vertices == 1

    def test_paper_constant_mu2(self):
        # with the paper's c = mu_constant(2) = 4: log^(0) 32 = 16 >= 4,
        # log^(1) 32 = 4 >= 4, log^(2) 32 = 2 < 4, so log* = 1
        deco = compute_bands(geometric_levels(2, 32), 2.0)
        assert deco.c == 4
        assert deco.log_star_h == 1
        assert len(deco.bands) == 1


class TestSizeLaws:
    def test_band_size_law(self):
        # |B_i| = O(n / (log^(i) h)^2)
        h = 40
        levels = geometric_levels(2, h)
        n = int(levels.sum())
        deco = compute_bands(levels, 2.0, c=2)
        assert len(deco.bands) >= 2
        for b in deco.bands:
            bound = 4.0 * n / max(iterated_log(h, b.index, 2.0), 1.0) ** 2
            assert b.n_vertices <= bound

    def test_delta_h_law(self):
        # Delta h_i = O(log^(i) h)
        h = 40
        deco = compute_bands(geometric_levels(2, h), 2.0, c=2)
        for b in deco.bands:
            assert b.n_levels <= 2.0 * iterated_log(h, b.index, 2.0) + 2

    def test_bstar_constant_levels(self):
        # B* has at most 2 mu^c + 1 levels for any h
        for h in (16, 24, 40, 48):
            deco = compute_bands(geometric_levels(2, h), 2.0, c=2)
            assert deco.h - deco.bstar_lo + 1 <= 2 * 2**2 + 2

    def test_b1_size_law(self):
        # |B_i^1| = O(|B_i| / (Delta h_i)^2)
        h = 40
        levels = geometric_levels(2, h)
        cum = np.concatenate([[0], np.cumsum(levels)])
        deco = compute_bands(levels, 2.0, c=2)
        for b in deco.bands:
            b1 = b.b1_levels
            if b1 is None:
                continue
            size1 = int(cum[b1[1] + 1] - cum[b1[0]])
            assert size1 <= 4.0 * b.n_vertices / b.n_levels**2 + 1


class TestB1B2Split:
    def test_split_is_contiguous(self):
        deco = compute_bands(geometric_levels(2, 40), 2.0, c=2)
        for b in deco.bands:
            b1 = b.b1_levels
            lo2, hi2 = b.b2_levels
            assert hi2 == b.hi_level
            if b1 is not None:
                assert b1[0] == b.lo_level
                assert lo2 == b1[1] + 1
            else:
                assert lo2 == b.lo_level

    def test_b2_has_m_plus_one_levels(self):
        deco = compute_bands(geometric_levels(2, 40), 2.0, c=2)
        for b in deco.bands:
            if b.b1_levels is not None:
                lo2, hi2 = b.b2_levels
                assert hi2 - lo2 + 1 == b.m + 1

    def test_m_is_log_of_band_height(self):
        deco = compute_bands(geometric_levels(2, 40), 2.0, c=2)
        for b in deco.bands:
            if b.n_levels >= 2:
                assert b.m <= np.ceil(2 * np.log2(b.n_levels)) + 1


class TestIrregularLevels:
    def test_sandwiched_sizes_accepted(self):
        rng = np.random.default_rng(0)
        h = 30
        levels = np.array(
            [max(1, int(2**i * rng.uniform(0.5, 2.0))) for i in range(h + 1)]
        )
        deco = compute_bands(levels, 2.0, c=2)
        # still tiles
        cursor = 0
        for b in deco.bands:
            assert b.lo_level == cursor
            cursor = b.hi_level + 1
        assert deco.bstar_lo == cursor

    def test_vertex_counts_use_actual_sizes(self):
        levels = np.array([1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024, 2048, 4096,
                           8192, 16384, 32768, 65536])
        deco = compute_bands(levels, 2.0, c=2)
        total = sum(b.n_vertices for b in deco.bands) + deco.bstar_n_vertices
        assert total == int(levels.sum())
