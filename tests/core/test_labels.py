"""Tests for the Algorithm 1 Step 1 labelling scheme."""

import numpy as np

from repro.core.labels import compute_labels, count_label_fraction


class TestComputeLabels:
    def test_single_grid(self):
        labels = compute_labels(8, [4])
        # each of the 4x4 B_0-submeshes... only the top-left of the whole
        # mesh (the single B_1-submesh) gets label 0
        assert (labels[:2, :2] == 0).all()
        assert (labels == 0).sum() == 4

    def test_two_grids(self):
        labels = compute_labels(16, [8, 2])
        # B_1 partitioning is 2x2 (submeshes of side 8); the whole mesh's
        # top-left B_1-submesh has label 1 -- except where label 0 overwrote
        assert labels[0, 0] == 0  # overwritten by the later i=0 pass
        # each B_1-submesh contains one labelled-0 B_0-submesh (side 2)
        assert (labels == 0).sum() == 4 * 4  # 4 B_1-submeshes x 2x2 block

    def test_labels_cover_expected_area(self):
        labels = compute_labels(27, [9, 3])
        assert set(np.unique(labels)) <= {-1, 0, 1}

    def test_smaller_index_wins(self):
        labels = compute_labels(16, [8, 4, 2])
        assert labels[0, 0] == 0


class TestLabelFraction:
    def test_theta_fraction_claim(self):
        # the paper's counting argument: every B_i-submesh keeps a
        # constant fraction of label-i processors
        side = 64
        grids = [16, 4, 2]
        labels = compute_labels(side, grids)
        for i in range(len(grids)):
            frac = count_label_fraction(labels, grids, i)
            assert frac > 0.4, (i, frac)

    def test_fraction_bounded_by_one(self):
        labels = compute_labels(32, [8, 2])
        assert count_label_fraction(labels, [8, 2], 1) <= 1.0

    def test_label_zero_present_in_every_b1_submesh(self):
        side, grids = 32, [8, 4]
        labels = compute_labels(side, grids)
        block = side // grids[1]
        for r in range(grids[1]):
            for c in range(grids[1]):
                window = labels[r * block : (r + 1) * block, c * block : (c + 1) * block]
                assert (window == 0).any()
