"""Tests for Algorithm 1 (Theorem 2): hierarchical-DAG multisearch."""

import numpy as np
import pytest

from repro.core.baseline import synchronous_multisearch
from repro.core.hierdag import hierdag_multisearch, lemma1_band_steps, plan_hierdag
from repro.core.model import QuerySet, run_reference
from repro.graphs.adapters import hierdag_search_structure
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.mesh.engine import MeshEngine


def dag_setup(mu=2, height=10, m=512, seed=0):
    dag, leaf_keys = build_mu_ary_search_dag(mu, height, seed=seed)
    st = hierdag_search_structure(dag)
    rng = np.random.default_rng(seed + 1)
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], m)
    return dag, st, keys


class TestCorrectness:
    @pytest.mark.parametrize("mu,height", [(2, 8), (2, 11), (3, 6), (4, 5)])
    def test_matches_reference(self, mu, height):
        dag, st, keys = dag_setup(mu, height, m=256)
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(max(dag.size, keys.size))
        qs = QuerySet.start(keys, 0, record_trace=True)
        hierdag_multisearch(eng, st, qs, mu=float(mu), c=2)
        assert qs.paths() == ref.paths()

    def test_paper_c_constant_also_correct(self):
        dag, st, keys = dag_setup(2, 10, m=128)
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(max(dag.size, keys.size))
        qs = QuerySet.start(keys, 0, record_trace=True)
        hierdag_multisearch(eng, st, qs, mu=2.0)  # c = mu_constant = 4
        assert qs.paths() == ref.paths()

    def test_all_queries_terminate(self):
        dag, st, keys = dag_setup(2, 9)
        eng = MeshEngine.for_problem(dag.size)
        qs = QuerySet.start(keys, 0)
        res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
        assert not qs.active.any()
        assert res.multisteps >= dag.height + 1

    def test_queries_starting_mid_dag(self):
        dag, st, keys = dag_setup(2, 9, m=64)
        # start at level 3 vertices
        rng = np.random.default_rng(4)
        starts = rng.integers(dag.level_start[3], dag.level_start[4], 64)
        # keys must lie in the start vertex's subtree to be meaningful;
        # use each start vertex's own separator range: just take any key --
        # the search is still well-defined (descends by comparisons)
        ref = run_reference(st, keys, starts)
        eng = MeshEngine.for_problem(dag.size)
        qs = QuerySet.start(keys, starts, record_trace=True)
        hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
        assert qs.paths() == ref.paths()

    def test_tiny_dag_degenerate_bands(self):
        dag, st, keys = dag_setup(2, 3, m=16)
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(dag.size)
        qs = QuerySet.start(keys, 0, record_trace=True)
        res = hierdag_multisearch(eng, st, qs, mu=2.0)
        assert qs.paths() == ref.paths()
        assert len(res.detail) >= 2


class TestPlanning:
    def test_grids_monotone_and_capacity_safe(self):
        dag, st, _ = dag_setup(2, 14, m=1)
        plan = plan_hierdag(st, 200, 2.0, c=2)
        gs = [bp.g for bp in plan.bands]
        assert all(a >= b for a, b in zip(gs, gs[1:]))
        for bp in plan.bands:
            records = bp.band.n_vertices * plan.records_per_vertex
            assert (200 // bp.g) ** 2 * 8 >= records

    def test_inner_grid_capacity(self):
        dag, st, _ = dag_setup(2, 14, m=1)
        plan = plan_hierdag(st, 200, 2.0, c=2)
        for bp in plan.bands:
            assert 1 <= bp.q <= bp.band.n_levels
            assert bp.inner_side >= 1

    def test_fallback_on_tiny_mesh(self):
        dag, st, _ = dag_setup(2, 10, m=1)
        plan = plan_hierdag(st, 8, 2.0, c=2)  # mesh far too small: g -> 1
        for bp in plan.bands:
            assert bp.g >= 1


class TestCostShape:
    def test_beats_baseline_at_scale(self):
        dag, st, keys = dag_setup(2, 14, m=2048)
        eng1 = MeshEngine.for_problem(max(dag.size, keys.size))
        qs1 = QuerySet.start(keys, 0)
        ours = hierdag_multisearch(eng1, st, qs1, mu=2.0, c=2)
        eng2 = MeshEngine.for_problem(max(dag.size, keys.size))
        qs2 = QuerySet.start(keys, 0)
        base = synchronous_multisearch(eng2, st, qs2)
        assert ours.mesh_steps < base.mesh_steps

    def test_steps_over_sqrt_n_bounded(self):
        ratios = {}
        for height in (10, 12, 14):
            dag, st, keys = dag_setup(2, height, m=256)
            eng = MeshEngine.for_problem(dag.size)
            qs = QuerySet.start(keys, 0)
            res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
            ratios[height] = res.mesh_steps / dag.size**0.5
        # the ratio must not grow with n like the baseline's (which is
        # proportional to h): allow mild growth, forbid doubling
        assert ratios[14] / ratios[10] < 1.5, ratios

    def test_detail_accounts_for_total(self):
        dag, st, keys = dag_setup(2, 12, m=256)
        eng = MeshEngine.for_problem(dag.size)
        qs = QuerySet.start(keys, 0)
        res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
        accounted = sum(res.detail.values())
        assert accounted == pytest.approx(res.mesh_steps, rel=0.05)


class TestLemma1:
    def test_band_solver_advances_through_band(self):
        dag, st, keys = dag_setup(2, 12, m=128)
        eng = MeshEngine.for_problem(dag.size)
        plan = plan_hierdag(st, eng.shape.rows, 2.0, c=2)
        assert plan.bands, "need at least one band for this test"
        bp = plan.bands[0]
        qs = QuerySet.start(keys, 0)
        lemma1_band_steps(eng, st, qs, bp)
        # every query sits one past the band's last level
        assert (st.level[qs.current] == bp.band.hi_level + 1).all()

    def test_band_solver_cost_formula(self):
        # Lemma 1: O(sqrt(|B_i|) * log(Delta h_i)) on the band submesh
        dag, st, keys = dag_setup(2, 14, m=64)
        eng = MeshEngine.for_problem(dag.size)
        plan = plan_hierdag(st, eng.shape.rows, 2.0, c=2)
        bp = plan.bands[0]
        qs = QuerySet.start(keys, 0)
        t0 = eng.clock.time
        lemma1_band_steps(eng, st, qs, bp)
        elapsed = eng.clock.time - t0
        bound = (
            eng.clock.cost.route
            * bp.sub_side
            * (4 * np.log2(max(bp.band.n_levels, 2)) + 8)
        )
        assert elapsed <= bound
