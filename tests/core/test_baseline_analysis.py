"""Tests for the synchronous baseline and the closed-form cost predictions."""

import numpy as np
import pytest

from repro.core.analysis import (
    crossover_r,
    predict_baseline,
    predict_logphase,
    predict_sqrt_n,
    predict_theorem5,
)
from repro.core.baseline import synchronous_multisearch
from repro.core.model import QuerySet, run_reference
from repro.graphs.adapters import ktree_directed_structure
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.engine import MeshEngine


class TestBaseline:
    def test_correctness(self):
        t = build_balanced_search_tree(2, 8, seed=0)
        st = ktree_directed_structure(t)
        rng = np.random.default_rng(1)
        keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 100)
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0, record_trace=True)
        res = synchronous_multisearch(eng, st, qs)
        assert qs.paths() == ref.paths()
        assert res.multisteps == t.height + 1

    def test_cost_exactly_r_full_mesh_steps(self):
        t = build_balanced_search_tree(2, 6, seed=0)
        st = ktree_directed_structure(t)
        keys = t.leaf_keys[:10].astype(np.float64)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        res = synchronous_multisearch(eng, st, qs)
        per_step = eng.clock.cost.route * eng.side + eng.clock.cost.local
        assert res.mesh_steps == res.multisteps * per_step

    def test_guard_raises(self):
        t = build_balanced_search_tree(2, 6, seed=0)
        st = ktree_directed_structure(t)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(t.leaf_keys[:4].astype(np.float64), 0)
        with pytest.raises(RuntimeError):
            synchronous_multisearch(eng, st, qs, max_steps=2)

    def test_matches_prediction(self):
        t = build_balanced_search_tree(2, 8, seed=0)
        st = ktree_directed_structure(t)
        keys = t.leaf_keys[:32].astype(np.float64)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        res = synchronous_multisearch(eng, st, qs)
        pred = predict_baseline(eng.size, res.multisteps, eng.clock.cost)
        assert res.mesh_steps == pytest.approx(pred, rel=0.01)


class TestPredictions:
    def test_sqrt_n(self):
        assert predict_sqrt_n(100) == 10.0
        assert predict_sqrt_n(100, 3.0) == 30.0

    def test_logphase_scales_with_sqrt_n(self):
        assert predict_logphase(4 * 10**4) / predict_logphase(10**4) == pytest.approx(
            2.0, rel=0.2
        )

    def test_theorem5_linear_in_phase_count(self):
        n = 2**14
        one = predict_theorem5(n, 1)
        many = predict_theorem5(n, 10 * int(np.log2(n)))
        assert many == pytest.approx(10 * one, rel=0.01)

    def test_baseline_linear_in_r(self):
        n = 2**12
        assert predict_baseline(n, 20) == pytest.approx(2 * predict_baseline(n, 10))

    def test_crossover_is_order_log_n(self):
        for n in (2**12, 2**16, 2**20):
            r = crossover_r(n)
            assert 0.5 * np.log2(n) < r < 30 * np.log2(n)

    def test_crossover_semantics(self):
        # well beyond the crossover (and with the phase-count ceiling
        # saturated), theorem 5 is predicted cheaper
        n = 2**16
        r = int(8 * crossover_r(n))
        assert predict_theorem5(n, r) < predict_baseline(n, r)
