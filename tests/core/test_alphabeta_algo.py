"""Tests for Algorithm 3 (Theorem 7): alpha-beta-partitionable multisearch."""

import numpy as np
import pytest

from repro.core.alphabeta import alphabeta_multisearch
from repro.core.baseline import synchronous_multisearch
from repro.core.model import QuerySet, run_reference
from repro.core.splitters import splitting_from_labels
from repro.graphs.adapters import ktree_range_structure
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.engine import MeshEngine


def range_case(height=8, m=128, width=(1.0, 20.0), seed=0):
    t = build_balanced_search_tree(2, height, seed=seed)
    st = ktree_range_structure(t)
    if height >= 6:
        s1, s2, _ = t.alpha_beta_splitters()
    else:
        s1 = t.alpha_splitter()
        s2 = t.splitter_at_depths([height - 1])
    sp1 = splitting_from_labels(s1.comp, t.children, 0.5)
    sp2 = splitting_from_labels(s2.comp, t.children, 1 / 3)
    rng = np.random.default_rng(seed + 1)
    lo = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], m)
    keys = np.stack([lo, lo + rng.uniform(*width, m)], axis=1)
    return t, st, sp1, sp2, keys


class TestCorrectness:
    def test_matches_reference(self):
        t, st, sp1, sp2, keys = range_case()
        ref = run_reference(st, keys, 0, state_width=2, max_steps=100_000)
        eng = MeshEngine.for_problem(max(t.size, keys.shape[0]))
        qs = QuerySet.start(keys, 0, state_width=2, record_trace=True)
        alphabeta_multisearch(eng, st, qs, sp1, sp2)
        assert qs.paths() == ref.paths()

    def test_wide_ranges(self):
        t, st, sp1, sp2, keys = range_case(height=7, m=32, width=(50.0, 100.0))
        ref = run_reference(st, keys, 0, state_width=2, max_steps=100_000)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0, state_width=2, record_trace=True)
        alphabeta_multisearch(eng, st, qs, sp1, sp2)
        assert qs.paths() == ref.paths()

    def test_swapped_splitting_order_still_correct(self):
        t, st, sp1, sp2, keys = range_case(m=64)
        ref = run_reference(st, keys, 0, state_width=2, max_steps=100_000)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0, state_width=2, record_trace=True)
        alphabeta_multisearch(eng, st, qs, sp2, sp1)
        assert qs.paths() == ref.paths()

    def test_taller_tree(self):
        t, st, sp1, sp2, keys = range_case(height=12, m=64, width=(0.5, 4.0))
        ref = run_reference(st, keys, 0, state_width=2, max_steps=100_000)
        eng = MeshEngine.for_problem(max(t.size, 64))
        qs = QuerySet.start(keys, 0, state_width=2, record_trace=True)
        alphabeta_multisearch(eng, st, qs, sp1, sp2)
        assert qs.paths() == ref.paths()

    def test_nontermination_guard(self):
        t, st, sp1, sp2, keys = range_case()
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0, state_width=2)
        with pytest.raises(RuntimeError):
            alphabeta_multisearch(eng, st, qs, sp1, sp2, max_phases=1)


class TestTheorem7Shape:
    def test_phases_track_longest_walk(self):
        t, st, sp1, sp2, keys = range_case(height=10, m=128, width=(5.0, 40.0))
        ref = run_reference(st, keys, 0, state_width=2, max_steps=100_000)
        r = max(len(p) for p in ref.paths())
        eng = MeshEngine.for_problem(max(t.size, 128))
        qs = QuerySet.start(keys, 0, state_width=2)
        res = alphabeta_multisearch(eng, st, qs, sp1, sp2)
        # Omega(log n) advancement per phase up to border effects
        assert res.detail["log_phases"] <= np.ceil(r / 2.0) + 2
        assert res.detail["log_phases"] >= np.ceil(r / (2 * np.log2(t.size) + 4))

    def test_beats_baseline_for_long_walks(self):
        t, st, sp1, sp2, keys = range_case(height=11, m=256, width=(100.0, 300.0))
        eng1 = MeshEngine.for_problem(max(t.size, 256))
        qs1 = QuerySet.start(keys, 0, state_width=2)
        ours = alphabeta_multisearch(eng1, st, qs1, sp1, sp2)
        eng2 = MeshEngine.for_problem(max(t.size, 256))
        qs2 = QuerySet.start(keys, 0, state_width=2)
        base = synchronous_multisearch(eng2, st, qs2, max_steps=1_000_000)
        assert ours.mesh_steps < base.mesh_steps
