"""Tests for the successor-contract validator (Section 2's edge rule)."""

import numpy as np
import pytest

from repro.core.model import (
    STOP,
    IllegalMoveError,
    SearchStructure,
    check_moves,
    run_reference,
)
from repro.graphs.adapters import (
    hierdag_search_structure,
    ktree_directed_structure,
    ktree_range_structure,
)
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.graphs.ktree import build_balanced_search_tree


def teleporting_structure(n=6):
    """A chain whose successor illegally jumps two vertices at a time."""
    adjacency = np.full((n, 1), -1, dtype=np.int64)
    adjacency[:-1, 0] = np.arange(1, n)

    def successor(vid, vp, va, vl, qk, qs_):
        nxt = vid + 2
        nxt[nxt >= n] = STOP
        return nxt, qs_

    return SearchStructure(
        adjacency=adjacency,
        payload=np.zeros((n, 1)),
        level=np.arange(n, dtype=np.int64),
        successor=successor,
    )


class TestCheckMoves:
    def test_legal_move_passes(self):
        st = teleporting_structure()
        check_moves(st, np.array([0]), np.array([1]))

    def test_stop_always_legal(self):
        st = teleporting_structure()
        check_moves(st, np.array([0, 3]), np.array([STOP, STOP]))

    def test_illegal_move_raises_with_vertices(self):
        st = teleporting_structure()
        with pytest.raises(IllegalMoveError, match="from vertex 0 to 2"):
            check_moves(st, np.array([0]), np.array([2]))

    def test_mixed_batch(self):
        st = teleporting_structure()
        with pytest.raises(IllegalMoveError):
            check_moves(st, np.array([0, 1]), np.array([1, 3]))


class TestRunReferenceValidation:
    def test_catches_teleporting_successor(self):
        st = teleporting_structure()
        with pytest.raises(IllegalMoveError):
            run_reference(st, np.zeros(1), 0, validate_moves=True)

    def test_without_flag_no_error(self):
        st = teleporting_structure()
        res = run_reference(st, np.zeros(1), 0)
        assert res.paths()[0] == [0, 2, 4]

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: (hierdag_search_structure(build_mu_ary_search_dag(2, 6, 1)[0]), 1),
            lambda: (ktree_directed_structure(build_balanced_search_tree(2, 6, 2)), 1),
            lambda: (ktree_range_structure(build_balanced_search_tree(2, 6, 3)), 2),
        ],
        ids=["hierdag", "ktree-directed", "ktree-range"],
    )
    def test_shipped_structures_respect_the_contract(self, factory):
        st, kw = factory()
        rng = np.random.default_rng(0)
        if kw == 2:
            lo = rng.uniform(1, 30, 32)
            keys = np.stack([lo, lo + rng.uniform(0, 10, 32)], axis=1)
        else:
            keys = rng.uniform(1, 60, 32)
        run_reference(st, keys, 0, state_width=kw, max_steps=50_000, validate_moves=True)
