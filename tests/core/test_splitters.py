"""Tests for splittings and normalization (Sections 4.1-4.3)."""

import numpy as np
import pytest

from repro.core.splitters import Splitting, normalize_splitting, splitting_from_labels
from repro.graphs.ktree import build_balanced_search_tree


class TestSplittingFromLabels:
    def test_sizes_count_vertices_and_internal_edges(self):
        t = build_balanced_search_tree(2, 3)
        lab = t.alpha_splitter(cut_depth=2)
        sp = splitting_from_labels(lab.comp, t.children, 0.5)
        # top: 3 vertices + 2 edges = 5; bottoms: 3 + 2 = 5 each
        assert sp.sizes[0] == 5
        assert (sp.sizes[1:] == 5).all()

    def test_unassigned_vertices_ignored(self):
        comp = np.array([0, -1, 0, 1])
        adjacency = np.full((4, 1), -1, dtype=np.int64)
        sp = splitting_from_labels(comp, adjacency, 0.5)
        assert sp.n_components == 2
        assert sp.sizes.tolist() == [2, 1]

    def test_cross_component_edges_not_counted(self):
        comp = np.array([0, 1])
        adjacency = np.array([[1], [-1]], dtype=np.int64)
        sp = splitting_from_labels(comp, adjacency, 0.5)
        assert sp.sizes.tolist() == [1, 1]

    def test_out_of_range_label_rejected(self):
        with pytest.raises(ValueError):
            Splitting(np.array([0, 5]), 2, 0.5, np.array([1, 1]))


class TestNormalize:
    def test_groups_reach_target_size(self):
        # 64 singleton components over n = 256: target n^0.5 = 16
        comp = np.arange(64)
        adjacency = np.full((64, 1), -1, dtype=np.int64)
        sp = splitting_from_labels(comp, adjacency, 0.5)
        norm = normalize_splitting(sp, 256)
        assert norm.n_components <= 8  # 64 units in groups of <= 32
        assert norm.sizes.max() <= 32

    def test_component_count_law(self):
        comp = np.arange(100)
        adjacency = np.full((100, 1), -1, dtype=np.int64)
        sp = splitting_from_labels(comp, adjacency, 0.5)
        n = 400
        norm = normalize_splitting(sp, n)
        assert norm.n_components <= 4 * n**0.5

    def test_grouping_preserves_membership(self):
        comp = np.arange(20)
        adjacency = np.full((20, 1), -1, dtype=np.int64)
        sp = splitting_from_labels(comp, adjacency, 0.5)
        norm = normalize_splitting(sp, 100)
        # every vertex still assigned, groups partition the old components
        assert (norm.comp >= 0).all()

    def test_sides_not_mixed(self):
        comp = np.arange(10)
        adjacency = np.full((10, 1), -1, dtype=np.int64)
        sp = splitting_from_labels(comp, adjacency, 0.5)
        sides = np.array([0] * 5 + [1] * 5)
        norm = normalize_splitting(sp, 16, sides=sides)
        for g in range(norm.n_components):
            members = np.flatnonzero(norm.comp == g)
            assert np.unique(sides[members]).size == 1

    def test_oversized_component_kept_alone(self):
        comp = np.zeros(50, dtype=np.int64)
        comp[40:] = np.arange(1, 11)
        adjacency = np.full((50, 1), -1, dtype=np.int64)
        sp = splitting_from_labels(comp, adjacency, 0.5)
        norm = normalize_splitting(sp, 16)  # target 4, component 0 has 40
        # big component alone in its group
        g0 = norm.comp[0]
        assert (norm.comp == g0).sum() == 40

    def test_unassigned_stay_unassigned(self):
        comp = np.array([-1, 0, 1, -1])
        adjacency = np.full((4, 1), -1, dtype=np.int64)
        sp = splitting_from_labels(comp, adjacency, 0.5)
        norm = normalize_splitting(sp, 4)
        assert norm.comp[0] == -1 and norm.comp[3] == -1
