"""Tests for Constrained-Multisearch (Section 4.4, Lemma 3)."""

import math

import numpy as np
import pytest

from repro.core.constrained import constrained_multisearch
from repro.core.model import STOP, QuerySet, run_reference
from repro.core.splitters import splitting_from_labels
from repro.graphs.adapters import ktree_directed_structure
from repro.graphs.broom import broom_structure, build_broom
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.engine import MeshEngine


def tree_setup(height=8, m=200, seed=0):
    t = build_balanced_search_tree(2, height, seed=seed)
    st = ktree_directed_structure(t)
    lab = t.alpha_splitter()
    sp = splitting_from_labels(lab.comp, t.children, 0.5)
    rng = np.random.default_rng(seed + 1)
    keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], m)
    return t, st, sp, keys


class TestSemantics:
    def test_advances_until_border(self):
        t, st, sp, keys = tree_setup()
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        stats = constrained_multisearch(eng, st, qs, sp)
        # queries start at the root (component 0, the top tree of height 4);
        # they must stop at depth 3 (the last vertex inside the top tree)
        cut = max(1, (t.height + 1) // 2)
        assert (t.depth[qs.current] == cut - 1).all()
        assert stats.marked == keys.size

    def test_does_not_cross_the_splitter(self):
        t, st, sp, keys = tree_setup()
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        constrained_multisearch(eng, st, qs, sp)
        assert (sp.comp[qs.current] == sp.comp[0]).all()

    def test_prefix_of_reference_path(self):
        t, st, sp, keys = tree_setup(m=50)
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0, record_trace=True)
        constrained_multisearch(eng, st, qs, sp)
        for got, want in zip(qs.paths(), ref.paths()):
            assert got == want[: len(got)]

    def test_round_limit_respected(self):
        br = build_broom(2, 2, 64, seed=3)
        st = broom_structure(br)
        sp = br.splitting()
        eng = MeshEngine.for_problem(br.size)
        # place queries at the heads of the handles (inside T components)
        heads = br.adjacency[
            np.arange(br.tree.first_leaf(), br.tree.n_vertices), 0
        ]
        qs = QuerySet.start(np.zeros(heads.size), heads)
        stats = constrained_multisearch(eng, st, qs, sp, rounds=5)
        assert (qs.steps == 5).all()
        assert stats.rounds == 5

    def test_default_rounds_is_log2_n(self):
        t, st, sp, keys = tree_setup()
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        stats = constrained_multisearch(eng, st, qs, sp)
        assert stats.rounds == math.ceil(math.log2(t.size))

    def test_unmarked_queries_untouched(self):
        t, st, sp, keys = tree_setup()
        comp = sp.comp.copy()
        comp[0] = -1  # root belongs to no subgraph
        sp2 = splitting_from_labels(np.where(comp < 0, -1, comp), t.children, 0.5)
        # rebuild with the root unassigned
        sp2.comp[0] = -1
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        stats = constrained_multisearch(eng, st, qs, sp2)
        assert (qs.current == 0).all()
        assert stats.marked == 0

    def test_terminated_queries_ignored(self):
        t, st, sp, keys = tree_setup(m=10)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        qs.current[:] = STOP
        stats = constrained_multisearch(eng, st, qs, sp)
        assert stats.marked == 0
        assert (qs.steps == 0).all()

    def test_exit_when_nothing_marked_charges_little(self):
        t, st, sp, keys = tree_setup()
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        qs.current[:] = STOP
        constrained_multisearch(eng, st, qs, sp)
        # only the marking RAR + gamma RAW
        assert eng.clock.time <= 2 * eng.clock.cost.route * eng.side + 1


class TestLemma3Accounting:
    def test_copy_packing_invariant(self):
        t, st, sp, keys = tree_setup(height=10, m=1000)
        eng = MeshEngine.for_problem(max(t.size, 1000))
        qs = QuerySet.start(keys, 0)
        stats = constrained_multisearch(eng, st, qs, sp)
        cap = math.ceil(t.size**0.5)
        assert stats.max_queries_per_copy <= cap
        # all queries in the root's component: Gamma = ceil(m / n^delta)
        assert stats.copies_created >= math.ceil(1000 / cap)

    def test_cost_scales_as_sqrt_n(self):
        times = {}
        for height in (8, 10, 12):
            t, st, sp, keys = tree_setup(height=height, m=256)
            eng = MeshEngine.for_problem(t.size)
            qs = QuerySet.start(keys, 0)
            constrained_multisearch(eng, st, qs, sp)
            times[height] = eng.clock.time / t.size**0.5
        vals = list(times.values())
        assert max(vals) / min(vals) < 3.0, times

    def test_congestion_invariance(self):
        # Lemma 3's point: cost does not blow up when all queries hit one
        # subgraph.  Compare all-queries-in-root-component vs spread.
        t = build_balanced_search_tree(2, 10, seed=0)
        st = ktree_directed_structure(t)
        lab = t.alpha_splitter()
        sp = splitting_from_labels(lab.comp, t.children, 0.5)
        m = 512
        rng = np.random.default_rng(5)
        keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], m)

        eng1 = MeshEngine.for_problem(max(t.size, m))
        qs1 = QuerySet.start(keys, 0)  # all at the root: max congestion
        constrained_multisearch(eng1, st, qs1, sp)

        cut = max(1, (t.height + 1) // 2)
        subtree_roots = np.flatnonzero(t.depth == cut)
        eng2 = MeshEngine.for_problem(max(t.size, m))
        starts = subtree_roots[rng.integers(0, subtree_roots.size, m)]
        # give each query a key inside its start subtree so it descends
        keys2 = t.subtree_lo[starts] + 1e-9
        qs2 = QuerySet.start(keys2, starts)
        constrained_multisearch(eng2, st, qs2, sp)
        assert eng1.clock.time <= 2.5 * eng2.clock.time

    def test_stats_histogram_totals(self):
        t, st, sp, keys = tree_setup(m=100)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        stats = constrained_multisearch(eng, st, qs, sp)
        assert sum(stats.steps_histogram.values()) == stats.marked
