"""Degenerate-input and failure-injection tests for the core algorithms."""

import numpy as np
import pytest

from repro.core.alpha import alpha_multisearch
from repro.core.constrained import constrained_multisearch
from repro.core.hierdag import hierdag_multisearch
from repro.core.model import STOP, QuerySet
from repro.core.splitters import Splitting, splitting_from_labels
from repro.graphs.adapters import hierdag_search_structure, ktree_directed_structure
from repro.graphs.hierarchical import build_mu_ary_search_dag
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.engine import CapacityError, MeshEngine


class TestEmptyAndTrivial:
    def test_hierdag_no_queries(self):
        dag, _ = build_mu_ary_search_dag(2, 6, seed=0)
        st = hierdag_search_structure(dag)
        eng = MeshEngine.for_problem(dag.size)
        qs = QuerySet.start(np.empty(0), 0)
        res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
        assert res.mesh_steps > 0  # the schedule still runs (data-oblivious)

    def test_hierdag_single_query(self):
        dag, keys = build_mu_ary_search_dag(2, 6, seed=0)
        st = hierdag_search_structure(dag)
        eng = MeshEngine.for_problem(dag.size)
        qs = QuerySet.start(np.array([keys[3]]), 0, record_trace=True)
        hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
        assert len(qs.paths()[0]) == dag.height + 1

    def test_all_queries_already_terminated(self):
        t = build_balanced_search_tree(2, 6, seed=0)
        st = ktree_directed_structure(t)
        sp = splitting_from_labels(t.alpha_splitter().comp, t.children, 0.5)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(np.zeros(4), STOP)
        res = alpha_multisearch(eng, st, qs, sp)
        assert res.detail["log_phases"] == 0

    def test_constrained_with_empty_splitting(self):
        t = build_balanced_search_tree(2, 6, seed=0)
        st = ktree_directed_structure(t)
        empty = Splitting(
            comp=np.full(t.n_vertices, -1, dtype=np.int64),
            n_components=0,
            delta=0.5,
            sizes=np.empty(0, dtype=np.int64),
        )
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(t.leaf_keys[:8].astype(np.float64), 0)
        stats = constrained_multisearch(eng, st, qs, empty)
        assert stats.marked == 0
        assert stats.copies_created == 0
        assert (qs.current == 0).all()


class TestCapacityInjection:
    def test_mesh_too_small_for_structure(self):
        dag, _ = build_mu_ary_search_dag(2, 8, seed=0)
        st = hierdag_search_structure(dag)
        eng = MeshEngine(4, capacity=2)  # 16 processors, 32 records max
        from repro.core.model import GraphStore

        with pytest.raises(CapacityError):
            GraphStore.load(eng.root, st, per_proc=2)

    def test_constrained_overload_detected(self):
        # shrink the engine capacity so the copied subgraphs cannot fit
        t = build_balanced_search_tree(2, 8, seed=0)
        st = ktree_directed_structure(t)
        sp = splitting_from_labels(t.alpha_splitter().comp, t.children, 0.5)
        eng = MeshEngine(8, capacity=1)  # far too small for n = 1021
        rng = np.random.default_rng(1)
        keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 64)
        qs = QuerySet.start(keys, 0)
        with pytest.raises(CapacityError):
            constrained_multisearch(eng, st, qs, sp)


class TestScheduleObliviousness:
    def test_hierdag_cost_independent_of_query_content(self):
        # Algorithm 1's schedule is data-oblivious: identical charges for
        # different key sets (a mesh algorithm cannot adapt its schedule)
        dag, keys = build_mu_ary_search_dag(2, 8, seed=0)
        st = hierdag_search_structure(dag)
        costs = []
        for seed in (1, 2):
            rng = np.random.default_rng(seed)
            q = rng.uniform(keys[0], keys[-1], 256)
            eng = MeshEngine.for_problem(dag.size)
            qs = QuerySet.start(q, 0)
            res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
            costs.append(res.mesh_steps)
        assert costs[0] == costs[1]

    def test_baseline_cost_depends_only_on_r(self):
        from repro.core.baseline import synchronous_multisearch

        t = build_balanced_search_tree(2, 7, seed=0)
        st = ktree_directed_structure(t)
        costs = []
        for seed in (3, 4):
            rng = np.random.default_rng(seed)
            q = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 128)
            eng = MeshEngine.for_problem(t.size)
            qs = QuerySet.start(q, 0)
            res = synchronous_multisearch(eng, st, qs)
            costs.append(res.mesh_steps)
        assert costs[0] == costs[1]
