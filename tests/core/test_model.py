"""Tests for the multisearch problem model (Section 2 semantics)."""

import numpy as np
import pytest

from repro.core.model import (
    STOP,
    GraphStore,
    QuerySet,
    SearchStructure,
    advance_queries,
    run_reference,
)
from repro.graphs.adapters import ktree_directed_structure
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.engine import MeshEngine


def chain_structure(n: int) -> SearchStructure:
    """A directed path 0 -> 1 -> ... -> n-1; queries walk to the end."""
    adjacency = np.full((n, 1), -1, dtype=np.int64)
    adjacency[:-1, 0] = np.arange(1, n)

    def successor(vid, vpayload, vadjacency, vlevel, qkey, qstate):
        return vadjacency[:, 0].copy(), qstate

    return SearchStructure(
        adjacency=adjacency,
        payload=np.zeros((n, 1)),
        level=np.arange(n, dtype=np.int64),
        successor=successor,
        directed=True,
    )


class TestSearchStructure:
    def test_size_directed(self):
        st = chain_structure(5)
        assert st.n_vertices == 5
        assert st.n_edges == 4
        assert st.size == 9

    def test_size_undirected_halves_edges(self):
        t = build_balanced_search_tree(2, 3)
        adjacency = np.concatenate([t.parent[:, None], t.children], axis=1)
        st = SearchStructure(
            adjacency=adjacency,
            payload=np.zeros((t.n_vertices, 1)),
            level=t.depth,
            successor=lambda *a: (np.full(a[0].shape[0], STOP), a[5]),
            directed=False,
        )
        assert st.n_edges == t.n_vertices - 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            SearchStructure(
                adjacency=np.zeros((3, 1), dtype=np.int64),
                payload=np.zeros((4, 1)),
                level=np.zeros(3, dtype=np.int64),
                successor=lambda *a: None,
            )

    def test_bad_label_length_rejected(self):
        with pytest.raises(ValueError):
            SearchStructure(
                adjacency=np.zeros((3, 1), dtype=np.int64),
                payload=np.zeros((3, 1)),
                level=np.zeros(3, dtype=np.int64),
                successor=lambda *a: None,
                labels={"comp": np.zeros(5, dtype=np.int64)},
            )


class TestQuerySet:
    def test_start_broadcasts_scalar_vertex(self):
        qs = QuerySet.start(np.zeros(5), 3)
        assert (qs.current == 3).all()

    def test_start_per_query_vertices(self):
        qs = QuerySet.start(np.zeros(3), np.array([0, 1, 2]))
        assert qs.current.tolist() == [0, 1, 2]

    def test_active_tracks_stop(self):
        qs = QuerySet.start(np.zeros(3), np.array([0, STOP, 2]))
        assert qs.active.tolist() == [True, False, True]

    def test_paths_requires_trace(self):
        qs = QuerySet.start(np.zeros(2), 0)
        with pytest.raises(RuntimeError):
            qs.paths()

    def test_paths_collapse_consecutive_duplicates(self):
        qs = QuerySet.start(np.zeros(1), 0, record_trace=True)
        qs.current[0] = 0
        qs.log_visit()  # duplicate
        qs.current[0] = 4
        qs.log_visit()
        qs.current[0] = STOP
        qs.log_visit()
        assert qs.paths() == [[0, 4]]


class TestRunReference:
    def test_chain_walk(self):
        st = chain_structure(6)
        res = run_reference(st, np.zeros(3), 0)
        assert all(p == list(range(6)) for p in res.paths())
        # steps counts successor applications, including the final STOP
        assert (res.steps == 6).all()

    def test_respects_start_vertices(self):
        st = chain_structure(6)
        res = run_reference(st, np.zeros(2), np.array([2, 4]))
        assert res.paths()[0] == [2, 3, 4, 5]
        assert res.paths()[1] == [4, 5]

    def test_nonterminating_successor_detected(self):
        n = 4
        adjacency = np.zeros((n, 1), dtype=np.int64)  # all point at vertex 0

        def successor(vid, vp, va, vl, qk, qs_):
            return np.zeros(vid.shape[0], dtype=np.int64), qs_  # loop forever

        st = SearchStructure(
            adjacency=adjacency,
            payload=np.zeros((n, 1)),
            level=np.zeros(n, dtype=np.int64),
            successor=successor,
        )
        with pytest.raises(RuntimeError, match="still active"):
            run_reference(st, np.zeros(1), 0, max_steps=10)


class TestGraphStore:
    def test_load_full_structure(self):
        st = chain_structure(10)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st)
        assert store.n_local == 10

    def test_locate_subgraph(self):
        st = chain_structure(10)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st, vertex_ids=np.array([2, 5, 7]))
        got = store.locate(np.array([5, 2, 7, 3, -1]))
        assert got[0] >= 0 and got[1] >= 0 and got[2] >= 0
        assert got[3] == -1 and got[4] == -1
        assert store.ids[got[0]] == 5

    def test_contains(self):
        st = chain_structure(6)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st, vertex_ids=np.array([0, 1]))
        assert store.contains(np.array([0, 1, 2])).tolist() == [True, True, False]

    def test_gather_returns_records(self):
        st = chain_structure(6)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st)
        found, pay, adj, lev = store.gather(np.array([3, STOP]))
        assert found.tolist() == [True, False]
        assert lev[0] == 3
        assert adj[0, 0] == 4

    def test_gather_charges_rar(self):
        st = chain_structure(6)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st)
        t0 = eng.clock.time
        store.gather(np.array([0]))
        assert eng.clock.time - t0 == eng.clock.cost.route * 4

    def test_capacity_enforced(self):
        st = chain_structure(64)
        eng = MeshEngine(2, capacity=2)
        with pytest.raises(Exception):
            GraphStore.load(eng.root, st, per_proc=16)


class TestAdvanceQueries:
    def test_one_multistep(self):
        st = chain_structure(5)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st)
        qs = QuerySet.start(np.zeros(3), 0)
        advanced = advance_queries(store, st, qs)
        assert advanced.sum() == 3
        assert (qs.current == 1).all()
        assert (qs.steps == 1).all()

    def test_mask_restricts(self):
        st = chain_structure(5)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st)
        qs = QuerySet.start(np.zeros(3), 0)
        mask = np.array([True, False, True])
        advance_queries(store, st, qs, mask=mask)
        assert qs.current.tolist() == [1, 0, 1]

    def test_nonresident_vertex_untouched(self):
        st = chain_structure(8)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st, vertex_ids=np.array([0, 1, 2]))
        qs = QuerySet.start(np.zeros(2), np.array([1, 6]))
        advanced = advance_queries(store, st, qs)
        assert advanced.tolist() == [True, False]
        assert qs.current.tolist() == [2, 6]

    def test_stop_commits(self):
        st = chain_structure(3)
        eng = MeshEngine(4)
        store = GraphStore.load(eng.root, st)
        qs = QuerySet.start(np.zeros(1), 2)  # at the end of the chain
        advance_queries(store, st, qs)
        assert qs.current[0] == STOP
        assert not qs.active.any()


class TestMeshEquivalence:
    def test_mesh_and_reference_agree_on_tree_search(self):
        t = build_balanced_search_tree(2, 7, seed=1)
        st = ktree_directed_structure(t)
        rng = np.random.default_rng(0)
        keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 100)
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(t.size)
        store = GraphStore.load(eng.root, st)
        qs = QuerySet.start(keys, 0, record_trace=True)
        while qs.active.any():
            advance_queries(store, st, qs)
        assert qs.paths() == ref.paths()
