"""Tests for Algorithm 2 (Theorem 5): alpha-partitionable multisearch."""

import numpy as np
import pytest

from repro.core.alpha import alpha_multisearch
from repro.core.baseline import synchronous_multisearch
from repro.core.model import QuerySet, run_reference
from repro.core.splitters import normalize_splitting, splitting_from_labels
from repro.graphs.adapters import ktree_directed_structure
from repro.graphs.broom import broom_structure, build_broom
from repro.graphs.ktree import build_balanced_search_tree
from repro.mesh.engine import MeshEngine


def tree_case(height=9, m=300, seed=0):
    t = build_balanced_search_tree(2, height, seed=seed)
    st = ktree_directed_structure(t)
    lab = t.alpha_splitter()
    sp = splitting_from_labels(lab.comp, t.children, 0.5)
    rng = np.random.default_rng(seed + 1)
    keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], m)
    return t, st, sp, keys


def broom_case(tree_height=4, handles=48, m=200, seed=0):
    br = build_broom(2, tree_height, handles, seed=seed)
    st = broom_structure(br)
    sp = br.splitting()
    rng = np.random.default_rng(seed + 1)
    keys = rng.uniform(br.tree.leaf_keys[0], br.tree.leaf_keys[-1], m)
    return br, st, sp, keys


class TestCorrectness:
    def test_tree_search_matches_reference(self):
        t, st, sp, keys = tree_case()
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(max(t.size, keys.size))
        qs = QuerySet.start(keys, 0, record_trace=True)
        alpha_multisearch(eng, st, qs, sp)
        assert qs.paths() == ref.paths()

    def test_broom_search_matches_reference(self):
        br, st, sp, keys = broom_case()
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(max(br.size, keys.size))
        qs = QuerySet.start(keys, 0, record_trace=True)
        alpha_multisearch(eng, st, qs, sp)
        assert qs.paths() == ref.paths()

    def test_normalized_splitting_also_correct(self):
        t, st, sp, keys = tree_case(height=10)
        lab = t.alpha_splitter()
        norm = normalize_splitting(sp, t.size, sides=None)
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(max(t.size, keys.size))
        qs = QuerySet.start(keys, 0, record_trace=True)
        alpha_multisearch(eng, st, qs, norm)
        assert qs.paths() == ref.paths()

    def test_ternary_tree(self):
        t = build_balanced_search_tree(3, 6, seed=2)
        st = ktree_directed_structure(t)
        sp = splitting_from_labels(t.alpha_splitter().comp, t.children, 0.5)
        rng = np.random.default_rng(3)
        keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 128)
        ref = run_reference(st, keys, 0)
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0, record_trace=True)
        alpha_multisearch(eng, st, qs, sp)
        assert qs.paths() == ref.paths()

    def test_no_queries(self):
        t, st, sp, _ = tree_case()
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(np.empty(0), 0)
        res = alpha_multisearch(eng, st, qs, sp)
        assert res.detail["log_phases"] == 0


class TestLogPhaseGuarantee:
    def test_phase_count_is_r_over_log_n(self):
        # the broom's r ~ handles; phases should be ~ r / log2 n, not r
        br, st, sp, keys = broom_case(tree_height=4, handles=64, m=128)
        eng = MeshEngine.for_problem(max(br.size, keys.size))
        qs = QuerySet.start(keys, 0)
        res = alpha_multisearch(eng, st, qs, sp)
        r = br.longest_path
        log_n = np.log2(br.size)
        assert res.detail["log_phases"] <= np.ceil(r / log_n) + 3

    def test_each_phase_advances_everyone(self):
        t, st, sp, keys = tree_case()
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        res = alpha_multisearch(eng, st, qs, sp)
        # each query advances h+1 times: h edge moves plus the final STOP
        assert res.detail["total_advanced"] == keys.size * (t.height + 1)

    def test_nontermination_guard(self):
        t, st, sp, keys = tree_case()
        eng = MeshEngine.for_problem(t.size)
        qs = QuerySet.start(keys, 0)
        with pytest.raises(RuntimeError, match="did not terminate"):
            alpha_multisearch(eng, st, qs, sp, max_phases=0)


class TestTheorem5Shape:
    def test_beats_baseline_for_long_paths(self):
        br, st, sp, keys = broom_case(tree_height=5, handles=96, m=512)
        eng1 = MeshEngine.for_problem(max(br.size, keys.size))
        qs1 = QuerySet.start(keys, 0)
        ours = alpha_multisearch(eng1, st, qs1, sp)
        eng2 = MeshEngine.for_problem(max(br.size, keys.size))
        qs2 = QuerySet.start(keys, 0)
        base = synchronous_multisearch(eng2, st, qs2)
        assert ours.mesh_steps < base.mesh_steps

    def test_advantage_grows_with_r(self):
        speedups = {}
        for handles in (16, 128):
            br, st, sp, keys = broom_case(tree_height=5, handles=handles, m=256)
            e1 = MeshEngine.for_problem(max(br.size, keys.size))
            q1 = QuerySet.start(keys, 0)
            ours = alpha_multisearch(e1, st, q1, sp)
            e2 = MeshEngine.for_problem(max(br.size, keys.size))
            q2 = QuerySet.start(keys, 0)
            base = synchronous_multisearch(e2, st, q2)
            speedups[handles] = base.mesh_steps / ours.mesh_steps
        assert speedups[128] > speedups[16]

    def test_baseline_cost_linear_in_r(self):
        costs = {}
        for handles in (32, 64):
            br, st, sp, keys = broom_case(tree_height=4, handles=handles, m=128)
            eng = MeshEngine.for_problem(max(br.size, keys.size))
            qs = QuerySet.start(keys, 0)
            res = synchronous_multisearch(eng, st, qs)
            costs[handles] = res.mesh_steps
        # r roughly doubles (handles dominate), mesh side also grows a bit
        assert costs[64] > 1.5 * costs[32]
