"""Tests for Theorem 2 Step 2(a)'s recursive even distribution."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core.labels import compute_labels, distribute_evenly


class TestDistributeEvenly:
    def test_all_eligible_uniform(self):
        counts = distribute_evenly(np.ones((4, 4), dtype=bool), 16)
        assert (counts == 1).all()

    def test_balance_within_one(self):
        counts = distribute_evenly(np.ones((4, 4), dtype=bool), 21)
        assert counts.sum() == 21
        assert counts.max() - counts.min() <= 1

    def test_ineligible_hold_nothing(self):
        eligible = np.zeros((6, 6), dtype=bool)
        eligible[::2, ::2] = True
        counts = distribute_evenly(eligible, 17)
        assert (counts[~eligible] == 0).all()
        assert counts.sum() == 17
        assert counts[eligible].max() - counts[eligible].min() <= 1

    def test_zero_records(self):
        counts = distribute_evenly(np.ones((3, 3), dtype=bool), 0)
        assert (counts == 0).all()

    def test_no_eligible_rejected(self):
        with pytest.raises(ValueError):
            distribute_evenly(np.zeros((3, 3), dtype=bool), 1)

    def test_wrong_shape_rejected(self):
        with pytest.raises(ValueError):
            distribute_evenly(np.ones(9, dtype=bool), 1)

    def test_more_records_than_processors(self):
        eligible = np.ones((4, 4), dtype=bool)
        counts = distribute_evenly(eligible, 50)
        assert counts.sum() == 50
        assert counts.max() - counts.min() <= 1  # 3s and 4s

    def test_single_eligible_processor(self):
        eligible = np.zeros((5, 5), dtype=bool)
        eligible[2, 3] = True
        counts = distribute_evenly(eligible, 7)
        assert counts[2, 3] == 7

    def test_on_real_label_grid(self):
        # the actual use: spread B_i's data over the label-i processors
        labels = compute_labels(32, [8, 2])
        eligible = labels == 0
        n_rec = int(eligible.sum()) * 2 + 5
        counts = distribute_evenly(eligible, n_rec)
        assert counts.sum() == n_rec
        assert (counts[~eligible] == 0).all()
        assert counts[eligible].max() - counts[eligible].min() <= 1

    @given(
        seed=st.integers(0, 100_000),
        side=st.integers(2, 24),
        density=st.floats(0.1, 1.0),
        load=st.floats(0.0, 3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_property_balanced_exact_disjoint(self, seed, side, density, load):
        rng = np.random.default_rng(seed)
        eligible = rng.random((side, side)) < density
        if not eligible.any():
            eligible[0, 0] = True
        total = int(eligible.sum())
        n_rec = int(load * total)
        counts = distribute_evenly(eligible, n_rec)
        assert counts.sum() == n_rec
        assert (counts[~eligible] == 0).all()
        if n_rec:
            assert counts[eligible].max() - counts[eligible].min() <= 1
