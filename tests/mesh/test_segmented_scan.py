"""Tests for the segmented-scan primitive."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.engine import MeshEngine


class TestSegmentedScan:
    def test_add_inclusive(self, engine8):
        vals = np.arange(1, 65)
        segs = np.repeat(np.arange(8), 8)
        out = engine8.root.segmented_scan(vals, segs)
        for s in range(8):
            chunk = vals[s * 8 : (s + 1) * 8]
            assert (out[s * 8 : (s + 1) * 8] == np.cumsum(chunk)).all()

    def test_add_exclusive(self, engine8):
        vals = np.ones(64, dtype=np.int64)
        segs = np.repeat(np.arange(4), 16)
        out = engine8.root.segmented_scan(vals, segs, inclusive=False)
        assert (out == np.tile(np.arange(16), 4)).all()

    def test_single_segment_matches_scan(self, engine8, rng):
        vals = rng.integers(0, 10, 64)
        segs = np.zeros(64, dtype=np.int64)
        a = engine8.root.segmented_scan(vals, segs)
        b = np.cumsum(vals)
        assert (a == b).all()

    def test_every_element_its_own_segment(self, engine8, rng):
        vals = rng.integers(0, 10, 64)
        segs = np.arange(64)
        out = engine8.root.segmented_scan(vals, segs)
        assert (out == vals).all()

    def test_min_inclusive(self, engine8):
        vals = np.array([5.0, 3.0, 4.0, 9.0] * 16)
        segs = np.repeat(np.arange(16), 4)
        out = engine8.root.segmented_scan(vals, segs, op="min")
        assert (out.reshape(16, 4) == [5.0, 3.0, 3.0, 3.0]).all()

    def test_max_exclusive(self, engine8):
        vals = np.array([1, 5, 2, 7] * 16, dtype=np.int64)
        segs = np.repeat(np.arange(16), 4)
        out = engine8.root.segmented_scan(vals, segs, op="max", inclusive=False)
        lo = np.iinfo(np.int64).min
        assert (out.reshape(16, 4) == [lo, 1, 5, 5]).all()

    def test_unsorted_grouped_segments(self, engine8):
        # ids only need to be grouped, not sorted
        vals = np.ones(64, dtype=np.int64)
        segs = np.concatenate([np.full(32, 7), np.full(32, 2)])
        out = engine8.root.segmented_scan(vals, segs)
        assert out[31] == 32 and out[32] == 1

    def test_charges_scan_cost(self, engine8):
        engine8.root.segmented_scan(np.ones(64), np.zeros(64))
        assert engine8.clock.time == engine8.clock.cost.scan * 8

    def test_unknown_op_rejected(self, engine8):
        with pytest.raises(ValueError):
            engine8.root.segmented_scan(np.ones(64), np.zeros(64), op="mul")

    @given(
        seed=st.integers(0, 10_000),
        n_segments=st.integers(1, 10),
    )
    @settings(max_examples=30, deadline=None)
    def test_property_matches_per_segment_cumsum(self, seed, n_segments):
        rng = np.random.default_rng(seed)
        eng = MeshEngine(8)
        sizes = rng.multinomial(64, np.ones(n_segments) / n_segments)
        segs = np.repeat(np.arange(n_segments), sizes)
        vals = rng.integers(-5, 10, 64)
        out = eng.root.segmented_scan(vals, segs)
        want = np.concatenate(
            [np.cumsum(vals[segs == s]) for s in range(n_segments) if (segs == s).any()]
        )
        assert (out == want).all()
