"""Tests for the counted-primitive mesh engine."""

import numpy as np
import pytest

from repro.mesh.engine import CapacityError, MeshEngine


class TestSort:
    def test_sorts_and_permutes_payload(self, engine8, rng):
        keys = rng.integers(0, 1000, 64)
        payload = np.arange(64)
        sk, sp = engine8.root.sort_by(keys, payload)
        assert (np.diff(sk) >= 0).all()
        assert (keys[sp] == sk).all()

    def test_stable(self, engine8):
        keys = np.array([1, 0, 1, 0] * 16)
        payload = np.arange(64)
        _, sp = engine8.root.sort_by(keys, payload)
        zeros = sp[:32]
        assert (np.diff(zeros) > 0).all()  # original order preserved within ties

    def test_charges_sort_cost(self, engine8):
        engine8.root.sort_by(np.arange(64))
        assert engine8.clock.time == engine8.clock.cost.sort * 8

    def test_subregion_charges_less(self, engine8):
        sub = engine8.root.subregion(0, 0, 4, 4)
        sub.sort_by(np.arange(16))
        assert engine8.clock.time == engine8.clock.cost.sort * 4

    def test_argsort(self, engine8, rng):
        keys = rng.uniform(size=64)
        order = engine8.root.argsort(keys)
        assert (np.diff(keys[order]) >= 0).all()


class TestRoute:
    def test_permutation(self, engine8, rng):
        dest = rng.permutation(64)
        (out,) = engine8.root.route(dest, np.arange(64))
        assert (out[dest] == np.arange(64)).all()

    def test_partial_with_discard(self, engine8):
        dest = np.array([5, -1, 3] + [-1] * 61)
        (out,) = engine8.root.route(dest, np.arange(64), fill=-7)
        assert out[5] == 0 and out[3] == 2
        assert out[0] == -7

    def test_duplicate_destinations_rejected(self, engine8):
        dest = np.zeros(64, dtype=np.int64)
        with pytest.raises(ValueError, match="duplicate"):
            engine8.root.route(dest, np.arange(64))

    def test_out_of_range_rejected(self, engine8):
        dest = np.full(64, 64)
        with pytest.raises(ValueError, match="out of range"):
            engine8.root.route(dest, np.arange(64))

    def test_custom_output_size(self, engine8):
        dest = np.arange(64)
        (out,) = engine8.root.route(dest, np.arange(64), size=128)
        assert out.shape == (128,)

    def test_multiple_arrays_move_together(self, engine8, rng):
        dest = rng.permutation(64)
        a, b = np.arange(64), np.arange(64) * 2
        oa, ob = engine8.root.route(dest, a, b)
        assert (ob == oa * 2).all()


class TestRar:
    def test_concurrent_reads(self, engine8):
        table = np.arange(100, 164)
        addr = np.zeros(64, dtype=np.int64)  # everyone reads slot 0
        (got,) = engine8.root.rar(addr, table)
        assert (got == 100).all()

    def test_gather(self, engine8, rng):
        table = rng.uniform(size=64)
        addr = rng.integers(0, 64, 64)
        (got,) = engine8.root.rar(addr, table)
        assert (got == table[addr]).all()

    def test_invalid_address_gives_fill(self, engine8):
        table = np.arange(64)
        addr = np.full(64, -1)
        (got,) = engine8.root.rar(addr, table, fill=9)
        assert (got == 9).all()

    def test_2d_table(self, engine8):
        table = np.arange(128).reshape(64, 2)
        addr = np.arange(64)[::-1].copy()
        (got,) = engine8.root.rar(addr, table)
        assert (got == table[addr]).all()

    def test_out_of_range_rejected(self, engine8):
        with pytest.raises(ValueError):
            engine8.root.rar(np.full(64, 99), np.arange(64))

    def test_charges_route_cost(self, engine8):
        engine8.root.rar(np.arange(64), np.arange(64))
        assert engine8.clock.time == engine8.clock.cost.route * 8


class TestRaw:
    def test_combining_add(self, engine8):
        addr = np.zeros(64, dtype=np.int64)
        out = engine8.root.raw(addr, np.ones(64, dtype=np.int64), size=4)
        assert out[0] == 64 and out[1] == 0

    def test_combining_min_max(self, engine8):
        addr = np.arange(64) % 4
        vals = np.arange(64).astype(np.float64)
        mn = engine8.root.raw(addr, vals, size=4, combine="min")
        mx = engine8.root.raw(addr, vals, size=4, combine="max")
        assert mn[0] == 0 and mx[0] == 60
        assert mn[3] == 3 and mx[3] == 63

    def test_unwritten_slots_get_fill(self, engine8):
        addr = np.full(64, -1)
        addr[0] = 2
        out = engine8.root.raw(addr, np.ones(64), size=4, combine="max", fill=-5)
        assert out[2] == 1 and out[0] == -5

    def test_suppressed_writes(self, engine8):
        addr = np.full(64, -1)
        out = engine8.root.raw(addr, np.ones(64, dtype=np.int64), size=4)
        assert (out == 0).all()

    def test_unknown_combine_rejected(self, engine8):
        with pytest.raises(ValueError):
            engine8.root.raw(np.arange(64), np.ones(64), size=64, combine="xor")


class TestScanReduceBroadcastCompress:
    def test_inclusive_scan(self, engine8, rng):
        v = rng.integers(0, 10, 64)
        assert (engine8.root.scan(v) == np.cumsum(v)).all()

    def test_exclusive_scan(self, engine8):
        v = np.ones(64, dtype=np.int64)
        out = engine8.root.scan(v, inclusive=False)
        assert (out == np.arange(64)).all()

    def test_scan_min(self, engine8):
        v = np.array([5.0, 3.0, 4.0, 1.0] * 16)
        out = engine8.root.scan(v, op="min")
        assert out[1] == 3.0 and out[3] == 1.0 and out[63] == 1.0

    def test_reduce_add(self, engine8):
        assert engine8.root.reduce(np.arange(64)) == 2016

    def test_reduce_empty_add(self, engine8):
        assert engine8.root.reduce(np.empty(0, dtype=np.int64)) == 0

    def test_reduce_empty_min_rejected(self, engine8):
        with pytest.raises(ValueError):
            engine8.root.reduce(np.empty(0), op="min")

    def test_broadcast_returns_value_and_charges(self, engine8):
        assert engine8.root.broadcast(42) == 42
        assert engine8.clock.time == engine8.clock.cost.broadcast * 8

    def test_compress(self, engine8):
        mask = np.arange(64) % 2 == 0
        count, vals = engine8.root.compress(mask, np.arange(64))
        assert count == 32
        assert (vals == np.arange(0, 64, 2)).all()

    def test_compress_multiple_arrays(self, engine8):
        mask = np.arange(64) < 3
        count, a, b = engine8.root.compress(mask, np.arange(64), np.arange(64) * 10)
        assert count == 3 and (b == a * 10).all()


class TestCapacity:
    def test_too_many_records_rejected(self):
        eng = MeshEngine(4, capacity=2)
        with pytest.raises(CapacityError):
            eng.root.sort_by(np.arange(33))

    def test_check_capacity(self, engine8):
        engine8.root.check_capacity(64, per_proc=1)
        with pytest.raises(CapacityError):
            engine8.root.check_capacity(65, per_proc=1)

    def test_per_proc_capped_by_engine(self):
        eng = MeshEngine(4, capacity=2)
        with pytest.raises(CapacityError):
            eng.root.check_capacity(100, per_proc=50)


class TestParallelRegions:
    def test_disjoint_regions_max_charged(self, engine8):
        blocks = engine8.root.partition(2, 2)
        with engine8.parallel(blocks) as par:
            with par.branch(blocks[0]):
                blocks[0].sort_by(np.arange(16))
            with par.branch(blocks[1]):
                blocks[1].sort_by(np.arange(16))
                blocks[1].sort_by(np.arange(16))
        # max = 2 sorts at side 4
        assert engine8.clock.time == 2 * engine8.clock.cost.sort * 4

    def test_overlapping_regions_rejected(self, engine8):
        a = engine8.root.subregion(0, 0, 5, 5)
        b = engine8.root.subregion(4, 4, 4, 4)
        with pytest.raises(ValueError, match="overlap"):
            with engine8.parallel([a, b]):
                pass

    def test_operation_outside_branch_region_rejected(self, engine8):
        blocks = engine8.root.partition(2, 2)
        with engine8.parallel(blocks) as par:
            with par.branch(blocks[0]):
                with pytest.raises(RuntimeError, match="outside"):
                    blocks[1].sort_by(np.arange(16))

    def test_subregion_of_branch_allowed(self, engine8):
        blocks = engine8.root.partition(2, 2)
        with engine8.parallel(blocks) as par:
            with par.branch(blocks[0]):
                blocks[0].subregion(0, 0, 2, 2).sort_by(np.arange(4))


class TestTransfer:
    def test_moves_data_and_charges_distance(self, engine8):
        src = engine8.root.subregion(0, 0, 2, 2)
        dst = engine8.root.subregion(6, 6, 2, 2)
        (out,) = engine8.transfer(src, dst, np.arange(4))
        assert (out == np.arange(4)).all()
        assert engine8.clock.time == engine8.clock.cost.transfer * 16

    def test_capacity_enforced(self):
        eng = MeshEngine(8, capacity=1)
        src = eng.root.subregion(0, 0, 4, 4)
        dst = eng.root.subregion(0, 4, 1, 1)
        with pytest.raises(CapacityError):
            eng.transfer(src, dst, np.arange(16))


class TestPartition:
    def test_partition_covers_root(self, engine8):
        blocks = engine8.root.partition(4, 2)
        assert sum(b.size for b in blocks) == 64

    def test_for_problem(self):
        eng = MeshEngine.for_problem(100)
        assert eng.size >= 100
        assert eng.shape.rows == eng.shape.cols == 10
