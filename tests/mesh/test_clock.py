"""Tests for step accounting and parallel-max charging."""

import pytest

from repro.mesh.clock import CostModel, StepClock


class TestCharge:
    def test_accumulates(self):
        c = StepClock()
        c.charge(3)
        c.charge(4.5)
        assert c.time == 7.5

    def test_rejects_negative(self):
        c = StepClock()
        with pytest.raises(ValueError):
            c.charge(-1)

    def test_history_recording(self):
        c = StepClock()
        c.record_history = True
        c.charge(2, "sort")
        c.charge(3, "route")
        assert c.history == [("sort", 2), ("route", 3)]

    def test_reset(self):
        c = StepClock()
        c.charge(5)
        c.reset()
        assert c.time == 0.0


class TestParallel:
    def test_max_of_branches(self):
        c = StepClock()
        with c.parallel() as par:
            with par.branch():
                c.charge(5)
            with par.branch():
                c.charge(9)
            with par.branch():
                c.charge(2)
        assert c.time == 9

    def test_empty_parallel_charges_nothing(self):
        c = StepClock()
        with c.parallel():
            pass
        assert c.time == 0

    def test_serial_after_parallel(self):
        c = StepClock()
        c.charge(1)
        with c.parallel() as par:
            with par.branch():
                c.charge(10)
        c.charge(2)
        assert c.time == 13

    def test_nested_parallel(self):
        c = StepClock()
        with c.parallel() as outer:
            with outer.branch():
                c.charge(1)
                with c.parallel() as inner:
                    with inner.branch():
                        c.charge(5)
                    with inner.branch():
                        c.charge(3)
                # branch total: 1 + max(5,3) = 6
            with outer.branch():
                c.charge(4)
        assert c.time == 6

    def test_branch_times_exposed(self):
        c = StepClock()
        with c.parallel() as par:
            with par.branch():
                c.charge(2)
            with par.branch():
                c.charge(7)
            assert par.branch_times == [2, 7]

    def test_time_read_inside_parallel_rejected(self):
        c = StepClock()
        with pytest.raises(RuntimeError):
            with c.parallel():
                _ = c.time

    def test_sibling_branches_cannot_nest(self):
        c = StepClock()
        with c.parallel() as par:
            with pytest.raises(RuntimeError):
                with par.branch():
                    with par.branch():
                        pass

    def test_reset_inside_parallel_rejected(self):
        c = StepClock()
        with pytest.raises(RuntimeError):
            with c.parallel():
                c.reset()


class TestCostModel:
    def test_defaults_positive(self):
        cm = CostModel()
        assert cm.sort > 0 and cm.route > 0 and cm.scan > 0
        assert cm.broadcast > 0 and cm.local > 0

    def test_custom_model_used(self):
        c = StepClock(CostModel(sort=10.0))
        assert c.cost.sort == 10.0

    def test_frozen(self):
        cm = CostModel()
        with pytest.raises(Exception):
            cm.sort = 1.0
