"""Fault injection (repro.mesh.faults): determinism, detection, silence."""

import numpy as np
import pytest

from repro.mesh.engine import MeshEngine
from repro.mesh.faults import (
    ADVERSARIAL_KINDS,
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InvariantViolation,
    apply_adversarial,
    current_span_path,
)
from repro.mesh.trace import Tracer, traced


def _primitive_pipeline(paranoid: bool, injector: FaultInjector | None = None):
    """sort_by -> route -> transfer over 64 records; returns the outputs."""
    eng = MeshEngine.for_problem(64, paranoid=paranoid)
    if injector is not None:
        injector.install(eng)
    rng = np.random.default_rng(0)
    keys = rng.integers(0, 1000, 64).astype(np.int64)
    r = eng.root
    (srt,) = r.sort_by(keys, label="t:sort")
    perm = rng.permutation(64)
    (routed,) = r.route(perm, srt, label="t:route")
    half = r.spec.rows // 2
    top = r.subregion(0, 0, half, r.spec.cols)
    bot = r.subregion(half, 0, r.spec.rows - half, r.spec.cols)
    (moved,) = eng.transfer(top, bot, routed[:16], label="t:xfer")
    return srt, routed, moved


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultPlan(seed=1, kind="set_on_fire")

    def test_rate_bounds(self):
        with pytest.raises(ValueError, match="rate"):
            FaultPlan(seed=1, kind="drop_transfer", rate=1.5)

    def test_round_trip(self):
        plan = FaultPlan(seed=7, kind="perturb_sort_key", site="cm:", rate=0.5)
        assert FaultPlan.from_dict(plan.to_dict()) == plan

    def test_all_kinds_constructible(self):
        for kind in FAULT_KINDS + ADVERSARIAL_KINDS:
            FaultPlan(seed=1, kind=kind)


class TestDeterminism:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_same_seed_same_log(self, kind):
        logs = []
        for _ in range(2):
            inj = FaultInjector(FaultPlan(seed=5, kind=kind))
            try:
                _primitive_pipeline(paranoid=False, injector=inj)
            except Exception:
                pass
            logs.append(inj.log())
        assert logs[0] == logs[1]
        assert logs[0], f"{kind} never injected in the pipeline"

    def test_different_seeds_may_differ(self):
        # not a hard guarantee per-seed, but the index chosen must follow
        # the plan's own generator, not global state
        inj = FaultInjector(FaultPlan(seed=5, kind="perturb_sort_key"))
        np.random.seed(0)  # perturbing global state must not matter
        _primitive_pipeline(paranoid=False, injector=inj)
        ref = FaultInjector(FaultPlan(seed=5, kind="perturb_sort_key"))
        _primitive_pipeline(paranoid=False, injector=ref)
        assert inj.log() == ref.log()

    def test_site_filter(self):
        inj = FaultInjector(
            FaultPlan(seed=5, kind="perturb_sort_key", site="nomatch:")
        )
        _primitive_pipeline(paranoid=False, injector=inj)
        assert inj.log() == []

    def test_max_faults_bounds_injections(self):
        inj = FaultInjector(
            FaultPlan(seed=5, kind="perturb_sort_key", max_faults=1, rate=1.0)
        )
        eng = MeshEngine.for_problem(64, paranoid=False)
        inj.install(eng)
        keys = np.arange(64)[::-1].copy()
        for _ in range(3):
            eng.root.sort_by(keys, label="t:sort")
        assert len(inj.injected) == 1
        assert inj.opportunities["perturb_sort_key"] >= 3


class TestParanoidDetection:
    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_injection_detected(self, kind):
        inj = FaultInjector(FaultPlan(seed=5, kind=kind))
        with pytest.raises(InvariantViolation) as err:
            _primitive_pipeline(paranoid=True, injector=inj)
        assert inj.injected, "fault must have fired before detection"
        assert err.value.check in ("sort:sorted", "route:payload", "transfer:batch")
        assert err.value.to_dict()["check"] == err.value.check

    @pytest.mark.parametrize("kind", FAULT_KINDS)
    def test_silent_without_paranoid(self, kind):
        inj = FaultInjector(FaultPlan(seed=5, kind=kind))
        _primitive_pipeline(paranoid=False, injector=inj)  # must not raise
        assert inj.injected

    def test_violation_carries_span_path(self):
        eng = MeshEngine.for_problem(64, paranoid=True)
        inj = FaultInjector(FaultPlan(seed=5, kind="perturb_sort_key"))
        inj.install(eng)
        tracer = Tracer()
        eng.clock.tracer = tracer
        keys = np.arange(64)[::-1].copy()
        with traced(eng.clock, "outer"):
            with traced(eng.clock, "inner"):
                with pytest.raises(InvariantViolation) as err:
                    eng.root.sort_by(keys, label="t:sort")
        # the tracer's own root span may lead the path; the open user
        # spans must close it out in order
        assert err.value.span_path[-2:] == ("outer", "inner")
        assert "outer>inner" in str(err.value)

    def test_span_path_empty_without_tracer(self):
        assert current_span_path(None) == ()


class TestAdversarial:
    def _problem(self):
        from repro.core.model import STOP, QuerySet, SearchStructure

        adjacency = np.array([[1, 2], [-1, -1], [-1, -1]], dtype=np.int64)
        st = SearchStructure(
            adjacency=adjacency,
            payload=np.zeros((3, 1)),
            level=np.array([0, 1, 1], dtype=np.int64),
            successor=lambda *a: (np.full(a[0].shape[0], STOP), a[5]),
        )
        qs = QuerySet.start(np.array([0.5, 1.5]), 0)
        return st, qs

    def test_corrupt_query_pointer(self):
        st, qs = self._problem()
        inj = FaultInjector(FaultPlan(seed=1, kind="corrupt_query_pointer"))
        apply_adversarial(inj, st, qs)
        assert inj.injected and inj.injected[0].kind == "corrupt_query_pointer"
        assert qs.current.max() >= st.n_vertices

    def test_nan_query_key(self):
        st, qs = self._problem()
        inj = FaultInjector(FaultPlan(seed=1, kind="nan_query_key"))
        apply_adversarial(inj, st, qs)
        assert np.isnan(np.asarray(qs.key)).any()

    def test_corrupt_structure_level(self):
        st, qs = self._problem()
        inj = FaultInjector(FaultPlan(seed=1, kind="corrupt_structure_level"))
        apply_adversarial(inj, st, qs)
        assert st.level.max() > st.n_vertices

    def test_paranoid_boundary_catches_adversarial(self):
        from repro.mesh.faults import paranoid_boundary

        st, qs = self._problem()
        inj = FaultInjector(FaultPlan(seed=1, kind="corrupt_query_pointer"))
        apply_adversarial(inj, st, qs)
        eng = MeshEngine.for_problem(4, paranoid=True)
        with pytest.raises(InvariantViolation, match="entry"):
            paranoid_boundary(eng, "entry", structure=st, qs=qs)
        # paranoid off: boundary is a no-op
        eng_off = MeshEngine.for_problem(4, paranoid=False)
        paranoid_boundary(eng_off, "entry", structure=st, qs=qs)
