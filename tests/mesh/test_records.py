"""Unit tests for the fused record containers (repro.mesh.records)."""

import numpy as np
import pytest

from repro.mesh.records import (
    ArgsortMemo,
    BufferPool,
    RecordSet,
    fused_view,
    should_fuse,
)


def make_rs(n=8, pack=False, seed=0):
    rng = np.random.default_rng(seed)
    return RecordSet(
        ident=np.arange(n, dtype=np.int64),
        level=rng.integers(0, 5, n).astype(np.int64),
        weight=rng.normal(size=n),
        adj=rng.integers(-1, n, (n, 3)).astype(np.int64),
        pack=pack,
    )


PACK = pytest.mark.parametrize("pack", [False, True])


class TestRecordSet:
    @PACK
    def test_fields_round_trip(self, pack):
        rs = make_rs(pack=pack)
        ref = make_rs(pack=False)
        assert rs.names == ["ident", "level", "weight", "adj"]
        for name in rs.names:
            got, want = rs.field(name), ref.field(name)
            assert got.dtype == want.dtype and got.shape == want.shape
            np.testing.assert_array_equal(got, want)
            np.testing.assert_array_equal(rs[name], want)
        assert "weight" in rs and "missing" not in rs

    def test_field_is_view(self):
        rs = make_rs()
        rs.field("level")[0] = 99
        assert rs.field("level")[0] == 99

    def test_packed_single_block(self):
        # pack=True fuses int64 and float64 fields into one int64 block
        rs = make_rs(pack=True)
        assert rs.dtypes == [np.dtype(np.int64)]
        assert rs.block(np.int64).shape == (8, 6)
        assert make_rs(pack=False).block(np.float64).shape == (8, 1)

    def test_packed_float_bits_exact(self):
        # bit-cast round trip must preserve every float payload exactly
        specials = np.array([0.0, -0.0, np.inf, -np.inf, np.nan, 5e-324, 1.5])
        rs = RecordSet(w=specials, tag=np.arange(7, dtype=np.int64), pack=True)
        got = rs.field("w")
        assert got.dtype == np.float64
        np.testing.assert_array_equal(
            got.view(np.int64), specials.view(np.int64)
        )

    @PACK
    def test_span_reconstructs_fields(self, pack):
        rs = make_rs(pack=pack)
        for name in rs.names:
            blk, c, width, vdt = rs.span(name)
            col = blk[:, c] if rs.field(name).ndim == 1 else blk[:, c : c + width]
            np.testing.assert_array_equal(col.view(vdt), rs.field(name))

    def test_needs_a_field_and_equal_lengths(self):
        with pytest.raises(ValueError):
            RecordSet()
        with pytest.raises(ValueError):
            RecordSet(a=np.arange(3), b=np.arange(4))
        with pytest.raises(ValueError):
            RecordSet(a=np.zeros((2, 2, 2)))

    @PACK
    def test_permute_select_match_per_field(self, pack):
        rs = make_rs(pack=pack)
        order = np.array([3, 1, 4, 1, 5, 0, 2, 6])
        mask = np.array([1, 0, 1, 1, 0, 0, 1, 1], dtype=bool)
        perm, sel = rs.permute(order), rs.select(mask)
        for name in rs.names:
            np.testing.assert_array_equal(perm.field(name), rs.field(name)[order])
            np.testing.assert_array_equal(sel.field(name), rs.field(name)[mask])
        assert perm.n == 8 and sel.n == int(mask.sum())

    @PACK
    def test_take_with_dead_slots(self, pack):
        rs = make_rs(pack=pack)
        idx = np.array([2, -1, 0, 7, -1])
        got = rs.take(idx, fill=0)
        live = idx >= 0
        for name in rs.names:
            src = rs.field(name)
            np.testing.assert_array_equal(got.field(name)[live], src[idx[live]])
            assert not got.field(name)[~live].any()

    def test_take_nonzero_fill_unpacked_only(self):
        rs = make_rs(pack=False)
        got = rs.take(np.array([1, -1]), fill=7)
        assert got.field("level")[1] == 7 and got.field("weight")[1] == 7.0
        with pytest.raises(ValueError):
            make_rs(pack=True).take(np.array([1, -1]), fill=7)

    @PACK
    def test_take_live_matches_take(self, pack):
        rs = make_rs(pack=pack)
        idx = np.array([5, 5, 0, 3])
        a, b = rs.take(idx), rs.take_live(idx)
        for name in rs.names:
            np.testing.assert_array_equal(a.field(name), b.field(name))

    @PACK
    def test_scatter_matches_per_field(self, pack):
        rs = make_rs(pack=pack)
        dest = np.array([4, -1, 0, 9, 2, -1, 7, 1])
        got = rs.scatter(dest, size=10, fill=0)
        live = dest >= 0
        for name in rs.names:
            src = rs.field(name)
            want = np.zeros((10,) + src.shape[1:], dtype=src.dtype)
            want[dest[live]] = src[live]
            np.testing.assert_array_equal(got.field(name), want)
        with pytest.raises(ValueError):
            make_rs(pack=True).scatter(dest, size=10, fill=3)

    def test_set_field_bumps_version(self):
        rs = make_rs()
        v0 = rs.version
        rs.set_field("level", np.zeros(8, dtype=np.int64))
        assert rs.version == v0 + 1
        assert not rs.field("level").any()
        rs.touch()
        assert rs.version == v0 + 2

    def test_argsort_memo_invalidated_by_version(self):
        rs = make_rs()
        memo = ArgsortMemo()
        o1 = rs.argsort("level", memo=memo)
        o2 = rs.argsort("level", memo=memo)
        assert o1 is o2 and memo.hits == 1
        rs.set_field("level", rs.field("level")[::-1].copy())
        o3 = rs.argsort("level", memo=memo)
        np.testing.assert_array_equal(
            o3, np.argsort(rs.field("level"), kind="stable")
        )


class TestArgsortMemo:
    def test_hit_on_same_array(self):
        memo = ArgsortMemo()
        keys = np.array([3, 1, 2])
        o1 = memo.order_for(keys)
        o2 = memo.order_for(keys)
        assert o1 is o2 and memo.hits == 1 and memo.misses == 1
        assert not o1.flags.writeable

    def test_inplace_mutation_never_replays_stale_order(self):
        memo = ArgsortMemo()
        keys = np.array([3, 1, 2])
        memo.order_for(keys)
        keys[0] = 0  # same identity, new contents
        np.testing.assert_array_equal(
            memo.order_for(keys), np.argsort(keys, kind="stable")
        )

    def test_lru_eviction(self):
        memo = ArgsortMemo(capacity=2)
        arrays = [np.array([i, 0]) for i in range(3)]
        for a in arrays:
            memo.order_for(a)
        assert len(memo._slots) == 2
        memo.clear()
        assert len(memo._slots) == 0


class TestBufferPool:
    def test_reuses_and_refills(self):
        pool = BufferPool()
        a = pool.full(4, np.int64, fill=1)
        a[:] = 99
        b = pool.full(4, np.int64, fill=1)
        assert b is a and (b == 1).all()
        assert pool.full(4, np.float64) is not a  # dtype keyed separately
        assert pool.empty((4,), np.int64) is a

    def test_persistent_copies(self):
        pool = BufferPool()
        a = pool.full(3, np.int64, fill=2)
        safe = BufferPool.persistent(a)
        a[:] = 0
        assert (safe == 2).all()
        pool.clear()
        assert pool.full(3, np.int64) is not a


class _Struct:
    def __init__(self, n=6, d=2, p=2):
        rng = np.random.default_rng(1)
        self.adjacency = rng.integers(0, n, (n, d)).astype(np.int64)
        self.level = rng.integers(0, 3, n).astype(np.int64)
        self.payload = rng.normal(size=(n, p))


class TestFusedView:
    def test_packs_and_caches(self):
        st = _Struct()
        fv = fused_view(st)
        assert fused_view(st) is fv
        np.testing.assert_array_equal(fv["adjacency"], st.adjacency)
        np.testing.assert_array_equal(fv["level"], st.level)
        np.testing.assert_array_equal(fv["payload"], st.payload)
        assert fv.dtypes == [np.dtype(np.int64)]  # packed into one block

    def test_rebuilt_when_arrays_replaced(self):
        st = _Struct()
        fv = fused_view(st)
        st.level = st.level + 1  # new array identity invalidates the cache
        fv2 = fused_view(st)
        assert fv2 is not fv
        np.testing.assert_array_equal(fv2["level"], st.level)

    def test_should_fuse_only_from_second_sighting(self):
        st = _Struct()
        assert not should_fuse(st)  # first sighting: one-shot stays cheap
        assert should_fuse(st)  # second use amortizes the packing cost
        fused = _Struct()
        fused_view(fused)
        assert should_fuse(fused)  # already packed: always worth using
        frozen = object()  # unmarkable: stays on the per-field path
        assert not should_fuse(frozen)
        assert not should_fuse(frozen)
