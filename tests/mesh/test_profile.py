"""Tests for the cost profiler."""

import numpy as np
import pytest

from repro.mesh.engine import MeshEngine
from repro.mesh.profile import CostProfile, profile, profiled


class TestProfile:
    def test_aggregates_labels(self):
        history = [("sort", 10.0), ("route", 5.0), ("sort", 3.0)]
        prof = profile(history)
        assert prof.by_label == {"sort": 13.0, "route": 5.0}
        assert prof.calls == {"sort": 2, "route": 1}
        assert prof.total == 18.0

    def test_top(self):
        prof = profile([("a", 1.0), ("b", 9.0), ("c", 5.0)])
        assert prof.top(2) == [("b", 9.0), ("c", 5.0)]

    def test_fraction_by_prefix(self):
        prof = profile([("cm:round", 6.0), ("cm:mark", 2.0), ("other", 2.0)])
        assert prof.fraction("cm:") == 0.8

    def test_empty(self):
        prof = CostProfile()
        assert prof.total == 0.0
        assert prof.fraction("x") == 0.0

    def test_render_label_missing_from_calls(self):
        # a label can exist in by_label but not calls (partial from_dict
        # data, hand-built profiles); render must not KeyError
        prof = CostProfile.from_dict({"by_label": {"sort": 12.0}})
        assert prof.calls == {}
        text = prof.render()
        assert "sort" in text and "0 charges" in text

    def test_hand_built_profile_renders(self):
        prof = CostProfile(by_label={"a": 3.0, "b": 1.0}, calls={"a": 2})
        text = prof.render()
        assert "2 charges" in text and "0 charges" in text


class TestMemoCounters:
    def test_memo_round_trip_and_render(self):
        prof = CostProfile(
            by_label={"sort": 4.0}, calls={"sort": 1}, memo={"hits": 3, "misses": 2}
        )
        back = CostProfile.from_dict(prof.to_dict())
        assert back.memo == {"hits": 3, "misses": 2}
        assert "argsort memo: hits=3, misses=2" in back.render()

    def test_memo_absent_stays_out_of_dict_and_render(self):
        prof = profile([("sort", 1.0)])
        assert "memo" not in prof.to_dict()
        assert "argsort memo" not in prof.render()

    def test_merge_sums_memo(self):
        a = CostProfile(memo={"hits": 1, "misses": 4})
        b = CostProfile(memo={"hits": 2})
        merged = a.merge(b)
        assert merged.memo == {"hits": 3, "misses": 4}
        # merge must not mutate its inputs
        assert a.memo == {"hits": 1, "misses": 4}

    def test_engine_memo_feeds_counters(self):
        from repro.mesh.records import drain_memo_counters

        drain_memo_counters()
        engine = MeshEngine(4, fast_path=True)
        keys = np.array([3, 1, 2, 1], dtype=np.int64)
        engine.root.argsort(keys)
        engine.root.argsort(keys)  # second call hits the memo
        counters = drain_memo_counters()
        assert counters["misses"] >= 1
        assert counters["hits"] >= 1
        # drained: the process-wide totals reset
        assert drain_memo_counters() == {"hits": 0, "misses": 0}


class TestRoundTrips:
    def test_to_from_dict_round_trip(self):
        prof = profile([("sort", 10.0), ("route", 5.0), ("sort", 3.0)])
        back = CostProfile.from_dict(prof.to_dict())
        assert back.by_label == prof.by_label
        assert back.calls == prof.calls
        assert back.total == prof.total

    def test_from_dict_partial_then_render_round_trip(self):
        data = {"by_label": {"x": 7.0}}  # no calls key at all
        back = CostProfile.from_dict(data)
        again = CostProfile.from_dict(back.to_dict())
        assert again.by_label == {"x": 7.0}
        assert again.calls == {}
        again.render()  # must not raise

    def test_merge_disjoint_and_overlapping(self):
        a = profile([("sort", 10.0), ("scan", 1.0)])
        b = profile([("sort", 2.0), ("route", 4.0)])
        merged = a.merge(b)
        assert merged.by_label == {"sort": 12.0, "scan": 1.0, "route": 4.0}
        assert merged.calls == {"sort": 2, "scan": 1, "route": 1}
        # inputs untouched
        assert a.by_label["sort"] == 10.0 and b.by_label["sort"] == 2.0

    def test_merge_to_dict_round_trip(self):
        a = profile([("sort", 10.0)])
        b = profile([("route", 5.0), ("route", 5.0)])
        merged = CostProfile().merge(a, b)
        back = CostProfile.from_dict(merged.to_dict())
        assert back.by_label == merged.by_label
        assert back.calls == merged.calls


class TestProfiledContext:
    def test_captures_engine_charges(self):
        eng = MeshEngine(8)
        with profiled(eng.clock) as prof:
            eng.root.sort_by(np.arange(64), label="my-sort")
            eng.root.scan(np.arange(64), label="my-scan")
        assert prof.by_label["my-sort"] == eng.clock.cost.sort * 8
        assert prof.by_label["my-scan"] == eng.clock.cost.scan * 8
        assert prof.total == eng.clock.time

    def test_restores_flag(self):
        eng = MeshEngine(8)
        assert not eng.clock.record_history
        with profiled(eng.clock):
            pass
        assert not eng.clock.record_history

    def test_restores_flag_on_exception(self):
        eng = MeshEngine(8)
        with pytest.raises(RuntimeError):
            with profiled(eng.clock) as prof:
                eng.root.scan(np.arange(64), label="pre-crash")
                raise RuntimeError("boom")
        assert not eng.clock.record_history
        # charges up to the exception are still summarized
        assert prof.by_label["pre-crash"] == eng.clock.cost.scan * 8

    def test_preserves_pre_enabled_flag_on_exception(self):
        eng = MeshEngine(8)
        eng.clock.record_history = True
        with pytest.raises(ValueError):
            with profiled(eng.clock):
                raise ValueError("boom")
        assert eng.clock.record_history  # prior True restored, not clobbered

    def test_only_block_charges_counted(self):
        eng = MeshEngine(8)
        eng.root.sort_by(np.arange(64))
        with profiled(eng.clock) as prof:
            eng.root.scan(np.arange(64))
        assert "sort" not in prof.by_label

    def test_render_mentions_top_label(self):
        eng = MeshEngine(8)
        with profiled(eng.clock) as prof:
            eng.root.rar(np.arange(64), np.arange(64), label="visit")
        assert "visit" in prof.render()

    def test_full_algorithm_breakdown(self):
        from repro.core.hierdag import hierdag_multisearch
        from repro.core.model import QuerySet
        from repro.graphs.adapters import hierdag_search_structure
        from repro.graphs.hierarchical import build_mu_ary_search_dag

        dag, keys = build_mu_ary_search_dag(2, 10, seed=0)
        st = hierdag_search_structure(dag)
        eng = MeshEngine.for_problem(dag.size)
        qs = QuerySet.start(keys[:128].astype(np.float64), 0)
        with profiled(eng.clock) as prof:
            hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
        assert prof.total == eng.clock.time
        assert prof.fraction("hierdag:") == 1.0
        assert prof.by_label.get("hierdag:bstar", 0) > 0
