"""Tests for the cost profiler."""

import numpy as np

from repro.mesh.engine import MeshEngine
from repro.mesh.profile import CostProfile, profile, profiled


class TestProfile:
    def test_aggregates_labels(self):
        history = [("sort", 10.0), ("route", 5.0), ("sort", 3.0)]
        prof = profile(history)
        assert prof.by_label == {"sort": 13.0, "route": 5.0}
        assert prof.calls == {"sort": 2, "route": 1}
        assert prof.total == 18.0

    def test_top(self):
        prof = profile([("a", 1.0), ("b", 9.0), ("c", 5.0)])
        assert prof.top(2) == [("b", 9.0), ("c", 5.0)]

    def test_fraction_by_prefix(self):
        prof = profile([("cm:round", 6.0), ("cm:mark", 2.0), ("other", 2.0)])
        assert prof.fraction("cm:") == 0.8

    def test_empty(self):
        prof = CostProfile()
        assert prof.total == 0.0
        assert prof.fraction("x") == 0.0


class TestProfiledContext:
    def test_captures_engine_charges(self):
        eng = MeshEngine(8)
        with profiled(eng.clock) as prof:
            eng.root.sort_by(np.arange(64), label="my-sort")
            eng.root.scan(np.arange(64), label="my-scan")
        assert prof.by_label["my-sort"] == eng.clock.cost.sort * 8
        assert prof.by_label["my-scan"] == eng.clock.cost.scan * 8
        assert prof.total == eng.clock.time

    def test_restores_flag(self):
        eng = MeshEngine(8)
        assert not eng.clock.record_history
        with profiled(eng.clock):
            pass
        assert not eng.clock.record_history

    def test_only_block_charges_counted(self):
        eng = MeshEngine(8)
        eng.root.sort_by(np.arange(64))
        with profiled(eng.clock) as prof:
            eng.root.scan(np.arange(64))
        assert "sort" not in prof.by_label

    def test_render_mentions_top_label(self):
        eng = MeshEngine(8)
        with profiled(eng.clock) as prof:
            eng.root.rar(np.arange(64), np.arange(64), label="visit")
        assert "visit" in prof.render()

    def test_full_algorithm_breakdown(self):
        from repro.core.hierdag import hierdag_multisearch
        from repro.core.model import QuerySet
        from repro.graphs.adapters import hierdag_search_structure
        from repro.graphs.hierarchical import build_mu_ary_search_dag

        dag, keys = build_mu_ary_search_dag(2, 10, seed=0)
        st = hierdag_search_structure(dag)
        eng = MeshEngine.for_problem(dag.size)
        qs = QuerySet.start(keys[:128].astype(np.float64), 0)
        with profiled(eng.clock) as prof:
            hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
        assert prof.total == eng.clock.time
        assert prof.fraction("hierdag:") == 1.0
        assert prof.by_label.get("hierdag:bstar", 0) > 0
