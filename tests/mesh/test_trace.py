"""Tests for the hierarchical span tracer (repro.mesh.trace)."""

import json
import os

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.clock import StepClock
from repro.mesh.engine import MeshEngine
from repro.mesh.trace import (
    Span,
    Tracer,
    _collapsed_name,
    chrome_doc,
    drain_traced_tracers,
    parse_collapsed,
    traced,
)


class TestSpanTree:
    def test_charges_attribute_to_innermost_span(self):
        eng = MeshEngine(8)
        tracer = Tracer(clock=eng.clock)
        with tracer.span("outer"):
            eng.root.sort_by(np.arange(64), label="sort")
            with tracer.span("inner"):
                eng.root.scan(np.arange(64), label="scan")
        outer = tracer.root.children[0]
        inner = outer.children[0]
        assert outer.name == "outer" and inner.name == "inner"
        assert outer.steps == eng.clock.cost.sort * 8  # self excludes child
        assert inner.steps == eng.clock.cost.scan * 8
        assert outer.steps_total == eng.clock.time

    def test_counters_record_calls_steps_volume(self):
        eng = MeshEngine(8)
        tracer = Tracer(clock=eng.clock)
        with tracer.span("s"):
            eng.root.sort_by(np.arange(64), label="sort")
            eng.root.sort_by(np.arange(32), label="sort")
        counter = tracer.root.children[0].counters["sort"]
        assert counter.calls == 2
        assert counter.steps == 2 * eng.clock.cost.sort * 8
        assert counter.volume == 96  # 64 + 32 records moved

    def test_total_steps_equals_clock_time_without_parallel(self):
        eng = MeshEngine(8)
        tracer = Tracer(clock=eng.clock)
        eng.root.sort_by(np.arange(64))  # root-span charge, no open span
        with tracer.span("a"):
            eng.root.scan(np.arange(64))
        assert tracer.total_steps == eng.clock.time

    def test_parallel_fold_exact(self):
        # inside clock.parallel the clock folds branch totals by max; the
        # tracer applies the same fold to the innermost span so summed
        # span charges equal clock.time exactly
        eng = MeshEngine(8)
        tracer = Tracer(clock=eng.clock)
        quads = eng.root.partition(2, 2)
        with tracer.span("par"):
            with eng.parallel(quads[:2]) as par:
                for q in quads[:2]:
                    with par.branch(q):
                        q.scan(np.arange(16))
        assert eng.clock.time == eng.clock.cost.scan * 4  # max over branches
        span = tracer.root.children[0]
        assert span.steps == eng.clock.cost.scan * 4 * 2  # raw sum
        assert span.fold == -eng.clock.cost.scan * 4  # max - sum
        assert tracer.total_steps == eng.clock.time  # exact

    def test_nested_parallel_fold_exact(self):
        # nested clock.parallel sections compose: branch totals already
        # include inner folds, so the outer fold stays exact
        eng = MeshEngine(16)
        tracer = Tracer(clock=eng.clock)
        quads = eng.root.partition(2, 2)
        with eng.parallel(quads) as par:
            for i, q in enumerate(quads):
                with par.branch(q):
                    subs = q.partition(2, 2)
                    with eng.parallel(subs[:2]) as inner:
                        for s in subs[:2]:
                            with inner.branch(s):
                                s.scan(np.arange(4 * (i + 1)))
        assert tracer.total_steps == eng.clock.time

    def test_detach_stops_recording(self):
        eng = MeshEngine(8)
        tracer = Tracer(clock=eng.clock)
        eng.root.scan(np.arange(64))
        tracer.detach(eng.clock)
        eng.root.scan(np.arange(64))
        assert tracer.total_steps == eng.clock.cost.scan * 8

    def test_span_closes_on_exception(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("boom")
        assert tracer._stack == [tracer.root]
        assert tracer.root.children[0].t1 is not None

    def test_span_roundtrip_dict(self):
        tracer = Tracer()
        clock = StepClock()
        tracer.attach(clock)
        with tracer.span("a"):
            clock.charge(5.0, "x", volume=7)
        back = Span.from_dict(tracer.root.to_dict())
        assert back.children[0].name == "a"
        assert back.children[0].counters["x"].volume == 7
        assert back.steps_total == tracer.total_steps


class TestTracedHelper:
    def test_noop_without_tracer(self):
        eng = MeshEngine(8)
        with traced(eng.clock, "nothing"):
            eng.root.scan(np.arange(64))
        assert eng.clock.time == eng.clock.cost.scan * 8

    def test_disabled_tracing_changes_no_charges(self):
        # zero-mesh-step guarantee: identical charges with and without the
        # instrumented code path entered
        def run(clock_tracer: bool) -> float:
            eng = MeshEngine(8)
            if clock_tracer:
                Tracer(clock=eng.clock)
            with traced(eng.clock, "span"):
                eng.root.sort_by(np.arange(64))
            return eng.clock.time

        assert run(False) == run(True)

    def test_opens_span_when_attached(self):
        eng = MeshEngine(8)
        tracer = Tracer(clock=eng.clock)
        with traced(eng.clock, "phase"):
            eng.root.scan(np.arange(64))
        assert tracer.root.children[0].name == "phase"


class TestExporters:
    def _traced_run(self):
        eng = MeshEngine(8)
        tracer = Tracer(clock=eng.clock)
        with tracer.span("sortphase"):
            eng.root.sort_by(np.arange(64), label="sort")
        with tracer.span("scanphase"):
            eng.root.scan(np.arange(64), label="scan")
        return eng, tracer

    def test_chrome_events_valid(self):
        eng, tracer = self._traced_run()
        doc = tracer.to_chrome()
        blob = json.dumps(doc)  # must be JSON-serializable
        parsed = json.loads(blob)
        events = parsed["traceEvents"]
        assert {e["name"] for e in events} == {"run", "sortphase", "scanphase"}
        for event in events:
            assert event["ph"] == "X"
            assert event["ts"] >= 0 and event["dur"] >= 0
            assert isinstance(event["pid"], int) and isinstance(event["tid"], int)
        by_name = {e["name"]: e for e in events}
        assert by_name["run"]["args"]["steps"] == eng.clock.time
        assert by_name["sortphase"]["args"]["counters"]["sort"]["calls"] == 1

    def test_chrome_doc_merges_tracers_with_distinct_pids(self):
        _, t1 = self._traced_run()
        _, t2 = self._traced_run()
        doc = chrome_doc([t1, t2])
        assert {e["pid"] for e in doc["traceEvents"]} == {1, 2}

    def test_render_tree(self):
        _, tracer = self._traced_run()
        text = tracer.render()
        assert "sortphase" in text and "scanphase" in text
        assert "steps=" in text and "wall=" in text
        # children indented under the root
        lines = text.splitlines()
        root_line = next(ln for ln in lines if ln.startswith("run"))
        child_line = next(ln for ln in lines if "sortphase" in ln)
        assert child_line.startswith("  ")
        assert not root_line.startswith(" ")


class TestCollapsed:
    def test_collapsed_values_sum_to_clock_time(self):
        eng = MeshEngine(8)
        tracer = Tracer(clock=eng.clock)
        quads = eng.root.partition(2, 2)
        with tracer.span("sort"):
            eng.root.sort_by(np.arange(64))
        with tracer.span("par"):
            with eng.parallel(quads[:2]) as par:
                for q in quads[:2]:
                    with par.branch(q):
                        q.scan(np.arange(16))
        parsed = parse_collapsed(tracer.collapsed())
        assert sum(parsed.values()) == eng.clock.time

    def test_names_sanitized(self):
        tracer = Tracer()
        with tracer.span("odd name;with parts"):
            pass
        text = tracer.collapsed()
        assert "run;odd_name:with_parts 0" in text.splitlines()

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_collapsed("lonetoken")
        with pytest.raises(ValueError):
            parse_collapsed("a;b notanumber")


_names = st.text(alphabet="abXY0 ;.:-_", min_size=1, max_size=8)
_steps = st.one_of(
    st.integers(min_value=0, max_value=10**6).map(float),
    st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
)
_folds = st.one_of(
    st.just(0.0),
    st.floats(min_value=-100.0, max_value=0.0, allow_nan=False),
)
_trees = st.recursive(
    st.tuples(_names, _steps, _folds, st.just(())),
    lambda children: st.tuples(
        _names, _steps, _folds, st.lists(children, max_size=3).map(tuple)
    ),
    max_leaves=10,
)


def _build_span(node) -> Span:
    name, steps, fold, children = node
    span = Span(name, t0=0.0, t1=0.0, steps=steps, fold=fold)
    span.children = [_build_span(c) for c in children]
    return span


@pytest.mark.slow
class TestCollapsedRoundTrip:
    """Property: parsing the collapsed export reconstructs the same
    (sanitized path -> summed net steps) multiset for any span tree.

    Long hypothesis suite — nightly tier (``pytest -m slow``)."""

    @given(_trees)
    @settings(max_examples=75, deadline=None)
    def test_round_trip(self, node):
        tracer = Tracer()
        tracer.root.children.append(_build_span(node))
        expected: dict[tuple[str, ...], float] = {}

        def walk(span: Span, prefix: tuple[str, ...]) -> None:
            path = prefix + (_collapsed_name(span.name),)
            expected[path] = expected.get(path, 0.0) + span.steps_self
            for child in span.children:
                walk(child, path)

        walk(tracer.root, ())
        assert parse_collapsed(tracer.collapsed()) == expected


class TestEnvRegistry:
    def test_repro_trace_attaches_and_drains(self, monkeypatch):
        drain_traced_tracers()
        monkeypatch.setenv("REPRO_TRACE", "1")
        clock = StepClock()
        clock.charge(3.0, "x")
        monkeypatch.delenv("REPRO_TRACE")
        tracers = drain_traced_tracers()
        assert len(tracers) == 1
        assert tracers[0].total_steps == 3.0
        assert drain_traced_tracers() == []

    def test_no_env_no_tracer(self):
        assert os.environ.get("REPRO_TRACE") is None
        clock = StepClock()
        assert clock.tracer is None


class TestEndToEndE1:
    """Acceptance: a span-traced E1 run exports valid Chrome JSON whose
    summed span step-charges equal the StepClock total (exact for any
    driver — parallel folds are applied to the spans themselves)."""

    def _run(self, fast_path: bool):
        from repro.core.hierdag import hierdag_multisearch
        from repro.core.model import QuerySet
        from repro.graphs.adapters import hierdag_search_structure
        from repro.graphs.hierarchical import build_mu_ary_search_dag

        dag, keys = build_mu_ary_search_dag(2, 10, seed=0)
        st = hierdag_search_structure(dag)
        eng = MeshEngine.for_problem(dag.size, fast_path=fast_path)
        tracer = Tracer(clock=eng.clock)
        qs = QuerySet.start(keys[:128].astype(np.float64), 0)
        res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
        return eng, tracer, res

    @pytest.mark.parametrize("fast_path", [False, True])
    def test_span_steps_equal_clock_total(self, fast_path):
        eng, tracer, res = self._run(fast_path)
        assert tracer.total_steps == eng.clock.time
        assert res.mesh_steps == pytest.approx(eng.clock.time)

    def test_phase_spans_present_and_chrome_valid(self):
        eng, tracer, _ = self._run(True)
        names = {e["name"] for e in tracer.to_chrome()["traceEvents"]}
        assert "hierdag" in names
        assert "hierdag:setup" in names and "hierdag:bstar" in names
        assert "hierdag:phase2" in names
        json.dumps(tracer.to_chrome())  # serializable end to end

    def test_span_tree_structure(self):
        eng, tracer, _ = self._run(True)
        hierdag = tracer.root.children[0]
        assert hierdag.name == "hierdag"
        child_names = [c.name for c in hierdag.children]
        assert child_names[0] == "hierdag:setup"
        assert child_names[-1] == "hierdag:bstar"


class TestEndToEndCM:
    def test_cm_and_logphase_spans(self):
        from repro.core.alpha import alpha_multisearch
        from repro.core.model import QuerySet
        from repro.graphs.broom import broom_structure, build_broom

        broom = build_broom(2, 4, 48, seed=0)
        st = broom_structure(broom)
        splitting = broom.splitting()
        rng = np.random.default_rng(1)
        keys = rng.uniform(
            broom.tree.leaf_keys[0], broom.tree.leaf_keys[-1], 200
        )
        eng = MeshEngine.for_problem(max(broom.size, keys.size))
        tracer = Tracer(clock=eng.clock)
        qs = QuerySet.start(keys, 0)
        alpha_multisearch(eng, st, qs, splitting)
        assert tracer.total_steps == eng.clock.time
        names = {e["name"] for e in tracer.to_chrome()["traceEvents"]}
        assert "alpha" in names and "cm" in names
        assert any(n.startswith("logphase") for n in names)
        assert {"cm:mark", "cm:rounds", "cm:return"} <= names
