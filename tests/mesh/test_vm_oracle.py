"""Differential conformance: every VM program vs its engine primitive.

Clean runs over adversarial inputs (heavy ties, dead routing slots,
full-grid loads, non-square and degenerate one-row/one-column meshes)
must classify as ``clean_match``; faulted paranoid runs must classify as
``detected`` — never ``silent_corruption``.
"""

import numpy as np
import pytest

from repro.mesh import vm_oracle
from repro.mesh.engine import MeshEngine
from repro.mesh.faults import VM_FAULT_KINDS, FaultPlan
from repro.mesh.topology import rowmajor_to_snake
from repro.mesh.vm_oracle import (
    PROGRAMS,
    compare,
    engine_reference,
    make_inputs,
    run_differential,
    vm_run,
)

SHAPES = [(8, 8), (5, 3), (3, 5), (1, 8), (8, 1), (2, 2), (1, 1)]


class TestCleanMatch:
    @pytest.mark.parametrize("program", PROGRAMS)
    @pytest.mark.parametrize("shape", SHAPES)
    def test_all_programs_all_shapes(self, program, shape):
        rows, cols = shape
        out = run_differential(program, rows=rows, cols=cols, seed=1)
        assert out.outcome == "clean_match", out.to_dict()
        assert out.vm_steps is not None and out.vm_steps >= 0
        assert out.injected == []

    @pytest.mark.parametrize("program", PROGRAMS)
    def test_many_seeds(self, program):
        for seed in range(1, 8):
            out = run_differential(program, rows=6, cols=6, seed=seed)
            assert out.outcome == "clean_match", out.to_dict()

    def test_sort_with_all_equal_keys(self):
        # the extreme tie case: every key equal, payload order is free
        inputs = make_inputs("sort", 4, 4, seed=1)
        inputs["keys"] = np.zeros(16, dtype=np.int64)
        ref = engine_reference(inputs)
        out, _ = vm_run(inputs)
        assert compare("sort", out, ref)

    def test_route_identity_permutation(self):
        inputs = make_inputs("route", 4, 4, seed=1)
        inputs["dest"] = np.arange(16, dtype=np.int64)
        ref = engine_reference(inputs)
        out, _ = vm_run(inputs)
        assert compare("route", out, ref)
        assert np.array_equal(out[0], inputs["payload"])

    def test_route_all_discarded(self):
        inputs = make_inputs("route", 4, 4, seed=1)
        inputs["dest"] = np.full(16, -1, dtype=np.int64)
        ref = engine_reference(inputs)
        out, _ = vm_run(inputs)
        assert compare("route", out, ref)
        assert (out[0] == vm_oracle._ROUTE_FILL).all()

    def test_scan_matches_cumsum(self):
        inputs = make_inputs("scan", 5, 3, seed=2)
        out, _ = vm_run(inputs)
        assert np.array_equal(out[0], np.cumsum(inputs["values"]))


class TestInputs:
    def test_inputs_are_deterministic(self):
        for program in PROGRAMS:
            a = make_inputs(program, 4, 4, seed=9)
            b = make_inputs(program, 4, 4, seed=9)
            for k, v in a.items():
                if isinstance(v, np.ndarray):
                    assert np.array_equal(v, b[k])
                else:
                    assert v == b[k]

    def test_sort_inputs_have_ties(self):
        inputs = make_inputs("sort", 8, 8, seed=1)
        assert len(np.unique(inputs["keys"])) < inputs["n"]

    def test_route_inputs_have_dead_slots(self):
        inputs = make_inputs("route", 8, 8, seed=1)
        assert (inputs["dest"] == -1).sum() > 0
        live = inputs["dest"][inputs["dest"] >= 0]
        assert len(np.unique(live)) == len(live)

    def test_unknown_program_rejected(self):
        with pytest.raises(ValueError, match="unknown VM oracle program"):
            make_inputs("fft", 4, 4, seed=1)


class TestCompare:
    def test_sort_tie_reorder_is_a_match(self):
        # shearsort is unstable: tied keys may swap payloads
        keys = np.array([1, 1, 2], dtype=np.int64)
        pay_a = np.array([10, 20, 30], dtype=np.int64)
        pay_b = np.array([20, 10, 30], dtype=np.int64)
        assert compare("sort", (keys, pay_a), (keys, pay_b))

    def test_sort_payload_swap_across_keys_is_not(self):
        keys = np.array([1, 1, 2], dtype=np.int64)
        pay_a = np.array([10, 20, 30], dtype=np.int64)
        pay_b = np.array([30, 20, 10], dtype=np.int64)
        assert not compare("sort", (keys, pay_a), (keys, pay_b))

    def test_sort_wrong_keys_is_not(self):
        a = np.array([1, 2, 3], dtype=np.int64)
        b = np.array([1, 2, 4], dtype=np.int64)
        assert not compare("sort", (a, a), (b, b))

    def test_route_exact(self):
        a = np.array([5, -7, 6], dtype=np.int64)
        assert compare("route", (a,), (a.copy(),))
        assert not compare("route", (a,), (a[::-1].copy(),))


class TestFaultedDifferential:
    @pytest.mark.parametrize("kind", VM_FAULT_KINDS)
    @pytest.mark.parametrize("program", PROGRAMS)
    def test_paranoid_faulted_run_is_detected(self, kind, program):
        plan = FaultPlan(seed=7, kind=kind, rate=1.0, max_faults=None)
        out = run_differential(program, rows=8, cols=8, seed=3, plans=(plan,))
        assert out.outcome == "detected", out.to_dict()
        assert out.injected
        assert out.error["check"] == "vm:shift:integrity"
        assert out.injected[0]["site"].startswith("vm:")

    @pytest.mark.parametrize("program", PROGRAMS)
    def test_unfaulted_checked_run_stays_clean(self, program):
        out = run_differential(program, rows=5, cols=3, seed=4, plans=())
        assert out.outcome == "clean_match"

    def test_never_silent_with_check(self):
        # the acceptance criterion in miniature: all kinds x programs x a
        # band of seeds, checked runs never silently corrupt
        outcomes = set()
        for kind in VM_FAULT_KINDS:
            for program in PROGRAMS:
                for seed in (1, 2):
                    plan = FaultPlan(seed=seed, kind=kind, rate=0.3, max_faults=1)
                    out = run_differential(
                        program, rows=6, cols=6, seed=5, plans=(plan,)
                    )
                    outcomes.add(out.outcome)
                    assert out.outcome != "silent_corruption", out.to_dict()
                    if out.injected:
                        assert out.outcome == "detected"
        assert "detected" in outcomes

    def test_unchecked_faults_do_corrupt(self):
        # sanity that the harness isn't vacuous: without checks, at least
        # one faulted cell actually goes silently wrong
        bad = 0
        for kind in VM_FAULT_KINDS:
            plan = FaultPlan(seed=7, kind=kind, rate=1.0, max_faults=None)
            out = run_differential(
                "sort", rows=8, cols=8, seed=3, plans=(plan,), check=False
            )
            bad += out.outcome in ("silent_corruption", "crash")
        assert bad > 0

    def test_outcome_to_dict_roundtrip(self):
        out = run_differential("scan", rows=4, cols=4, seed=1)
        doc = out.to_dict()
        assert doc["program"] == "scan"
        assert doc["outcome"] == "clean_match"
        assert doc["rows"] == doc["cols"] == 4
        assert "error" not in doc


class TestSnakeCorrespondence:
    def test_sort_readback_is_globally_sorted(self):
        inputs = make_inputs("sort", 5, 3, seed=6)
        (keys, _), _ = vm_run(inputs)
        assert (np.diff(keys) >= 0).all()

    def test_scan_loads_in_snake_order(self):
        # processor j must hold logical element snake_rank(j); a row-major
        # load would compute a different (wrong) prefix order
        inputs = make_inputs("scan", 4, 4, seed=6)
        to_snake = rowmajor_to_snake(4, 4)
        assert not np.array_equal(to_snake, np.arange(16))  # snake != rowmajor
        out, _ = vm_run(inputs)
        assert np.array_equal(out[0], np.cumsum(inputs["values"]))

    @pytest.mark.parametrize("shape", [(5, 3), (1, 8), (8, 1)])
    def test_engine_and_vm_agree_on_nonsquare_scan(self, shape):
        rows, cols = shape
        inputs = make_inputs("scan", rows, cols, seed=2)
        ref = engine_reference(inputs)
        out, _ = vm_run(inputs)
        assert np.array_equal(out[0], ref[0])
