"""Tests for mesh geometry: shapes, regions, partitions, indexings."""

import numpy as np
import pytest

from repro.mesh.topology import (
    MeshShape,
    RegionSpec,
    block_partition,
    rowmajor_to_snake,
    snake_index,
    snake_to_rowmajor,
)


class TestMeshShape:
    def test_square(self):
        s = MeshShape.square(5)
        assert s.rows == s.cols == 5
        assert s.size == 25
        assert s.side == 5

    def test_for_size_exact(self):
        assert MeshShape.for_size(49).rows == 7

    def test_for_size_rounds_up(self):
        assert MeshShape.for_size(50).rows == 8

    def test_for_size_one(self):
        assert MeshShape.for_size(1).rows == 1

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            MeshShape(0, 3)
        with pytest.raises(ValueError):
            MeshShape.for_size(0)

    def test_side_of_rectangle(self):
        assert MeshShape(3, 9).side == 9


class TestRegionSpec:
    def test_basic_geometry(self):
        r = RegionSpec(2, 3, 4, 5)
        assert r.size == 20
        assert r.side == 5
        assert r.row_end == 6
        assert r.col_end == 8

    def test_contains(self):
        outer = RegionSpec(0, 0, 10, 10)
        assert outer.contains(RegionSpec(2, 2, 3, 3))
        assert not outer.contains(RegionSpec(8, 8, 3, 3))

    def test_contains_self(self):
        r = RegionSpec(1, 1, 4, 4)
        assert r.contains(r)

    def test_overlaps(self):
        a = RegionSpec(0, 0, 4, 4)
        assert a.overlaps(RegionSpec(3, 3, 4, 4))
        assert not a.overlaps(RegionSpec(4, 0, 4, 4))  # edge-adjacent
        assert not a.overlaps(RegionSpec(0, 4, 4, 4))

    def test_subregion_relative_coords(self):
        r = RegionSpec(2, 2, 6, 6)
        s = r.subregion(1, 1, 2, 2)
        assert (s.row0, s.col0) == (3, 3)

    def test_subregion_escape_rejected(self):
        r = RegionSpec(0, 0, 4, 4)
        with pytest.raises(ValueError):
            r.subregion(2, 2, 3, 3)

    def test_distance_to(self):
        a = RegionSpec(0, 0, 2, 2)
        b = RegionSpec(6, 6, 2, 2)
        assert a.distance_to(b) == 16  # bounding box spans 8 + 8

    def test_distance_symmetric(self):
        a = RegionSpec(0, 0, 3, 3)
        b = RegionSpec(1, 5, 2, 2)
        assert a.distance_to(b) == b.distance_to(a)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            RegionSpec(0, 0, 0, 3)

    def test_rejects_negative_origin(self):
        with pytest.raises(ValueError):
            RegionSpec(-1, 0, 2, 2)


class TestBlockPartition:
    def test_even_split(self):
        root = RegionSpec(0, 0, 8, 8)
        blocks = block_partition(root, 2, 2)
        assert len(blocks) == 4
        assert all(b.size == 16 for b in blocks)

    def test_covers_exactly(self):
        root = RegionSpec(0, 0, 7, 5)
        blocks = block_partition(root, 3, 2)
        assert sum(b.size for b in blocks) == root.size
        # pairwise disjoint
        for i in range(len(blocks)):
            for j in range(i + 1, len(blocks)):
                assert not blocks[i].overlaps(blocks[j])

    def test_row_major_order(self):
        root = RegionSpec(0, 0, 4, 4)
        blocks = block_partition(root, 2, 2)
        assert (blocks[0].row0, blocks[0].col0) == (0, 0)
        assert (blocks[1].row0, blocks[1].col0) == (0, 2)
        assert (blocks[2].row0, blocks[2].col0) == (2, 0)

    def test_uneven_split_nonempty(self):
        root = RegionSpec(0, 0, 5, 5)
        blocks = block_partition(root, 3, 3)
        assert all(b.size >= 1 for b in blocks)

    def test_too_fine_rejected(self):
        with pytest.raises(ValueError):
            block_partition(RegionSpec(0, 0, 2, 2), 3, 1)

    def test_offset_root(self):
        root = RegionSpec(4, 4, 4, 4)
        blocks = block_partition(root, 2, 2)
        assert all(b.row0 >= 4 and b.col0 >= 4 for b in blocks)


class TestSnakeIndexing:
    def test_snake_3x3(self):
        idx = snake_index(3, 3)
        expect = np.array([[0, 1, 2], [5, 4, 3], [6, 7, 8]])
        assert (idx == expect).all()

    def test_snake_is_permutation(self):
        idx = snake_index(4, 6)
        assert sorted(idx.ravel().tolist()) == list(range(24))

    def test_round_trip(self):
        for rows, cols in ((3, 3), (4, 5), (1, 7), (6, 1)):
            fwd = rowmajor_to_snake(rows, cols)
            inv = snake_to_rowmajor(rows, cols)
            n = rows * cols
            assert (inv[fwd] == np.arange(n)).all()
            assert (fwd[inv] == np.arange(n)).all()

    def test_snake_adjacent_cells_are_mesh_neighbours(self):
        # the property sorting relies on: consecutive snake ranks are
        # physically adjacent processors
        rows, cols = 5, 4
        idx = snake_index(rows, cols)
        pos = {int(idx[r, c]): (r, c) for r in range(rows) for c in range(cols)}
        for k in range(rows * cols - 1):
            (r1, c1), (r2, c2) = pos[k], pos[k + 1]
            assert abs(r1 - r2) + abs(c1 - c2) == 1
