"""Backend conformance: every registered backend vs the numpy reference.

The kernel interface's contract is *byte identity*: for every kernel and
every input the engine can produce, a backend's output must match the
:class:`~repro.mesh.backend.NumpyBackend` reference in dtype, shape, and
bit pattern.  This suite drives each registered backend over an
adversarial input battery — empty arrays, tied keys (including ``-0.0``
vs ``0.0`` and all-equal runs), float infinities, int64 values that wrap
the accumulator, max-capacity batches, and every dtype/block shape
:class:`~repro.mesh.records.RecordSet` produces (1-D and 2-D int64,
float64, bool) — and compares raw bits.

Backends whose toolchain is missing in this environment register as
numpy fallbacks (``native=False``); testing those would only re-test the
reference against itself, so they skip with the recorded fallback
reason (this is how the suite "skips cleanly when numba is
unavailable").
"""

import numpy as np
import pytest

from repro.mesh.backend import get_backend, registered_backends

REFERENCE = get_backend("numpy")

#: side of the largest battery case: a full 16-records-per-processor
#: batch on an 8x8 mesh, the engine's max-capacity shape
MAX_CAPACITY = 16 * 8 * 8


def _backend_params():
    params = []
    for name in registered_backends():
        if name == "numpy":
            continue  # the reference; comparing it to itself proves nothing
        backend = get_backend(name)
        marks = ()
        if not backend.native:
            marks = (
                pytest.mark.skip(
                    reason=f"{name} toolchain unavailable: {backend.fallback_reason}"
                ),
            )
        params.append(pytest.param(name, marks=marks))
    return params


@pytest.fixture(params=_backend_params())
def backend(request):
    return get_backend(request.param)


def assert_bits(got, want, context=""):
    got, want = np.asarray(got), np.asarray(want)
    assert got.dtype == want.dtype, f"{context}: dtype {got.dtype} != {want.dtype}"
    assert got.shape == want.shape, f"{context}: shape {got.shape} != {want.shape}"
    assert got.tobytes() == want.tobytes(), f"{context}: bit patterns differ"


def _value_battery():
    """(tag, values) cases covering every dtype/shape the engine produces."""
    rng = np.random.default_rng(20260808)
    big = rng.integers(-(2**62), 2**62, MAX_CAPACITY)
    cases = [
        ("empty-i64", np.empty(0, dtype=np.int64)),
        ("empty-f64", np.empty(0, dtype=np.float64)),
        ("empty-bool", np.empty(0, dtype=bool)),
        ("empty-2d", np.empty((0, 3), dtype=np.int64)),
        ("one", np.array([7], dtype=np.int64)),
        ("one-negzero", np.array([-0.0])),
        ("ties-i64", np.array([3, 3, 3, 1, 1, 2, 2, 2, 2], dtype=np.int64)),
        ("ties-zeros", np.array([0.0, -0.0, 0.0, -0.0, -0.0, 0.0])),
        ("all-equal", np.full(64, 5.5)),
        ("specials", np.array([np.inf, -np.inf, 1.0, -0.0, 0.0, -np.inf, np.inf])),
        ("wraparound", np.array([2**62, 2**62, 2**62, -(2**62), 2**62], dtype=np.int64)),
        ("bool", rng.random(33) < 0.5),
        ("rand-f64", rng.standard_normal(257)),
        ("rand-i64", rng.integers(-1000, 1000, 128)),
        ("block-i64", rng.integers(-50, 50, (41, 3))),
        ("block-f64", rng.standard_normal((41, 4))),
        ("max-capacity", big),
        ("max-capacity-f64", rng.standard_normal(MAX_CAPACITY)),
    ]
    return cases


BATTERY = _value_battery()
IDS = [tag for tag, _ in BATTERY]


def _rng_for(tag):
    return np.random.default_rng(abs(hash(tag)) % 2**32)


@pytest.mark.parametrize("tag,values", BATTERY, ids=IDS)
class TestKernelConformance:
    def test_stable_argsort(self, backend, tag, values):
        if values.ndim != 1:
            pytest.skip("argsort keys are 1-D")
        order = backend.stable_argsort(values)
        assert_bits(order, REFERENCE.stable_argsort(values), f"argsort[{tag}]")
        # stability, asserted directly: among tied keys, input order survives
        if values.size:
            sorted_keys = values[order]
            tied = sorted_keys[1:] == sorted_keys[:-1]
            assert not (tied & (order[1:] < order[:-1])).any(), (
                f"argsort[{tag}] scrambles tied keys"
            )

    def test_take_and_take_live(self, backend, tag, values):
        n = values.shape[0]
        rng = _rng_for(tag)
        idx = rng.integers(0, max(n, 1), n).astype(np.int64)
        idx[rng.random(n) < 0.25] = -1
        assert_bits(
            backend.take(values, idx, fill=0),
            REFERENCE.take(values, idx, fill=0),
            f"take[{tag}]",
        )
        live = rng.permutation(n).astype(np.int64)
        assert_bits(
            backend.take_live(values, live),
            REFERENCE.take_live(values, live),
            f"take_live[{tag}]",
        )

    def test_scatter(self, backend, tag, values):
        n = values.shape[0]
        rng = _rng_for(tag)
        dest = rng.permutation(max(n, 1))[:n].astype(np.int64)
        dest[rng.random(n) < 0.25] = -1
        assert_bits(
            backend.scatter(values, dest, max(n, 1), fill=0),
            REFERENCE.scatter(values, dest, max(n, 1), fill=0),
            f"scatter[{tag}]",
        )

    def test_compress(self, backend, tag, values):
        n = values.shape[0]
        for mask in (
            _rng_for(tag).random(n) < 0.5,
            np.ones(n, dtype=bool),
            np.zeros(n, dtype=bool),
        ):
            assert_bits(
                backend.compress(mask, values),
                REFERENCE.compress(mask, values),
                f"compress[{tag}]",
            )

    def test_combining_writes(self, backend, tag, values):
        if values.ndim != 1 or values.dtype == bool:
            pytest.skip("combining writes take 1-D numeric values")
        n = values.shape[0]
        size = max(n // 2, 1)
        idx = _rng_for(tag).integers(0, size, n).astype(np.int64)
        if values.dtype.kind == "i":
            assert_bits(
                backend.bincount_add(idx, values, size),
                REFERENCE.bincount_add(idx, values, size),
                f"bincount[{tag}]",
            )
        got = np.zeros(size, dtype=values.dtype)
        want = got.copy()
        backend.add_at(got, idx, values)
        REFERENCE.add_at(want, idx, values)
        assert_bits(got, want, f"add_at[{tag}]")
        for op in ("min", "max"):
            fill = np.array(
                np.inf if values.dtype.kind == "f" else np.iinfo(values.dtype).max
            ).astype(values.dtype)
            got = np.full(size, fill, dtype=values.dtype)
            want = got.copy()
            backend.scatter_reduce_at(got, idx, values, op)
            REFERENCE.scatter_reduce_at(want, idx, values, op)
            assert_bits(got, want, f"scatter_reduce_at[{op}][{tag}]")

    def test_scans_and_reduce(self, backend, tag, values):
        if values.ndim != 1 or values.dtype == bool:
            pytest.skip("scans take 1-D numeric values")
        n = values.shape[0]
        segments = np.sort(_rng_for(tag).integers(0, max(n // 4, 1), n))
        for op in ("add", "min", "max"):
            assert_bits(
                backend.accumulate(values, op),
                REFERENCE.accumulate(values, op),
                f"accumulate[{op}][{tag}]",
            )
            for inclusive in (True, False):
                assert_bits(
                    backend.segmented_scan(values, segments, op, inclusive),
                    REFERENCE.segmented_scan(values, segments, op, inclusive),
                    f"segscan[{op},{inclusive}][{tag}]",
                )
            if n:
                got = backend.reduce(values, op)
                want = REFERENCE.reduce(values, op)
                assert np.asarray(got).dtype == np.asarray(want).dtype
                assert np.asarray(got).tobytes() == np.asarray(want).tobytes()


class TestRegistry:
    def test_reference_is_registered_default(self):
        from repro.mesh.backend import backend_default, resolve_backend

        assert "numpy" in registered_backends()
        assert resolve_backend(None).name == backend_default()

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("no-such-backend")

    def test_compiled_alias_resolves(self):
        from repro.mesh.backend import resolve_backend

        backend = resolve_backend("compiled")
        assert backend.name in ("numba", "cffi", "numpy")

    def test_fallback_contract(self):
        # every registered name must resolve without raising, toolchain or
        # not, and non-native backends must say why they fell back
        for name in registered_backends():
            backend = get_backend(name)
            assert backend.native or backend.fallback_reason

    def test_engine_env_selection(self, monkeypatch):
        from repro.mesh.engine import MeshEngine

        monkeypatch.setenv("REPRO_BACKEND", "cffi")
        assert MeshEngine(4).backend.name == "cffi"
        monkeypatch.delenv("REPRO_BACKEND")
        assert MeshEngine(4).backend.name == "numpy"


class TestEngineChargeParity:
    """Same primitives, same charges and outputs, whichever backend runs."""

    @pytest.mark.parametrize("fast_path", [True, False])
    def test_primitive_sweep_matches_numpy_engine(self, backend, fast_path):
        from repro.mesh.engine import MeshEngine

        rng = np.random.default_rng(11)
        vals = rng.integers(-100, 100, 36).astype(np.int64)
        dest = rng.permutation(36)
        outs = []
        for be in ("numpy", backend):
            eng = MeshEngine(6, fast_path=fast_path, backend=be)
            r = eng.root
            keys, moved = r.sort_by(vals, vals * 0.5)
            (routed,) = r.route(np.where(vals % 5 == 0, -1, dest), vals)
            (read,) = r.rar(np.abs(vals) % 36, vals * 2.0)
            summed = r.raw(np.abs(vals) % 36, vals, size=36, combine="add")
            low = r.raw(np.abs(vals) % 36, vals, size=36, combine="min", fill=-1)
            scan = r.scan(vals, op="add", inclusive=False)
            seg = r.segmented_scan(vals, np.abs(vals) % 4, op="max")
            count, packed = r.compress(vals > 0, vals)
            total = r.reduce(vals)
            outs.append(
                (
                    eng.clock.time,
                    count,
                    total,
                    *(
                        a.tobytes()
                        for a in (keys, moved, routed, read, summed, low, scan, seg, packed)
                    ),
                )
            )
        assert outs[0] == outs[1]
