"""Property tests for the engine's failure paths.

The paper's O(1)-records-per-processor discipline is enforced by
:class:`CapacityError`, and parallel-section isolation by a
``RuntimeError`` on out-of-scope region use.  These must fire for *any*
over-capacity count or out-of-branch region, not just the examples the
unit tests happen to use.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.engine import CapacityError, MeshEngine


def _engine(side: int = 4) -> MeshEngine:
    return MeshEngine(side)


class TestCapacityProperties:
    @given(excess=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_route_over_capacity(self, excess):
        eng = _engine()
        limit = eng.size * eng.capacity
        n = limit + excess
        dest = np.arange(n, dtype=np.int64)
        with pytest.raises(CapacityError):
            eng.root.route(dest, np.zeros(n), size=n)

    @given(excess=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_transfer_over_capacity(self, excess):
        eng = _engine()
        top = eng.root.subregion(0, 0, 2, 4)
        bot = eng.root.subregion(2, 0, 2, 4)
        n = bot.size * eng.capacity + excess
        with pytest.raises(CapacityError):
            eng.transfer(top, bot, np.zeros(n))

    @given(
        count=st.integers(min_value=0, max_value=10_000),
        per_proc=st.integers(min_value=1, max_value=32),
    )
    @settings(max_examples=50, deadline=None)
    def test_check_capacity_law(self, count, per_proc):
        eng = _engine()
        region = eng.root
        limit = region.size * min(per_proc, eng.capacity)
        if count > limit:
            with pytest.raises(CapacityError):
                region.check_capacity(count, per_proc=per_proc)
        else:
            region.check_capacity(count, per_proc=per_proc)

    @given(excess=st.integers(min_value=1, max_value=1000))
    @settings(max_examples=25, deadline=None)
    def test_sort_over_capacity(self, excess):
        eng = _engine()
        n = eng.size * eng.capacity + excess
        with pytest.raises(CapacityError):
            eng.root.sort_by(np.zeros(n))


class TestParallelScope:
    def _halves(self, eng):
        top = eng.root.subregion(0, 0, 2, 4)
        bot = eng.root.subregion(2, 0, 2, 4)
        return top, bot

    def test_out_of_scope_primitive_raises(self):
        eng = _engine()
        top, bot = self._halves(eng)
        with eng.parallel([top, bot]) as par:
            with par.branch(top):
                with pytest.raises(RuntimeError, match="outside active parallel branch"):
                    bot.sort_by(np.arange(bot.size))

    def test_out_of_scope_transfer_raises(self):
        eng = _engine()
        top, bot = self._halves(eng)
        with eng.parallel([top, bot]) as par:
            with par.branch(top):
                with pytest.raises(RuntimeError, match="outside active parallel branch"):
                    eng.transfer(bot, top, np.zeros(2))

    def test_in_scope_allowed(self):
        eng = _engine()
        top, bot = self._halves(eng)
        with eng.parallel([top, bot]) as par:
            with par.branch(top):
                top.sort_by(np.arange(top.size))
            with par.branch(bot):
                bot.sort_by(np.arange(bot.size))

    def test_subregion_of_branch_allowed(self):
        eng = _engine()
        top, bot = self._halves(eng)
        with eng.parallel([top, bot]) as par:
            with par.branch(top):
                sub = top.subregion(0, 0, 1, 2)
                sub.sort_by(np.arange(sub.size))

    def test_scope_restored_after_section(self):
        eng = _engine()
        top, bot = self._halves(eng)
        with eng.parallel([top, bot]) as par:
            with par.branch(top):
                pass
        # outside the section, any region is fair game again
        bot.sort_by(np.arange(bot.size))
