"""Tests for the cycle-accurate mesh VM."""

import numpy as np
import pytest

from repro.mesh.machine import MeshVM


class TestRegisters:
    def test_alloc_scalar_fill(self):
        vm = MeshVM(3, 4)
        grid = vm.alloc("x", 7.0)
        assert grid.shape == (3, 4)
        assert (grid == 7.0).all()

    def test_alloc_array(self):
        vm = MeshVM(2, 2)
        vm.alloc("x", np.arange(4))
        assert (vm["x"] == np.arange(4).reshape(2, 2)).all()

    def test_load_rowmajor_pads(self):
        vm = MeshVM(2, 3)
        vm.load_rowmajor("x", np.array([1, 2]), fill=-1)
        assert vm["x"][0, 0] == 1 and vm["x"][0, 2] == -1

    def test_load_too_many_rejected(self):
        vm = MeshVM(2, 2)
        with pytest.raises(ValueError):
            vm.load_rowmajor("x", np.arange(5))

    def test_dump_count(self):
        vm = MeshVM(2, 2)
        vm.load_rowmajor("x", np.arange(4))
        assert (vm.dump_rowmajor("x", 2) == [0, 1]).all()

    def test_setitem_shape_checked(self):
        vm = MeshVM(2, 2)
        with pytest.raises(ValueError):
            vm["x"] = np.zeros((3, 3))

    def test_rejects_empty_grid(self):
        with pytest.raises(ValueError):
            MeshVM(0, 4)


class TestShift:
    def test_shift_left_brings_left_neighbour(self):
        vm = MeshVM(1, 4)
        vm.alloc("x", np.array([[1.0, 2.0, 3.0, 4.0]]))
        got = vm.shift("x", "left", fill=0)
        assert (got == [[0, 1, 2, 3]]).all()

    def test_shift_right(self):
        vm = MeshVM(1, 4)
        vm.alloc("x", np.array([[1.0, 2.0, 3.0, 4.0]]))
        got = vm.shift("x", "right", fill=-1)
        assert (got == [[2, 3, 4, -1]]).all()

    def test_shift_up_down(self):
        vm = MeshVM(3, 1)
        vm.alloc("x", np.array([[1.0], [2.0], [3.0]]))
        assert (vm.shift("x", "up", fill=0) == [[0], [1], [2]]).all()
        assert (vm.shift("x", "down", fill=0) == [[2], [3], [0]]).all()

    def test_each_shift_costs_one_step(self):
        vm = MeshVM(2, 2)
        vm.alloc("x", 0.0)
        vm.shift("x", "left")
        vm.shift("x", "up")
        assert vm.steps == 2

    def test_unknown_direction_rejected(self):
        vm = MeshVM(2, 2)
        vm.alloc("x", 0.0)
        with pytest.raises(ValueError):
            vm.shift("x", "diagonal")

    def test_shift_does_not_mutate_register(self):
        vm = MeshVM(2, 2)
        vm.alloc("x", 5.0)
        vm.shift("x", "left")
        assert (vm["x"] == 5.0).all()


class TestShiftMany:
    def test_one_step_for_record(self):
        vm = MeshVM(2, 2)
        vm.alloc("a", 1.0)
        vm.alloc("b", 2.0)
        outs = vm.shift_many(["a", "b"], "left", fill=0)
        assert len(outs) == 2
        assert vm.steps == 1

    def test_too_wide_record_rejected(self):
        vm = MeshVM(2, 2)
        for i in range(9):
            vm.alloc(f"r{i}", 0.0)
        with pytest.raises(ValueError):
            vm.shift_many([f"r{i}" for i in range(9)], "left")

    def test_empty_list(self):
        vm = MeshVM(2, 2)
        assert vm.shift_many([], "left") == []
        assert vm.steps == 0

    def test_no_transient_step_counts(self, monkeypatch):
        """The shared step lands exactly once, before any data moves.

        shift_many used to bump ``steps`` per register and roll the extra
        increments back at the end, so a mid-call observer (fault hook,
        tracer) saw a transient over-count.  Spy on the per-register data
        movement and require ``steps`` to already be final every time.
        """
        vm = MeshVM(2, 2)
        for name, v in (("a", 1.0), ("b", 2.0), ("c", 3.0)):
            vm.alloc(name, v)
        observed = []
        real = MeshVM._shifted

        def spy(self, grid, direction, fill=0):
            observed.append(self.steps)
            return real(self, grid, direction, fill)

        monkeypatch.setattr(MeshVM, "_shifted", spy)
        vm.shift_many(["a", "b", "c"], "left", fill=0)
        assert vm.steps == 1
        assert observed == [1, 1, 1]

    def test_unknown_direction_rejected_before_charge(self):
        vm = MeshVM(2, 2)
        vm.alloc("a", 1.0)
        with pytest.raises(ValueError):
            vm.shift_many(["a"], "sideways")
        assert vm.steps == 0


class TestAllocSizeError:
    def test_mismatch_names_the_register(self):
        vm = MeshVM(3, 4)
        with pytest.raises(ValueError) as err:
            vm.alloc("votes", np.arange(10))
        msg = str(err.value)
        assert "'votes'" in msg
        assert "10 values" in msg
        assert "3x4" in msg and "12 processors" in msg

    def test_mismatch_leaves_register_file_untouched(self):
        vm = MeshVM(2, 2)
        vm.alloc("x", np.arange(4))
        with pytest.raises(ValueError):
            vm.alloc("x", np.arange(5))
        assert (vm["x"] == np.arange(4).reshape(2, 2)).all()
        with pytest.raises(ValueError):
            vm.alloc("y", np.arange(3))
        assert "y" not in vm.registers

    def test_exact_size_still_fine(self):
        vm = MeshVM(2, 3)
        assert vm.alloc("x", np.arange(6)).shape == (2, 3)


class TestFillDtype:
    """Boundary fill must not silently upcast integer registers."""

    @pytest.mark.parametrize("dtype", [np.int64, np.int32, np.uint8, np.bool_])
    def test_shift_preserves_dtype(self, dtype):
        vm = MeshVM(2, 3)
        vm.alloc("x", np.ones((2, 3), dtype=dtype))
        got = vm.shift("x", "left", fill=0)
        assert got.dtype == np.dtype(dtype)

    def test_integer_fill_lands_exact(self):
        vm = MeshVM(1, 3)
        vm.alloc("x", np.array([[5, 6, 7]], dtype=np.int64))
        got = vm.shift("x", "left", fill=-9)
        assert got.dtype == np.int64
        assert got[0, 0] == -9

    def test_load_rowmajor_keeps_source_dtype(self):
        vm = MeshVM(2, 2)
        vm.load_rowmajor("x", np.array([1, 2], dtype=np.int32), fill=7)
        assert vm["x"].dtype == np.int32
        assert vm["x"][1, 1] == 7

    def test_shift_many_mixed_dtypes(self):
        vm = MeshVM(2, 2)
        vm.alloc("i", np.arange(4, dtype=np.int64))
        vm.alloc("f", np.arange(4, dtype=np.float64))
        outs = vm.shift_many(["i", "f"], "down", fill=0)
        assert outs[0].dtype == np.int64
        assert outs[1].dtype == np.float64


class TestShiftManyWordLimit:
    def test_exactly_eight_words_is_one_step(self):
        vm = MeshVM(2, 2)
        names = [f"r{i}" for i in range(8)]
        for i, name in enumerate(names):
            vm.alloc(name, float(i))
        outs = vm.shift_many(names, "right", fill=0)
        assert len(outs) == 8
        assert vm.steps == 1

    def test_nine_words_rejected_before_charge(self):
        vm = MeshVM(2, 2)
        names = [f"r{i}" for i in range(9)]
        for name in names:
            vm.alloc(name, 0.0)
        with pytest.raises(ValueError, match="more than 8 words"):
            vm.shift_many(names, "right")
        assert vm.steps == 0

    def test_nine_words_rejected_even_with_unknown_register(self):
        # width check precedes register lookup: the limit is a property
        # of the record, not the register file
        vm = MeshVM(2, 2)
        with pytest.raises(ValueError, match="more than 8 words"):
            vm.shift_many([f"ghost{i}" for i in range(9)], "left")
        assert vm.steps == 0
