"""VM-level fault injection: determinism, observer-safety, zero cost off.

The contracts under test mirror the engine fault layer's (PR 4) at the
step level:

* the injection log is a pure function of the plan and the program's
  deterministic shift sequence;
* a plan that never matches (site filter, kind without a surface) leaves
  every register dump byte-identical and ``steps`` untouched;
* injection itself never changes ``steps`` (observer-safety — the step
  is charged once, up front, exactly like ``shift_many``'s
  single-charge contract);
* a paranoid VM detects every *logged* injection at the corrupted step.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.faults import (
    VM_FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    InvariantViolation,
)
from repro.mesh.machine import MeshVM
from repro.mesh.routing import route_permutation
from repro.mesh.scan import broadcast_from_origin, snake_prefix_sum
from repro.mesh.sorting import shearsort


def _run_program(program, side, seed, injector=None, paranoid=False):
    """Run one VM program to completion; returns (register dumps, steps)."""
    rng = np.random.default_rng(seed)
    n = side * side
    vm = MeshVM(side, paranoid=paranoid)
    if injector is not None:
        injector.install_vm(vm)
    if program == "sort":
        vm.load_rowmajor("k", rng.integers(0, 50, n).astype(np.int64))
        vm.load_rowmajor("p", rng.integers(0, 1000, n).astype(np.int64))
        shearsort(vm, "k", ["p"], check=paranoid)
        out = (vm.dump_rowmajor("k"), vm.dump_rowmajor("p"))
    elif program == "route":
        dest = rng.permutation(n).astype(np.int64)
        out = (route_permutation(vm, dest, np.arange(n) + 100, check=paranoid),)
    elif program == "scan":
        vm.load_rowmajor("v", rng.integers(0, 9, n).astype(np.int64))
        snake_prefix_sum(vm, "v", "p", check=paranoid)
        out = (vm.dump_rowmajor("p"),)
    else:  # broadcast
        vm.load_rowmajor("s", rng.integers(0, 100, n).astype(np.int64))
        broadcast_from_origin(vm, "s", "d", check=paranoid)
        out = (vm.dump_rowmajor("d"),)
    return out, vm.steps


PROGRAMS = ("sort", "route", "scan", "broadcast")

plan_cases = st.tuples(
    st.sampled_from(VM_FAULT_KINDS),
    st.integers(min_value=0, max_value=2**31 - 1),
    st.sampled_from(PROGRAMS),
    st.sampled_from([4, 8]),
)


class TestDeterminism:
    @given(plan_cases)
    @settings(max_examples=40, deadline=None)
    def test_same_seed_same_log(self, case):
        kind, seed, program, side = case
        logs = []
        for _ in range(2):
            inj = FaultInjector(FaultPlan(seed=seed, kind=kind))
            try:
                _run_program(program, side, seed=3, injector=inj)
            except Exception:
                pass
            logs.append(inj.log())
        assert logs[0] == logs[1]

    @pytest.mark.parametrize("kind", VM_FAULT_KINDS)
    @pytest.mark.parametrize("program", PROGRAMS)
    def test_every_kind_has_a_surface(self, kind, program):
        # rate=1.0, unbounded: every program presents opportunities for
        # every VM kind, and at least one injection lands
        inj = FaultInjector(FaultPlan(seed=5, kind=kind, rate=1.0, max_faults=None))
        try:
            _run_program(program, 8, seed=3, injector=inj)
        except Exception:
            pass
        assert inj.injected, f"{kind} never injected in {program}"
        assert inj.opportunities[kind] > 0

    def test_log_carries_step_index(self):
        inj = FaultInjector(FaultPlan(seed=5, kind="vm_flip_word"))
        _run_program("sort", 8, seed=3, injector=inj)
        (fault,) = inj.injected
        assert fault.kind == "vm_flip_word"
        assert fault.site.startswith("vm:")
        assert fault.detail["step"] >= 1

    def test_global_numpy_state_is_irrelevant(self):
        inj = FaultInjector(FaultPlan(seed=5, kind="vm_drop_link"))
        np.random.seed(0)
        _run_program("sort", 8, seed=3, injector=inj)
        ref = FaultInjector(FaultPlan(seed=5, kind="vm_drop_link"))
        np.random.seed(12345)
        _run_program("sort", 8, seed=3, injector=ref)
        assert inj.log() == ref.log()


class TestNoMatchIsByteIdentical:
    @given(plan_cases)
    @settings(max_examples=40, deadline=None)
    def test_site_filtered_plan_changes_nothing(self, case):
        kind, seed, program, side = case
        clean_out, clean_steps = _run_program(program, side, seed=3)
        inj = FaultInjector(
            FaultPlan(seed=seed, kind=kind, site="vm:no_such_register")
        )
        out, steps = _run_program(program, side, seed=3, injector=inj)
        assert inj.injected == []
        assert steps == clean_steps
        for a, b in zip(out, clean_out):
            assert a.dtype == b.dtype and (a == b).all()

    def test_engine_kinds_have_no_vm_surface(self):
        # engine-primitive plans never fire inside the VM
        inj = FaultInjector(
            FaultPlan(seed=5, kind="perturb_sort_key", rate=1.0, max_faults=None)
        )
        clean_out, clean_steps = _run_program("sort", 8, seed=3)
        out, steps = _run_program("sort", 8, seed=3, injector=inj)
        assert inj.injected == []
        assert steps == clean_steps
        for a, b in zip(out, clean_out):
            assert (a == b).all()

    def test_no_injector_costs_nothing_and_is_byte_identical(self):
        # the acceptance contract: byte-identical register dumps and
        # identical steps for every program with no installed plan
        for program in PROGRAMS:
            ref_out, ref_steps = _run_program(program, 8, seed=3)
            out, steps = _run_program(program, 8, seed=3)
            assert steps == ref_steps
            for a, b in zip(out, ref_out):
                assert a.dtype == b.dtype and (a == b).all()


class TestObserverSafety:
    @given(plan_cases)
    @settings(max_examples=40, deadline=None)
    def test_steps_unchanged_by_injection(self, case):
        # every program's schedule is data-independent, and the hook never
        # touches `steps`: an unchecked faulted run charges exactly the
        # clean run's step count
        kind, seed, program, side = case
        _, clean_steps = _run_program(program, side, seed=3)
        inj = FaultInjector(
            FaultPlan(seed=seed, kind=kind, rate=1.0, max_faults=None)
        )
        try:
            _, steps = _run_program(program, side, seed=3, injector=inj)
        except Exception:
            return  # bare runs may crash on corrupt indices; steps moot
        assert steps == clean_steps

    def test_hook_sees_final_step_count(self):
        seen = []

        class Spy(FaultInjector):
            def on_vm_shift(self, vm, outs, grids, names, direction, fill):
                seen.append(vm.steps)
                return super().on_vm_shift(vm, outs, grids, names, direction, fill)

        vm = MeshVM(2, 2)
        Spy().install_vm(vm)
        vm.alloc("a", 1.0)
        vm.alloc("b", 2.0)
        vm.shift("a", "left")
        vm.shift_many(["a", "b"], "down")
        assert seen == [1, 2]
        assert vm.steps == 2


class TestParanoidDetection:
    @pytest.mark.parametrize("kind", VM_FAULT_KINDS)
    @pytest.mark.parametrize("program", PROGRAMS)
    def test_paranoid_vm_detects_at_the_corrupted_step(self, kind, program):
        inj = FaultInjector(FaultPlan(seed=5, kind=kind, rate=1.0, max_faults=None))
        with pytest.raises(InvariantViolation) as err:
            _run_program(program, 8, seed=3, injector=inj, paranoid=True)
        assert err.value.check == "vm:shift:integrity"
        assert inj.injected

    def test_paranoid_without_faults_is_byte_identical(self):
        for program in PROGRAMS:
            plain_out, plain_steps = _run_program(program, 8, seed=3)
            checked_out, checked_steps = _run_program(
                program, 8, seed=3, paranoid=True
            )
            assert checked_steps == plain_steps
            for a, b in zip(checked_out, plain_out):
                assert a.dtype == b.dtype and (a == b).all()

    def test_unlogged_stuck_link_is_not_a_fault(self):
        # a stuck lane that redelivers identical words changes nothing:
        # the hook must not log it, and the paranoid check must not fire
        vm = MeshVM(2, 2, paranoid=True)
        inj = FaultInjector(
            FaultPlan(seed=1, kind="vm_drop_link", rate=1.0, max_faults=None)
        ).install_vm(vm)
        vm.alloc("x", 0.0)  # constant grid: stale == shifted on inner lanes
        for _ in range(8):
            vm.shift("x", "left", fill=0)
        # fill-mode drops are also invisible on an all-zero grid
        assert inj.injected == []
        assert vm.steps == 8


class TestProgramChecks:
    """The phase-boundary checks catch corruption on their own.

    ``paranoid=False`` disables the step-integrity boundary while
    ``check=True`` keeps the program checks, so these tests prove the
    second line of defense works without the first — the configuration a
    caller gets from ``shearsort(vm, ..., check=True)`` on a plain VM.
    """

    def _faulted_vm(self, side, seed):
        vm = MeshVM(side, paranoid=False)
        inj = FaultInjector(
            FaultPlan(seed=seed, kind="vm_flip_word", rate=1.0, max_faults=None)
        ).install_vm(vm)
        return vm, inj

    def test_shearsort_check(self):
        vm, inj = self._faulted_vm(8, seed=2)
        vm.load_rowmajor("k", np.arange(64, dtype=np.int64))
        with pytest.raises(InvariantViolation) as err:
            shearsort(vm, "k", check=True)
        assert err.value.check.startswith("vm:sort:")
        assert inj.injected

    def test_route_check(self):
        vm, inj = self._faulted_vm(4, seed=2)
        with pytest.raises(InvariantViolation) as err:
            route_permutation(
                vm, np.random.default_rng(0).permutation(16), np.arange(16),
                check=True,
            )
        assert err.value.check.startswith(("vm:sort:", "vm:route:"))
        assert inj.injected

    def test_scan_recurrence_check(self):
        vm, inj = self._faulted_vm(4, seed=2)
        vm.load_rowmajor("v", np.ones(16, dtype=np.int64))
        with pytest.raises(InvariantViolation) as err:
            snake_prefix_sum(vm, "v", "p", check=True)
        assert err.value.check.startswith("vm:scan:")
        assert inj.injected

    def test_broadcast_uniform_check(self):
        vm, inj = self._faulted_vm(4, seed=2)
        vm.load_rowmajor("s", np.arange(16, dtype=np.int64))
        with pytest.raises(InvariantViolation) as err:
            broadcast_from_origin(vm, "s", "d", check=True)
        assert err.value.check == "vm:broadcast:uniform"
        assert inj.injected
