"""Regression: the geometry cut cache must be thread-safe and bounded.

The serving layer calls partition geometry from worker callback threads;
the original dict cache could tear under concurrent mutation and grew
without bound across distinct (length, parts) keys.
"""

import threading

import numpy as np

from repro.mesh.topology import _CUTS_CACHE, _CUTS_CAPACITY, _cuts


def expected(length: int, parts: int) -> np.ndarray:
    return np.linspace(0, length, parts + 1).astype(int)


def test_values_correct_and_immutable():
    cuts = _cuts(100, 7)
    assert cuts.tobytes() == expected(100, 7).tobytes()
    assert not cuts.flags.writeable  # cached arrays are shared: frozen
    assert _cuts(100, 7) is cuts  # second lookup hits the cache


def test_capacity_bounded():
    for i in range(3 * _CUTS_CAPACITY):
        _cuts(1000 + i, 3)
    assert len(_CUTS_CACHE) <= _CUTS_CAPACITY


def test_concurrent_access_returns_correct_cuts():
    """Hammer the cache from many threads over mixed keys.

    Every returned array must be the correct cuts for its own key — a
    torn read under the unlocked dict could hand key A's array to key B
    — and the cache must stay within capacity throughout.
    """
    keys = [(64 + i, 1 + (i % 9)) for i in range(300)]
    errors: list[str] = []
    start = threading.Barrier(8)

    def worker(offset: int) -> None:
        start.wait()
        for i in range(len(keys)):
            length, parts = keys[(i + offset * 37) % len(keys)]
            got = _cuts(length, parts)
            want = expected(length, parts)
            if got.shape != want.shape or got.tobytes() != want.tobytes():
                errors.append(f"wrong cuts for ({length}, {parts})")
            # small slack: an unlocked reader may observe the instant
            # between insert and evict inside the locked critical section
            if len(_CUTS_CACHE) > _CUTS_CAPACITY + 8:
                errors.append("cache exceeded capacity")

    threads = [threading.Thread(target=worker, args=(t,)) for t in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors, errors[:5]
    assert len(_CUTS_CACHE) <= _CUTS_CAPACITY
