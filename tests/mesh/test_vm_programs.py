"""Tests for the VM programs: sorting, routing, scan, broadcast.

These are the E10 validation: the programs must compute the same answers
as the engine primitives and their step counts must grow as advertised.
"""

import math

import numpy as np
import pytest

from repro.mesh.machine import MeshVM
from repro.mesh.routing import route_permutation
from repro.mesh.scan import broadcast_from_origin, row_prefix_sum, snake_prefix_sum
from repro.mesh.sorting import (
    oddeven_transposition_cols,
    oddeven_transposition_rows,
    shearsort,
)
from repro.mesh.topology import rowmajor_to_snake


def snake_values(vm: MeshVM, reg: str) -> np.ndarray:
    """Register contents in snake order."""
    flat = vm.dump_rowmajor(reg)
    snake = rowmajor_to_snake(vm.rows, vm.cols)
    out = np.empty_like(flat)
    out[snake] = flat
    return out


class TestOddEvenRows:
    def test_sorts_each_row(self):
        vm = MeshVM(4, 8)
        rng = np.random.default_rng(0)
        vals = rng.integers(0, 100, (4, 8)).astype(np.float64)
        vm.alloc("k", vals)
        oddeven_transposition_rows(vm, "k")
        out = vm["k"]
        assert (np.diff(out, axis=1) >= 0).all()
        for r in range(4):
            assert sorted(out[r].tolist()) == sorted(vals[r].tolist())

    def test_snake_mode_alternates_direction(self):
        vm = MeshVM(2, 6)
        vm.alloc("k", np.random.default_rng(1).uniform(size=(2, 6)))
        oddeven_transposition_rows(vm, "k", snake=True)
        out = vm["k"]
        assert (np.diff(out[0]) >= 0).all()
        assert (np.diff(out[1]) <= 0).all()

    def test_payload_moves_with_key(self):
        vm = MeshVM(1, 8)
        keys = np.array([[3.0, 1.0, 4.0, 1.5, 5.0, 9.0, 2.0, 6.0]])
        vm.alloc("k", keys)
        vm.alloc("p", keys * 10)
        oddeven_transposition_rows(vm, "k", ["p"])
        assert np.allclose(vm["p"], vm["k"] * 10)

    def test_cost_is_cols_steps(self):
        vm = MeshVM(4, 8)
        vm.alloc("k", 0.0)
        oddeven_transposition_rows(vm, "k")
        assert vm.steps == 8


class TestOddEvenCols:
    def test_sorts_each_column(self):
        vm = MeshVM(8, 3)
        vals = np.random.default_rng(2).uniform(size=(8, 3))
        vm.alloc("k", vals)
        oddeven_transposition_cols(vm, "k")
        assert (np.diff(vm["k"], axis=0) >= 0).all()

    def test_cost_is_rows_steps(self):
        vm = MeshVM(6, 3)
        vm.alloc("k", 0.0)
        oddeven_transposition_cols(vm, "k")
        assert vm.steps == 6


class TestShearsort:
    @pytest.mark.parametrize("side", [2, 4, 8, 16])
    def test_sorts_into_snake_order(self, side):
        vm = MeshVM(side)
        vals = np.random.default_rng(side).permutation(side * side).astype(np.int64)
        vm.load_rowmajor("k", vals)
        shearsort(vm, "k")
        assert (np.diff(snake_values(vm, "k")) >= 0).all()

    def test_with_duplicates(self):
        vm = MeshVM(8)
        vals = np.random.default_rng(5).integers(0, 5, 64)
        vm.load_rowmajor("k", vals)
        shearsort(vm, "k")
        got = snake_values(vm, "k")
        assert (np.diff(got) >= 0).all()
        assert sorted(got.tolist()) == sorted(vals.tolist())

    def test_payload_follows(self):
        vm = MeshVM(8)
        rng = np.random.default_rng(6)
        keys = rng.permutation(64).astype(np.float64)
        vm.load_rowmajor("k", keys)
        vm.load_rowmajor("p", keys * 3)
        shearsort(vm, "k", ["p"])
        assert np.allclose(vm["p"], vm["k"] * 3)

    def test_step_growth_side_log_side(self):
        steps = {}
        for side in (4, 8, 16, 32):
            vm = MeshVM(side)
            vm.load_rowmajor("k", np.random.default_rng(0).permutation(side * side))
            shearsort(vm, "k")
            steps[side] = vm.steps
        for side in (4, 8, 16, 32):
            bound = 4 * side * (math.log2(side) + 2)
            assert steps[side] <= bound, (side, steps[side], bound)
        # superlinear but subquadratic
        assert steps[32] / steps[16] < 3.0
        assert steps[32] / steps[16] > 1.8


class TestRouting:
    @pytest.mark.parametrize("side", [2, 4, 8])
    def test_full_permutation(self, side):
        n = side * side
        rng = np.random.default_rng(side)
        vm = MeshVM(side)
        dest = rng.permutation(n)
        out = route_permutation(vm, dest, np.arange(n) + 100)
        assert (out[dest] == np.arange(n) + 100).all()

    def test_partial_permutation(self):
        vm = MeshVM(4)
        dest = np.full(16, -1)
        dest[3] = 0
        dest[7] = 15
        out = route_permutation(vm, dest, np.arange(16), fill=-9)
        assert out[0] == 3 and out[15] == 7
        assert out[1] == -9

    def test_duplicates_rejected(self):
        vm = MeshVM(4)
        dest = np.zeros(16, dtype=np.int64)
        with pytest.raises(ValueError):
            route_permutation(vm, dest, np.arange(16))

    def test_identity_routing(self):
        vm = MeshVM(4)
        out = route_permutation(vm, np.arange(16), np.arange(16))
        assert (out == np.arange(16)).all()


class TestScan:
    def test_row_prefix(self):
        vm = MeshVM(3, 5)
        vals = np.random.default_rng(3).integers(0, 9, (3, 5)).astype(np.int64)
        vm.alloc("v", vals)
        row_prefix_sum(vm, "v", "p")
        assert (vm["p"] == np.cumsum(vals, axis=1)).all()

    @pytest.mark.parametrize("shape", [(4, 4), (5, 3), (1, 8), (8, 1)])
    def test_snake_prefix_inclusive(self, shape):
        rows, cols = shape
        vm = MeshVM(rows, cols)
        vals = np.random.default_rng(rows * 10 + cols).integers(0, 9, rows * cols)
        vm.load_rowmajor("v", vals)
        snake_prefix_sum(vm, "v", "p")
        snake = rowmajor_to_snake(rows, cols)
        order = np.argsort(snake)
        expect = np.empty(rows * cols, dtype=vals.dtype)
        expect[order] = np.cumsum(vals[order])
        assert (vm.dump_rowmajor("p") == expect).all()

    def test_snake_prefix_exclusive(self):
        vm = MeshVM(4, 4)
        vals = np.ones(16, dtype=np.int64)
        vm.load_rowmajor("v", vals)
        snake_prefix_sum(vm, "v", "p", inclusive=False)
        snake = rowmajor_to_snake(4, 4)
        order = np.argsort(snake)
        got_in_snake = vm.dump_rowmajor("p")[order]
        assert (got_in_snake == np.arange(16)).all()

    def test_linear_step_count(self):
        counts = {}
        for side in (8, 16, 32):
            vm = MeshVM(side)
            vm.load_rowmajor("v", np.ones(side * side, dtype=np.int64))
            snake_prefix_sum(vm, "v", "p")
            counts[side] = vm.steps
        assert counts[16] <= 5 * 16
        assert 1.7 < counts[32] / counts[16] < 2.3  # linear in side


class TestBroadcast:
    def test_value_reaches_all(self):
        vm = MeshVM(5, 7)
        vm.alloc("s", 0.0)
        vm["s"][0, 0] = 3.5
        broadcast_from_origin(vm, "s", "d")
        assert (vm["d"] == 3.5).all()

    def test_steps_equal_perimeter_path(self):
        vm = MeshVM(5, 7)
        vm.alloc("s", 1.0)
        broadcast_from_origin(vm, "s", "d")
        assert vm.steps == (5 - 1) + (7 - 1)
