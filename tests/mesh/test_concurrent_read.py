"""Tests for the executable VM concurrent read (sort-based RAR)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.mesh.concurrent_read import vm_concurrent_read
from repro.mesh.engine import MeshEngine


class TestVMConcurrentRead:
    def test_identity_read(self):
        mem = np.arange(16, dtype=np.float64) * 10
        vals, _ = vm_concurrent_read(np.arange(16), mem)
        assert (vals == mem).all()

    def test_all_read_one_cell(self):
        # maximal concurrency: every processor reads cell 5
        mem = np.arange(16, dtype=np.float64)
        vals, _ = vm_concurrent_read(np.full(16, 5), mem)
        assert (vals == 5.0).all()

    def test_random_duplicates(self):
        rng = np.random.default_rng(0)
        mem = rng.uniform(size=64)
        addr = rng.integers(0, 64, 64)
        vals, _ = vm_concurrent_read(addr, mem)
        assert np.allclose(vals, mem[addr])

    def test_no_request_gets_fill(self):
        mem = np.arange(9, dtype=np.float64)
        addr = np.full(9, -1)
        addr[4] = 2
        vals, _ = vm_concurrent_read(addr, mem, fill=-7.0)
        assert vals[4] == 2.0
        assert (np.delete(vals, 4) == -7.0).all()

    def test_matches_engine_rar(self):
        rng = np.random.default_rng(1)
        mem = rng.uniform(size=49)
        addr = rng.integers(-1, 49, 49)
        vm_vals, _ = vm_concurrent_read(addr, mem, fill=0.0)
        eng = MeshEngine(7)
        (eng_vals,) = eng.root.rar(addr, mem, fill=0.0)
        assert np.allclose(vm_vals, eng_vals)

    def test_step_count_is_sort_dominated(self):
        # two shearsorts + two sweeps: O(side log side) on the 2N mesh
        for N in (16, 64, 256):
            mem = np.arange(N, dtype=np.float64)
            addr = np.random.default_rng(N).integers(0, N, N)
            _, steps = vm_concurrent_read(addr, mem)
            side = math.ceil(math.sqrt(2 * N))
            assert steps <= 10 * side * (math.log2(side) + 2), (N, steps)

    def test_address_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            vm_concurrent_read(np.array([4]), np.array([1.0]))

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(ValueError):
            vm_concurrent_read(np.array([0, 0]), np.array([1.0]))

    @given(n=st.integers(4, 40), seed=st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_property_matches_gather(self, n, seed):
        rng = np.random.default_rng(seed)
        mem = rng.uniform(size=n)
        addr = rng.integers(-1, n, n)
        vals, _ = vm_concurrent_read(addr, mem, fill=0.0)
        want = np.where(addr >= 0, mem[np.clip(addr, 0, None)], 0.0)
        assert np.allclose(vals, want)
