"""Paranoid mode is free: byte-identical outputs, identical step counts.

Paranoid invariant checks are host-side reads at primitive and phase
boundaries — they must never charge the clock or perturb an output.
These tests run the E1/E2 smoke problems (and a primitive pipeline) with
``paranoid=True`` and ``False`` and require *exact* equality.
"""

import numpy as np
import pytest

from repro.core.hierdag import hierdag_multisearch
from repro.core.model import QuerySet
from repro.mesh.engine import MeshEngine
from repro.mesh.faults import paranoid_default


def _e1(paranoid: bool):
    from repro.graphs.adapters import hierdag_search_structure
    from repro.graphs.hierarchical import build_mu_ary_search_dag

    dag, leaf_keys = build_mu_ary_search_dag(2, 7, seed=1)
    st = hierdag_search_structure(dag)
    rng = np.random.default_rng(2)
    keys = rng.uniform(leaf_keys[0], leaf_keys[-1], 128)
    eng = MeshEngine.for_problem(max(int(dag.size), 128), paranoid=paranoid)
    qs = QuerySet.start(keys, 0)
    res = hierdag_multisearch(eng, st, qs, mu=2.0, c=2)
    return qs, res.mesh_steps, eng.clock.time


def _e2(paranoid: bool):
    from repro.core.constrained import constrained_multisearch
    from repro.core.splitters import splitting_from_labels
    from repro.graphs.adapters import ktree_directed_structure
    from repro.graphs.ktree import build_balanced_search_tree

    t = build_balanced_search_tree(2, 8, seed=1)
    st = ktree_directed_structure(t)
    sp = splitting_from_labels(t.alpha_splitter().comp, t.children, 0.5)
    rng = np.random.default_rng(3)
    keys = rng.uniform(t.leaf_keys[0], t.leaf_keys[-1], 256)
    eng = MeshEngine.for_problem(max(int(t.size), 256), paranoid=paranoid)
    qs = QuerySet.start(keys, np.zeros(256, dtype=np.int64))
    constrained_multisearch(eng, st, qs, sp)
    return qs, eng.clock.time


class TestParanoidEquivalence:
    def test_e1_identical(self):
        qs_on, steps_on, clock_on = _e1(True)
        qs_off, steps_off, clock_off = _e1(False)
        assert steps_on == steps_off
        assert clock_on == clock_off
        np.testing.assert_array_equal(qs_on.current, qs_off.current)
        np.testing.assert_array_equal(qs_on.steps, qs_off.steps)

    def test_e2_identical(self):
        qs_on, clock_on = _e2(True)
        qs_off, clock_off = _e2(False)
        assert clock_on == clock_off
        np.testing.assert_array_equal(qs_on.current, qs_off.current)
        np.testing.assert_array_equal(qs_on.steps, qs_off.steps)

    def test_primitives_identical(self):
        outs = {}
        for paranoid in (True, False):
            eng = MeshEngine.for_problem(64, paranoid=paranoid)
            rng = np.random.default_rng(0)
            keys = rng.integers(0, 1000, 64).astype(np.int64)
            (srt,) = eng.root.sort_by(keys, label="t:sort")
            (routed,) = eng.root.route(rng.permutation(64), srt, label="t:route")
            outs[paranoid] = (srt, routed, eng.clock.time)
        np.testing.assert_array_equal(outs[True][0], outs[False][0])
        np.testing.assert_array_equal(outs[True][1], outs[False][1])
        assert outs[True][2] == outs[False][2]


class TestStableOrderInvariant:
    """The tied-key argsort blind spot is closed (chaos gap, FAULTS log).

    ``perturb_sort_key``'s permutation variant swaps two adjacent entries
    of a stable argsort.  When the swapped keys differ the sortedness
    check fires; when they are *tied*, ``keys[order]`` stays nondecreasing
    and only the stability check can see the scrambled records.
    """

    def test_tied_key_swap_detected(self):
        from repro.mesh.faults import FaultInjector, FaultPlan, InvariantViolation

        eng = MeshEngine.for_problem(64, paranoid=True)
        FaultInjector(FaultPlan(seed=1, kind="perturb_sort_key")).install(eng)
        keys = np.zeros(64, dtype=np.int64)  # all tied: worst case
        with pytest.raises(InvariantViolation) as exc:
            eng.root.argsort(keys, label="t:sort")
        assert exc.value.check == "sort:stable"

    @pytest.mark.parametrize("seed", range(8))
    def test_any_tie_pattern_detected(self, seed):
        from repro.mesh.faults import FaultInjector, FaultPlan, InvariantViolation

        rng = np.random.default_rng(seed)
        keys = rng.integers(0, 8, 64).astype(np.int64)  # heavy ties
        eng = MeshEngine.for_problem(64, paranoid=True)
        inj = FaultInjector(FaultPlan(seed=seed, kind="perturb_sort_key")).install(eng)
        with pytest.raises(InvariantViolation) as exc:
            eng.root.argsort(keys, label="t:sort")
        assert exc.value.check in ("sort:sorted", "sort:stable")
        assert inj.injected, "the plan must actually have fired"

    def test_legitimate_ties_pass(self):
        rng = np.random.default_rng(7)
        keys = rng.integers(0, 4, 256).astype(np.int64)
        eng = MeshEngine.for_problem(256, paranoid=True)
        order = eng.root.argsort(keys, label="t:sort")
        np.testing.assert_array_equal(order, np.argsort(keys, kind="stable"))


class TestParanoidDefault:
    def test_env_off_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PARANOID", raising=False)
        assert paranoid_default() is False
        assert MeshEngine.for_problem(4).paranoid is False

    @pytest.mark.parametrize("val,expect", [
        ("1", True), ("true", True), ("on", True),
        ("0", False), ("false", False), ("off", False), ("", False),
    ])
    def test_env_values(self, monkeypatch, val, expect):
        monkeypatch.setenv("REPRO_PARANOID", val)
        assert paranoid_default() is expect

    def test_explicit_flag_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_PARANOID", "1")
        assert MeshEngine.for_problem(4, paranoid=False).paranoid is False
