"""Tests for the point-location application (E7)."""

import numpy as np
import pytest

from repro.apps.pointloc import locate_points_mesh
from repro.bench.workloads import uniform_sites
from repro.geometry.primitives import point_in_triangle
from repro.util.rng import make_rng


class TestLocatePointsMesh:
    @pytest.mark.parametrize("method", ["hierdag", "baseline"])
    def test_answers_verified_geometrically(self, method):
        sites = uniform_sites(150, seed=0)
        q = make_rng(1).uniform(0, 100, (200, 2))
        run = locate_points_mesh(sites, q, seed=2, method=method)
        pts = run.hierarchy.points
        tris = run.hierarchy.base_triangles
        assert (run.triangle >= 0).all()
        for p, t in zip(q, run.triangle):
            assert point_in_triangle(p, pts[tris[t, 0]], pts[tris[t, 1]], pts[tris[t, 2]])

    def test_methods_agree(self):
        sites = uniform_sites(100, seed=3)
        q = make_rng(4).uniform(0, 100, (100, 2))
        a = locate_points_mesh(sites, q, seed=5, method="hierdag")
        b = locate_points_mesh(sites, q, seed=5, method="baseline")
        assert (a.triangle == b.triangle).all()

    def test_matches_sequential_locate(self):
        sites = uniform_sites(80, seed=6)
        q = make_rng(7).uniform(0, 100, (60, 2))
        run = locate_points_mesh(sites, q, seed=8)
        seq = run.hierarchy.locate(q)
        pts = run.hierarchy.points
        tris = run.hierarchy.base_triangles
        # same triangle unless the point sits on an edge; compare by
        # containment of both answers
        for p, t1, t2 in zip(q, run.triangle, seq):
            for t in (t1, t2):
                assert point_in_triangle(p, pts[tris[t, 0]], pts[tris[t, 1]], pts[tris[t, 2]])

    def test_outside_points_get_minus_one(self):
        sites = uniform_sites(50, seed=9)
        q = np.array([[1e9, 1e9], [50.0, 50.0]])
        run = locate_points_mesh(sites, q, seed=10)
        assert run.triangle[0] == -1
        assert run.triangle[1] >= 0

    def test_mesh_steps_positive_and_recorded(self):
        sites = uniform_sites(60, seed=11)
        q = make_rng(12).uniform(0, 100, (30, 2))
        run = locate_points_mesh(sites, q, seed=13)
        assert run.mesh_steps > 0
        assert run.dag_size > 0

    def test_unknown_method_rejected(self):
        with pytest.raises(ValueError):
            locate_points_mesh(uniform_sites(20, seed=14), np.zeros((1, 2)), method="x")
