"""Tests for the mesh interval-search application (Section 6, E8)."""

import numpy as np
import pytest

from repro.apps.interval_search import (
    count_intersections_mesh,
    report_intersections_mesh,
    setup_interval_search,
)
from repro.bench.workloads import random_intervals
from repro.intervals.interval_tree import brute_force_intersections
from repro.util.rng import make_rng


@pytest.fixture(scope="module")
def dataset():
    lefts, rights = random_intervals(300, seed=0, domain=100.0, mean_len=6.0)
    setup = setup_interval_search(lefts, rights)
    rng = make_rng(1)
    a = rng.uniform(0, 100, 80)
    b = a + rng.uniform(0.1, 15, 80)
    return setup, lefts, rights, a, b


class TestCounting:
    def test_counts_match_brute_force(self, dataset):
        setup, lefts, rights, a, b = dataset
        counts, steps = count_intersections_mesh(setup, a, b)
        want = [brute_force_intersections(lefts, rights, a[i], b[i]).size
                for i in range(a.size)]
        assert counts.tolist() == want
        assert steps > 0

    def test_empty_result_counts(self, dataset):
        setup, lefts, rights, _, _ = dataset
        a = np.array([-1000.0])
        b = np.array([-999.0])
        counts, _ = count_intersections_mesh(setup, a, b)
        assert counts[0] == 0

    def test_covering_query(self, dataset):
        setup, lefts, rights, _, _ = dataset
        counts, _ = count_intersections_mesh(
            setup, np.array([lefts.min() - 1]), np.array([rights.max() + 1])
        )
        assert counts[0] == lefts.size


class TestReporting:
    def test_reports_match_brute_force(self, dataset):
        setup, lefts, rights, a, b = dataset
        reports, steps = report_intersections_mesh(setup, a, b)
        for i in range(a.size):
            want = set(brute_force_intersections(lefts, rights, a[i], b[i]).tolist())
            assert set(reports[i].tolist()) == want
        assert steps > 0

    def test_reports_consistent_with_counts(self, dataset):
        setup, _, _, a, b = dataset
        counts, _ = count_intersections_mesh(setup, a, b)
        reports, _ = report_intersections_mesh(setup, a, b)
        assert [r.size for r in reports] == counts.tolist()

    def test_degenerate_point_queries(self, dataset):
        setup, lefts, rights, _, _ = dataset
        q = np.array([25.0, 50.0, 75.0])
        reports, _ = report_intersections_mesh(setup, q, q)
        for i, x in enumerate(q):
            want = set(np.flatnonzero((lefts <= x) & (rights >= x)).tolist())
            assert set(reports[i].tolist()) == want

    def test_duplicate_free(self, dataset):
        setup, _, _, a, b = dataset
        reports, _ = report_intersections_mesh(setup, a, b)
        for r in reports:
            assert np.unique(r).size == r.size


class TestScaling:
    def test_counting_cost_scales_as_sqrt_n(self):
        ratios = {}
        for n in (256, 1024):
            lefts, rights = random_intervals(n, seed=2, domain=1000.0)
            setup = setup_interval_search(lefts, rights)
            rng = make_rng(3)
            a = rng.uniform(0, 1000, 64)
            b = a + 5.0
            _, steps = count_intersections_mesh(setup, a, b)
            ratios[n] = steps / setup.tree_lefts.size ** 0.5
        assert ratios[1024] / ratios[256] < 2.5
