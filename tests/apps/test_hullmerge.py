"""Tests for 3-d hull merging and divide-and-conquer construction (E9)."""

import numpy as np
import pytest
from scipy.spatial import ConvexHull

from repro.apps.hullmerge import convex_hull_divide_conquer, merge_hulls
from repro.bench.workloads import sphere_points
from repro.geometry.hull3d import convex_hull_3d


class TestMergeHulls:
    def test_volume_matches_union_hull(self):
        rng = np.random.default_rng(0)
        P = rng.normal(size=(200, 3))
        Q = rng.normal(size=(200, 3)) + 1.5
        merged = merge_hulls(convex_hull_3d(P, seed=1), convex_hull_3d(Q, seed=2))
        ref = ConvexHull(np.vstack([P, Q]))
        assert merged.volume() == pytest.approx(ref.volume, rel=1e-9)

    def test_contains_both_inputs(self):
        P = sphere_points(100, seed=3)
        Q = sphere_points(100, seed=4, center=(0.5, 0.5, 0.0))
        merged = merge_hulls(convex_hull_3d(P, seed=1), convex_hull_3d(Q, seed=2))
        assert merged.contains(np.vstack([P, Q])).all()

    def test_nested_hulls(self):
        P = sphere_points(80, seed=5, radius=2.0)
        Q = sphere_points(80, seed=6, radius=0.3)
        h1 = convex_hull_3d(P, seed=1)
        merged = merge_hulls(h1, convex_hull_3d(Q, seed=2))
        assert merged.volume() == pytest.approx(h1.volume(), rel=1e-9)

    def test_disjoint_hulls(self):
        P = sphere_points(60, seed=7)
        Q = sphere_points(60, seed=8, center=(10.0, 0, 0))
        merged = merge_hulls(convex_hull_3d(P, seed=1), convex_hull_3d(Q, seed=2))
        ref = ConvexHull(np.vstack([P, Q]))
        assert merged.volume() == pytest.approx(ref.volume, rel=1e-9)

    def test_interior_filter_drops_contained_vertices(self):
        P = sphere_points(80, seed=9, radius=2.0)
        Q = sphere_points(80, seed=10, radius=0.3)
        merged = merge_hulls(convex_hull_3d(P, seed=1), convex_hull_3d(Q, seed=2))
        # all of Q is interior: merged hull uses only P's points
        assert merged.points.shape[0] == 80


class TestDivideConquer:
    @pytest.mark.parametrize("n,leaf", [(100, 16), (300, 32), (500, 64)])
    def test_matches_scipy(self, n, leaf):
        pts = np.random.default_rng(n).normal(size=(n, 3))
        ours = convex_hull_divide_conquer(pts, leaf_size=leaf, seed=0)
        ref = ConvexHull(pts)
        assert ours.volume() == pytest.approx(ref.volume, rel=1e-9)
        assert ours.contains(pts).all()

    def test_small_input_uses_leaf_path(self):
        pts = np.random.default_rng(1).normal(size=(10, 3))
        ours = convex_hull_divide_conquer(pts, leaf_size=32)
        assert ours.volume() == pytest.approx(ConvexHull(pts).volume, rel=1e-9)

    def test_sphere_input(self):
        pts = sphere_points(400, seed=2)
        ours = convex_hull_divide_conquer(pts, leaf_size=50, seed=0)
        ref = ConvexHull(pts)
        assert ours.volume() == pytest.approx(ref.volume, rel=1e-9)
