"""Tracing gates for the application drivers (E6-E9).

Every driver must (a) produce byte-identical results and identical mesh
step counts whether span tracing is enabled or not — tracing is pure
observation — and (b) emit a non-empty span tree containing its
documented phase names when tracing is on.
"""

import numpy as np
import pytest

from repro.apps.hullmerge import convex_hull_divide_conquer
from repro.apps.interval_search import (
    count_intersections_mesh,
    report_intersections_mesh,
    setup_interval_search,
)
from repro.apps.linepoly import line_polyhedron_queries
from repro.apps.pointloc import locate_faces_mesh, locate_points_mesh
from repro.apps.separation import separate_polyhedra
from repro.bench.workloads import random_intervals, random_lines, sphere_points
from repro.geometry.dk3d import build_dk_hierarchy
from repro.mesh.trace import drain_traced_tracers
from repro.util.rng import make_rng


def _span_names(tracers):
    names = set()

    def walk(span):
        names.add(span.name)
        for child in span.children:
            walk(child)

    for tracer in tracers:
        walk(tracer.root)
    return names


def _traced(monkeypatch, fn):
    """Run ``fn`` under REPRO_TRACE; return (result, drained tracers)."""
    drain_traced_tracers()
    monkeypatch.setenv("REPRO_TRACE", "1")
    try:
        result = fn()
    finally:
        monkeypatch.delenv("REPRO_TRACE")
    return result, drain_traced_tracers()


class TestE6LinePoly:
    def _run(self):
        hier = build_dk_hierarchy(sphere_points(120, seed=0), seed=1)
        p0, d = random_lines(40, seed=3)
        return line_polyhedron_queries(hier, p0, d)

    def test_tracing_changes_nothing(self, monkeypatch):
        plain = self._run()
        traced_run, tracers = _traced(monkeypatch, self._run)
        assert traced_run.intersects.tobytes() == plain.intersects.tobytes()
        assert traced_run.tangent_left.tobytes() == plain.tangent_left.tobytes()
        assert traced_run.tangent_right.tobytes() == plain.tangent_right.tobytes()
        assert traced_run.planes.tobytes() == plain.planes.tobytes()
        assert traced_run.mesh_steps == plain.mesh_steps
        assert tracers  # and the traced run did record spans

    def test_documented_phases_present(self, monkeypatch):
        _, tracers = _traced(monkeypatch, self._run)
        names = _span_names(tracers)
        assert {"linepoly:structure", "linepoly:search", "linepoly:verify"} <= names
        # construction spans from the geometry layer ride along
        assert {"dk3d:build", "dk3d:base-hull", "hull3d:build"} <= names

    def test_span_steps_equal_driver_steps(self, monkeypatch):
        run, tracers = _traced(monkeypatch, self._run)
        # engine-clock tracers account every charged step exactly; the
        # driver's own mesh_steps is the search phase's clock window
        total = sum(t.total_steps for t in tracers)
        assert total >= run.mesh_steps > 0


class TestE7PointLocation:
    def _run(self):
        rng = make_rng(0)
        sites = rng.uniform(0.0, 1.0, (60, 2))
        queries = rng.uniform(0.1, 0.9, (50, 2))
        return locate_points_mesh(sites, queries, seed=1)

    def _run_faces(self):
        rng = make_rng(2)
        sites = rng.uniform(0.0, 1.0, (50, 2))
        queries = rng.uniform(0.1, 0.9, (40, 2))
        return locate_faces_mesh(sites, queries, seed=1)

    def test_tracing_changes_nothing(self, monkeypatch):
        plain = self._run()
        traced_run, tracers = _traced(monkeypatch, self._run)
        assert traced_run.triangle.tobytes() == plain.triangle.tobytes()
        assert traced_run.mesh_steps == plain.mesh_steps
        assert tracers

    def test_documented_phases_present(self, monkeypatch):
        _, tracers = _traced(monkeypatch, self._run)
        names = _span_names(tracers)
        assert {"pointloc:build", "pointloc:structure", "pointloc:search",
                "pointloc:finalize"} <= names
        assert {"kirkpatrick:build", "kirkpatrick:delaunay",
                "kirkpatrick:round", "kirkpatrick:structure",
                "triangulate:ear-clip"} <= names

    def test_face_location_phases(self, monkeypatch):
        plain = self._run_faces()
        traced_run, tracers = _traced(monkeypatch, self._run_faces)
        assert traced_run.face.tobytes() == plain.face.tobytes()
        assert traced_run.mesh_steps == plain.mesh_steps
        names = _span_names(tracers)
        assert {"pointloc:subdivision", "subdivision:merge-faces"} <= names


class TestE8Intervals:
    def _data(self):
        lefts, rights = random_intervals(200, seed=0, domain=100.0, mean_len=6.0)
        rng = make_rng(1)
        a = rng.uniform(0, 100, 40)
        b = a + rng.uniform(0.1, 15, 40)
        return lefts, rights, a, b

    def _run_count(self):
        lefts, rights, a, b = self._data()
        setup = setup_interval_search(lefts, rights)
        return count_intersections_mesh(setup, a, b)

    def _run_report(self):
        lefts, rights, a, b = self._data()
        setup = setup_interval_search(lefts, rights)
        return report_intersections_mesh(setup, a, b)

    def test_tracing_changes_nothing(self, monkeypatch):
        counts, steps = self._run_count()
        (tcounts, tsteps), tracers = _traced(monkeypatch, self._run_count)
        assert tcounts.tobytes() == counts.tobytes()
        assert tsteps == steps
        assert tracers

    def test_report_tracing_changes_nothing(self, monkeypatch):
        reports, steps = self._run_report()
        (treports, tsteps), tracers = _traced(monkeypatch, self._run_report)
        assert len(treports) == len(reports)
        for got, want in zip(treports, reports):
            assert got.tobytes() == want.tobytes()
        assert tsteps == steps
        assert tracers

    def test_documented_phases_present(self, monkeypatch):
        _, tracers = _traced(monkeypatch, self._run_count)
        names = _span_names(tracers)
        assert {"intervals:setup", "intervals:count",
                "intervals:count:rank-le-b", "intervals:count:rank-lt-a"} <= names
        _, tracers = _traced(monkeypatch, self._run_report)
        names = _span_names(tracers)
        assert {"intervals:report", "intervals:report:range-walk",
                "intervals:report:stab", "intervals:report:collect"} <= names


class TestE9HullsAndSeparation:
    def _run_separation(self):
        A = sphere_points(100, seed=0)
        B = sphere_points(100, seed=1000, center=(3.0, 0.0, 0.0))
        ha = build_dk_hierarchy(A, seed=1)
        hb = build_dk_hierarchy(B, seed=2)
        return separate_polyhedra(ha, hb)

    def _run_hullmerge(self):
        return convex_hull_divide_conquer(sphere_points(150, seed=5), leaf_size=40)

    def test_separation_tracing_changes_nothing(self, monkeypatch):
        plain = self._run_separation()
        traced_run, tracers = _traced(monkeypatch, self._run_separation)
        assert traced_run.separated == plain.separated
        assert traced_run.iterations == plain.iterations
        assert traced_run.plane.tobytes() == plain.plane.tobytes()
        assert "separation:frank-wolfe" in _span_names(tracers)

    def test_tangent_cones_tracing_changes_nothing(self, monkeypatch):
        from repro.apps.tangent import tangent_cones
        from repro.geometry.hull3d import convex_hull_3d

        def run():
            hull = convex_hull_3d(sphere_points(80, seed=7), seed=8)
            queries = sphere_points(10, seed=9) * 3.0
            return tangent_cones(hull, queries)

        plain = run()
        traced_cones, tracers = _traced(monkeypatch, run)
        assert len(traced_cones) == len(plain)
        for got, want in zip(traced_cones, plain):
            assert got.inside == want.inside
            assert got.planes.tobytes() == want.planes.tobytes()
            assert got.contacts.tobytes() == want.contacts.tobytes()
        assert "tangent:cones" in _span_names(tracers)

    def test_hullmerge_tracing_changes_nothing(self, monkeypatch):
        plain = self._run_hullmerge()
        traced_run, tracers = _traced(monkeypatch, self._run_hullmerge)
        assert traced_run.faces.tobytes() == plain.faces.tobytes()
        assert traced_run.volume() == plain.volume()
        names = _span_names(tracers)
        assert {"hullmerge:divide", "hullmerge:merge", "hullmerge:filter",
                "hullmerge:hull"} <= names
        assert {"hull3d:build", "hull3d:simplex", "hull3d:insert"} <= names
