"""Tests for multiple line-polyhedron queries (Theorem 8.1, E6)."""

import numpy as np
import pytest

from repro.apps.linepoly import (
    brute_force_line_test,
    line_keys,
    line_polyhedron_queries,
)
from repro.bench.workloads import random_lines, sphere_points
from repro.geometry.dk3d import build_dk_hierarchy


@pytest.fixture(scope="module")
def hier():
    return build_dk_hierarchy(sphere_points(250, seed=0), seed=1)


class TestLineKeys:
    def test_basis_orthonormal_and_perpendicular(self):
        p0, d = random_lines(50, seed=2)
        keys = line_keys(p0, d)
        e1, e2 = keys[:, 0:3], keys[:, 3:6]
        u = d / np.linalg.norm(d, axis=1, keepdims=True)
        assert np.allclose(np.einsum("ij,ij->i", e1, e1), 1.0)
        assert np.allclose(np.einsum("ij,ij->i", e2, e2), 1.0)
        assert np.allclose(np.einsum("ij,ij->i", e1, e2), 0.0, atol=1e-12)
        assert np.allclose(np.einsum("ij,ij->i", e1, u), 0.0, atol=1e-12)
        assert np.allclose(np.einsum("ij,ij->i", e2, u), 0.0, atol=1e-12)

    def test_projection_invariant_along_line(self):
        p0 = np.array([[1.0, 2.0, 3.0]])
        d = np.array([[0.5, -1.0, 2.0]])
        k1 = line_keys(p0, d)
        k2 = line_keys(p0 + 7.5 * d, d)
        assert np.allclose(k1, k2)


class TestDecision:
    def test_matches_brute_force(self, hier):
        p0, d = random_lines(150, seed=3)
        run = line_polyhedron_queries(hier, p0, d)
        want = brute_force_line_test(
            hier.points, hier.hulls[0].vertices, p0, d
        )
        assert (run.intersects == want).all()

    def test_lines_through_center_intersect(self, hier):
        m = 20
        rng = np.random.default_rng(4)
        d = rng.normal(size=(m, 3))
        p0 = np.zeros((m, 3))  # through the centroid of the unit sphere
        run = line_polyhedron_queries(hier, p0, d)
        assert run.intersects.all()

    def test_far_lines_miss(self, hier):
        m = 20
        rng = np.random.default_rng(5)
        d = rng.normal(size=(m, 3))
        # offset perpendicular to d by 10 radii
        perp = np.cross(d, [0.0, 0.0, 1.0])
        perp /= np.linalg.norm(perp, axis=1, keepdims=True)
        p0 = 10.0 * perp
        run = line_polyhedron_queries(hier, p0, d)
        assert not run.intersects.any()


class TestTangentPlanes:
    def test_planes_contain_line_and_touch_hull(self, hier):
        p0, d = random_lines(80, seed=6)
        run = line_polyhedron_queries(hier, p0, d)
        V = hier.points[hier.hulls[0].vertices]
        misses = np.flatnonzero(~run.intersects)
        assert misses.size > 10
        for i in misses:
            for s in range(2):
                nrm, off = run.planes[i, s, :3], run.planes[i, s, 3]
                assert not np.isnan(nrm).any()
                # the line lies on the plane
                assert abs(p0[i] @ nrm - off) < 1e-7
                assert abs((p0[i] + d[i]) @ nrm - off) < 1e-7
                # the hull is entirely on one side
                dist = V @ nrm - off
                assert (dist <= 1e-7).all() or (dist >= -1e-7).all()

    def test_tangent_vertices_on_hull(self, hier):
        p0, d = random_lines(40, seed=7)
        run = line_polyhedron_queries(hier, p0, d)
        hull_set = set(hier.hulls[0].vertices.tolist())
        for i in np.flatnonzero(~run.intersects):
            assert int(run.tangent_left[i]) in hull_set
            assert int(run.tangent_right[i]) in hull_set

    def test_two_distinct_tangents(self, hier):
        p0, d = random_lines(40, seed=8)
        run = line_polyhedron_queries(hier, p0, d)
        miss = np.flatnonzero(~run.intersects)
        distinct = run.tangent_left[miss] != run.tangent_right[miss]
        assert distinct.all()

    def test_intersecting_lines_have_nan_planes(self, hier):
        p0 = np.zeros((5, 3))
        d = np.random.default_rng(9).normal(size=(5, 3))
        run = line_polyhedron_queries(hier, p0, d)
        assert np.isnan(run.planes).all()

    def test_improving_walks_are_bounded(self, hier):
        p0, d = random_lines(100, seed=10)
        run = line_polyhedron_queries(hier, p0, d)
        # the robustness net should fire on a minority of searches
        assert run.improved <= 2 * 100  # two searches per line
