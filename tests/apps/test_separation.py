"""Tests for polyhedron separation (Theorem 8.2, E9)."""

import numpy as np
import pytest

from repro.apps.separation import separate_polyhedra, separation_oracle
from repro.bench.workloads import sphere_points
from repro.geometry.dk3d import build_dk_hierarchy


def make_pair(offset, n=120, seed=0):
    A = sphere_points(n, seed=seed)
    B = sphere_points(n, seed=seed + 1000, center=(offset, 0.0, 0.0))
    return A, B, build_dk_hierarchy(A, seed=1), build_dk_hierarchy(B, seed=2)


class TestOracle:
    def test_separated(self):
        A, B, _, _ = make_pair(3.0)
        assert separation_oracle(A, B)

    def test_overlapping(self):
        A, B, _, _ = make_pair(0.5)
        assert not separation_oracle(A, B)

    def test_nested(self):
        A = sphere_points(100, seed=1, radius=2.0)
        B = sphere_points(100, seed=2, radius=0.5)
        assert not separation_oracle(A, B)


class TestSeparatePolyhedra:
    @pytest.mark.parametrize("offset", [2.5, 3.0, 5.0, 10.0])
    def test_separated_pairs(self, offset):
        A, B, ha, hb = make_pair(offset)
        res = separate_polyhedra(ha, hb)
        assert res.decided and res.separated
        n, c = res.plane[:3], res.plane[3]
        sa = A @ n - c
        sb = B @ n - c
        assert (sa >= -1e-9).all() and (sb <= 1e-9).all()

    @pytest.mark.parametrize("offset", [0.0, 0.5, 1.0, 1.5])
    def test_overlapping_pairs(self, offset):
        A, B, ha, hb = make_pair(offset)
        res = separate_polyhedra(ha, hb)
        assert res.decided and not res.separated
        assert res.plane is None

    def test_agrees_with_oracle_across_gap_sweep(self):
        for i, offset in enumerate(np.linspace(0.2, 4.0, 12)):
            A, B, ha, hb = make_pair(float(offset), n=80, seed=10 + i)
            res = separate_polyhedra(ha, hb)
            if res.decided:
                assert res.separated == separation_oracle(A, B), offset

    def test_symmetry(self):
        A, B, ha, hb = make_pair(3.0)
        r1 = separate_polyhedra(ha, hb)
        r2 = separate_polyhedra(hb, ha)
        assert r1.separated == r2.separated

    def test_support_queries_counted(self):
        _, _, ha, hb = make_pair(4.0)
        res = separate_polyhedra(ha, hb)
        assert res.support_queries >= 2
        assert res.iterations >= 1
