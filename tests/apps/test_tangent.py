"""Tests for multiple tangent plane determination."""

import numpy as np
import pytest

from repro.apps.tangent import tangent_cones
from repro.bench.workloads import sphere_points
from repro.geometry.hull3d import convex_hull_3d


@pytest.fixture(scope="module")
def hull():
    return convex_hull_3d(sphere_points(200, seed=0), seed=1)


class TestTangentCones:
    def test_inside_points_have_empty_cones(self, hull):
        rng = np.random.default_rng(1)
        q = rng.normal(scale=0.2, size=(20, 3))  # deep inside the unit sphere
        cones = tangent_cones(hull, q)
        assert all(c.inside and c.planes.shape[0] == 0 for c in cones)

    def test_outside_points_have_nonempty_cones(self, hull):
        q = sphere_points(20, seed=2, radius=3.0)
        cones = tangent_cones(hull, q)
        assert all((not c.inside) and c.planes.shape[0] >= 3 for c in cones)

    def test_planes_pass_through_query(self, hull):
        q = sphere_points(10, seed=3, radius=2.5)
        for point, cone in zip(q, tangent_cones(hull, q)):
            d = cone.planes[:, :3] @ point - cone.planes[:, 3]
            assert np.abs(d).max() < 1e-9

    def test_planes_support_the_hull(self, hull):
        q = sphere_points(10, seed=4, radius=2.5)
        V = hull.points[hull.vertices]
        for cone in tangent_cones(hull, q):
            for nrm_off in cone.planes:
                side = V @ nrm_off[:3] - nrm_off[3]
                assert (side <= 1e-7).all()

    def test_contacts_lie_on_their_plane(self, hull):
        q = sphere_points(5, seed=5, radius=4.0)
        for cone in tangent_cones(hull, q):
            for (u, v), nrm_off in zip(cone.contacts, cone.planes):
                for w in (u, v):
                    assert abs(hull.points[w] @ nrm_off[:3] - nrm_off[3]) < 1e-7

    def test_contacts_are_hull_edges(self, hull):
        q = sphere_points(5, seed=6, radius=3.0)
        edges = {tuple(sorted(e)) for e in hull.edges().tolist()}
        for cone in tangent_cones(hull, q):
            for u, v in cone.contacts:
                assert (min(u, v), max(u, v)) in edges

    def test_horizon_is_a_cycle(self, hull):
        # each horizon vertex appears in exactly two contact edges
        q = sphere_points(5, seed=7, radius=3.0)
        for cone in tangent_cones(hull, q):
            counts: dict[int, int] = {}
            for u, v in cone.contacts:
                counts[int(u)] = counts.get(int(u), 0) + 1
                counts[int(v)] = counts.get(int(v), 0) + 1
            assert all(c == 2 for c in counts.values())

    def test_boundaryish_point(self, hull):
        # a point just outside one face has a small cone
        f = 0
        center = hull.points[hull.faces[f]].mean(axis=0)
        q = center + 0.05 * hull.normals[f]
        (cone,) = tangent_cones(hull, q[None, :])
        assert not cone.inside
        assert cone.planes.shape[0] >= 3
