"""Property-based tests (hypothesis) for the mesh substrate."""

import numpy as np
from hypothesis import given, settings, strategies as st

from repro.mesh.clock import StepClock
from repro.mesh.engine import MeshEngine
from repro.mesh.machine import MeshVM
from repro.mesh.routing import route_permutation
from repro.mesh.scan import snake_prefix_sum
from repro.mesh.sorting import shearsort
from repro.mesh.topology import rowmajor_to_snake, snake_index

sides = st.integers(min_value=2, max_value=10)


@st.composite
def grid_and_values(draw, max_side=8, lo=-100, hi=100):
    side = draw(st.integers(2, max_side))
    n = side * side
    vals = draw(
        st.lists(st.integers(lo, hi), min_size=n, max_size=n)
    )
    return side, np.array(vals, dtype=np.int64)


class TestEngineProperties:
    @given(grid_and_values())
    @settings(max_examples=30, deadline=None)
    def test_sort_is_permutation_and_ordered(self, case):
        side, vals = case
        eng = MeshEngine(side)
        (out,) = eng.root.sort_by(vals)
        assert (np.diff(out) >= 0).all()
        assert sorted(out.tolist()) == sorted(vals.tolist())

    @given(grid_and_values())
    @settings(max_examples=30, deadline=None)
    def test_scan_last_equals_reduce(self, case):
        side, vals = case
        eng = MeshEngine(side)
        assert eng.root.scan(vals)[-1] == eng.root.reduce(vals)

    @given(grid_and_values(), st.integers(0, 2**31))
    @settings(max_examples=30, deadline=None)
    def test_route_then_inverse_is_identity(self, case, seed):
        side, vals = case
        n = side * side
        eng = MeshEngine(side)
        perm = np.random.default_rng(seed).permutation(n)
        (moved,) = eng.root.route(perm, vals)
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n)
        (back,) = eng.root.route(inv, moved)
        assert (back == vals).all()

    @given(grid_and_values())
    @settings(max_examples=30, deadline=None)
    def test_compress_preserves_selected(self, case):
        side, vals = case
        eng = MeshEngine(side)
        mask = vals > 0
        count, packed = eng.root.compress(mask, vals)
        assert count == int(mask.sum())
        assert (packed == vals[mask]).all()

    @given(grid_and_values())
    @settings(max_examples=30, deadline=None)
    def test_raw_add_conserves_mass(self, case):
        side, vals = case
        n = side * side
        eng = MeshEngine(side)
        addr = np.abs(vals) % n
        out = eng.root.raw(addr, np.ones(n, dtype=np.int64), size=n)
        assert out.sum() == n


class TestClockProperties:
    @given(st.lists(st.floats(0, 100), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_parallel_charges_max(self, charges):
        c = StepClock()
        with c.parallel() as par:
            for x in charges:
                with par.branch():
                    c.charge(x)
        assert c.time == max(charges)

    @given(st.lists(st.floats(0, 100), min_size=1, max_size=8))
    @settings(max_examples=50, deadline=None)
    def test_serial_charges_sum(self, charges):
        c = StepClock()
        for x in charges:
            c.charge(x)
        assert c.time == sum(charges)


class TestVMProperties:
    @given(grid_and_values(max_side=6))
    @settings(max_examples=15, deadline=None)
    def test_shearsort_agrees_with_numpy(self, case):
        side, vals = case
        vm = MeshVM(side)
        vm.load_rowmajor("k", vals)
        shearsort(vm, "k")
        snake = rowmajor_to_snake(side, side)
        got = np.empty_like(vals)
        got[snake] = vm.dump_rowmajor("k")
        assert (got == np.sort(vals)).all()

    @given(st.integers(2, 6), st.integers(0, 2**31))
    @settings(max_examples=15, deadline=None)
    def test_routing_delivers_every_packet(self, side, seed):
        n = side * side
        vm = MeshVM(side)
        perm = np.random.default_rng(seed).permutation(n)
        out = route_permutation(vm, perm, np.arange(n))
        assert sorted(out.tolist()) == list(range(n))
        assert (out[perm] == np.arange(n)).all()

    @given(grid_and_values(max_side=6, lo=0, hi=50))
    @settings(max_examples=15, deadline=None)
    def test_snake_scan_total(self, case):
        side, vals = case
        vm = MeshVM(side)
        vm.load_rowmajor("v", vals)
        snake_prefix_sum(vm, "v", "p")
        # the snake-last element holds the grand total
        snake = snake_index(side, side)
        last_pos = np.argwhere(snake == side * side - 1)[0]
        assert vm["p"][last_pos[0], last_pos[1]] == vals.sum()
