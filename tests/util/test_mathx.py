"""Tests for the iterated-logarithm machinery (paper Section 3 definitions)."""

import math

import numpy as np
import pytest

from repro.util.mathx import (
    ceil_div,
    ilog,
    is_perfect_square,
    isqrt_exact,
    iterated_log,
    log_star,
    mu_constant,
    next_pow,
)


class TestIlog:
    def test_base2(self):
        assert ilog(8, 2) == pytest.approx(3.0)

    def test_base3(self):
        assert ilog(81, 3) == pytest.approx(4.0)

    def test_fractional(self):
        assert ilog(10, 2) == pytest.approx(math.log2(10))

    def test_rejects_nonpositive_x(self):
        with pytest.raises(ValueError):
            ilog(0, 2)

    def test_rejects_bad_base(self):
        with pytest.raises(ValueError):
            ilog(4, 1.0)


class TestIteratedLog:
    def test_level0_is_half(self):
        # the paper's convention: log^(0) x = x / 2
        assert iterated_log(10, 0) == pytest.approx(5.0)

    def test_level1(self):
        # log^(1) x = log(x / 2)
        assert iterated_log(16, 1) == pytest.approx(3.0)

    def test_level2(self):
        assert iterated_log(16, 2) == pytest.approx(math.log2(3.0))

    def test_collapse_returns_neg_inf(self):
        assert iterated_log(3, 4) == -math.inf

    def test_monotone_decreasing_along_tower(self):
        vals = [iterated_log(2**20, i) for i in range(4)]
        assert all(a > b for a, b in zip(vals, vals[1:]))

    def test_rejects_negative_level(self):
        with pytest.raises(ValueError):
            iterated_log(16, -1)

    def test_square_law(self):
        # the property the paper needs: log^(i) x >= (log^(i+1) x)^2
        # for 0 <= i <= log* x with c = mu_constant
        x = 2**16
        c = mu_constant(2.0)
        t = log_star(x, 2.0, c)
        for i in range(t):
            assert iterated_log(x, i) >= iterated_log(x, i + 1) ** 2 - 1e-9


class TestMuConstant:
    def test_mu2(self):
        # 2^y >= y^2 for all y >= 4 (equality at 4), fails at y = 3
        assert mu_constant(2.0) == 4

    def test_mu3(self):
        c = mu_constant(3.0)
        assert 3.0**c >= c * c
        for y in np.linspace(c, c + 10, 50):
            assert 3.0**y >= y * y - 1e-9

    def test_large_mu_gives_small_c(self):
        assert mu_constant(16.0) <= 2

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            mu_constant(1.0)


class TestLogStar:
    def test_small_x_degenerate(self):
        # x/2 < c: no valid level at all
        assert log_star(4, 2.0, c=4) == -1

    def test_moderate(self):
        # log^(0) 16 = 8 >= 4, log^(1) 16 = 3 < 4
        assert log_star(16, 2.0, c=4) == 0

    def test_larger(self):
        # log^(1) 64 = 5 >= 4, log^(2) 64 = log2 5 < 4
        assert log_star(64, 2.0, c=4) == 1

    def test_definition(self):
        for x in (8, 20, 100, 2**10, 2**20):
            for c in (2, 4):
                t = log_star(x, 2.0, c)
                if t >= 0:
                    assert iterated_log(x, t) >= c
                assert iterated_log(x, t + 1) < c

    def test_grows_with_x(self):
        assert log_star(2**64, 2.0, c=2) > log_star(2**8, 2.0, c=2)


class TestHelpers:
    def test_next_pow(self):
        assert next_pow(2, 1) == 1
        assert next_pow(2, 5) == 8
        assert next_pow(3, 10) == 27

    def test_next_pow_exact(self):
        assert next_pow(2, 16) == 16

    def test_next_pow_rejects(self):
        with pytest.raises(ValueError):
            next_pow(1, 4)
        with pytest.raises(ValueError):
            next_pow(2, 0)

    def test_is_perfect_square(self):
        assert is_perfect_square(0)
        assert is_perfect_square(49)
        assert not is_perfect_square(50)
        assert not is_perfect_square(-4)

    def test_isqrt_exact(self):
        assert isqrt_exact(144) == 12
        with pytest.raises(ValueError):
            isqrt_exact(145)

    def test_ceil_div(self):
        assert ceil_div(7, 3) == 3
        assert ceil_div(6, 3) == 2
        assert ceil_div(0, 5) == 0
        with pytest.raises(ValueError):
            ceil_div(1, 0)
