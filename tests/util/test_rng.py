"""Tests for deterministic RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import make_rng, spawn


class TestMakeRng:
    def test_seed_reproducible(self):
        a = make_rng(7).uniform(size=10)
        b = make_rng(7).uniform(size=10)
        assert (a == b).all()

    def test_different_seeds_differ(self):
        a = make_rng(1).uniform(size=10)
        b = make_rng(2).uniform(size=10)
        assert not (a == b).all()

    def test_passthrough_generator(self):
        g = np.random.default_rng(0)
        assert make_rng(g) is g

    def test_none_allowed(self):
        g = make_rng(None)
        assert isinstance(g, np.random.Generator)


class TestSpawn:
    def test_children_independent_and_reproducible(self):
        kids1 = spawn(make_rng(3), 4)
        kids2 = spawn(make_rng(3), 4)
        for a, b in zip(kids1, kids2):
            assert (a.uniform(size=5) == b.uniform(size=5)).all()

    def test_children_mutually_different(self):
        kids = spawn(make_rng(3), 3)
        draws = [k.uniform(size=8) for k in kids]
        assert not (draws[0] == draws[1]).all()
        assert not (draws[1] == draws[2]).all()

    def test_zero_children(self):
        assert spawn(make_rng(0), 0) == []

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            spawn(make_rng(0), -1)
