"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mesh.engine import MeshEngine


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def engine8() -> MeshEngine:
    return MeshEngine(8)


@pytest.fixture
def engine32() -> MeshEngine:
    return MeshEngine(32)
