"""Tests for hierarchical DAG builders (paper Figure 1 laws)."""

import numpy as np
import pytest

from repro.graphs.hierarchical import (
    HierarchicalDAG,
    build_mu_ary_search_dag,
    build_random_hierarchical_dag,
)
from repro.graphs.validate import ValidationError, check_hierarchical_dag


class TestMuArySearchDag:
    def test_level_sizes_exact(self):
        dag, _ = build_mu_ary_search_dag(3, 4)
        assert dag.level_sizes.tolist() == [1, 3, 9, 27, 81]

    def test_size_counts_vertices_and_edges(self):
        dag, _ = build_mu_ary_search_dag(2, 3)
        assert dag.n_vertices == 15
        assert dag.n_edges == 14
        assert dag.size == 29

    def test_passes_validator(self):
        dag, _ = build_mu_ary_search_dag(2, 6)
        check_hierarchical_dag(dag)

    def test_leaf_keys_sorted(self):
        _, keys = build_mu_ary_search_dag(2, 8, seed=3)
        assert (np.diff(keys) > 0).all()

    def test_separators_guide_search(self):
        dag, keys = build_mu_ary_search_dag(2, 4, seed=1)
        # root separator splits the leaves in half
        root_sep = dag.payload[0, 0]
        assert root_sep == keys[len(keys) // 2 - 1]

    def test_children_point_one_level_down(self):
        dag, _ = build_mu_ary_search_dag(3, 3)
        live = dag.children >= 0
        src = np.repeat(np.arange(dag.n_vertices), 3).reshape(dag.children.shape)
        assert (
            dag.level_of[dag.children[live]] == dag.level_of[src[live]] + 1
        ).all()

    def test_level_slice(self):
        dag, _ = build_mu_ary_search_dag(2, 3)
        assert dag.level_slice(0) == slice(0, 1)
        assert dag.level_slice(2) == slice(3, 7)

    def test_vertices_between_clamps(self):
        dag, _ = build_mu_ary_search_dag(2, 3)
        assert dag.vertices_between(-5, 0).tolist() == [0]
        assert dag.vertices_between(3, 99).size == 8
        assert dag.vertices_between(2, 1).size == 0

    def test_rejects_bad_mu(self):
        with pytest.raises(ValueError):
            build_mu_ary_search_dag(1, 3)

    def test_height_zero(self):
        dag, keys = build_mu_ary_search_dag(2, 0)
        assert dag.n_vertices == 1
        assert keys.size == 1


class TestRandomHierarchicalDag:
    def test_level_size_law(self):
        dag = build_random_hierarchical_dag(2.0, 8, seed=0, c1=0.5, c2=2.0)
        check_hierarchical_dag(dag, c1=0.5, c2=2.0)

    def test_every_nonroot_vertex_reachable(self):
        dag = build_random_hierarchical_dag(2.0, 6, seed=1)
        has_in = np.zeros(dag.n_vertices, dtype=bool)
        has_in[0] = True
        kids = dag.children[dag.children >= 0]
        has_in[kids] = True
        assert has_in.all()

    def test_out_degree_bounded(self):
        dag = build_random_hierarchical_dag(3.0, 5, seed=2, max_out_degree=5)
        assert (dag.children >= 0).sum(axis=1).max() <= 5

    def test_nonbottom_vertices_have_children(self):
        dag = build_random_hierarchical_dag(2.0, 6, seed=3)
        internal = dag.level_of < dag.height
        assert ((dag.children[internal] >= 0).sum(axis=1) >= 1).all()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            build_random_hierarchical_dag(0.5, 4)
        with pytest.raises(ValueError):
            build_random_hierarchical_dag(2.0, 4, c1=2.0, c2=1.0)


class TestValidator:
    def test_rejects_wrong_root_size(self):
        dag, _ = build_mu_ary_search_dag(2, 3)
        bad = HierarchicalDAG(
            2.0,
            np.array([2, 2, 4, 8]),
            np.full((16, 2), -1, dtype=np.int64),
            np.zeros((16, 1)),
        )
        with pytest.raises(ValidationError, match="L_0"):
            check_hierarchical_dag(bad)

    def test_rejects_level_skipping_edge(self):
        dag, _ = build_mu_ary_search_dag(2, 3)
        dag.children[0, 0] = 7  # root -> level 2 vertex
        with pytest.raises(ValidationError, match="spans levels"):
            check_hierarchical_dag(dag)

    def test_rejects_size_law_violation(self):
        bad = HierarchicalDAG(
            2.0,
            np.array([1, 2, 100]),
            np.full((103, 2), -1, dtype=np.int64),
            np.zeros((103, 1)),
        )
        with pytest.raises(ValidationError, match="outside"):
            check_hierarchical_dag(bad)

    def test_mismatched_array_lengths_rejected(self):
        with pytest.raises(ValueError):
            HierarchicalDAG(
                2.0,
                np.array([1, 2]),
                np.full((5, 2), -1, dtype=np.int64),
                np.zeros((3, 1)),
            )
