"""Tests for balanced k-ary trees and their splitters (Figures 2-3)."""

import numpy as np
import pytest

from repro.graphs.ktree import build_balanced_search_tree, tree_from_keys
from repro.graphs.validate import (
    ValidationError,
    check_alpha_partition,
    check_normalized,
    check_splitter,
    check_splitter_distance,
)


class TestConstruction:
    def test_vertex_count(self):
        t = build_balanced_search_tree(2, 4)
        assert t.n_vertices == 31
        assert t.n_edges == 30
        assert t.n_leaves == 16

    def test_ternary(self):
        t = build_balanced_search_tree(3, 3)
        assert t.n_vertices == 40
        assert t.n_leaves == 27

    def test_parent_child_consistency(self):
        t = build_balanced_search_tree(2, 5)
        for v in range(1, t.n_vertices):
            p = t.parent[v]
            assert v in t.children[p]
        assert t.parent[0] == -1

    def test_depth(self):
        t = build_balanced_search_tree(2, 3)
        assert t.depth[0] == 0
        assert t.depth[-1] == 3
        assert (np.bincount(t.depth) == [1, 2, 4, 8]).all()

    def test_subtree_ranges(self):
        t = build_balanced_search_tree(2, 4)
        assert t.subtree_lo[0] == t.leaf_keys[0]
        assert t.subtree_hi[0] == t.leaf_keys[-1]
        # left child of root covers first half
        lc = t.children[0, 0]
        assert t.subtree_hi[lc] == t.leaf_keys[7]

    def test_separators_are_child_maxima(self):
        t = build_balanced_search_tree(3, 2, seed=4)
        for v in range(t.first_leaf()):
            for j in range(2):
                assert t.separators[v, j] == t.subtree_hi[t.children[v, j]]

    def test_leaf_vertex_of_rank(self):
        t = build_balanced_search_tree(2, 3)
        assert t.leaf_vertex_of_rank(0) == 7
        assert t.leaf_vertex_of_rank(np.array([7])).tolist() == [14]

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            build_balanced_search_tree(1, 3)
        with pytest.raises(ValueError):
            build_balanced_search_tree(2, 0)


class TestTreeFromKeys:
    def test_pads_to_power(self):
        keys = np.arange(10, dtype=np.float64)
        t = tree_from_keys(2, keys)
        assert t.n_leaves == 16
        assert np.isinf(t.leaf_keys[10:]).all()
        assert (t.leaf_keys[:10] == keys).all()

    def test_exact_power_no_padding(self):
        t = tree_from_keys(2, np.arange(8, dtype=np.float64))
        assert t.n_leaves == 8

    def test_rejects_unsorted(self):
        with pytest.raises(ValueError, match="sorted"):
            tree_from_keys(2, np.array([3.0, 1.0]))

    def test_explicit_height_too_small(self):
        with pytest.raises(ValueError):
            tree_from_keys(2, np.arange(9, dtype=np.float64), height=3)

    def test_duplicate_keys_allowed(self):
        t = tree_from_keys(2, np.array([1.0, 1.0, 2.0]))
        assert t.n_leaves == 4


class TestAlphaSplitter:
    def test_figure2_properties(self):
        t = build_balanced_search_tree(2, 8)
        lab = t.alpha_splitter()
        check_alpha_partition(lab)
        check_splitter(lab, t.children, t.size, 0.5, constant=6.0)
        check_normalized(lab, t.size, 0.5, constant=6.0)

    def test_one_h_many_t(self):
        t = build_balanced_search_tree(2, 6)
        lab = t.alpha_splitter()
        kinds = [np.unique(lab.kind[lab.comp == c]) for c in range(lab.n_components)]
        n_h = sum(1 for k in kinds if k.tolist() == [0])
        assert n_h == 1  # single top tree
        assert lab.n_components == 1 + 2**3  # cut at depth 3

    def test_cut_edges_enter_cut_depth(self):
        t = build_balanced_search_tree(2, 6)
        lab = t.alpha_splitter(cut_depth=2)
        assert lab.cut_edges.shape[0] == 4
        assert (t.depth[lab.cut_edges[:, 1]] == 2).all()
        assert (t.depth[lab.cut_edges[:, 0]] == 1).all()

    def test_border_is_cut_endpoints(self):
        t = build_balanced_search_tree(2, 4)
        lab = t.alpha_splitter(cut_depth=2)
        assert lab.border.sum() == 4 + 2

    def test_component_sizes(self):
        t = build_balanced_search_tree(2, 4)
        lab = t.alpha_splitter(cut_depth=2)
        sizes = lab.component_sizes(t.children)
        # top: 3 vertices + 2 edges; each subtree: 7 vertices + 6 edges
        assert sizes[0] == 5
        assert (sizes[1:] == 13).all()

    def test_bad_depth_rejected(self):
        t = build_balanced_search_tree(2, 4)
        with pytest.raises(ValueError):
            t.splitter_at_depths([0])
        with pytest.raises(ValueError):
            t.splitter_at_depths([5])


class TestAlphaBetaSplitters:
    def test_figure3_properties(self):
        t = build_balanced_search_tree(2, 12, seed=1)
        s1, s2, dist = t.alpha_beta_splitters()
        check_splitter(s1, t.children, t.size, 0.5, constant=6.0)
        check_splitter(s2, t.children, t.size, 1 / 3, constant=16.0)
        assert dist >= 1

    def test_distance_verified_by_bfs(self):
        t = build_balanced_search_tree(2, 12, seed=2)
        s1, s2, dist = t.alpha_beta_splitters()
        assert check_splitter_distance(t, s1, s2, dist) == dist

    def test_distance_grows_with_height(self):
        d = {}
        for h in (12, 18):
            t = build_balanced_search_tree(2, h, seed=0)
            _, _, d[h] = t.alpha_beta_splitters()
        assert d[18] > d[12]

    def test_small_height_rejected(self):
        t = build_balanced_search_tree(2, 5)
        with pytest.raises(ValueError):
            t.alpha_beta_splitters()

    def test_s2_component_count(self):
        t = build_balanced_search_tree(2, 12)
        _, s2, _ = t.alpha_beta_splitters()
        # cuts at depth 4 and 8: 1 top + 16 middles + 256 bottoms
        assert s2.n_components == 1 + 16 + 256

    def test_multi_depth_splitter_labels_dense(self):
        t = build_balanced_search_tree(2, 8)
        lab = t.splitter_at_depths([3, 6])
        assert lab.comp.min() == 0
        assert set(np.unique(lab.comp)) == set(range(lab.n_components))


class TestValidatorRejections:
    def test_alpha_partition_violation_detected(self):
        t = build_balanced_search_tree(2, 6)
        lab = t.alpha_splitter()
        lab.kind[:] = 1 - lab.kind  # swap H and T
        with pytest.raises(ValidationError):
            check_alpha_partition(lab)

    def test_oversized_component_detected(self):
        t = build_balanced_search_tree(2, 8)
        lab = t.splitter_at_depths([1])  # bottom components have ~n/2 size
        with pytest.raises(ValidationError):
            check_splitter(lab, t.children, t.size, 0.3, constant=2.0)
